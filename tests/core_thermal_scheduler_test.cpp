// Tests of Algorithm 1 (the thermal-aware scheduler).
#include "core/thermal_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/safety_checker.hpp"
#include "soc/alpha.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::core {
namespace {

using thermo::testing::nine_soc;

ThermalSchedulerOptions basic_options(double tl = 200.0, double stcl = 1e7) {
  ThermalSchedulerOptions options;
  options.temperature_limit = tl;
  options.stc_limit = stcl;
  return options;
}

class ThermalSchedulerTest : public ::testing::Test {
 protected:
  SocSpec soc_ = nine_soc(6.0);
  thermal::ThermalAnalyzer analyzer_{soc_.flp, soc_.package};
};

TEST_F(ThermalSchedulerTest, SchedulesEveryCoreExactlyOnce) {
  const ThermalAwareScheduler scheduler(basic_options());
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  EXPECT_TRUE(result.schedule.is_complete(soc_));
}

TEST_F(ThermalSchedulerTest, RelaxedLimitsAllowLargeSessions) {
  // TL far above any reachable temperature and unbounded STCL: only the
  // enclosed-centre constraint forces more than one session.
  const ThermalAwareScheduler scheduler(basic_options());
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  EXPECT_LE(result.schedule.session_count(), 3u);
  EXPECT_EQ(result.discarded_sessions, 0u);
  EXPECT_DOUBLE_EQ(result.simulation_effort, result.schedule_length);
}

TEST_F(ThermalSchedulerTest, TightStclForcesSequentialSchedule) {
  // STCL below every solo STC: the force-first rule degrades to one core
  // per session.
  const ThermalAwareScheduler scheduler(basic_options(200.0, 1e-9));
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  EXPECT_EQ(result.schedule.session_count(), soc_.core_count());
  for (const TestSession& session : result.schedule.sessions) {
    EXPECT_EQ(session.size(), 1u);
  }
}

TEST_F(ThermalSchedulerTest, ResultIsThermallySafe) {
  const double tl = 120.0;
  const ThermalAwareScheduler scheduler(basic_options(tl));
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  const SafetyChecker checker(tl);
  const SafetyReport report = checker.check(soc_, result.schedule, analyzer_);
  EXPECT_TRUE(report.safe) << report.to_string(soc_);
  EXPECT_LT(result.max_temperature, tl);
}

TEST_F(ThermalSchedulerTest, BcmtMatchesSequentialSimulation) {
  const ThermalAwareScheduler scheduler(basic_options());
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  ASSERT_EQ(result.bcmt.size(), soc_.core_count());
  for (std::size_t i = 0; i < soc_.core_count(); ++i) {
    TestSession solo;
    solo.cores.push_back(i);
    const auto sim =
        analyzer_.simulate_session(solo.power_map(soc_), solo.length(soc_));
    EXPECT_NEAR(result.bcmt[i], sim.peak_temperature[i], 1e-9);
  }
}

TEST_F(ThermalSchedulerTest, PrecheckEffortIsSeparateFromMainEffort) {
  const ThermalAwareScheduler scheduler(basic_options());
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  // 9 cores x 1 s pre-pass.
  EXPECT_DOUBLE_EQ(result.precheck_effort, 9.0);
  EXPECT_GE(result.simulation_effort, result.schedule_length);
}

TEST_F(ThermalSchedulerTest, SoloViolationThrowsByDefault) {
  // TL below the coolest solo temperature: the pre-pass must refuse.
  const ThermalAwareScheduler scheduler(basic_options(46.0));
  EXPECT_THROW(scheduler.generate(soc_, analyzer_), InvalidArgument);
}

TEST_F(ThermalSchedulerTest, SoloViolationRaiseLimitPolicy) {
  ThermalSchedulerOptions options = basic_options(46.0);
  options.solo_policy = SoloViolationPolicy::kRaiseLimit;
  const ThermalAwareScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  EXPECT_TRUE(result.schedule.is_complete(soc_));
  EXPECT_GT(scheduler.effective_temperature_limit(), 46.0);
  EXPECT_FALSE(result.notes.empty());
}

TEST_F(ThermalSchedulerTest, SoloViolationExcludePolicy) {
  // Make one core absurdly hot so only it violates a moderate TL.
  SocSpec soc = nine_soc(6.0);
  soc.tests[4].power = 200.0;
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  ThermalSchedulerOptions options = basic_options(120.0);
  options.solo_policy = SoloViolationPolicy::kExclude;
  const ThermalAwareScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc, analyzer);
  EXPECT_FALSE(result.schedule.is_complete(soc));
  for (const TestSession& session : result.schedule.sessions) {
    EXPECT_FALSE(session.contains(4));
  }
  EXPECT_EQ(result.schedule.scheduled_core_count(), soc.core_count() - 1);
  ASSERT_EQ(result.notes.size(), 1u);
  EXPECT_NE(result.notes[0].find("excluded"), std::string::npos);
}

TEST_F(ThermalSchedulerTest, DeterministicAcrossRuns) {
  const ThermalAwareScheduler scheduler(basic_options(120.0, 1e6));
  const ScheduleResult a = scheduler.generate(soc_, analyzer_);
  const ScheduleResult b = scheduler.generate(soc_, analyzer_);
  ASSERT_EQ(a.schedule.session_count(), b.schedule.session_count());
  for (std::size_t s = 0; s < a.schedule.sessions.size(); ++s) {
    EXPECT_EQ(a.schedule.sessions[s].cores, b.schedule.sessions[s].cores);
  }
  EXPECT_DOUBLE_EQ(a.simulation_effort, b.simulation_effort);
}

TEST_F(ThermalSchedulerTest, EffortEqualsLengthWhenNoDiscards) {
  const ThermalAwareScheduler scheduler(basic_options());
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  EXPECT_EQ(result.discarded_sessions, 0u);
  EXPECT_DOUBLE_EQ(result.simulation_effort, result.schedule_length);
  EXPECT_EQ(result.simulation_count, result.schedule.session_count());
}

TEST_F(ThermalSchedulerTest, OutcomesMatchSchedule) {
  const ThermalAwareScheduler scheduler(basic_options(120.0));
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  ASSERT_EQ(result.outcomes.size(), result.schedule.session_count());
  for (std::size_t s = 0; s < result.outcomes.size(); ++s) {
    EXPECT_EQ(result.outcomes[s].session.cores,
              result.schedule.sessions[s].cores);
    EXPECT_LT(result.outcomes[s].max_temperature, 120.0);
    EXPECT_DOUBLE_EQ(result.outcomes[s].length, 1.0);
  }
}

TEST_F(ThermalSchedulerTest, AttemptCapThrowsLogicError) {
  ThermalSchedulerOptions options = basic_options(120.0);
  options.max_attempts = 1;
  options.weight_factor = 1.0 + 1e-12;  // effectively no adaptation
  const ThermalAwareScheduler scheduler(options);
  // With a low TL this SoC needs several sessions -> more than 1 attempt.
  EXPECT_THROW(scheduler.generate(soc_, analyzer_), LogicError);
}

TEST_F(ThermalSchedulerTest, OptionValidation) {
  ThermalSchedulerOptions bad;
  bad.stc_limit = 0.0;
  EXPECT_THROW(ThermalAwareScheduler{bad}, InvalidArgument);
  bad = ThermalSchedulerOptions{};
  bad.weight_factor = 0.9;
  EXPECT_THROW(ThermalAwareScheduler{bad}, InvalidArgument);
  bad = ThermalSchedulerOptions{};
  bad.max_attempts = 0;
  EXPECT_THROW(ThermalAwareScheduler{bad}, InvalidArgument);
}

TEST_F(ThermalSchedulerTest, MismatchedAnalyzerRejected) {
  const SocSpec other = soc::alpha_soc();
  thermal::ThermalAnalyzer other_analyzer(other.flp, other.package);
  const ThermalAwareScheduler scheduler(basic_options());
  EXPECT_THROW(scheduler.generate(soc_, other_analyzer), InvalidArgument);
}

// Core-order policies all produce complete, safe schedules.
class CoreOrderProperty : public ::testing::TestWithParam<CoreOrder> {};

TEST_P(CoreOrderProperty, CompleteAndSafeUnderAnyOrder) {
  const SocSpec soc = nine_soc(6.0);
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  ThermalSchedulerOptions options;
  options.temperature_limit = 110.0;
  options.stc_limit = 2000.0;
  options.core_order = GetParam();
  const ThermalAwareScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc, analyzer);
  EXPECT_TRUE(result.schedule.is_complete(soc));
  EXPECT_LT(result.max_temperature, 110.0);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, CoreOrderProperty,
                         ::testing::Values(CoreOrder::kInputOrder,
                                           CoreOrder::kDescendingPower,
                                           CoreOrder::kDescendingSoloTc,
                                           CoreOrder::kAscendingSoloTc));

// STCL sweep property: tighter STCL never uses *more* simulation effort
// than it saves in this regime, and schedules stay complete and safe.
class StclSweepProperty : public ::testing::TestWithParam<double> {};

TEST_P(StclSweepProperty, CompleteSafeAndAccounted) {
  const SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  ThermalSchedulerOptions options;
  options.temperature_limit = 165.0;
  options.stc_limit = GetParam();
  options.model.stc_scale = soc::alpha_stc_scale();
  const ThermalAwareScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc, analyzer);
  EXPECT_TRUE(result.schedule.is_complete(soc));
  EXPECT_LT(result.max_temperature, 165.0);
  EXPECT_GE(result.simulation_effort, result.schedule_length);
  // effort = committed sessions + discarded attempts (1 s each here).
  EXPECT_DOUBLE_EQ(result.simulation_effort,
                   result.schedule_length +
                       static_cast<double>(result.discarded_sessions));
}

INSTANTIATE_TEST_SUITE_P(StclRange, StclSweepProperty,
                         ::testing::Values(20.0, 30.0, 40.0, 50.0, 60.0, 70.0,
                                           80.0, 90.0, 100.0));

}  // namespace
}  // namespace thermo::core
