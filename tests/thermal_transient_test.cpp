#include "thermal/transient.hpp"

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "test_helpers.hpp"
#include "thermal/steady_state.hpp"
#include "util/error.hpp"

namespace thermo::thermal {
namespace {

using thermo::testing::quad_floorplan;

class TransientTest : public ::testing::Test {
 protected:
  floorplan::Floorplan fp_ = quad_floorplan();
  PackageParams pkg_;
  RCModel model_{fp_, pkg_};
  std::vector<double> power_{8.0, 0.0, 0.0, 2.0};
};

TEST_F(TransientTest, ZeroDurationReturnsInitialState) {
  const auto initial = ambient_state(model_);
  const TransientResult r =
      simulate_transient(model_, power_, 0.0, initial);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_EQ(r.final_temperature, initial);
  EXPECT_EQ(r.peak_temperature, initial);
}

TEST_F(TransientTest, TemperaturesRiseMonotonicallyFromAmbient) {
  std::vector<double> previous_max(model_.node_count(), 0.0);
  TransientOptions options;
  options.dt = 1e-3;
  double last = pkg_.ambient;
  options.observer = [&](double, const std::vector<double>& temps) {
    EXPECT_GE(temps[0] + 1e-9, last);
    last = temps[0];
  };
  simulate_transient(model_, power_, 0.05, ambient_state(model_), options);
  EXPECT_GT(last, pkg_.ambient);
}

TEST_F(TransientTest, ConvergesToSteadyState) {
  // Long horizon: final transient temps must match the steady solve.
  TransientOptions options;
  options.dt = 0.05;
  const TransientResult tr =
      simulate_transient(model_, power_, 400.0, ambient_state(model_), options);
  const SteadyStateResult ss = solve_steady_state(model_, power_);
  for (std::size_t n = 0; n < model_.node_count(); ++n) {
    EXPECT_NEAR(tr.final_temperature[n], ss.temperature[n], 0.05)
        << model_.node_name(n);
  }
}

TEST_F(TransientTest, SteadyStateBoundsTransientPeaks) {
  // The paper's modelling assumption (Section 2, modification 1):
  // steady-state temperatures are upper bounds for transient profiles.
  const TransientResult tr =
      simulate_transient(model_, power_, 1.0, ambient_state(model_));
  const SteadyStateResult ss = solve_steady_state(model_, power_);
  for (std::size_t n = 0; n < model_.node_count(); ++n) {
    EXPECT_LE(tr.peak_temperature[n], ss.temperature[n] + 1e-6);
  }
}

TEST_F(TransientTest, PeakTracksMaximumNotFinal) {
  // Start *hot*: peak must be the initial state even as the chip cools.
  std::vector<double> hot(model_.node_count(), pkg_.ambient + 50.0);
  const TransientResult r = simulate_transient(
      model_, std::vector<double>(4, 0.0), 0.5, hot);
  for (std::size_t n = 0; n < model_.node_count(); ++n) {
    EXPECT_NEAR(r.peak_temperature[n], pkg_.ambient + 50.0, 1e-9);
    EXPECT_LT(r.final_temperature[n], pkg_.ambient + 50.0);
  }
}

TEST_F(TransientTest, LongerSessionRunsHotter) {
  const auto initial = ambient_state(model_);
  const TransientResult short_run =
      simulate_transient(model_, power_, 0.1, initial);
  const TransientResult long_run =
      simulate_transient(model_, power_, 2.0, initial);
  EXPECT_GT(max_block_peak(model_, long_run),
            max_block_peak(model_, short_run));
}

TEST_F(TransientTest, Rk4AgreesWithBackwardEulerOnShortHorizon) {
  TransientOptions be;
  be.dt = 1e-4;
  TransientOptions rk4;
  rk4.dt = 1e-5;  // explicit needs a small step for the stiff die nodes
  rk4.integrator = TransientIntegrator::kRk4;
  const auto initial = ambient_state(model_);
  const TransientResult a = simulate_transient(model_, power_, 0.02, initial, be);
  const TransientResult b = simulate_transient(model_, power_, 0.02, initial, rk4);
  for (std::size_t n = 0; n < model_.block_count(); ++n) {
    // BE is first order: expect sub-kelvin, not bit-exact, agreement.
    EXPECT_NEAR(a.final_temperature[n], b.final_temperature[n], 0.3);
  }
}

TEST_F(TransientTest, FractionalFinalStepLandsOnHorizon) {
  TransientOptions options;
  options.dt = 0.3;  // 1.0 s is not a multiple
  const TransientResult r =
      simulate_transient(model_, power_, 1.0, ambient_state(model_), options);
  EXPECT_EQ(r.steps, 4u);  // 0.3 + 0.3 + 0.3 + 0.1
  // Must agree with a run using an exact divisor within BE step error.
  TransientOptions exact;
  exact.dt = 0.25;
  const TransientResult r2 =
      simulate_transient(model_, power_, 1.0, ambient_state(model_), exact);
  EXPECT_NEAR(r.final_temperature[0], r2.final_temperature[0], 0.5);
}

TEST_F(TransientTest, ValidatesArguments) {
  const auto initial = ambient_state(model_);
  EXPECT_THROW(simulate_transient(model_, power_, -1.0, initial),
               InvalidArgument);
  EXPECT_THROW(
      simulate_transient(model_, power_, 1.0, std::vector<double>(2, 45.0)),
      InvalidArgument);
  TransientOptions bad;
  bad.dt = 0.0;
  EXPECT_THROW(simulate_transient(model_, power_, 1.0, initial, bad),
               InvalidArgument);
  EXPECT_THROW(simulate_transient(model_, {1.0}, 1.0, initial),
               InvalidArgument);
}

TEST_F(TransientTest, MaxBlockPeakIgnoresPackageNodes) {
  const TransientResult r =
      simulate_transient(model_, power_, 0.5, ambient_state(model_));
  double expected = 0.0;
  for (std::size_t b = 0; b < model_.block_count(); ++b) {
    expected = std::max(expected, r.peak_temperature[b]);
  }
  EXPECT_DOUBLE_EQ(max_block_peak(model_, r), expected);
}

}  // namespace
}  // namespace thermo::thermal
