#include "scenario/request.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace thermo::scenario {
namespace {

std::string validation_error_of(const std::string& line) {
  try {
    parse_request_line(line);
  } catch (const InvalidArgument& e) {
    return e.what();
  }
  return "<no throw>";
}

std::string normalize(const std::string& line) {
  return to_json_line(parse_request_line(line));
}

// --- golden-file round trips: parse -> serialize -> parse ------------

// The canonical full form of the all-defaults request. Every field is
// explicit, member order is fixed, numbers are shortest-round-trip.
// Deliberately a golden string: any change to the canonical form is a
// schema change and must show up in this test and docs/SERVE.md.
constexpr const char* kDefaultGolden =
    R"({"id":"","kind":"stcl_sweep",)"
    R"("soc":{"kind":"alpha","power_scale":1},"tl":155,"stcl":50,)"
    R"("stc_scale":0,"weight_factor":1.1,"solo_policy":"raise-limit",)"
    R"("core_order":"desc-solo-tc",)"
    R"("solver":{"dt":0.001,"transient":true,"backend":"auto"}})";

TEST(ScenarioGolden, EmptyRequestNormalizesToDefaults) {
  EXPECT_EQ(normalize("{}"), kDefaultGolden);
}

TEST(ScenarioGolden, CanonicalFormIsAFixpoint) {
  // serialize(parse(x)) is idempotent for every SoC kind.
  const std::string cases[] = {
      "{}",
      R"({"soc":{"kind":"fig1"},"tl":150})",
      R"({"id":"r1","soc":{"kind":"synthetic","seed":7,"cores":9},)"
      R"("stcl":{"min":20,"max":100,"step":10}})",
      R"({"soc":{"kind":"flp","path":"chip.flp","density":500000},)"
      R"("solver":{"transient":false}})",
      R"({"solver":{"backend":"sparse"}})",
  };
  for (const std::string& input : cases) {
    const std::string canon = normalize(input);
    EXPECT_EQ(normalize(canon), canon) << "input: " << input;
  }
}

TEST(ScenarioGolden, SyntheticFullForm) {
  EXPECT_EQ(
      normalize(R"({"id":"s","soc":{"kind":"synthetic","seed":7,"cores":9}})"),
      R"({"id":"s","kind":"stcl_sweep",)"
      R"("soc":{"kind":"synthetic","seed":7,"cores":9,)"
      R"("chip_width":0.016,"chip_height":0.016,"power_density_min":2e+05,)"
      R"("power_density_max":2e+06,"test_length_min":1,"test_length_max":1,)"
      R"("power_scale":1},"tl":155,"stcl":50,"stc_scale":0,)"
      R"("weight_factor":1.1,"solo_policy":"raise-limit",)"
      R"("core_order":"desc-solo-tc",)"
      R"("solver":{"dt":0.001,"transient":true,"backend":"auto"}})");
}

TEST(ScenarioGolden, StclRangeKeepsObjectForm) {
  const std::string canon =
      normalize(R"({"stcl":{"min":20,"max":40,"step":5}})");
  EXPECT_NE(canon.find(R"("stcl":{"min":20,"max":40,"step":5})"),
            std::string::npos)
      << canon;
}

TEST(ScenarioParse, FieldsAreApplied) {
  const ScenarioRequest r = parse_request_line(
      R"({"id":"x","soc":{"kind":"flp","path":"a.flp","density":2e6,)"
      R"("power_scale":1.5},"tl":140,"stcl":{"min":20,"max":60,"step":20},)"
      R"("stc_scale":0.01,"weight_factor":1.2,"solo_policy":"exclude",)"
      R"("core_order":"desc-power",)"
      R"("solver":{"dt":0.01,"transient":false,"backend":"sparse"}})");
  EXPECT_EQ(r.id, "x");
  EXPECT_EQ(r.soc.kind, SocKind::kFlp);
  EXPECT_EQ(r.soc.flp_path, "a.flp");
  EXPECT_DOUBLE_EQ(r.soc.flp_density, 2e6);
  EXPECT_DOUBLE_EQ(r.soc.power_scale, 1.5);
  EXPECT_DOUBLE_EQ(r.tl, 140.0);
  const std::vector<double> values = r.stcl.values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 20.0);
  EXPECT_DOUBLE_EQ(values[2], 60.0);
  EXPECT_DOUBLE_EQ(r.stc_scale, 0.01);
  EXPECT_DOUBLE_EQ(r.weight_factor, 1.2);
  EXPECT_EQ(r.solo_policy, core::SoloViolationPolicy::kExclude);
  EXPECT_EQ(r.core_order, core::CoreOrder::kDescendingPower);
  EXPECT_DOUBLE_EQ(r.solver.dt, 0.01);
  EXPECT_FALSE(r.solver.transient);
  EXPECT_EQ(r.solver.backend, thermal::SolverBackend::kSparse);
  EXPECT_TRUE(r.solver.backend_explicit);
}

TEST(ScenarioParse, BackendDefaultsToAutoAndTracksExplicitness) {
  // Omitted: auto, and marked implicit so `thermosched serve
  // --solver-backend` may substitute its batch default.
  const ScenarioRequest omitted = parse_request_line("{}");
  EXPECT_EQ(omitted.solver.backend, thermal::SolverBackend::kAuto);
  EXPECT_FALSE(omitted.solver.backend_explicit);

  // Named — even as "auto" — is explicit and must win over any default.
  const ScenarioRequest named =
      parse_request_line(R"({"solver":{"backend":"auto"}})");
  EXPECT_EQ(named.solver.backend, thermal::SolverBackend::kAuto);
  EXPECT_TRUE(named.solver.backend_explicit);
  EXPECT_EQ(parse_request_line(R"({"solver":{"backend":"dense"}})")
                .solver.backend,
            thermal::SolverBackend::kDense);
}

// --- malformed input: the messages are part of the interface ---------

TEST(ScenarioValidation, TopLevelShape) {
  EXPECT_EQ(validation_error_of("[]"),
            "scenario request: expected a JSON object, got array");
  EXPECT_EQ(validation_error_of(R"({"tll":155})"),
            "scenario request: unknown field 'tll'");
}

TEST(ScenarioValidation, ScalarFields) {
  EXPECT_EQ(validation_error_of(R"({"tl":"hot"})"),
            "scenario request: tl: expected a number, got string");
  EXPECT_EQ(validation_error_of(R"({"tl":-3})"),
            "scenario request: tl: must be finite and > 0");
  EXPECT_EQ(validation_error_of(R"({"stc_scale":-1})"),
            "scenario request: stc_scale: must be finite and >= 0 (0 = auto)");
  EXPECT_EQ(validation_error_of(R"({"weight_factor":0.5})"),
            "scenario request: weight_factor: must be finite and >= 1");
  EXPECT_EQ(validation_error_of(R"({"id":7})"),
            "scenario request: id: expected a string, got number");
}

TEST(ScenarioValidation, SocSelector) {
  EXPECT_EQ(validation_error_of(R"({"soc":{"kind":"alhpa"}})"),
            "scenario request: soc.kind: unknown SoC kind 'alhpa' "
            "(expected 'alpha', 'fig1', 'synthetic', or 'flp')");
  EXPECT_EQ(validation_error_of(R"({"soc":{"kind":"flp"}})"),
            "scenario request: soc.path: required for kind 'flp'");
  EXPECT_EQ(validation_error_of(R"({"soc":{"kind":"alpha","seed":3}})"),
            "scenario request: soc.seed: only valid for kind 'synthetic'");
  EXPECT_EQ(validation_error_of(R"({"soc":{"kind":"alpha","path":"x"}})"),
            "scenario request: soc.path: only valid for kind 'flp'");
  EXPECT_EQ(validation_error_of(R"({"soc":{"kind":"synthetic","cores":0}})"),
            "scenario request: soc.cores: must be an integer >= 1");
  EXPECT_EQ(validation_error_of(R"({"soc":{"kind":"synthetic","seed":2.5}})"),
            "scenario request: soc.seed: must be a non-negative integer");
  EXPECT_EQ(validation_error_of(
                R"({"soc":{"kind":"synthetic","power_density_min":2e6,)"
                R"("power_density_max":2e5}})"),
            "scenario request: soc.power_density_max: "
            "must be >= power_density_min");
  EXPECT_EQ(validation_error_of(R"({"soc":{"kind":"alpha","frob":1}})"),
            "scenario request: soc.frob: unknown field 'frob'");
}

TEST(ScenarioValidation, StclSpan) {
  EXPECT_EQ(validation_error_of(R"({"stcl":"wide"})"),
            "scenario request: stcl: expected a number or an object with "
            "min/max/step, got string");
  EXPECT_EQ(validation_error_of(R"({"stcl":0})"),
            "scenario request: stcl: must be finite and > 0");
  EXPECT_EQ(validation_error_of(R"({"stcl":{"min":50}})"),
            "scenario request: stcl: an stcl object requires both min and max");
  EXPECT_EQ(validation_error_of(R"({"stcl":{"min":60,"max":50}})"),
            "scenario request: stcl: max must be >= min");
  EXPECT_EQ(validation_error_of(R"({"stcl":{"min":1,"max":100000,"step":1}})"),
            "scenario request: stcl: range would expand to more than "
            "10000 points");
  EXPECT_EQ(validation_error_of(R"({"stcl":{"min":1,"max":2,"step":0}})"),
            "scenario request: stcl.step: must be finite and > 0");
}

TEST(ScenarioValidation, EnumsAndSolver) {
  EXPECT_EQ(validation_error_of(R"({"solo_policy":"explode"})"),
            "scenario request: solo_policy: unknown policy 'explode' "
            "(expected 'throw', 'raise-limit', or 'exclude')");
  EXPECT_EQ(validation_error_of(R"({"core_order":"random"})"),
            "scenario request: core_order: unknown order 'random' (expected "
            "'input', 'desc-power', 'desc-solo-tc', or 'asc-solo-tc')");
  EXPECT_EQ(validation_error_of(R"({"solver":{"dt":0}})"),
            "scenario request: solver.dt: must be finite and > 0");
  EXPECT_EQ(validation_error_of(R"({"solver":{"fast":true}})"),
            "scenario request: solver: unknown field 'fast'");
  EXPECT_EQ(validation_error_of(R"({"solver":{"transient":1}})"),
            "scenario request: solver.transient: expected a bool, got number");
  EXPECT_EQ(validation_error_of(R"({"solver":{"backend":"cuda"}})"),
            "scenario request: solver.backend: unknown backend 'cuda' "
            "(expected 'dense', 'sparse', or 'auto')");
  EXPECT_EQ(validation_error_of(R"({"solver":{"backend":true}})"),
            "scenario request: solver.backend: expected a string, got bool");
}

TEST(ScenarioValidation, MalformedJsonIsAParseError) {
  EXPECT_THROW(parse_request_line("{not json"), ParseError);
}

// --- geometry keys: the unit of model sharing ------------------------

TEST(ScenarioGeometryKey, PowerFieldsDoNotChangeTheKey) {
  SocSelector a;  // alpha
  SocSelector b;
  b.power_scale = 2.0;
  EXPECT_EQ(a.geometry_key(), b.geometry_key());

  SocSelector syn1;
  syn1.kind = SocKind::kSynthetic;
  syn1.synthetic.seed = 9;
  SocSelector syn2 = syn1;
  syn2.synthetic.power_density_max = 5e6;  // powers drawn after geometry
  syn2.power_scale = 0.5;
  EXPECT_EQ(syn1.geometry_key(), syn2.geometry_key());

  SocSelector syn3 = syn1;
  syn3.synthetic.seed = 10;
  EXPECT_NE(syn1.geometry_key(), syn3.geometry_key());
  SocSelector syn4 = syn1;
  syn4.synthetic.cores = 13;
  EXPECT_NE(syn1.geometry_key(), syn4.geometry_key());
}

TEST(ScenarioGeometryKey, KindsAreDistinct) {
  SocSelector alpha;
  SocSelector fig1;
  fig1.kind = SocKind::kFig1;
  SocSelector flp;
  flp.kind = SocKind::kFlp;
  flp.flp_path = "chip.flp";
  EXPECT_NE(alpha.geometry_key(), fig1.geometry_key());
  EXPECT_NE(alpha.geometry_key(), flp.geometry_key());
  EXPECT_NE(fig1.geometry_key(), flp.geometry_key());
}

}  // namespace
}  // namespace thermo::scenario
