// ThermalSolverCache: cached solves must agree with cold solves, cache
// entries must be invalidated by model identity (never aliased across
// different models), and the hit/miss accounting must reflect reuse.
#include "thermal/solver_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "test_helpers.hpp"
#include "thermal/steady_state.hpp"
#include "thermal/transient.hpp"
#include "util/error.hpp"

namespace thermo::thermal {
namespace {

using thermo::testing::nine_floorplan;
using thermo::testing::quad_floorplan;

std::vector<double> centre_power(std::size_t blocks, double watts) {
  std::vector<double> power(blocks, 0.0);
  power[blocks / 2] = watts;
  return power;
}

TEST(ThermalSolverCacheTest, CachedSteadySolveMatchesColdSolve) {
  const RCModel model(nine_floorplan(), PackageParams{});
  const auto block_power = centre_power(9, 10.0);

  // Cold: factor from scratch, outside the cache.
  const std::vector<double> expanded = model.expand_power(block_power);
  const linalg::CholeskyFactor cold(model.conductance());
  const std::vector<double> cold_rise = cold.solve(expanded);

  // First call factors into the cache; second call reuses the factor.
  const SteadyStateResult first = solve_steady_state(model, block_power);
  const SteadyStateResult second = solve_steady_state(model, block_power);

  ASSERT_EQ(first.rise.size(), cold_rise.size());
  for (std::size_t i = 0; i < cold_rise.size(); ++i) {
    // Same factorization algorithm on the same matrix: bitwise equal.
    EXPECT_DOUBLE_EQ(first.rise[i], cold_rise[i]);
    EXPECT_DOUBLE_EQ(second.rise[i], cold_rise[i]);
  }
}

TEST(ThermalSolverCacheTest, CachedLuSolveMatchesColdSolve) {
  const RCModel model(quad_floorplan(), PackageParams{});
  const auto block_power = centre_power(4, 8.0);
  const std::vector<double> cold_rise =
      linalg::LuFactor(model.conductance()).solve(model.expand_power(block_power));
  const SteadyStateResult cached =
      solve_steady_state(model, block_power, SteadySolver::kLu);
  const SteadyStateResult again =
      solve_steady_state(model, block_power, SteadySolver::kLu);
  for (std::size_t i = 0; i < cold_rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(cached.rise[i], cold_rise[i]);
    EXPECT_DOUBLE_EQ(again.rise[i], cold_rise[i]);
  }
}

TEST(ThermalSolverCacheTest, RepeatLookupsHitTheCache) {
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  const RCModel model(nine_floorplan(), PackageParams{});

  cache.reset_stats();
  const auto first = cache.cholesky(model);
  const auto stats_after_first = cache.stats();
  EXPECT_EQ(stats_after_first.misses, 1u);
  EXPECT_EQ(stats_after_first.hits, 0u);

  const auto second = cache.cholesky(model);
  const auto stats_after_second = cache.stats();
  EXPECT_EQ(stats_after_second.misses, 1u);
  EXPECT_EQ(stats_after_second.hits, 1u);
  EXPECT_EQ(first.get(), second.get());  // literally the same factor
}

TEST(ThermalSolverCacheTest, CopiesShareIdentityAndFactors) {
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  const RCModel model(nine_floorplan(), PackageParams{});
  const RCModel copy = model;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(model.identity(), copy.identity());
  EXPECT_EQ(cache.cholesky(model).get(), cache.cholesky(copy).get());
}

TEST(ThermalSolverCacheTest, DistinctModelsNeverAliasEntries) {
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  // Identical construction parameters still yield distinct identities —
  // a rebuilt model can never pick up a stale factor.
  const RCModel a(nine_floorplan(), PackageParams{});
  const RCModel b(nine_floorplan(), PackageParams{});
  EXPECT_NE(a.identity(), b.identity());
  EXPECT_NE(cache.cholesky(a).get(), cache.cholesky(b).get());

  // A genuinely different model (hotter package) must produce different
  // temperatures even when solved back-to-back through the cache.
  PackageParams warmer;
  warmer.r_convec *= 2.0;
  const RCModel c(nine_floorplan(), warmer);
  const auto block_power = centre_power(9, 10.0);
  const SteadyStateResult cool = solve_steady_state(a, block_power);
  const SteadyStateResult warm = solve_steady_state(c, block_power);
  EXPECT_GT(warm.rise[4], cool.rise[4]);
}

TEST(ThermalSolverCacheTest, InvalidateDropsOnlyThatModel) {
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  const RCModel a(nine_floorplan(), PackageParams{});
  const RCModel b(quad_floorplan(), PackageParams{});
  const auto factor_a = cache.cholesky(a);
  const auto factor_b = cache.cholesky(b);

  cache.invalidate(a);
  cache.reset_stats();
  cache.cholesky(a);  // must refactor
  cache.cholesky(b);  // must still be cached
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  // The handed-out factor stays usable after invalidation.
  EXPECT_NO_THROW(factor_a->solve(std::vector<double>(a.node_count(), 1.0)));
}

TEST(ThermalSolverCacheTest, GridModelFactorsHitTheCache) {
  // GridThermalModel keys live in the same cache as RCModel keys
  // (shared identity counter): repeat lookups must hit, and the dense
  // and sparse flavours are separate entries.
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  const GridThermalModel grid(quad_floorplan(), PackageParams{},
                              GridOptions{6, 6});

  cache.reset_stats();
  const auto first = cache.sparse_cholesky(grid);
  const auto second = cache.sparse_cholesky(grid);
  EXPECT_EQ(first.get(), second.get());
  const auto dense = cache.cholesky(grid);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // one sparse factor + one dense factor
  EXPECT_EQ(first->size(), grid.node_count());
  EXPECT_EQ(dense->size(), grid.node_count());
}

TEST(ThermalSolverCacheTest, GridAndBlockModelsNeverAlias) {
  // The shared identity counter guarantees a grid model and a block
  // model can never collide on a key, whatever their construction
  // order or node counts.
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  const RCModel block(quad_floorplan(), PackageParams{});
  const GridThermalModel grid(quad_floorplan(), PackageParams{},
                              GridOptions{6, 6});
  EXPECT_NE(block.identity(), grid.identity());
  EXPECT_NE(
      static_cast<const void*>(cache.sparse_cholesky(block).get()),
      static_cast<const void*>(cache.sparse_cholesky(grid).get()));
}

TEST(ThermalSolverCacheTest, InvalidateDropsGridEntries) {
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  const GridThermalModel grid(quad_floorplan(), PackageParams{},
                              GridOptions{5, 5});
  const RCModel block(nine_floorplan(), PackageParams{});
  const auto grid_factor = cache.sparse_cholesky(grid);
  cache.cholesky(grid);
  cache.cholesky(block);

  cache.invalidate(grid);
  cache.reset_stats();
  cache.sparse_cholesky(grid);  // must refactor
  cache.cholesky(grid);         // must refactor
  cache.cholesky(block);        // untouched by the grid invalidation
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);

  // Handed-out factors stay valid after invalidation.
  EXPECT_NO_THROW(
      grid_factor->solve(std::vector<double>(grid.node_count(), 1.0)));
}

TEST(ThermalSolverCacheTest, GridKeysParticipateInLruEviction) {
  // A small-capacity cache cycled over many grid models must keep
  // working (evicted keys simply refactor) — mirrors the RCModel LRU
  // test for the grid key space.
  ThermalSolverCache cache(2);
  std::vector<std::unique_ptr<GridThermalModel>> models;
  for (int i = 0; i < 4; ++i) {
    models.push_back(std::make_unique<GridThermalModel>(
        quad_floorplan(), PackageParams{}, GridOptions{4, 4}));
    cache.sparse_cholesky(*models.back());
  }
  EXPECT_LE(cache.stats().entries, 2u);

  // The oldest model was evicted: looking it up again refactors but
  // still yields a correct, usable factor.
  cache.reset_stats();
  const auto refactored = cache.sparse_cholesky(*models.front());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NO_THROW(refactored->solve(
      std::vector<double>(models.front()->node_count(), 1.0)));
}

TEST(ThermalSolverCacheTest, TransientStepperIsCachedPerDt) {
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  const RCModel model(nine_floorplan(), PackageParams{});
  const auto s1 = cache.stepper(model, 1e-3);
  const auto s2 = cache.stepper(model, 1e-3);
  const auto s3 = cache.stepper(model, 2e-3);
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_NE(s1.get(), s3.get());
  EXPECT_THROW(cache.stepper(model, 0.0), InvalidArgument);
}

TEST(ThermalSolverCacheTest, RepeatedTransientSimulationsAgreeExactly) {
  const RCModel model(nine_floorplan(), PackageParams{});
  const auto block_power = centre_power(9, 10.0);
  const auto initial = ambient_state(model);
  TransientOptions options;
  options.dt = 1e-3;

  ThermalSolverCache::instance().invalidate(model);  // cold first run
  const TransientResult cold =
      simulate_transient(model, block_power, 0.02, initial, options);
  const TransientResult cached =
      simulate_transient(model, block_power, 0.02, initial, options);
  ASSERT_EQ(cold.steps, cached.steps);
  for (std::size_t i = 0; i < cold.final_temperature.size(); ++i) {
    EXPECT_DOUBLE_EQ(cold.final_temperature[i], cached.final_temperature[i]);
    EXPECT_DOUBLE_EQ(cold.peak_temperature[i], cached.peak_temperature[i]);
  }
}

TEST(ThermalSolverCacheTest, EvictionBeyondCapacityStaysCorrect) {
  ThermalSolverCache small(2);
  const RCModel a(nine_floorplan(), PackageParams{});
  const RCModel b(quad_floorplan(), PackageParams{});
  const RCModel c(nine_floorplan(), PackageParams{});
  small.cholesky(a);
  small.cholesky(b);
  small.cholesky(c);  // evicts the LRU entry (a)
  EXPECT_EQ(small.stats().entries, 2u);

  small.reset_stats();
  const auto refactored = small.cholesky(a);
  EXPECT_EQ(small.stats().misses, 1u);
  // Still solves correctly after the round-trip through eviction.
  const auto rise = refactored->solve(a.expand_power(centre_power(9, 10.0)));
  const auto expected =
      linalg::CholeskyFactor(a.conductance()).solve(a.expand_power(centre_power(9, 10.0)));
  for (std::size_t i = 0; i < rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(rise[i], expected[i]);
  }
}

TEST(ThermalSolverCacheTest, ClearEmptiesTheCache) {
  ThermalSolverCache cache(8);
  const RCModel model(quad_floorplan(), PackageParams{});
  cache.cholesky(model);
  cache.stepper(model, 1e-3);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace thermo::thermal
