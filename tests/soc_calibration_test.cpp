// Calibration pinning for the reconstructed Alpha-15 evaluation SoC.
//
// The paper's experiments live in a specific thermal regime: every core
// passes its solo test below the tightest limit (TL = 145 C), while the
// whole chip powered at once overshoots even the loosest limit
// (TL = 185 C), so the TL sweep of Table 1 is meaningful end to end.
// These tests pin that regime so future edits to the floorplan, powers
// or package cannot silently break the reproduction.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/session_model.hpp"
#include "soc/alpha.hpp"
#include "soc/fig1.hpp"
#include "thermal/analyzer.hpp"

namespace thermo {
namespace {

class AlphaCalibration : public ::testing::Test {
 protected:
  core::SocSpec soc_ = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer_{soc_.flp, soc_.package};

  double solo_peak(std::size_t core) {
    std::vector<double> power(soc_.core_count(), 0.0);
    power[core] = soc_.tests[core].power;
    return analyzer_.simulate_session(power, 1.0).peak_temperature[core];
  }
};

TEST_F(AlphaCalibration, EverySoloTestPassesTheTightestLimit) {
  for (std::size_t i = 0; i < soc_.core_count(); ++i) {
    EXPECT_LT(solo_peak(i), 145.0) << soc_.flp.block(i).name;
  }
}

TEST_F(AlphaCalibration, HottestSoloCoreIsNearTheTightestLimit) {
  // The regime must be *tight*: the hottest core within ~15 K of TL=145,
  // otherwise the TL sweep would not bind at the low end.
  double hottest = 0.0;
  for (std::size_t i = 0; i < soc_.core_count(); ++i) {
    hottest = std::max(hottest, solo_peak(i));
  }
  EXPECT_GT(hottest, 125.0);
  EXPECT_LT(hottest, 145.0);
}

TEST_F(AlphaCalibration, AllCoresAtOnceOvershootTheLoosestLimit) {
  const auto sim = analyzer_.simulate_session(soc_.test_powers(), 1.0);
  EXPECT_GT(sim.max_temperature, 185.0);
}

TEST_F(AlphaCalibration, HotClusterUnitsAreTheSoloExtremes) {
  // The CPU-cluster units (small, dense) must dominate the L2 banks.
  const double l2 = solo_peak(*soc_.flp.index_of("L2_0"));
  const double icache = solo_peak(*soc_.flp.index_of("Icache"));
  EXPECT_GT(icache, l2 + 50.0);
}

TEST_F(AlphaCalibration, StcScalePlacesSoloStcsOnThePaperAxis) {
  // With alpha_stc_scale(), solo STC values must straddle the paper's
  // tightest STCL (20): the hottest solo near/above 20, the coolest
  // well below — so the 20..100 sweep actually changes behaviour.
  core::SessionModelOptions options;
  options.stc_scale = soc::alpha_stc_scale();
  const core::SessionThermalModel model(soc_.flp, soc_.package, options);
  const std::vector<double> power = soc_.test_powers();
  const std::vector<double> weight(soc_.core_count(), 1.0);
  double lo = 1e300, hi = 0.0;
  for (std::size_t i = 0; i < soc_.core_count(); ++i) {
    std::vector<bool> active(soc_.core_count(), false);
    active[i] = true;
    const double stc = model.session_characteristic(active, power, weight);
    lo = std::min(lo, stc);
    hi = std::max(hi, stc);
  }
  EXPECT_LT(lo, 10.0);
  EXPECT_GT(hi, 15.0);
  EXPECT_LT(hi, 40.0);
}

TEST_F(AlphaCalibration, SessionTemperatureGrowsWithConcurrency) {
  // Pack the CPU cluster incrementally; peak temperature must rise.
  const char* cluster[] = {"Icache", "Dcache", "LSQ", "IntReg", "Bpred"};
  std::vector<double> power(soc_.core_count(), 0.0);
  double previous = 0.0;
  for (const char* name : cluster) {
    const std::size_t core = *soc_.flp.index_of(name);
    power[core] = soc_.tests[core].power;
    const auto sim = analyzer_.simulate_session(power, 1.0);
    EXPECT_GT(sim.max_temperature, previous);
    previous = sim.max_temperature;
  }
}

TEST(Fig1Calibration, GapIsLargeAndOrientedCorrectly) {
  const core::SocSpec soc = soc::fig1_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  const auto ts1 = soc::fig1_session_ts1(soc);
  const auto ts2 = soc::fig1_session_ts2(soc);
  const auto sim1 = analyzer.simulate_session(ts1.power_map(soc), 1.0);
  const auto sim2 = analyzer.simulate_session(ts2.power_map(soc), 1.0);
  EXPECT_GT(sim1.max_temperature - sim2.max_temperature, 25.0);
  EXPECT_LT(sim2.max_temperature, 80.0);  // the cool session stays cool
  // The hot spot sits in one of the dense cores.
  const auto hottest_name = soc.flp.block(sim1.hottest_block).name;
  EXPECT_TRUE(hottest_name == "C2" || hottest_name == "C3" ||
              hottest_name == "C4")
      << hottest_name;
}

TEST(Fig1Calibration, DenseCoresHaveFourTimesTheDensity) {
  const core::SocSpec soc = soc::fig1_soc();
  for (const char* dense : {"C2", "C3", "C4"}) {
    for (const char* sparse : {"C5", "C6", "C7"}) {
      EXPECT_NEAR(soc.power_density(*soc.flp.index_of(dense)) /
                      soc.power_density(*soc.flp.index_of(sparse)),
                  4.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace thermo
