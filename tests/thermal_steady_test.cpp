#include "thermal/steady_state.hpp"

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::thermal {
namespace {

using thermo::testing::nine_floorplan;
using thermo::testing::quad_floorplan;

class SteadyStateTest : public ::testing::Test {
 protected:
  floorplan::Floorplan fp_ = nine_floorplan();
  PackageParams pkg_;
  RCModel model_{fp_, pkg_};
};

TEST_F(SteadyStateTest, ZeroPowerGivesAmbientEverywhere) {
  const SteadyStateResult r =
      solve_steady_state(model_, std::vector<double>(9, 0.0));
  for (double t : r.temperature) EXPECT_NEAR(t, pkg_.ambient, 1e-9);
  for (double rise : r.rise) EXPECT_NEAR(rise, 0.0, 1e-9);
}

TEST_F(SteadyStateTest, PositivePowerHeatsEveryNode) {
  std::vector<double> power(9, 0.0);
  power[4] = 10.0;  // centre block
  const SteadyStateResult r = solve_steady_state(model_, power);
  for (double rise : r.rise) EXPECT_GT(rise, 0.0);
}

TEST_F(SteadyStateTest, HeatedBlockIsHottest) {
  std::vector<double> power(9, 0.0);
  power[4] = 10.0;
  const SteadyStateResult r = solve_steady_state(model_, power);
  const double max_block = max_block_temperature(model_, r);
  EXPECT_DOUBLE_EQ(max_block, r.temperature[4]);
}

TEST_F(SteadyStateTest, LinearityInPower) {
  std::vector<double> power(9, 0.0);
  power[2] = 5.0;
  const SteadyStateResult once = solve_steady_state(model_, power);
  power[2] = 10.0;
  const SteadyStateResult twice = solve_steady_state(model_, power);
  for (std::size_t n = 0; n < once.rise.size(); ++n) {
    EXPECT_NEAR(twice.rise[n], 2.0 * once.rise[n], 1e-8);
  }
}

TEST_F(SteadyStateTest, SuperpositionOfSources) {
  std::vector<double> pa(9, 0.0), pb(9, 0.0), pab(9, 0.0);
  pa[0] = 7.0;
  pb[8] = 3.0;
  pab[0] = 7.0;
  pab[8] = 3.0;
  const auto ra = solve_steady_state(model_, pa);
  const auto rb = solve_steady_state(model_, pb);
  const auto rab = solve_steady_state(model_, pab);
  for (std::size_t n = 0; n < rab.rise.size(); ++n) {
    EXPECT_NEAR(rab.rise[n], ra.rise[n] + rb.rise[n], 1e-8);
  }
}

TEST_F(SteadyStateTest, Reciprocity) {
  // For a symmetric conductance network, the rise at j from power at i
  // equals the rise at i from the same power at j.
  std::vector<double> pa(9, 0.0), pb(9, 0.0);
  pa[0] = 10.0;
  pb[7] = 10.0;
  const auto ra = solve_steady_state(model_, pa);
  const auto rb = solve_steady_state(model_, pb);
  EXPECT_NEAR(ra.rise[7], rb.rise[0], 1e-8);
}

TEST_F(SteadyStateTest, MonotoneInPower) {
  std::vector<double> low(9, 1.0), high(9, 1.0);
  high[4] = 2.0;
  const auto rl = solve_steady_state(model_, low);
  const auto rh = solve_steady_state(model_, high);
  for (std::size_t n = 0; n < rl.rise.size(); ++n) {
    EXPECT_GE(rh.rise[n], rl.rise[n] - 1e-12);
  }
}

TEST_F(SteadyStateTest, SmallerBlockRunsHotterAtSamePower) {
  floorplan::Floorplan fp("two");
  fp.add_block({"small", 1e-3, 1e-3, 0.0, 0.0});
  fp.add_block({"pad", 3e-3, 1e-3, 1e-3, 0.0});
  fp.add_block({"large", 4e-3, 3e-3, 0.0, 1e-3});
  const RCModel model(fp, pkg_);
  const auto r_small = solve_steady_state(model, {10.0, 0.0, 0.0});
  const auto r_large = solve_steady_state(model, {0.0, 0.0, 10.0});
  EXPECT_GT(r_small.rise[0], r_large.rise[2]);
}

TEST_F(SteadyStateTest, AllSolversAgree) {
  std::vector<double> power(9, 0.0);
  power[1] = 4.0;
  power[6] = 8.0;
  const auto chol = solve_steady_state(model_, power, SteadySolver::kCholesky);
  const auto lu = solve_steady_state(model_, power, SteadySolver::kLu);
  const auto cg =
      solve_steady_state(model_, power, SteadySolver::kConjugateGradient);
  EXPECT_LT(linalg::norm_inf(linalg::subtract(chol.rise, lu.rise)), 1e-8);
  EXPECT_LT(linalg::norm_inf(linalg::subtract(chol.rise, cg.rise)), 1e-6);
}

TEST_F(SteadyStateTest, ResidualIsSmall) {
  std::vector<double> power(9, 2.0);
  const auto r = solve_steady_state(model_, power);
  const auto full_power = model_.expand_power(power);
  const auto residual = linalg::subtract(
      full_power, model_.conductance().multiply(r.rise));
  EXPECT_LT(linalg::norm_inf(residual), 1e-8);
}

TEST_F(SteadyStateTest, DissipatedHeatMatchesInjectedPower) {
  // In steady state, all injected watts leave through the sink nodes.
  std::vector<double> power(9, 0.0);
  power[3] = 12.0;
  const auto r = solve_steady_state(model_, power);
  double outflow = 0.0;
  for (std::size_t n = 0; n < model_.node_count(); ++n) {
    outflow += model_.conductance_to_ambient(n) * r.rise[n];
  }
  EXPECT_NEAR(outflow, 12.0, 1e-8);
}

TEST_F(SteadyStateTest, MaxBlockTemperatureValidatesResult) {
  SteadyStateResult bogus;
  bogus.temperature = {1.0};
  EXPECT_THROW(max_block_temperature(model_, bogus), InvalidArgument);
}

}  // namespace
}  // namespace thermo::thermal
