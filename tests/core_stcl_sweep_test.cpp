// core::sweep_stcl: the parallel STCL scan must match per-value direct
// scheduler runs exactly, for any thread count.
#include "core/stcl_sweep.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "test_helpers.hpp"
#include "thermal/analyzer.hpp"
#include "util/error.hpp"

namespace thermo::core {
namespace {

using thermo::testing::nine_soc;

TEST(StclSweepTest, MatchesDirectSchedulerRunsForAnyThreadCount) {
  const SocSpec soc = nine_soc();
  const auto model =
      std::make_shared<const thermal::RCModel>(soc.flp, soc.package);
  const std::vector<double> stcls{20.0, 40.0, 80.0};

  StclSweepConfig config;
  config.scheduler.temperature_limit = 150.0;

  config.threads = 1;
  const auto serial = sweep_stcl(soc, model, stcls, config);
  config.threads = 3;
  const auto parallel = sweep_stcl(soc, model, stcls, config);

  ASSERT_EQ(serial.size(), stcls.size());
  ASSERT_EQ(parallel.size(), stcls.size());
  for (std::size_t i = 0; i < stcls.size(); ++i) {
    // Reference: a plain scheduler run with its own analyzer.
    thermal::ThermalAnalyzer analyzer(model);
    ThermalSchedulerOptions options = config.scheduler;
    options.stc_limit = stcls[i];
    const ThermalAwareScheduler direct_scheduler(options);
    const ScheduleResult direct = direct_scheduler.generate(soc, analyzer);

    for (const auto& points : {serial, parallel}) {
      EXPECT_DOUBLE_EQ(points[i].stcl, stcls[i]);
      EXPECT_DOUBLE_EQ(points[i].schedule_length, direct.schedule_length);
      EXPECT_DOUBLE_EQ(points[i].simulation_effort, direct.simulation_effort);
      EXPECT_EQ(points[i].sessions, direct.schedule.session_count());
      EXPECT_DOUBLE_EQ(points[i].max_temperature, direct.max_temperature);
      EXPECT_EQ(points[i].discarded_sessions, direct.discarded_sessions);
      EXPECT_DOUBLE_EQ(points[i].effective_temperature_limit,
                       direct_scheduler.effective_temperature_limit());
    }
  }
}

TEST(StclSweepTest, RangeIncludesBothEndpoints) {
  const std::vector<double> values = stcl_range(20.0, 100.0, 10.0);
  ASSERT_EQ(values.size(), 9u);
  EXPECT_DOUBLE_EQ(values.front(), 20.0);
  // The last value may carry FP accumulation error but must be the
  // 100.0 endpoint within the documented tolerance.
  EXPECT_NEAR(values.back(), 100.0, 1e-9);
}

TEST(StclSweepTest, RangeRejectsBadParameters) {
  EXPECT_THROW(stcl_range(20.0, 100.0, 0.0), InvalidArgument);
  EXPECT_THROW(stcl_range(20.0, 100.0, -5.0), InvalidArgument);
  EXPECT_THROW(stcl_range(100.0, 20.0, 10.0), InvalidArgument);
  EXPECT_EQ(stcl_range(50.0, 50.0, 10.0), std::vector<double>{50.0});
}

TEST(StclSweepTest, RangeRejectsAbsurdPointCounts) {
  // A step below min's ULP used to make the accumulating loop spin
  // forever; both of these must throw instead of hanging or OOM-ing.
  EXPECT_THROW(stcl_range(1e17, 2e17, 7.0), InvalidArgument);
  EXPECT_THROW(stcl_range(0.0, 1e9, 1e-6), InvalidArgument);
}

TEST(StclSweepTest, NullModelThrows) {
  const SocSpec soc = nine_soc();
  EXPECT_THROW(sweep_stcl(soc, nullptr, {50.0}, StclSweepConfig{}),
               InvalidArgument);
}

TEST(StclSweepTest, EmptyValueListYieldsEmptyResult) {
  const SocSpec soc = nine_soc();
  const auto model =
      std::make_shared<const thermal::RCModel>(soc.flp, soc.package);
  EXPECT_TRUE(sweep_stcl(soc, model, {}, StclSweepConfig{}).empty());
}

}  // namespace
}  // namespace thermo::core
