// End-to-end integration tests: the paper's experiments in miniature.
#include <gtest/gtest.h>

#include "core/power_scheduler.hpp"
#include "core/safety_checker.hpp"
#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "soc/fig1.hpp"
#include "thermal/analyzer.hpp"

namespace thermo {
namespace {

// ---- Figure 1: the motivational example end to end ----

TEST(Fig1Integration, BothSessionsPassThePowerCheck) {
  const core::SocSpec soc = soc::fig1_soc();
  for (const core::TestSession& session :
       {soc::fig1_session_ts1(soc), soc::fig1_session_ts2(soc)}) {
    double power = 0.0;
    for (std::size_t core : session.cores) power += soc.tests[core].power;
    EXPECT_LE(power, soc::kFig1PowerLimit);
  }
}

TEST(Fig1Integration, DenseSessionRunsMuchHotterAtEqualPower) {
  const core::SocSpec soc = soc::fig1_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  const auto ts1 = soc::fig1_session_ts1(soc);
  const auto ts2 = soc::fig1_session_ts2(soc);
  const auto sim1 = analyzer.simulate_session(ts1.power_map(soc), 1.0);
  const auto sim2 = analyzer.simulate_session(ts2.power_map(soc), 1.0);
  // Paper: 125.5 C vs 67.5 C (58 K gap). Our package reproduces the
  // shape: a gap of several tens of kelvin at identical session power.
  EXPECT_GT(sim1.max_temperature, sim2.max_temperature + 25.0);
}

TEST(Fig1Integration, PowerSchedulerAcceptsTheHotSession) {
  // The core argument: a 45 W-budget scheduler will happily co-schedule
  // the three dense cores.
  const core::SocSpec soc = soc::fig1_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::PowerSchedulerOptions options;
  options.power_limit = soc::kFig1PowerLimit;
  options.sort_by_power = false;
  const core::PowerConstrainedScheduler scheduler(options);
  const core::ScheduleResult result = scheduler.generate(soc, &analyzer);
  // Find the session containing C2; it must contain other cores too
  // (concurrency), and run hot.
  const std::size_t c2 = *soc.flp.index_of("C2");
  bool found = false;
  for (const auto& outcome : result.outcomes) {
    if (outcome.session.contains(c2)) {
      found = true;
      EXPECT_GT(outcome.session.size(), 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fig1Integration, ThermalSchedulerSeparatesTheDenseCores) {
  const core::SocSpec soc = soc::fig1_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::ThermalSchedulerOptions options;
  options.temperature_limit = 90.0;  // below the dense session's peak
  options.stc_limit = 1e6;           // let TL do the work
  const core::ThermalAwareScheduler scheduler(options);
  const core::ScheduleResult result = scheduler.generate(soc, analyzer);
  EXPECT_TRUE(result.schedule.is_complete(soc));
  EXPECT_LT(result.max_temperature, 90.0);
  // C2, C3, C4 all together under 90 C is impossible (the Figure-1
  // session peaks far above); they must be split.
  const std::size_t c2 = *soc.flp.index_of("C2");
  const std::size_t c3 = *soc.flp.index_of("C3");
  const std::size_t c4 = *soc.flp.index_of("C4");
  for (const auto& session : result.schedule.sessions) {
    EXPECT_FALSE(session.contains(c2) && session.contains(c3) &&
                 session.contains(c4));
  }
}

// ---- Table 1 / Figure 5 shapes in miniature ----

struct SweepPoint {
  double tl;
  double stcl;
  core::ScheduleResult result;
};

class Table1Mini : public ::testing::Test {
 protected:
  static core::ScheduleResult run(double tl, double stcl) {
    const core::SocSpec soc = soc::alpha_soc();
    thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
    core::ThermalSchedulerOptions options;
    options.temperature_limit = tl;
    options.stc_limit = stcl;
    options.model.stc_scale = soc::alpha_stc_scale();
    return core::ThermalAwareScheduler(options).generate(soc, analyzer);
  }
};

TEST_F(Table1Mini, LengthNonIncreasingInTemperatureLimit) {
  const double stcl = 50.0;
  const double l145 = run(145.0, stcl).schedule_length;
  const double l165 = run(165.0, stcl).schedule_length;
  const double l185 = run(185.0, stcl).schedule_length;
  EXPECT_GE(l145, l165);
  EXPECT_GE(l165, l185);
}

TEST_F(Table1Mini, RelaxedStclShortensScheduleAtHighTl) {
  const double tight = run(185.0, 20.0).schedule_length;
  const double relaxed = run(185.0, 100.0).schedule_length;
  EXPECT_GE(tight, relaxed);
  EXPECT_GT(tight, 0.0);
}

TEST_F(Table1Mini, RelaxedStclCostsMoreEffortAtLowTl) {
  const auto tight = run(145.0, 20.0);
  const auto relaxed = run(145.0, 100.0);
  EXPECT_GT(relaxed.simulation_effort / relaxed.schedule_length,
            tight.simulation_effort / tight.schedule_length * 0.99);
  EXPECT_GT(relaxed.discarded_sessions, 0u);
}

TEST_F(Table1Mini, TightStclAtHighTlSucceedsFirstAttempt) {
  // The paper: "for very tight constraints (STCL <= 30) the simulation
  // effort equals the length of the generated test schedule".
  const auto r = run(185.0, 20.0);
  EXPECT_EQ(r.discarded_sessions, 0u);
  EXPECT_DOUBLE_EQ(r.simulation_effort, r.schedule_length);
}

TEST_F(Table1Mini, StclDominatesTlAtHighTlLowStcl) {
  // Paper: "for TL=185 and STCL=30 the maximum temperature ... stays
  // under 145 C": with a tight STCL the schedule never gets close to TL.
  const auto r = run(185.0, 20.0);
  EXPECT_LT(r.max_temperature, 185.0 - 15.0);
}

TEST_F(Table1Mini, MaxTemperatureApproachesTlForShortSchedules) {
  const auto r = run(185.0, 100.0);
  EXPECT_LT(r.max_temperature, 185.0);
  EXPECT_GT(r.max_temperature, 165.0);  // within ~20 K of the limit
}

TEST_F(Table1Mini, EverySweepPointIsSafeAndComplete) {
  const core::SocSpec soc = soc::alpha_soc();
  for (double tl : {150.0, 170.0}) {
    for (double stcl : {30.0, 80.0}) {
      const auto r = run(tl, stcl);
      EXPECT_TRUE(r.schedule.is_complete(soc));
      EXPECT_LT(r.max_temperature, tl);
    }
  }
}

}  // namespace
}  // namespace thermo
