// SLO-aware serving end to end: a seeded `gen` stream with deadlines
// attached (--deadline-rate) flows through serve_stream, and the
// deadline scoreboard must be exactly predictable because the generator
// only ever draws two machine-independent deadline values:
//
//   * kTightDeadlineS (1e-7 s)  — any request that actually executes
//     (or inherits a within-batch leader's completion time) misses it
//     on every machine;
//   * kGenerousDeadlineS (1e6 s) — nobody misses it.
//
// So on a cold serve, missed == tight-deadlined lines and met ==
// generous-deadlined lines, byte for byte, with no timing tolerance
// anywhere. The one documented exception closes the loop: a warm-memo
// re-serve answers every request at planning time (done_seconds = 0),
// so even the tight deadlines read as met — cache hits are "instant".
//
// The other half of this file is the hard serve invariant extended to
// the new machinery: output bytes identical across {1,4} threads ×
// all five registered policies × {calibrator, none}, on the SAME
// deadlined stream.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dispatch/calibrator.hpp"
#include "dispatch/result_memo.hpp"
#include "dispatch/work_queue.hpp"
#include "gen/generator.hpp"
#include "scenario/request.hpp"
#include "scenario/serve.hpp"
#include "util/json.hpp"

namespace thermo::scenario {
namespace {

/// The canonical deadlined stream: small sizes (zipf 1.5 keeps whales
/// away so the 20-config sweep stays fast), duplicates in the mix so
/// within-batch inheritance is exercised, half the fresh lines
/// deadlined.
gen::GeneratedStream deadlined_stream() {
  gen::GenConfig config;
  config.seed = 31;
  config.count = 30;
  config.dup_rate = 0.25;
  config.zipf_skew = 1.5;
  config.deadline_rate = 0.5;
  return gen::generate_stream(config);
}

std::string stream_text(const gen::GeneratedStream& stream) {
  std::string text;
  for (const std::string& line : stream.lines) {
    text += line;
    text += '\n';
  }
  return text;
}

struct RunOutput {
  std::string records;
  ServeSummary summary;
};

RunOutput run_serve(const std::string& input, const ServeOptions& options,
                    ScenarioRunner& runner) {
  std::istringstream in(input);
  std::ostringstream out;
  const ServeSummary summary = serve_stream(in, out, runner, options);
  return RunOutput{out.str(), summary};
}

TEST(ServeSlo, ColdServeMissesExactlyTheTightDeadlines) {
  const gen::GeneratedStream stream = deadlined_stream();
  std::size_t tight = 0;
  std::size_t generous = 0;
  for (const std::string& line : stream.lines) {
    const double deadline = parse_request_line(line).deadline_s;
    if (deadline == gen::kTightDeadlineS) ++tight;
    if (deadline == gen::kGenerousDeadlineS) ++generous;
  }
  ASSERT_GT(tight, 0u);
  ASSERT_GT(generous, 0u);
  ASSERT_EQ(tight + generous, stream.stats.deadlined);

  ScenarioRunner runner;
  ServeOptions options;
  options.threads = 2;
  const RunOutput run = run_serve(stream_text(stream), options, runner);
  EXPECT_EQ(run.summary.requests, stream.lines.size());
  EXPECT_EQ(run.summary.failed, 0u);
  // The pinned scoreboard: every tight line misses (executed leaders
  // measure real wall time >> 1e-7; within-batch duplicates inherit the
  // leader's completion offset), every generous line is met.
  EXPECT_EQ(run.summary.deadline_requests, tight + generous);
  EXPECT_EQ(run.summary.deadline_missed, tight);
  EXPECT_EQ(run.summary.deadline_met, generous);

  // Per-timing agreement with the aggregate counters.
  std::size_t missed = 0;
  for (const RequestTiming& timing : run.summary.request_timings) {
    if (timing.deadline_s > 0.0 && !timing.deadline_met) {
      ++missed;
      EXPECT_EQ(timing.deadline_s, gen::kTightDeadlineS);
      EXPECT_GT(timing.done_seconds, timing.deadline_s);
    }
  }
  EXPECT_EQ(missed, run.summary.deadline_missed);
}

TEST(ServeSlo, WarmMemoReServeMeetsEverythingIncludingTightDeadlines) {
  const std::string input = stream_text(deadlined_stream());
  ScenarioRunner runner;
  dispatch::ResultMemo memo;
  ServeOptions options;
  options.threads = 2;
  options.memo = &memo;
  const RunOutput cold = run_serve(input, options, runner);
  ASSERT_GT(cold.summary.deadline_missed, 0u);
  const RunOutput warm = run_serve(input, options, runner);
  // Identical bytes, but every request is a planning-time memo hit:
  // done_seconds is 0, so even the tight deadlines are met — an
  // "instant" answer cannot miss an SLO.
  EXPECT_EQ(warm.records, cold.records);
  EXPECT_EQ(warm.summary.executed, 0u);
  EXPECT_EQ(warm.summary.deadline_requests, cold.summary.deadline_requests);
  EXPECT_EQ(warm.summary.deadline_missed, 0u);
  EXPECT_EQ(warm.summary.deadline_met, warm.summary.deadline_requests);
}

TEST(ServeSlo, ByteIdenticalAcrossThreadsPoliciesAndCalibration) {
  const std::string input = stream_text(deadlined_stream());
  ScenarioRunner runner;  // shared: the model cache never changes bytes
  ServeOptions reference_options;
  reference_options.threads = 1;
  const RunOutput reference = run_serve(input, reference_options, runner);
  ASSERT_EQ(reference.summary.failed, 0u);

  for (const std::string& policy : dispatch::registered_schedule_policies()) {
    const auto builtin = dispatch::schedule_policy_from_name(policy);
    if (!builtin) continue;  // other suites may have registered test policies
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const bool calibrate : {false, true}) {
        dispatch::CostCalibrator calibrator;
        ServeOptions options;
        options.policy = *builtin;
        options.threads = threads;
        options.calibrator = calibrate ? &calibrator : nullptr;
        const RunOutput run = run_serve(input, options, runner);
        EXPECT_EQ(run.records, reference.records)
            << "policy=" << policy << " threads=" << threads
            << " calibrate=" << calibrate;
        EXPECT_EQ(run.summary.deadline_missed,
                  reference.summary.deadline_missed)
            << "policy=" << policy << " threads=" << threads
            << " calibrate=" << calibrate;
        if (calibrate) {
          EXPECT_TRUE(run.summary.calibration_enabled);
          EXPECT_EQ(run.summary.calibration_samples, calibrator.samples());
          EXPECT_GT(calibrator.samples(), 0u);
        } else {
          EXPECT_FALSE(run.summary.calibration_enabled);
        }
      }
    }
  }
}

TEST(ServeSlo, SummaryJsonCarriesSloAndCalibrationSections) {
  const std::string input = stream_text(deadlined_stream());
  ScenarioRunner runner;
  dispatch::CostCalibrator calibrator;
  ServeOptions options;
  options.threads = 1;
  options.calibrator = &calibrator;
  const RunOutput run = run_serve(input, options, runner);
  const std::string json = serve_summary_to_json(run.summary).dump();
  // Additive v1 schema: the header needle older tooling pins must
  // survive, and the new sections ride alongside it.
  EXPECT_NE(json.find("\"schema\":\"thermo.serve_summary.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"slo\":{\"deadline_requests\":"), std::string::npos);
  EXPECT_NE(json.find("\"calibration\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"done_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_met\":"), std::string::npos);
}

}  // namespace
}  // namespace thermo::scenario
