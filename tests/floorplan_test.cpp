#include "floorplan/floorplan.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::floorplan {
namespace {

using thermo::testing::idx;
using thermo::testing::nine_floorplan;
using thermo::testing::quad_floorplan;

TEST(Block, GeometryAccessors) {
  const Block b{"x", 2e-3, 1e-3, 1e-3, 4e-3};
  EXPECT_DOUBLE_EQ(b.area(), 2e-6);
  EXPECT_DOUBLE_EQ(b.right(), 3e-3);
  EXPECT_DOUBLE_EQ(b.top(), 5e-3);
  EXPECT_DOUBLE_EQ(b.center_x(), 2e-3);
  EXPECT_DOUBLE_EQ(b.center_y(), 4.5e-3);
}

TEST(Block, CentroidToSideUsesCorrectAxis) {
  const Block b{"x", 2e-3, 4e-3, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(b.centroid_to_side(Side::kNorth), 2e-3);
  EXPECT_DOUBLE_EQ(b.centroid_to_side(Side::kSouth), 2e-3);
  EXPECT_DOUBLE_EQ(b.centroid_to_side(Side::kEast), 1e-3);
  EXPECT_DOUBLE_EQ(b.centroid_to_side(Side::kWest), 1e-3);
}

TEST(Block, SideLength) {
  const Block b{"x", 2e-3, 4e-3, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(b.side_length(Side::kNorth), 2e-3);
  EXPECT_DOUBLE_EQ(b.side_length(Side::kEast), 4e-3);
}

TEST(Block, OverlapDetection) {
  const Block a{"a", 2e-3, 2e-3, 0.0, 0.0};
  const Block inside{"b", 1e-3, 1e-3, 0.5e-3, 0.5e-3};
  const Block touching{"c", 1e-3, 1e-3, 2e-3, 0.0};
  const Block apart{"d", 1e-3, 1e-3, 5e-3, 5e-3};
  EXPECT_TRUE(a.overlaps(inside));
  EXPECT_FALSE(a.overlaps(touching));  // shared edge is not overlap
  EXPECT_FALSE(a.overlaps(apart));
}

TEST(Floorplan, AddBlockValidation) {
  Floorplan fp("t");
  EXPECT_THROW(fp.add_block({"", 1e-3, 1e-3, 0, 0}), InvalidArgument);
  EXPECT_THROW(fp.add_block({"z", 0.0, 1e-3, 0, 0}), InvalidArgument);
  EXPECT_THROW(fp.add_block({"z", 1e-3, -1e-3, 0, 0}), InvalidArgument);
  fp.add_block({"a", 1e-3, 1e-3, 0, 0});
  EXPECT_THROW(fp.add_block({"a", 1e-3, 1e-3, 5e-3, 0}), InvalidArgument);
}

TEST(Floorplan, IndexOfFindsBlocks) {
  const Floorplan fp = quad_floorplan();
  EXPECT_EQ(*fp.index_of("a"), 0u);
  EXPECT_EQ(*fp.index_of("d"), 3u);
  EXPECT_FALSE(fp.index_of("nope").has_value());
}

TEST(Floorplan, ChipBoundingBox) {
  const Floorplan fp = quad_floorplan();
  EXPECT_DOUBLE_EQ(fp.chip_width(), 2e-3);
  EXPECT_DOUBLE_EQ(fp.chip_height(), 2e-3);
  EXPECT_DOUBLE_EQ(fp.chip_area(), 4e-6);
}

TEST(Floorplan, QuadAdjacencyStructure) {
  const Floorplan fp = quad_floorplan();
  // a-b, a-c, b-d, c-d adjacent; a-d and b-c only touch at a corner.
  EXPECT_TRUE(fp.are_adjacent(idx(fp, "a"), idx(fp, "b")));
  EXPECT_TRUE(fp.are_adjacent(idx(fp, "a"), idx(fp, "c")));
  EXPECT_TRUE(fp.are_adjacent(idx(fp, "b"), idx(fp, "d")));
  EXPECT_TRUE(fp.are_adjacent(idx(fp, "c"), idx(fp, "d")));
  EXPECT_FALSE(fp.are_adjacent(idx(fp, "a"), idx(fp, "d")));
  EXPECT_FALSE(fp.are_adjacent(idx(fp, "b"), idx(fp, "c")));
  EXPECT_EQ(fp.adjacencies().size(), 4u);
}

TEST(Floorplan, SharedEdgeLengthFullSide) {
  const Floorplan fp = quad_floorplan();
  EXPECT_DOUBLE_EQ(fp.shared_edge(idx(fp, "a"), idx(fp, "b")), 1e-3);
  EXPECT_DOUBLE_EQ(fp.shared_edge(idx(fp, "b"), idx(fp, "a")), 1e-3);
  EXPECT_DOUBLE_EQ(fp.shared_edge(idx(fp, "a"), idx(fp, "d")), 0.0);
}

TEST(Floorplan, PartialSharedEdge) {
  Floorplan fp("partial");
  fp.add_block({"left", 1e-3, 2e-3, 0.0, 0.0});
  fp.add_block({"right", 1e-3, 1e-3, 1e-3, 0.5e-3});
  EXPECT_DOUBLE_EQ(fp.shared_edge(0, 1), 1e-3);  // overlap of [0,2] and [0.5,1.5]
}

TEST(Floorplan, NeighboursList) {
  const Floorplan fp = nine_floorplan();
  const auto centre = fp.neighbours(idx(fp, "b1_1"));
  EXPECT_EQ(centre.size(), 4u);
  const auto corner = fp.neighbours(idx(fp, "b0_0"));
  EXPECT_EQ(corner.size(), 2u);
}

TEST(Floorplan, BoundaryExposureCorner) {
  const Floorplan fp = nine_floorplan();
  const std::size_t corner = idx(fp, "b0_0");
  EXPECT_DOUBLE_EQ(fp.boundary_exposure(corner, Side::kSouth), 2e-3);
  EXPECT_DOUBLE_EQ(fp.boundary_exposure(corner, Side::kWest), 2e-3);
  EXPECT_DOUBLE_EQ(fp.boundary_exposure(corner, Side::kNorth), 0.0);
  EXPECT_DOUBLE_EQ(fp.boundary_exposure(corner), 4e-3);
}

TEST(Floorplan, InteriorBlockHasNoBoundaryExposure) {
  const Floorplan fp = nine_floorplan();
  EXPECT_DOUBLE_EQ(fp.boundary_exposure(idx(fp, "b1_1")), 0.0);
}

TEST(Floorplan, EdgeBlockHasOneExposedSide) {
  const Floorplan fp = nine_floorplan();
  const std::size_t edge = idx(fp, "b0_1");  // bottom middle
  EXPECT_DOUBLE_EQ(fp.boundary_exposure(edge, Side::kSouth), 2e-3);
  EXPECT_DOUBLE_EQ(fp.boundary_exposure(edge), 2e-3);
}

TEST(Floorplan, ValidateAcceptsCleanFloorplan) {
  const ValidationReport report = nine_floorplan().validate();
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_NEAR(report.coverage, 1.0, 1e-12);
}

TEST(Floorplan, ValidateDetectsOverlap) {
  Floorplan fp("bad");
  fp.add_block({"a", 2e-3, 2e-3, 0.0, 0.0});
  fp.add_block({"b", 2e-3, 2e-3, 1e-3, 1e-3});
  const ValidationReport report = fp.validate();
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("overlap"), std::string::npos);
  EXPECT_THROW(fp.require_valid(), InvalidArgument);
}

TEST(Floorplan, ValidateWarnsAboutPoorCoverage) {
  Floorplan fp("sparse");
  fp.add_block({"a", 1e-3, 1e-3, 0.0, 0.0});
  fp.add_block({"b", 1e-3, 1e-3, 9e-3, 9e-3});
  const ValidationReport report = fp.validate();
  EXPECT_TRUE(report.ok);  // coverage is a warning, not an error
  EXPECT_FALSE(report.warnings.empty());
  EXPECT_LT(report.coverage, 0.05);
}

TEST(Floorplan, ValidateRejectsEmpty) {
  const Floorplan fp("empty");
  EXPECT_FALSE(fp.validate().ok);
  EXPECT_THROW(fp.require_valid(), InvalidArgument);
}

TEST(Floorplan, CacheInvalidatedByAddBlock) {
  Floorplan fp("grow");
  fp.add_block({"a", 1e-3, 1e-3, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(fp.chip_width(), 1e-3);
  fp.add_block({"b", 1e-3, 1e-3, 1e-3, 0.0});
  EXPECT_DOUBLE_EQ(fp.chip_width(), 2e-3);
  EXPECT_TRUE(fp.are_adjacent(0, 1));
}

TEST(Floorplan, OutOfRangeIndicesThrow) {
  const Floorplan fp = quad_floorplan();
  EXPECT_THROW(fp.block(4), InvalidArgument);
  EXPECT_THROW(fp.shared_edge(0, 4), InvalidArgument);
  EXPECT_THROW(fp.neighbours(4), InvalidArgument);
  EXPECT_THROW(fp.boundary_exposure(4), InvalidArgument);
}

}  // namespace
}  // namespace thermo::floorplan
