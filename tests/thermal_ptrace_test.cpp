#include "thermal/ptrace_io.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::thermal {
namespace {

TEST(Ptrace, ParsesHeaderAndRows) {
  const PowerTrace trace = parse_ptrace_string(
      "a b c\n"
      "1.0 2.0 3.0\n"
      "0.5 0.0 1.5\n");
  ASSERT_EQ(trace.unit_count(), 3u);
  ASSERT_EQ(trace.step_count(), 2u);
  EXPECT_EQ(trace.unit_names[1], "b");
  EXPECT_DOUBLE_EQ(trace.steps[1][2], 1.5);
}

TEST(Ptrace, SkipsCommentsAndBlankLines) {
  const PowerTrace trace = parse_ptrace_string(
      "# HotSpot power trace\n"
      "\n"
      "x y\n"
      "1 2  # step 0\n");
  EXPECT_EQ(trace.unit_count(), 2u);
  EXPECT_EQ(trace.step_count(), 1u);
}

TEST(Ptrace, RejectsRowWidthMismatch) {
  try {
    parse_ptrace_string("a b\n1 2 3\n");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Ptrace, RejectsNegativeOrGarbagePower) {
  EXPECT_THROW(parse_ptrace_string("a\n-1\n"), ParseError);
  EXPECT_THROW(parse_ptrace_string("a\nhot\n"), ParseError);
}

TEST(Ptrace, RejectsEmptyInput) {
  EXPECT_THROW(parse_ptrace_string(""), ParseError);
  EXPECT_THROW(parse_ptrace_string("# only a comment\n"), ParseError);
}

TEST(Ptrace, RoundTrip) {
  PowerTrace trace;
  trace.unit_names = {"u0", "u1"};
  trace.steps = {{1.25, 0.0}, {3.5, 2.0}};
  const PowerTrace again = parse_ptrace_string(to_ptrace_string(trace));
  EXPECT_EQ(again.unit_names, trace.unit_names);
  ASSERT_EQ(again.step_count(), 2u);
  EXPECT_DOUBLE_EQ(again.steps[0][0], 1.25);
  EXPECT_DOUBLE_EQ(again.steps[1][1], 2.0);
}

TEST(Ptrace, AlignsColumnsToFloorplanOrder) {
  const floorplan::Floorplan fp = thermo::testing::quad_floorplan();
  // Columns deliberately out of floorplan order.
  const PowerTrace trace = parse_ptrace_string(
      "d c b a\n"
      "4 3 2 1\n");
  const PowerTrace aligned = trace.aligned_to(fp);
  ASSERT_EQ(aligned.unit_names.size(), 4u);
  EXPECT_EQ(aligned.unit_names[0], "a");
  EXPECT_DOUBLE_EQ(aligned.steps[0][0], 1.0);
  EXPECT_DOUBLE_EQ(aligned.steps[0][3], 4.0);
}

TEST(Ptrace, AlignRejectsMissingOrExtraColumns) {
  const floorplan::Floorplan fp = thermo::testing::quad_floorplan();
  EXPECT_THROW(parse_ptrace_string("a b c\n1 2 3\n").aligned_to(fp),
               ParseError);
  EXPECT_THROW(
      parse_ptrace_string("a b c d e\n1 2 3 4 5\n").aligned_to(fp),
      ParseError);
}

TEST(Ptrace, MissingFileThrows) {
  EXPECT_THROW(load_ptrace("/nonexistent/trace.ptrace"), ParseError);
}

}  // namespace
}  // namespace thermo::thermal
