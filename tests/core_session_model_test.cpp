// Tests of the paper's test session thermal model (Section 2): the
// equivalent resistance reduction, the TC/STC definitions, and the three
// modelling modifications.
#include "core/session_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::core {
namespace {

using thermo::testing::idx;
using thermo::testing::nine_floorplan;
using thermo::testing::quad_floorplan;

class SessionModelTest : public ::testing::Test {
 protected:
  floorplan::Floorplan fp_ = nine_floorplan();
  thermal::PackageParams pkg_;
  SessionThermalModel model_{fp_, pkg_, {}};

  std::vector<bool> only(std::initializer_list<const char*> names) const {
    std::vector<bool> mask(fp_.size(), false);
    for (const char* n : names) mask[idx(fp_, n)] = true;
    return mask;
  }
};

TEST_F(SessionModelTest, LateralResistanceMatchesSlabFormula) {
  // Two adjacent 2 mm blocks: R = (1 mm + 1 mm)/(k * t * 2 mm).
  const double expected =
      (1e-3 + 1e-3) / (pkg_.k_die * pkg_.t_die * 2e-3);
  EXPECT_NEAR(model_.lateral_resistance(idx(fp_, "b0_0"), idx(fp_, "b0_1")),
              expected, 1e-9);
}

TEST_F(SessionModelTest, NonAdjacentCoresHaveInfiniteLateralResistance) {
  EXPECT_TRUE(std::isinf(
      model_.lateral_resistance(idx(fp_, "b0_0"), idx(fp_, "b2_2"))));
}

TEST_F(SessionModelTest, InteriorBlockHasInfiniteBoundaryResistance) {
  EXPECT_TRUE(std::isinf(model_.boundary_resistance(idx(fp_, "b1_1"))));
}

TEST_F(SessionModelTest, CornerBlockHasTwoBoundaryPaths) {
  // Corner: two exposed 2 mm sides, each R = 1 mm/(k*t*2 mm), in parallel.
  const double single = 1e-3 / (pkg_.k_die * pkg_.t_die * 2e-3);
  EXPECT_NEAR(model_.boundary_resistance(idx(fp_, "b0_0")), single / 2.0,
              1e-9);
}

TEST_F(SessionModelTest, SoloCoreSeesAllNeighboursAsGround) {
  // Centre block alone: 4 lateral paths, no boundary.
  const double lateral =
      model_.lateral_resistance(idx(fp_, "b1_1"), idx(fp_, "b0_1"));
  const double rth =
      model_.equivalent_resistance(only({"b1_1"}), idx(fp_, "b1_1"));
  EXPECT_NEAR(rth, lateral / 4.0, 1e-9);
}

TEST_F(SessionModelTest, ActiveNeighboursAreRemovedFromGroundPaths) {
  // Modification 2: making a neighbour active removes its path, raising
  // Rth of the centre core from L/4 to L/3.
  const double lateral =
      model_.lateral_resistance(idx(fp_, "b1_1"), idx(fp_, "b0_1"));
  const double rth = model_.equivalent_resistance(only({"b1_1", "b0_1"}),
                                                  idx(fp_, "b1_1"));
  EXPECT_NEAR(rth, lateral / 3.0, 1e-9);
}

TEST_F(SessionModelTest, FullyEnclosedCoreHasInfiniteRth) {
  // Centre core with all four neighbours active: no path to ground.
  const auto mask = only({"b1_1", "b0_1", "b1_0", "b1_2", "b2_1"});
  EXPECT_TRUE(
      std::isinf(model_.equivalent_resistance(mask, idx(fp_, "b1_1"))));
}

TEST_F(SessionModelTest, RthMonotoneInActiveNeighbourCount) {
  const std::size_t centre = idx(fp_, "b1_1");
  double previous = model_.equivalent_resistance(only({"b1_1"}), centre);
  const char* neighbours[] = {"b0_1", "b1_0", "b1_2"};
  std::vector<const char*> active_names{"b1_1"};
  for (const char* n : neighbours) {
    active_names.push_back(n);
    std::vector<bool> mask(fp_.size(), false);
    for (const char* name : active_names) mask[idx(fp_, name)] = true;
    const double rth = model_.equivalent_resistance(mask, centre);
    EXPECT_GT(rth, previous);
    previous = rth;
  }
}

TEST_F(SessionModelTest, ThermalCharacteristicIsPowerTimesRth) {
  const std::size_t corner = idx(fp_, "b0_0");
  const auto mask = only({"b0_0"});
  const double rth = model_.equivalent_resistance(mask, corner);
  EXPECT_NEAR(model_.thermal_characteristic(mask, corner, 5.0), 5.0 * rth,
              1e-12);
  EXPECT_DOUBLE_EQ(model_.thermal_characteristic(mask, corner, 0.0), 0.0);
}

TEST_F(SessionModelTest, SessionCharacteristicIsMaxOverMembers) {
  const auto mask = only({"b0_0", "b2_2"});
  std::vector<double> power(fp_.size(), 0.0);
  power[idx(fp_, "b0_0")] = 2.0;
  power[idx(fp_, "b2_2")] = 6.0;
  const std::vector<double> weight(fp_.size(), 1.0);
  const double stc = model_.session_characteristic(mask, power, weight);
  const double tc_hot = model_.thermal_characteristic(mask, idx(fp_, "b2_2"), 6.0);
  EXPECT_NEAR(stc, tc_hot * 6.0, 1e-9);
}

TEST_F(SessionModelTest, EmptySessionHasZeroStc) {
  const std::vector<bool> none(fp_.size(), false);
  const std::vector<double> power(fp_.size(), 5.0);
  const std::vector<double> weight(fp_.size(), 1.0);
  EXPECT_DOUBLE_EQ(model_.session_characteristic(none, power, weight), 0.0);
}

TEST_F(SessionModelTest, WeightsScaleStcLinearly) {
  const auto mask = only({"b0_0"});
  const std::vector<double> power(fp_.size(), 4.0);
  std::vector<double> weight(fp_.size(), 1.0);
  const double base = model_.session_characteristic(mask, power, weight);
  weight[idx(fp_, "b0_0")] = 1.1;
  EXPECT_NEAR(model_.session_characteristic(mask, power, weight), base * 1.1,
              1e-9);
}

TEST_F(SessionModelTest, StcScaleAppliesUniformly) {
  SessionModelOptions scaled;
  scaled.stc_scale = 0.01;
  const SessionThermalModel scaled_model(fp_, pkg_, scaled);
  const auto mask = only({"b0_0", "b0_2"});
  const std::vector<double> power(fp_.size(), 4.0);
  const std::vector<double> weight(fp_.size(), 1.0);
  EXPECT_NEAR(scaled_model.session_characteristic(mask, power, weight),
              0.01 * model_.session_characteristic(mask, power, weight),
              1e-12);
}

TEST_F(SessionModelTest, EnclosedMemberMakesStcInfinite) {
  const auto mask = only({"b1_1", "b0_1", "b1_0", "b1_2", "b2_1"});
  const std::vector<double> power(fp_.size(), 1.0);
  const std::vector<double> weight(fp_.size(), 1.0);
  EXPECT_TRUE(
      std::isinf(model_.session_characteristic(mask, power, weight)));
}

TEST_F(SessionModelTest, VerticalPathExtensionLowersRth) {
  SessionModelOptions with_vertical;
  with_vertical.include_vertical_path = true;
  const SessionThermalModel extended(fp_, pkg_, with_vertical);
  const auto mask = only({"b1_1"});
  const std::size_t centre = idx(fp_, "b1_1");
  EXPECT_LT(extended.equivalent_resistance(mask, centre),
            model_.equivalent_resistance(mask, centre));
}

TEST_F(SessionModelTest, VerticalPathMakesEnclosedCoreFinite) {
  SessionModelOptions with_vertical;
  with_vertical.include_vertical_path = true;
  const SessionThermalModel extended(fp_, pkg_, with_vertical);
  const auto mask = only({"b1_1", "b0_1", "b1_0", "b1_2", "b2_1"});
  const double rth = extended.equivalent_resistance(mask, idx(fp_, "b1_1"));
  EXPECT_TRUE(std::isfinite(rth));
  EXPECT_NEAR(rth, extended.vertical_resistance(idx(fp_, "b1_1")), 1e-9);
}

TEST_F(SessionModelTest, VerticalResistanceShrinksWithArea) {
  floorplan::Floorplan fp("two");
  fp.add_block({"small", 1e-3, 1e-3, 0.0, 0.0});
  fp.add_block({"large", 4e-3, 1e-3, 1e-3, 0.0});
  const SessionThermalModel m(fp, pkg_, {});
  EXPECT_GT(m.vertical_resistance(0), m.vertical_resistance(1));
}

TEST_F(SessionModelTest, PaperExampleStructure) {
  // Paper Figures 2-4: in session {2,4,5} on a 6-block layout, core 2
  // keeps paths to passive neighbours and the boundary only. Reproduce
  // the structural claim on the quad floorplan: for session {a, d},
  // both members keep boundary paths plus paths to the two passive
  // blocks; Rth equals the parallel combination explicitly.
  const floorplan::Floorplan quad = quad_floorplan();
  const SessionThermalModel m(quad, pkg_, {});
  std::vector<bool> mask(4, false);
  mask[idx(quad, "a")] = true;
  mask[idx(quad, "d")] = true;
  const double r_ab = m.lateral_resistance(idx(quad, "a"), idx(quad, "b"));
  const double r_ac = m.lateral_resistance(idx(quad, "a"), idx(quad, "c"));
  const double r_boundary = m.boundary_resistance(idx(quad, "a"));
  const double expected =
      1.0 / (1.0 / r_ab + 1.0 / r_ac + 1.0 / r_boundary);
  EXPECT_NEAR(m.equivalent_resistance(mask, idx(quad, "a")), expected, 1e-12);
}

TEST_F(SessionModelTest, ValidatesArguments) {
  const std::vector<bool> short_mask(3, false);
  EXPECT_THROW(model_.equivalent_resistance(short_mask, 0), InvalidArgument);
  const std::vector<bool> mask(fp_.size(), false);
  EXPECT_THROW(model_.equivalent_resistance(mask, 99), InvalidArgument);
  EXPECT_THROW(model_.thermal_characteristic(mask, 0, -1.0), InvalidArgument);
  SessionModelOptions bad;
  bad.stc_scale = 0.0;
  EXPECT_THROW(SessionThermalModel(fp_, pkg_, bad), InvalidArgument);
}

}  // namespace
}  // namespace thermo::core
