#include "thermal/grid_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"
#include "thermal/rc_model.hpp"
#include "thermal/steady_state.hpp"
#include "util/error.hpp"

namespace thermo::thermal {
namespace {

using thermo::testing::nine_floorplan;
using thermo::testing::quad_floorplan;

TEST(GridModel, CellAndNodeCounts) {
  const GridThermalModel grid(quad_floorplan(), PackageParams{},
                              GridOptions{8, 8});
  EXPECT_EQ(grid.cell_count(), 64u);
  EXPECT_EQ(grid.node_count(), 74u);
  EXPECT_EQ(grid.rows(), 8u);
  EXPECT_EQ(grid.cols(), 8u);
}

TEST(GridModel, RejectsTinyGridsAndBadInputs) {
  EXPECT_THROW(
      GridThermalModel(quad_floorplan(), PackageParams{}, GridOptions{1, 8}),
      InvalidArgument);
  floorplan::Floorplan bad("bad");
  bad.add_block({"a", 2e-3, 2e-3, 0.0, 0.0});
  bad.add_block({"b", 2e-3, 2e-3, 1e-3, 1e-3});
  EXPECT_THROW(GridThermalModel(bad, PackageParams{}), InvalidArgument);
}

TEST(GridModel, CoverageIsCompleteForAlignedGrid) {
  // 2x2 blocks on an 8x8 grid: each block covers 16 cells fully.
  const floorplan::Floorplan fp = quad_floorplan();
  const GridThermalModel grid(fp, PackageParams{}, GridOptions{8, 8});
  double total = 0.0;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      for (std::size_t b = 0; b < fp.size(); ++b) {
        total += grid.coverage(b, r, c);
      }
    }
  }
  EXPECT_NEAR(total, 64.0, 1e-9);  // every cell covered exactly once
  EXPECT_NEAR(grid.coverage(0, 0, 0), 1.0, 1e-12);  // block a, bottom-left
  EXPECT_NEAR(grid.coverage(0, 7, 7), 0.0, 1e-12);
}

TEST(GridModel, PartialCoverageForMisalignedBlocks) {
  floorplan::Floorplan fp("mis");
  fp.add_block({"a", 1.5e-3, 2e-3, 0.0, 0.0});
  fp.add_block({"b", 0.5e-3, 2e-3, 1.5e-3, 0.0});
  const GridThermalModel grid(fp, PackageParams{}, GridOptions{2, 2});
  // Cell width 1 mm: block a covers cell (0,1) half.
  EXPECT_NEAR(grid.coverage(0, 0, 1), 0.5, 1e-9);
  EXPECT_NEAR(grid.coverage(1, 0, 1), 0.5, 1e-9);
}

TEST(GridModel, ZeroPowerGivesAmbient) {
  const GridThermalModel grid(quad_floorplan(), PackageParams{},
                              GridOptions{8, 8});
  const GridSteadyResult r = grid.solve({0.0, 0.0, 0.0, 0.0});
  for (double t : r.cell_temperature) EXPECT_NEAR(t, 45.0, 1e-6);
}

TEST(GridModel, HeatedBlockIsHottestAndGradientExists) {
  const floorplan::Floorplan fp = quad_floorplan();
  const GridThermalModel grid(fp, PackageParams{}, GridOptions{16, 16});
  const GridSteadyResult r = grid.solve({10.0, 0.0, 0.0, 0.0});
  // Block a (bottom-left) is hottest.
  std::size_t hottest = 0;
  for (std::size_t b = 1; b < 4; ++b) {
    if (r.block_max_temperature[b] > r.block_max_temperature[hottest]) {
      hottest = b;
    }
  }
  EXPECT_EQ(hottest, 0u);
  // Intra-block gradient: max > mean within the heated block.
  EXPECT_GT(r.block_max_temperature[0], r.block_mean_temperature[0]);
}

TEST(GridModel, AgreesWithBlockModelWithinDiscretisationError) {
  // The two models share package physics; block temperatures should
  // agree to within a few kelvin on a uniform workload.
  const floorplan::Floorplan fp = nine_floorplan();
  const PackageParams pkg;
  const RCModel block_model(fp, pkg);
  const GridThermalModel grid(fp, pkg, GridOptions{24, 24});
  const std::vector<double> power(9, 3.0);
  const SteadyStateResult block_result =
      solve_steady_state(block_model, power);
  const GridSteadyResult grid_result = grid.solve(power);
  for (std::size_t b = 0; b < 9; ++b) {
    EXPECT_NEAR(grid_result.block_mean_temperature[b],
                block_result.temperature[b], 5.0)
        << fp.block(b).name;
  }
}

TEST(GridModel, RefinementConverges) {
  // Doubling the grid changes block means by much less than the coarse
  // discretisation error.
  const floorplan::Floorplan fp = quad_floorplan();
  const PackageParams pkg;
  const std::vector<double> power{8.0, 0.0, 0.0, 2.0};
  const GridSteadyResult coarse =
      GridThermalModel(fp, pkg, GridOptions{8, 8}).solve(power);
  const GridSteadyResult fine =
      GridThermalModel(fp, pkg, GridOptions{16, 16}).solve(power);
  const GridSteadyResult finer =
      GridThermalModel(fp, pkg, GridOptions{32, 32}).solve(power);
  for (std::size_t b = 0; b < 4; ++b) {
    const double d1 =
        std::fabs(fine.block_mean_temperature[b] -
                  coarse.block_mean_temperature[b]);
    const double d2 = std::fabs(finer.block_mean_temperature[b] -
                                fine.block_mean_temperature[b]);
    EXPECT_LE(d2, d1 + 0.1);
  }
}

TEST(GridModel, LinearInPower) {
  const GridThermalModel grid(quad_floorplan(), PackageParams{},
                              GridOptions{8, 8});
  const GridSteadyResult once = grid.solve({5.0, 0.0, 0.0, 0.0});
  const GridSteadyResult twice = grid.solve({10.0, 0.0, 0.0, 0.0});
  for (std::size_t cell = 0; cell < grid.cell_count(); ++cell) {
    EXPECT_NEAR(twice.cell_temperature[cell] - 45.0,
                2.0 * (once.cell_temperature[cell] - 45.0), 1e-5);
  }
}

TEST(GridModel, SolveValidatesPowerVector) {
  const GridThermalModel grid(quad_floorplan(), PackageParams{},
                              GridOptions{4, 4});
  EXPECT_THROW(grid.solve({1.0}), InvalidArgument);
  EXPECT_THROW(grid.solve({1.0, -1.0, 0.0, 0.0}), InvalidArgument);
}

TEST(GridModel, BackendsAgreeAndSparseIsBitReproducible) {
  // Grid solves route through SolverBackend + ThermalSolverCache like
  // RCModel: the dense and sparse factors must agree to the documented
  // 1e-9 relative tolerance, and repeated sparse solves (cached factor
  // or a rebuilt one) must be bit-identical — the property the serve
  // 1-vs-N-thread determinism smokes rely on.
  const GridThermalModel grid(quad_floorplan(), PackageParams{},
                              GridOptions{12, 12});
  const std::vector<double> power = {6.0, 1.5, 0.0, 3.0};

  const GridSteadyResult dense = grid.solve(power, SolverBackend::kDense);
  const GridSteadyResult sparse = grid.solve(power, SolverBackend::kSparse);
  ASSERT_EQ(dense.cell_temperature.size(), sparse.cell_temperature.size());
  for (std::size_t cell = 0; cell < grid.cell_count(); ++cell) {
    const double a = dense.cell_temperature[cell];
    const double b = sparse.cell_temperature[cell];
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::fabs(a))) << "cell=" << cell;
  }

  const GridSteadyResult again = grid.solve(power, SolverBackend::kSparse);
  for (std::size_t cell = 0; cell < grid.cell_count(); ++cell) {
    EXPECT_DOUBLE_EQ(sparse.cell_temperature[cell],
                     again.cell_temperature[cell]);
  }
  for (std::size_t b = 0; b < power.size(); ++b) {
    EXPECT_DOUBLE_EQ(sparse.block_max_temperature[b],
                     again.block_max_temperature[b]);
    EXPECT_DOUBLE_EQ(sparse.block_mean_temperature[b],
                     again.block_mean_temperature[b]);
  }
}

TEST(GridModel, ConductancePatternIsSymmetric) {
  // The stamped CSR must be structurally AND numerically symmetric —
  // the precondition the fill-reducing ordering and the LDLᵗ factor
  // rely on (satellite check riding the sparse-first assembly).
  const GridThermalModel grid(nine_floorplan(), PackageParams{},
                              GridOptions{10, 10});
  EXPECT_TRUE(grid.conductance().is_symmetric(1e-9));
}

}  // namespace
}  // namespace thermo::thermal
