// Deliberate damage: bit flips, truncation, garbage appends, and header
// corruption applied to segment files behind the store's back. The
// contract under attack (docs/PERSIST.md):
//   * verify() flags exactly the damaged frames — segment, offset,
//     reason — and nothing else;
//   * every undamaged record keeps serving byte-identically;
//   * a damaged record degrades to a miss, never to wrong bytes.
//
// The store is built with fixed-size records and a size cap chosen so
// each segment holds exactly kPerSegment frames — the on-disk layout is
// then fully predictable (20-byte header + frame index * kFrameBytes),
// and the tests can hit a chosen record with a single byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "persist/segment_store.hpp"
#include "persist_test_util.hpp"

namespace thermo::persist {
namespace {

using testing::ScopedTempDir;

constexpr std::size_t kHeaderBytes = 20;
constexpr std::size_t kKeyBytes = 4;    // "k-07"
constexpr std::size_t kValueBytes = 40;
constexpr std::size_t kFrameBytes = 16 + kKeyBytes + kValueBytes;  // 60
constexpr std::size_t kPerSegment = 3;
constexpr std::size_t kSegments = 4;
constexpr std::size_t kCount = kPerSegment * kSegments;

std::string fixed_key(std::size_t i) {
  return "k-" + std::string(i < 10 ? "0" : "") + std::to_string(i);
}

std::string fixed_value(std::size_t i) {
  std::string value = testing::record_payload(i, kValueBytes);
  value.resize(kValueBytes);
  return value;
}

/// Key i lives in segment (i / kPerSegment) + 1 at frame (i % kPerSegment).
std::uint32_t segment_of(std::size_t i) {
  return static_cast<std::uint32_t>(i / kPerSegment + 1);
}

std::size_t offset_of(std::size_t i) {
  return kHeaderBytes + (i % kPerSegment) * kFrameBytes;
}

/// Builds the predictable store and closes it.
void build_store(const std::string& dir) {
  StoreOptions options;
  // Rotation triggers once the active offset REACHES the cap, i.e.
  // after the kPerSegment-th frame.
  options.segment_size_cap = kHeaderBytes + kPerSegment * kFrameBytes;
  SegmentStore store(dir, options);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(store.put(fixed_key(i), fixed_value(i)));
  }
  ASSERT_EQ(store.stats().segments, kSegments);
}

void mutate_byte(const std::string& path, std::size_t offset,
                 unsigned char xor_mask) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(static_cast<unsigned char>(byte) ^ xor_mask);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good());
}

void truncate_file(const std::string& path, std::size_t new_size) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_LT(new_size, bytes.size());
  bytes.resize(new_size);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Every key except those in `lost` must serve byte-identically; keys in
/// `lost` must be clean misses (never wrong bytes).
void check_survivors(SegmentStore& store, const std::vector<std::size_t>& lost) {
  for (std::size_t i = 0; i < kCount; ++i) {
    const bool expect_lost =
        std::find(lost.begin(), lost.end(), i) != lost.end();
    const auto value = store.get(fixed_key(i));
    if (expect_lost) {
      EXPECT_EQ(value, std::nullopt) << "damaged record " << i << " served";
    } else {
      ASSERT_TRUE(value.has_value()) << "undamaged record " << i << " lost";
      EXPECT_EQ(*value, fixed_value(i));
    }
  }
}

TEST(PersistCorruption, BitFlipDamagesExactlyOneRecord) {
  const ScopedTempDir dir("corrupt");
  build_store(dir.path());

  // One bit, in the value region of record 7 (segment 3, frame 1).
  const std::size_t victim = 7;
  const std::string victim_segment =
      SegmentStore::segment_name(segment_of(victim));
  mutate_byte(dir.path() + "/" + victim_segment,
              offset_of(victim) + 8 + kKeyBytes + 5, 0x40);

  SegmentStore store(dir.path());
  EXPECT_EQ(store.stats().damaged_at_open, 1u);
  const auto report = store.verify();
  ASSERT_EQ(report.damage.size(), 1u);  // exactly the damaged record
  EXPECT_EQ(report.damage[0].segment, victim_segment);
  EXPECT_EQ(report.damage[0].offset, offset_of(victim));
  EXPECT_EQ(report.damage[0].reason, "checksum mismatch");
  EXPECT_EQ(report.valid_records, kCount - 1);
  check_survivors(store, {victim});
}

TEST(PersistCorruption, MidSegmentFlipOnlyLosesThatFrame) {
  // A flip in the FIRST frame of a segment must not take down the two
  // frames after it: complete-but-invalid frames are skipped, and the
  // scan keeps going on the intact boundaries.
  const ScopedTempDir dir("corrupt");
  build_store(dir.path());

  const std::size_t victim = 3;  // segment 2, frame 0
  mutate_byte(dir.path() + "/" + SegmentStore::segment_name(segment_of(victim)),
              offset_of(victim) + 8 + 1, 0x01);  // a key byte this time

  SegmentStore store(dir.path());
  const auto report = store.verify();
  ASSERT_EQ(report.damage.size(), 1u);
  EXPECT_EQ(report.damage[0].reason, "checksum mismatch");
  EXPECT_EQ(report.valid_records, kCount - 1);
  check_survivors(store, {victim});  // records 4 and 5 must survive
}

TEST(PersistCorruption, TruncationLosesOnlyTheTornTail) {
  const ScopedTempDir dir("corrupt");
  build_store(dir.path());

  // Chop segment 4 mid-way through its LAST frame (record 11).
  const std::size_t victim = 11;
  const std::string victim_segment =
      SegmentStore::segment_name(segment_of(victim));
  truncate_file(dir.path() + "/" + victim_segment, offset_of(victim) + 10);

  SegmentStore store(dir.path());
  const auto report = store.verify();
  ASSERT_EQ(report.damage.size(), 1u);
  EXPECT_EQ(report.damage[0].segment, victim_segment);
  EXPECT_EQ(report.damage[0].offset, offset_of(victim));
  EXPECT_EQ(report.damage[0].reason, "truncated frame");
  EXPECT_EQ(report.valid_records, kCount - 1);
  check_survivors(store, {victim});
}

TEST(PersistCorruption, GarbageAppendLeavesEveryRecordIntact) {
  const ScopedTempDir dir("corrupt");
  build_store(dir.path());

  const std::string victim_segment = SegmentStore::segment_name(2);
  {
    // Embedded NUL included — appended debris can be any bytes at all.
    std::string garbage = "\x13garbage after the last frame\xff";
    garbage.push_back('\0');
    garbage.push_back('\x7f');
    std::ofstream out(dir.path() + "/" + victim_segment,
                      std::ios::binary | std::ios::app);
    out << garbage;
  }

  SegmentStore store(dir.path());
  const auto report = store.verify();
  ASSERT_GE(report.damage.size(), 1u);  // the garbage tail is flagged...
  EXPECT_EQ(report.damage[0].segment, victim_segment);
  EXPECT_EQ(report.damage[0].offset, kHeaderBytes + kPerSegment * kFrameBytes);
  EXPECT_EQ(report.valid_records, kCount);  // ...but no record is touched
  check_survivors(store, {});
}

TEST(PersistCorruption, HeaderDamageCondemnsOnlyThatSegment) {
  const ScopedTempDir dir("corrupt");
  build_store(dir.path());

  const std::string victim_segment = SegmentStore::segment_name(3);
  mutate_byte(dir.path() + "/" + victim_segment, 9, 0x08);  // schema field

  SegmentStore store(dir.path());
  const auto report = store.verify();
  ASSERT_EQ(report.damage.size(), 1u);
  EXPECT_EQ(report.damage[0].segment, victim_segment);
  EXPECT_EQ(report.damage[0].offset, 0u);
  EXPECT_EQ(report.damage[0].reason, "bad header");
  // A segment whose header cannot be trusted contributes no records —
  // its three are lost — but every other segment is unaffected.
  EXPECT_EQ(report.valid_records, kCount - kPerSegment);
  check_survivors(store, {6, 7, 8});
}

TEST(PersistCorruption, CompactionScrubsDamageAndVerifyComesBackClean) {
  const ScopedTempDir dir("corrupt");
  build_store(dir.path());
  const std::size_t victim = 4;
  mutate_byte(dir.path() + "/" + SegmentStore::segment_name(segment_of(victim)),
              offset_of(victim) + 20, 0x10);

  SegmentStore store(dir.path());
  ASSERT_FALSE(store.verify().clean());
  const std::size_t carried = store.compact();
  EXPECT_EQ(carried, kCount - 1);  // the damaged frame is dropped, not copied
  const auto report = store.verify();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.segments, 1u);
  EXPECT_EQ(report.valid_records, kCount - 1);
  check_survivors(store, {victim});
}

}  // namespace
}  // namespace thermo::persist
