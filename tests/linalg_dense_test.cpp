#include "linalg/dense_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "util/error.hpp"

namespace thermo::linalg {
namespace {

TEST(VectorOps, AxpyAddsScaledVector) {
  Vector x{1.0, 2.0}, y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, AxpySizeMismatchThrows) {
  Vector x{1.0}, y{1.0, 2.0};
  EXPECT_THROW(axpy(1.0, x, y), InvalidArgument);
}

TEST(VectorOps, DotAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{-7.0, 2.0}), 7.0);
}

TEST(VectorOps, AddSubtractScale) {
  Vector a{1.0, 2.0}, b{0.5, 0.5};
  EXPECT_EQ(add(a, b), (Vector{1.5, 2.5}));
  EXPECT_EQ(subtract(a, b), (Vector{0.5, 1.5}));
  EXPECT_EQ(scale(2.0, b), (Vector{1.0, 1.0}));
}

TEST(VectorOps, AllFiniteDetectsNanAndInf) {
  EXPECT_TRUE(all_finite({1.0, -2.0}));
  EXPECT_FALSE(all_finite({1.0, std::nan("")}));
  EXPECT_FALSE(all_finite({1.0, std::numeric_limits<double>::infinity()}));
}

TEST(VectorOps, MaxElementRequiresNonEmpty) {
  EXPECT_THROW(max_element(Vector{}), InvalidArgument);
  EXPECT_DOUBLE_EQ(max_element(Vector{1.0, 9.0, 3.0}), 9.0);
}

TEST(DenseMatrix, ConstructionAndFill) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(DenseMatrix, Identity) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  EXPECT_TRUE(eye.is_symmetric());
}

TEST(DenseMatrix, FromRowsRejectsRagged) {
  EXPECT_THROW(DenseMatrix::from_rows({{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(DenseMatrix, AtBoundsChecked) {
  DenseMatrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(DenseMatrix, MatrixVectorProduct) {
  const auto m = DenseMatrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Vector y = m.multiply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(DenseMatrix, MatrixVectorDimensionMismatch) {
  const DenseMatrix m(2, 3);
  EXPECT_THROW(m.multiply(Vector{1.0, 2.0}), InvalidArgument);
}

TEST(DenseMatrix, MatrixMatrixProduct) {
  const auto a = DenseMatrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto b = DenseMatrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(DenseMatrix, IdentityIsMultiplicativeNeutral) {
  const auto a = DenseMatrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_TRUE(a.multiply(DenseMatrix::identity(2)).approx_equal(a, 1e-15));
  EXPECT_TRUE(DenseMatrix::identity(2).multiply(a).approx_equal(a, 1e-15));
}

TEST(DenseMatrix, TransposeInvolution) {
  const auto a = DenseMatrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  EXPECT_TRUE(a.transposed().transposed().approx_equal(a, 0.0));
  EXPECT_DOUBLE_EQ(a.transposed()(2, 1), 6.0);
}

TEST(DenseMatrix, AddScaled) {
  auto a = DenseMatrix::identity(2);
  a.add_scaled(2.0, DenseMatrix::identity(2));
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(DenseMatrix, SymmetryCheck) {
  auto m = DenseMatrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_TRUE(m.is_symmetric());
  m(0, 1) = 1.1;
  EXPECT_FALSE(m.is_symmetric(1e-6));
}

TEST(DenseMatrix, NormInf) {
  const auto m = DenseMatrix::from_rows({{-5.0, 2.0}, {1.0, 3.0}});
  EXPECT_DOUBLE_EQ(m.norm_inf(), 5.0);
}

}  // namespace
}  // namespace thermo::linalg
