#include "thermal/analyzer.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::thermal {
namespace {

using thermo::testing::quad_floorplan;

class AnalyzerTest : public ::testing::Test {
 protected:
  floorplan::Floorplan fp_ = quad_floorplan();
  PackageParams pkg_;
  ThermalAnalyzer analyzer_{fp_, pkg_};
};

TEST_F(AnalyzerTest, SimulateSessionReportsHottestBlock) {
  const SessionSimulation sim =
      analyzer_.simulate_session({10.0, 0.0, 0.0, 0.0}, 1.0);
  ASSERT_EQ(sim.peak_temperature.size(), 4u);
  EXPECT_EQ(sim.hottest_block, 0u);
  EXPECT_DOUBLE_EQ(sim.max_temperature, sim.peak_temperature[0]);
  EXPECT_GT(sim.max_temperature, pkg_.ambient);
}

TEST_F(AnalyzerTest, EffortAccumulatesSessionTime) {
  analyzer_.simulate_session({1.0, 0.0, 0.0, 0.0}, 1.0);
  analyzer_.simulate_session({1.0, 0.0, 0.0, 0.0}, 2.5);
  EXPECT_DOUBLE_EQ(analyzer_.simulation_effort(), 3.5);
  EXPECT_EQ(analyzer_.simulation_count(), 2u);
}

TEST_F(AnalyzerTest, ResetEffortClearsCounters) {
  analyzer_.simulate_session({1.0, 0.0, 0.0, 0.0}, 1.0);
  analyzer_.reset_effort();
  EXPECT_DOUBLE_EQ(analyzer_.simulation_effort(), 0.0);
  EXPECT_EQ(analyzer_.simulation_count(), 0u);
}

TEST_F(AnalyzerTest, SteadyTemperaturesExceedTransientPeaks) {
  const SessionSimulation transient =
      analyzer_.simulate_session({5.0, 5.0, 0.0, 0.0}, 1.0);
  const std::vector<double> steady =
      analyzer_.steady_block_temperatures({5.0, 5.0, 0.0, 0.0});
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_GE(steady[b] + 1e-9, transient.peak_temperature[b]);
  }
}

TEST_F(AnalyzerTest, SteadyOracleModeChargesEffortButSkipsTransient) {
  ThermalAnalyzer::Options options;
  options.transient = false;
  ThermalAnalyzer steady_analyzer(fp_, pkg_, options);
  const SessionSimulation sim =
      steady_analyzer.simulate_session({5.0, 0.0, 0.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(steady_analyzer.simulation_effort(), 1.0);
  // Steady oracle is more pessimistic than the transient one.
  const SessionSimulation tr =
      analyzer_.simulate_session({5.0, 0.0, 0.0, 0.0}, 1.0);
  EXPECT_GE(sim.max_temperature + 1e-9, tr.max_temperature);
}

TEST_F(AnalyzerTest, MoreConcurrencyIsHotter) {
  const SessionSimulation solo =
      analyzer_.simulate_session({8.0, 0.0, 0.0, 0.0}, 1.0);
  const SessionSimulation duo =
      analyzer_.simulate_session({8.0, 8.0, 0.0, 0.0}, 1.0);
  EXPECT_GT(duo.max_temperature, solo.max_temperature);
}

TEST_F(AnalyzerTest, ValidatesInputs) {
  EXPECT_THROW(analyzer_.simulate_session({1.0, 0.0, 0.0, 0.0}, 0.0),
               InvalidArgument);
  EXPECT_THROW(analyzer_.simulate_session({1.0}, 1.0), InvalidArgument);
  ThermalAnalyzer::Options bad;
  bad.dt = 0.0;
  EXPECT_THROW(ThermalAnalyzer(fp_, pkg_, bad), InvalidArgument);
}

}  // namespace
}  // namespace thermo::thermal
