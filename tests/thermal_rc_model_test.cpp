#include "thermal/rc_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::thermal {
namespace {

using thermo::testing::idx;
using thermo::testing::nine_floorplan;
using thermo::testing::quad_floorplan;

TEST(Package, DefaultParamsValidate) {
  EXPECT_NO_THROW(PackageParams{}.validate());
}

TEST(Package, RejectsNonPhysicalValues) {
  PackageParams p;
  p.t_die = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = PackageParams{};
  p.k_die = -1.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = PackageParams{};
  p.r_convec = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = PackageParams{};
  p.sink_side = p.spreader_side / 2.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(RcModel, NodeCountIsBlocksPlusPackage) {
  const RCModel model(quad_floorplan(), PackageParams{});
  EXPECT_EQ(model.block_count(), 4u);
  EXPECT_EQ(model.node_count(), 4u + RCModel::kPackageNodes);
}

TEST(RcModel, ConductanceMatrixIsSymmetric) {
  const RCModel model(nine_floorplan(), PackageParams{});
  EXPECT_TRUE(model.conductance().is_symmetric(1e-12));
  EXPECT_TRUE(model.conductance_sparse().is_symmetric(1e-12));
}

TEST(RcModel, RowSumsEqualAmbientConductance) {
  // Kirchhoff: sum of row r equals the conductance from node r to
  // ambient (all internal couplings cancel).
  const RCModel model(nine_floorplan(), PackageParams{});
  const auto& g = model.conductance();
  for (std::size_t r = 0; r < model.node_count(); ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < model.node_count(); ++c) row_sum += g(r, c);
    EXPECT_NEAR(row_sum, model.conductance_to_ambient(r), 1e-9)
        << "node " << model.node_name(r);
  }
}

TEST(RcModel, OnlySinkNodesTouchAmbient) {
  const RCModel model(quad_floorplan(), PackageParams{});
  for (std::size_t n = 0; n < model.node_count(); ++n) {
    const bool is_sink = n >= model.sink_center_index();
    if (is_sink) {
      EXPECT_GT(model.conductance_to_ambient(n), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(model.conductance_to_ambient(n), 0.0);
    }
  }
}

TEST(RcModel, AdjacentBlocksAreCoupled) {
  const floorplan::Floorplan fp = quad_floorplan();
  const RCModel model(fp, PackageParams{});
  EXPECT_GT(model.conductance_between(idx(fp, "a"), idx(fp, "b")), 0.0);
  EXPECT_DOUBLE_EQ(model.conductance_between(idx(fp, "a"), idx(fp, "d")), 0.0);
}

TEST(RcModel, EveryBlockHasVerticalPath) {
  const RCModel model(nine_floorplan(), PackageParams{});
  for (std::size_t b = 0; b < model.block_count(); ++b) {
    EXPECT_GT(model.conductance_between(b, model.spreader_center_index()), 0.0);
  }
}

TEST(RcModel, LargerBlockHasLargerVerticalConductance) {
  floorplan::Floorplan fp("two");
  fp.add_block({"small", 1e-3, 1e-3, 0.0, 0.0});
  fp.add_block({"large", 4e-3, 1e-3, 1e-3, 0.0});
  const RCModel model(fp, PackageParams{});
  EXPECT_GT(model.conductance_between(1, model.spreader_center_index()),
            model.conductance_between(0, model.spreader_center_index()));
}

TEST(RcModel, CapacitancesArePositiveAndScaleWithArea) {
  floorplan::Floorplan fp("two");
  fp.add_block({"small", 1e-3, 1e-3, 0.0, 0.0});
  fp.add_block({"large", 4e-3, 1e-3, 1e-3, 0.0});
  const RCModel model(fp, PackageParams{});
  const auto& c = model.capacitance();
  for (double v : c) EXPECT_GT(v, 0.0);
  EXPECT_NEAR(c[1] / c[0], 4.0, 1e-9);
}

TEST(RcModel, NodeNamesAreDescriptive) {
  const floorplan::Floorplan fp = quad_floorplan();
  const RCModel model(fp, PackageParams{});
  EXPECT_EQ(model.node_name(0), "block:a");
  EXPECT_EQ(model.node_name(model.spreader_center_index()), "spreader_c");
  EXPECT_EQ(model.node_name(model.sink_center_index()), "sink_c");
  EXPECT_THROW(model.node_name(model.node_count()), InvalidArgument);
}

TEST(RcModel, ExpandPowerPlacesBlockPowerOnly) {
  const RCModel model(quad_floorplan(), PackageParams{});
  const auto power = model.expand_power({1.0, 2.0, 3.0, 4.0});
  ASSERT_EQ(power.size(), model.node_count());
  EXPECT_DOUBLE_EQ(power[2], 3.0);
  for (std::size_t n = model.block_count(); n < model.node_count(); ++n) {
    EXPECT_DOUBLE_EQ(power[n], 0.0);
  }
}

TEST(RcModel, ExpandPowerValidatesInput) {
  const RCModel model(quad_floorplan(), PackageParams{});
  EXPECT_THROW(model.expand_power({1.0}), InvalidArgument);
  EXPECT_THROW(model.expand_power({1.0, -2.0, 3.0, 4.0}), InvalidArgument);
  EXPECT_THROW(model.expand_power({1.0, std::nan(""), 3.0, 4.0}),
               InvalidArgument);
}

TEST(RcModel, RejectsInvalidFloorplan) {
  floorplan::Floorplan fp("bad");
  fp.add_block({"a", 2e-3, 2e-3, 0.0, 0.0});
  fp.add_block({"b", 2e-3, 2e-3, 1e-3, 1e-3});  // overlaps a
  EXPECT_THROW(RCModel(fp, PackageParams{}), InvalidArgument);
}

TEST(RcModel, RejectsInvalidPackage) {
  PackageParams bad;
  bad.k_tim = 0.0;
  EXPECT_THROW(RCModel(quad_floorplan(), bad), InvalidArgument);
}

}  // namespace
}  // namespace thermo::thermal
