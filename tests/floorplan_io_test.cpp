#include "floorplan/flp_io.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::floorplan {
namespace {

TEST(FlpIo, ParsesHotSpotFormat) {
  const std::string text =
      "# a comment\n"
      "L2\t0.016\t0.0098\t0.0\t0.0\n"
      "\n"
      "Icache 0.0031 0.0026 0.0049 0.0098  # trailing comment\n";
  const Floorplan fp = parse_flp_string(text, "ev6");
  ASSERT_EQ(fp.size(), 2u);
  EXPECT_EQ(fp.block(0).name, "L2");
  EXPECT_DOUBLE_EQ(fp.block(0).width, 0.016);
  EXPECT_DOUBLE_EQ(fp.block(1).x, 0.0049);
  EXPECT_EQ(fp.name(), "ev6");
}

TEST(FlpIo, WrongFieldCountReportsLineNumber) {
  try {
    parse_flp_string("a 1 2 3\n");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(FlpIo, NonNumericFieldReportsFieldName) {
  try {
    parse_flp_string("a 1 x 3 4\n");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("height"), std::string::npos);
  }
}

TEST(FlpIo, DuplicateNameRejected) {
  EXPECT_THROW(parse_flp_string("a 1 1 0 0\na 1 1 1 0\n"), InvalidArgument);
}

TEST(FlpIo, NegativeDimensionRejected) {
  EXPECT_THROW(parse_flp_string("a -1 1 0 0\n"), InvalidArgument);
}

TEST(FlpIo, EmptyInputGivesEmptyFloorplan) {
  const Floorplan fp = parse_flp_string("# only comments\n\n");
  EXPECT_TRUE(fp.empty());
}

TEST(FlpIo, RoundTripPreservesGeometry) {
  const Floorplan original = thermo::testing::nine_floorplan();
  const Floorplan parsed = parse_flp_string(to_flp_string(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.block(i).name, original.block(i).name);
    EXPECT_NEAR(parsed.block(i).width, original.block(i).width, 1e-15);
    EXPECT_NEAR(parsed.block(i).x, original.block(i).x, 1e-15);
  }
  EXPECT_EQ(parsed.adjacencies().size(), original.adjacencies().size());
}

TEST(FlpIo, MissingFileThrows) {
  EXPECT_THROW(load_flp("/nonexistent/path/chip.flp"), ParseError);
}

TEST(FlpIo, LoadFileAndDeriveName) {
  const std::string path = ::testing::TempDir() + "/mychip.flp";
  {
    std::ofstream out(path);
    write_flp(thermo::testing::quad_floorplan(), out);
  }
  const Floorplan fp = load_flp(path);
  EXPECT_EQ(fp.name(), "mychip");
  EXPECT_EQ(fp.size(), 4u);
}

}  // namespace
}  // namespace thermo::floorplan
