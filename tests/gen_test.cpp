// Properties of the workload generator: determinism per seed, the
// parse/canonical-serialize fixpoint for every emitted line, statistical
// accuracy of the dup/kind-mix knobs, arrival-order patterns, and exact
// config-validation messages. These are the contracts docs/GEN.md
// documents and bench_gen gates on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "scenario/request.hpp"
#include "util/error.hpp"

namespace thermo::gen {
namespace {

TEST(GenDeterminism, SameConfigSameBytes) {
  GenConfig config;
  config.seed = 42;
  config.count = 200;
  config.dup_rate = 0.25;
  const GeneratedStream a = generate_stream(config);
  const GeneratedStream b = generate_stream(config);
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(a.costs, b.costs);
  EXPECT_EQ(a.stats.fresh, b.stats.fresh);
  EXPECT_EQ(a.stats.duplicates, b.stats.duplicates);
}

TEST(GenDeterminism, DifferentSeedDifferentStream) {
  GenConfig config;
  config.count = 100;
  config.seed = 1;
  const GeneratedStream a = generate_stream(config);
  config.seed = 2;
  const GeneratedStream b = generate_stream(config);
  EXPECT_NE(a.lines, b.lines);
}

TEST(GenProperty, EveryLineIsACanonicalFixpointAcrossSeeds) {
  // The validity contract: parse succeeds and re-serialization returns
  // the same bytes, for every line, across a seed sweep that exercises
  // all three kinds and both named + synthetic SoCs.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenConfig config;
    config.seed = seed;
    config.count = 150;
    config.dup_rate = 0.2;
    const GeneratedStream stream = generate_stream(config);
    ASSERT_EQ(stream.lines.size(), config.count);
    for (const std::string& line : stream.lines) {
      scenario::ScenarioRequest request;
      ASSERT_NO_THROW(request = scenario::parse_request_line(line))
          << "seed " << seed << ": " << line;
      EXPECT_EQ(scenario::to_json_line(request), line) << "seed " << seed;
    }
  }
}

TEST(GenProperty, FreshIdsAreUniqueAndDuplicatesAreVerbatim) {
  GenConfig config;
  config.seed = 7;
  config.count = 300;
  config.dup_rate = 0.3;
  const GeneratedStream stream = generate_stream(config);

  std::map<std::string, std::size_t> line_counts;
  std::set<std::string> ids;
  for (const std::string& line : stream.lines) {
    ++line_counts[line];
    ids.insert(scenario::parse_request_line(line).id);
  }
  // Distinct ids == fresh requests: duplicates reuse their source's id
  // (byte-identical lines), fresh requests never collide.
  EXPECT_EQ(ids.size(), stream.stats.fresh);
  EXPECT_EQ(line_counts.size(), stream.stats.fresh);
  EXPECT_EQ(stream.stats.fresh + stream.stats.duplicates, stream.stats.count);
  EXPECT_EQ(stream.stats.count, config.count);
  std::size_t duplicate_lines = 0;
  for (const auto& [line, count] : line_counts) {
    duplicate_lines += count - 1;
  }
  EXPECT_EQ(duplicate_lines, stream.stats.duplicates);
}

TEST(GenStats, DupRateAndKindMixWithinTolerance) {
  GenConfig config;
  config.seed = 11;
  config.count = 2000;
  config.dup_rate = 0.3;
  const GeneratedStream stream = generate_stream(config);
  const double n = static_cast<double>(config.count);

  EXPECT_NEAR(static_cast<double>(stream.stats.duplicates) / n, 0.3, 0.05);
  EXPECT_NEAR(static_cast<double>(stream.stats.sweep) / n, 0.7, 0.05);
  EXPECT_NEAR(static_cast<double>(stream.stats.ptrace) / n, 0.15, 0.05);
  EXPECT_NEAR(static_cast<double>(stream.stats.chained) / n, 0.15, 0.05);
  EXPECT_EQ(stream.stats.sweep + stream.stats.ptrace + stream.stats.chained,
            config.count);
  // Both new kinds actually appear — the acceptance bar for the mix.
  EXPECT_GT(stream.stats.ptrace, 0u);
  EXPECT_GT(stream.stats.chained, 0u);
}

TEST(GenStats, MixWeightsAreRelative) {
  GenConfig config;
  config.seed = 3;
  config.count = 400;
  config.mix = {0.0, 2.0, 2.0};  // no sweeps; ptrace/chained 50/50
  const GeneratedStream stream = generate_stream(config);
  EXPECT_EQ(stream.stats.sweep, 0u);
  EXPECT_NEAR(static_cast<double>(stream.stats.ptrace) /
                  static_cast<double>(config.count),
              0.5, 0.08);
}

TEST(GenStats, ZipfSkewFavorsSmallSizes) {
  // Sweep-only stream at strong skew: the smallest ladder rung must
  // dominate the largest by an order of magnitude.
  GenConfig config;
  config.seed = 5;
  config.count = 1000;
  config.zipf_skew = 2.0;
  config.mix = {1.0, 0.0, 0.0};
  const GeneratedStream stream = generate_stream(config);
  std::size_t smallest = 0;
  std::size_t largest = 0;
  for (const std::string& line : stream.lines) {
    if (line.find(R"("cores":8,)") != std::string::npos) ++smallest;
    if (line.find(R"("cores":502,)") != std::string::npos) ++largest;
  }
  EXPECT_GT(smallest, 10 * std::max<std::size_t>(largest, 1));
}

TEST(GenDeadlines, RateZeroIsByteIdenticalToTheLegacyStream) {
  // The no-deadline stream must not move a single byte when the knob
  // exists but is off — the outer rate check short-circuits the RNG
  // draw, so streams from earlier versions replay exactly.
  GenConfig config;
  config.seed = 42;
  config.count = 200;
  config.dup_rate = 0.25;
  const GeneratedStream off = generate_stream(config);
  EXPECT_EQ(off.stats.deadlined, 0u);
  for (const std::string& line : off.lines) {
    EXPECT_EQ(line.find("deadline_s"), std::string::npos);
  }
}

TEST(GenDeadlines, RateOneDeadlinesEveryLineWithTheTwoPinnedValues) {
  GenConfig config;
  config.seed = 9;
  config.count = 150;
  config.dup_rate = 0.2;
  config.deadline_rate = 1.0;
  const GeneratedStream stream = generate_stream(config);
  EXPECT_EQ(stream.stats.deadlined, config.count);
  std::size_t tight = 0;
  std::size_t generous = 0;
  for (const std::string& line : stream.lines) {
    const auto request = scenario::parse_request_line(line);
    // Only the two machine-independent values ever appear: tight always
    // misses on any hardware, generous never does.
    if (request.deadline_s == kTightDeadlineS) {
      ++tight;
    } else if (request.deadline_s == kGenerousDeadlineS) {
      ++generous;
    } else {
      ADD_FAILURE() << "unexpected deadline " << request.deadline_s;
    }
    // Fixpoint holds for deadlined lines too.
    EXPECT_EQ(scenario::to_json_line(request), line);
  }
  EXPECT_GT(tight, 0u);
  EXPECT_GT(generous, 0u);
}

TEST(GenDeadlines, DeterministicPerSeedAndCountsDupsInStats) {
  GenConfig config;
  config.seed = 21;
  config.count = 400;
  config.dup_rate = 0.3;
  config.deadline_rate = 0.5;
  const GeneratedStream a = generate_stream(config);
  const GeneratedStream b = generate_stream(config);
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(a.stats.deadlined, b.stats.deadlined);
  // stats.deadlined counts LINES (duplicates of a deadlined source
  // included), so it must equal a direct scan of the stream.
  std::size_t scanned = 0;
  for (const std::string& line : a.lines) {
    if (scenario::parse_request_line(line).deadline_s > 0.0) ++scanned;
  }
  EXPECT_EQ(a.stats.deadlined, scanned);
  EXPECT_NEAR(static_cast<double>(a.stats.deadlined) /
                  static_cast<double>(config.count),
              0.5, 0.08);
}

// --- arrival-order patterns ------------------------------------------

GenConfig order_config(OrderPattern order) {
  GenConfig config;
  config.seed = 9;
  config.count = 250;
  config.dup_rate = 0.1;
  config.order = order;
  return config;
}

std::vector<std::string> sorted_copy(std::vector<std::string> lines) {
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(GenOrder, PatternsPermuteTheSameMultiset) {
  const GeneratedStream base = generate_stream(
      order_config(OrderPattern::kAsGenerated));
  for (const OrderPattern order :
       {OrderPattern::kShuffled, OrderPattern::kSortedAsc,
        OrderPattern::kSortedDesc, OrderPattern::kWhaleLast}) {
    const GeneratedStream stream = generate_stream(order_config(order));
    EXPECT_EQ(sorted_copy(stream.lines), sorted_copy(base.lines))
        << order_pattern_name(order);
    EXPECT_NE(stream.lines, base.lines) << order_pattern_name(order);
  }
}

TEST(GenOrder, SortedAscIsNonDecreasingByCost) {
  const GeneratedStream stream =
      generate_stream(order_config(OrderPattern::kSortedAsc));
  EXPECT_TRUE(std::is_sorted(stream.costs.begin(), stream.costs.end()));
}

TEST(GenOrder, SortedDescIsNonIncreasingByCost) {
  const GeneratedStream stream =
      generate_stream(order_config(OrderPattern::kSortedDesc));
  EXPECT_TRUE(std::is_sorted(stream.costs.rbegin(), stream.costs.rend()));
}

TEST(GenOrder, WhaleLastPutsTheCostliestRequestLast) {
  const GeneratedStream stream =
      generate_stream(order_config(OrderPattern::kWhaleLast));
  ASSERT_FALSE(stream.costs.empty());
  EXPECT_EQ(stream.costs.back(),
            *std::max_element(stream.costs.begin(), stream.costs.end()));
}

TEST(GenOrder, NamesRoundTrip) {
  for (const OrderPattern order :
       {OrderPattern::kAsGenerated, OrderPattern::kShuffled,
        OrderPattern::kSortedAsc, OrderPattern::kSortedDesc,
        OrderPattern::kWhaleLast}) {
    EXPECT_EQ(order_pattern_from_name(order_pattern_name(order)), order);
  }
  EXPECT_FALSE(order_pattern_from_name("random").has_value());
}

// --- config validation ------------------------------------------------

std::string validation_error_of(const GenConfig& config) {
  try {
    config.validate();
  } catch (const InvalidArgument& e) {
    return e.what();
  }
  return "<no throw>";
}

TEST(GenValidation, ExactMessages) {
  GenConfig config;
  config.count = 0;
  EXPECT_EQ(validation_error_of(config), "gen config: count: must be >= 1");

  config = GenConfig{};
  config.zipf_skew = -0.5;
  EXPECT_EQ(validation_error_of(config),
            "gen config: zipf_skew: must be finite and >= 0");

  config = GenConfig{};
  config.dup_rate = 1.0;
  EXPECT_EQ(validation_error_of(config),
            "gen config: dup_rate: must be in [0, 1)");

  config = GenConfig{};
  config.mix.ptrace = -1.0;
  EXPECT_EQ(validation_error_of(config),
            "gen config: mix.ptrace: must be finite and >= 0");

  config = GenConfig{};
  config.mix = {0.0, 0.0, 0.0};
  EXPECT_EQ(validation_error_of(config),
            "gen config: mix: at least one kind weight must be > 0");

  config = GenConfig{};
  config.core_ladder.clear();
  EXPECT_EQ(validation_error_of(config),
            "gen config: core_ladder: must not be empty");

  config = GenConfig{};
  config.core_ladder = {8, 1};
  EXPECT_EQ(validation_error_of(config),
            "gen config: core_ladder: entries must be >= 2");

  config = GenConfig{};
  config.deadline_rate = 1.5;
  EXPECT_EQ(validation_error_of(config),
            "gen config: deadline_rate: must be in [0, 1]");
  config.deadline_rate = -0.1;
  EXPECT_EQ(validation_error_of(config),
            "gen config: deadline_rate: must be in [0, 1]");
}

TEST(GenValidation, GenerateStreamRejectsInvalidConfigs) {
  GenConfig config;
  config.dup_rate = 2.0;
  EXPECT_THROW(generate_stream(config), InvalidArgument);
}

TEST(GenWrite, OneLinePerRequest) {
  GenConfig config;
  config.count = 3;
  const GeneratedStream stream = generate_stream(config);
  std::ostringstream out;
  write_stream(stream, out);
  EXPECT_EQ(out.str(), stream.lines[0] + "\n" + stream.lines[1] + "\n" +
                           stream.lines[2] + "\n");
}

}  // namespace
}  // namespace thermo::gen
