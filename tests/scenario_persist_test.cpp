// The cross-process property behind `thermosched serve --cache-dir`:
// serve a batch with a disk-backed memo, "kill" the process (destroy
// every in-memory object), then serve the SAME batch from a cold
// process over the same cache directory. The contract:
//   * the cold run's JSONL output is byte-identical to the warm run's;
//   * the cold run executes nothing — every distinct request is
//     answered from disk (>= 99% disk-hit rate, and in fact 100%);
//   * this holds across thread counts x schedule policies, because the
//     cache keys are canonical request content, not execution order;
//   * with dedup off the disk cache is ignored (nothing to key by) and
//     the output bytes STILL match — caching changes when work runs,
//     never what is written.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dispatch/disk_result_memo.hpp"
#include "scenario/demo.hpp"
#include "scenario/serve.hpp"
#include "persist_test_util.hpp"

namespace thermo::scenario {
namespace {

using thermo::testing::ScopedTempDir;

constexpr std::size_t kDistinct = 24;
constexpr std::size_t kSeed = 77;

/// A batch with ~30% duplicates: every third request is repeated at the
/// tail, so within-batch dedup and the cross-process cache both get
/// exercised. 24 distinct requests, 32 lines total.
std::string duplicated_batch() {
  std::vector<std::string> lines;
  for (const ScenarioRequest& request : demo_batch(kDistinct, kSeed)) {
    lines.push_back(to_json_line(request));
  }
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  for (std::size_t i = 0; i < lines.size(); i += 3) input += lines[i] + "\n";
  return input;
}

struct RunOutput {
  std::string records;
  ServeSummary summary;
};

/// One "process": a fresh runner and (optionally) a fresh DiskResultMemo
/// over `cache_dir`, torn down completely before the function returns.
RunOutput serve_once(const std::string& input, const std::string& cache_dir,
                     ServeOptions options) {
  std::istringstream in(input);
  std::ostringstream out;
  ScenarioRunner runner;
  dispatch::DiskResultMemo memo(cache_dir);
  options.disk_memo = &memo;
  const ServeSummary summary = serve_stream(in, out, runner, options);
  return RunOutput{out.str(), summary};
}

TEST(ScenarioPersist, ColdProcessServesByteIdenticallyFromDisk) {
  const ScopedTempDir dir("serve-cache");
  const std::string input = duplicated_batch();
  const std::size_t total = kDistinct + (kDistinct + 2) / 3;

  // Warm process: executes every distinct request once, persists all.
  ServeOptions warm_options;
  warm_options.threads = 2;
  const RunOutput warm = serve_once(input, dir.path(), warm_options);
  ASSERT_EQ(warm.summary.requests, total);
  ASSERT_EQ(warm.summary.failed, 0u);
  EXPECT_EQ(warm.summary.executed, kDistinct);
  EXPECT_TRUE(warm.summary.disk_cache_enabled);
  EXPECT_EQ(warm.summary.disk_records, kDistinct);

  // Cold processes: every (policy x threads) config must answer the
  // whole batch from disk with byte-identical output.
  for (const dispatch::SchedulePolicy policy :
       {dispatch::SchedulePolicy::kFifo, dispatch::SchedulePolicy::kLjf}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ServeOptions options;
      options.policy = policy;
      options.threads = threads;
      const RunOutput cold = serve_once(input, dir.path(), options);
      EXPECT_EQ(cold.records, warm.records)
          << "policy=" << dispatch::schedule_policy_name(policy)
          << " threads=" << threads;
      EXPECT_EQ(cold.summary.executed, 0u) << "cold run recomputed a record";
      EXPECT_EQ(cold.summary.memo_hits, total);
      // Disk-hit rate over distinct keys: one disk read per key, the
      // duplicates are answered by the promoted memory tier.
      EXPECT_GE(static_cast<double>(cold.summary.disk_hits),
                0.99 * static_cast<double>(kDistinct));
      EXPECT_EQ(cold.summary.disk_hits, kDistinct);
      EXPECT_EQ(cold.summary.disk_records, kDistinct);
    }
  }

  // Dedup off: the cache is ignored (disk stats stay zero) but the
  // output bytes still match the cached runs exactly.
  ServeOptions no_dedup;
  no_dedup.dedup = false;
  no_dedup.threads = 2;
  const RunOutput executed = serve_once(input, dir.path(), no_dedup);
  EXPECT_EQ(executed.records, warm.records);
  EXPECT_EQ(executed.summary.executed, total);  // every line ran
  EXPECT_FALSE(executed.summary.disk_cache_enabled);
  EXPECT_EQ(executed.summary.disk_hits, 0u);
}

TEST(ScenarioPersist, SecondBatchExtendsTheCacheInsteadOfReplacingIt) {
  // Two different batches through the same cache directory: the second
  // serve adds its records without disturbing the first's, and a third
  // process serves EITHER batch entirely from disk.
  const ScopedTempDir dir("serve-cache");
  std::string batch_a;
  for (const ScenarioRequest& request : demo_batch(10, 5)) {
    batch_a += to_json_line(request) + "\n";
  }
  std::string batch_b;
  for (const ScenarioRequest& request : demo_batch(10, 6)) {
    batch_b += to_json_line(request) + "\n";
  }

  const RunOutput first = serve_once(batch_a, dir.path(), {});
  ASSERT_EQ(first.summary.failed, 0u);
  const RunOutput second = serve_once(batch_b, dir.path(), {});
  EXPECT_GE(second.summary.disk_records, first.summary.disk_records);

  const RunOutput replay_a = serve_once(batch_a, dir.path(), {});
  EXPECT_EQ(replay_a.records, first.records);
  EXPECT_EQ(replay_a.summary.executed, 0u);
  const RunOutput replay_b = serve_once(batch_b, dir.path(), {});
  EXPECT_EQ(replay_b.records, second.records);
  EXPECT_EQ(replay_b.summary.executed, 0u);
}

}  // namespace
}  // namespace thermo::scenario
