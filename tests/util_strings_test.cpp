#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace thermo {
namespace {

TEST(Trim, RemovesLeadingAndTrailingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nfoo\r "), "foo");
}

TEST(Trim, LeavesInnerWhitespace) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Split, BasicFields) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto fields = split("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Split, SingleFieldWhenNoSeparator) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitWhitespace, CollapsesRuns) {
  const auto fields = split_whitespace("  a \t b\n\nc ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWhitespace, EmptyInputGivesNoFields) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace(" \t ").empty());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("floorplan", "floor"));
  EXPECT_FALSE(starts_with("floor", "floorplan"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
}

TEST(ParseDouble, ValidNumbers) {
  EXPECT_DOUBLE_EQ(*parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parse_double("-2e-3"), -2e-3);
  EXPECT_DOUBLE_EQ(*parse_double("  42 "), 42.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1.5 2.5").has_value());
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(*parse_int("123"), 123);
  EXPECT_EQ(*parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace thermo
