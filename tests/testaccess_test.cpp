#include "testaccess/test_structure.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::testaccess {
namespace {

TEST(TestCycles, MatchesClosedForm) {
  // p=10, f=100, w=10: scan = 10 cycles; (1+10)*10 + 10 = 120.
  const CoreTestStructure s{10, 100, 0.05};
  EXPECT_EQ(test_cycles(s, 10), 120u);
}

TEST(TestCycles, CeilingDivision) {
  // f=101, w=10 -> scan = 11; (1+11)*10 + 11 = 131.
  const CoreTestStructure s{10, 101, 0.05};
  EXPECT_EQ(test_cycles(s, 10), 131u);
}

TEST(TestCycles, MonotoneNonIncreasingInWidth) {
  const CoreTestStructure s{50, 333, 0.05};
  std::size_t previous = test_cycles(s, 1);
  for (std::size_t w = 2; w <= 64; ++w) {
    const std::size_t cycles = test_cycles(s, w);
    EXPECT_LE(cycles, previous) << "width " << w;
    previous = cycles;
  }
}

TEST(TestCycles, SaturatesAtScanLength) {
  const CoreTestStructure s{10, 32, 0.05};
  EXPECT_EQ(test_cycles(s, 32), test_cycles(s, 64));
}

TEST(TestCycles, ValidatesInputs) {
  const CoreTestStructure s{10, 100, 0.05};
  EXPECT_THROW(test_cycles(s, 0), InvalidArgument);
  EXPECT_THROW(test_cycles(CoreTestStructure{0, 100, 0.05}, 4),
               InvalidArgument);
  EXPECT_THROW(test_cycles(CoreTestStructure{10, 0, 0.05}, 4),
               InvalidArgument);
}

TEST(TestLength, ScalesWithClock) {
  const CoreTestStructure s{10, 100, 0.05};
  EXPECT_DOUBLE_EQ(test_length_seconds(s, 10, 120.0), 1.0);
  EXPECT_DOUBLE_EQ(test_length_seconds(s, 10, 240.0), 0.5);
  EXPECT_THROW(test_length_seconds(s, 10, 0.0), InvalidArgument);
}

TEST(TestPower, GrowsThenSaturatesWithWidth) {
  const CoreTestStructure s{10, 16, 0.5};
  EXPECT_DOUBLE_EQ(test_power_watts(s, 1), 0.5);
  EXPECT_DOUBLE_EQ(test_power_watts(s, 8), 4.0);
  EXPECT_DOUBLE_EQ(test_power_watts(s, 16), 8.0);
  EXPECT_DOUBLE_EQ(test_power_watts(s, 32), 8.0);  // saturated
}

TEST(WidthSweep, ExhibitsTimePowerTradeOff) {
  const CoreTestStructure s{100, 512, 0.1};
  const auto points = width_sweep(s, 32, 1e3);
  ASSERT_EQ(points.size(), 32u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].length_s, points[i - 1].length_s);
    EXPECT_GE(points[i].power_w, points[i - 1].power_w);
  }
}

TEST(MakeSoc, BuildsValidSocWithDerivedTests) {
  const floorplan::Floorplan fp = thermo::testing::nine_floorplan();
  std::vector<CoreTestStructure> structures(
      9, CoreTestStructure{100, 256, 0.02});
  const core::SocSpec soc = make_soc_from_structures(
      fp, structures, 16, 1e6, thermal::PackageParams{});
  EXPECT_EQ(soc.core_count(), 9u);
  EXPECT_NO_THROW(soc.validate());
  // cycles = (1+16)*100+16 = 1716 at 1 MHz -> 1.716 ms.
  EXPECT_NEAR(soc.tests[0].length, 1716e-6, 1e-12);
  EXPECT_DOUBLE_EQ(soc.tests[0].power, 0.02 * 16);
  EXPECT_NE(soc.name.find("tam16"), std::string::npos);
}

TEST(MakeSoc, WiderTamShortensScheduleButRaisesPower) {
  const floorplan::Floorplan fp = thermo::testing::nine_floorplan();
  std::vector<CoreTestStructure> structures(
      9, CoreTestStructure{200, 1024, 0.03});
  const core::SocSpec narrow = make_soc_from_structures(
      fp, structures, 4, 1e6, thermal::PackageParams{});
  const core::SocSpec wide = make_soc_from_structures(
      fp, structures, 64, 1e6, thermal::PackageParams{});
  EXPECT_GT(narrow.tests[0].length, wide.tests[0].length);
  EXPECT_LT(narrow.tests[0].power, wide.tests[0].power);
}

TEST(MakeSoc, ValidatesStructureCount) {
  const floorplan::Floorplan fp = thermo::testing::nine_floorplan();
  std::vector<CoreTestStructure> structures(3, CoreTestStructure{10, 10, 0.1});
  EXPECT_THROW(make_soc_from_structures(fp, structures, 4, 1e6,
                                        thermal::PackageParams{}),
               InvalidArgument);
}

}  // namespace
}  // namespace thermo::testaccess
