#include "viz/heatmap.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::viz {
namespace {

using thermo::testing::quad_floorplan;

TEST(AsciiHeatmap, DimensionsAndOrientation) {
  // 2x3 field; hottest cell at row 1 (top), col 2.
  const std::vector<double> cells{1.0, 1.0, 1.0, 1.0, 1.0, 9.0};
  const std::string out = ascii_heatmap(cells, 2, 3);
  const auto lines_end = std::count(out.begin(), out.end(), '\n');
  EXPECT_EQ(lines_end, 2);
  // Top line printed first contains the '@' (hottest).
  const std::string first_line = out.substr(0, out.find('\n'));
  EXPECT_NE(first_line.find('@'), std::string::npos);
}

TEST(AsciiHeatmap, UniformFieldUsesLowestRampChar) {
  const std::string out = ascii_heatmap({2.0, 2.0, 2.0, 2.0}, 2, 2);
  for (char c : out) {
    if (c != '\n') {
      EXPECT_EQ(c, ' ');
    }
  }
}

TEST(AsciiHeatmap, ValidatesShape) {
  EXPECT_THROW(ascii_heatmap({1.0, 2.0}, 2, 2), InvalidArgument);
  EXPECT_THROW(ascii_heatmap({}, 0, 2), InvalidArgument);
}

TEST(AsciiBlockMap, RendersHotBlockDistinctly) {
  const floorplan::Floorplan fp = quad_floorplan();
  const std::string out = ascii_block_map(fp, {100.0, 10.0, 10.0, 10.0}, 24);
  EXPECT_NE(out.find('@'), std::string::npos);
  EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(AsciiBlockMap, ValidatesInputs) {
  const floorplan::Floorplan fp = quad_floorplan();
  EXPECT_THROW(ascii_block_map(fp, {1.0}), InvalidArgument);
  EXPECT_THROW(ascii_block_map(fp, {1.0, 2.0, 3.0, 4.0}, 2), InvalidArgument);
}

TEST(SvgFloorplan, ContainsRectPerBlockAndLabels) {
  const floorplan::Floorplan fp = quad_floorplan();
  const std::string svg = svg_floorplan(fp, {50.0, 60.0, 70.0, 80.0});
  EXPECT_EQ(std::count(svg.begin(), svg.end(), '<') > 0, true);
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 4u);
  EXPECT_NE(svg.find(">a 50.0<"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgFloorplan, HottestBlockIsRed) {
  const floorplan::Floorplan fp = quad_floorplan();
  const std::string svg = svg_floorplan(fp, {0.0, 0.0, 0.0, 100.0});
  EXPECT_NE(svg.find("rgb(255,0,0)"), std::string::npos);
  EXPECT_NE(svg.find("rgb(0,0,255)"), std::string::npos);
}

TEST(SvgFloorplan, RespectsExplicitRange) {
  const floorplan::Floorplan fp = quad_floorplan();
  SvgOptions options;
  options.range_lo = 0.0;
  options.range_hi = 200.0;
  const std::string svg = svg_floorplan(fp, {100.0, 100.0, 100.0, 100.0},
                                        options);
  // Mid-range -> green-ish, not red.
  EXPECT_EQ(svg.find("rgb(255,0,0)"), std::string::npos);
}

TEST(SvgFloorplan, LabelsCanBeDisabled) {
  const floorplan::Floorplan fp = quad_floorplan();
  SvgOptions options;
  options.show_names = false;
  options.show_values = false;
  const std::string svg = svg_floorplan(fp, {1.0, 2.0, 3.0, 4.0}, options);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
}

}  // namespace
}  // namespace thermo::viz
