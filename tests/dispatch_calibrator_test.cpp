// Calibrator property suite: the self-calibrating cost model's whole
// contract, proved on synthetic workloads with KNOWN ground-truth
// constants. The convergence property is the heart of it — generate
// jobs whose wall times come from a planted CostConstants (plus seeded
// multiplicative noise), feed the (features, seconds) pairs through
// observe(), and require the fitted constants to land within a few
// percent of the plant. Everything is deterministic per seed, so a
// failure replays exactly.
//
// Also pinned here: the warm-up gate (below kMinSamples the fallback
// constants are served unchanged), exact serialize()/deserialize()
// round-trips, deserialize's nullopt-on-damage contract (a torn
// calibration blob must fall back to defaults, never throw or return
// garbage), observation-sequence determinism (same jobs in, same
// serialized state out — the property the serve byte-determinism
// invariant leans on), and the median_relative_error metric's scale
// invariance (it must compare relative-unit fixed constants against
// seconds-unit fitted ones fairly).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "dispatch/calibrator.hpp"
#include "dispatch/cost_model.hpp"
#include "util/rng.hpp"

namespace thermo::dispatch {
namespace {

/// Deterministic, deliberately heterogeneous feature stream: both
/// backends, steady and transient oracles, explicit and estimated call
/// counts, node counts spanning two orders of magnitude. The variety is
/// what keeps the normal equations well-conditioned across all four
/// fitted coefficients.
CostFeatures synthetic_features(std::size_t i) {
  CostFeatures features;
  features.nodes = 16 + (i % 7) * 50;
  features.cores = 2 + i % 5;
  features.sparse = (i % 2) == 1;
  features.transient = (i % 3) != 0;
  features.steps_per_call = 5.0 + static_cast<double>(i % 4);
  features.stcl_points = 1 + i % 3;
  features.oracle_calls =
      (i % 4) == 0 ? 10.0 + static_cast<double>(i) : 0.0;
  return features;
}

/// The planted ground truth. validations_per_core must equal the
/// fallback's (the calibrator holds it fixed — it is collinear with the
/// per-call terms), so only the other four constants differ from the
/// defaults.
CostConstants planted_constants() {
  CostConstants truth;
  truth.per_request = 3.0;
  truth.dense_ops_per_node_sq = 2e-4;
  truth.sparse_ops_per_nnz = 1.5e-2;
  truth.per_call_overhead = 0.5;
  truth.validations_per_core = CostConstants{}.validations_per_core;
  return truth;
}

/// Feeds `count` synthetic jobs into `calibrator`, with wall times from
/// the planted constants times (1 + noise_amplitude * uniform[-1,1)).
void observe_planted_jobs(CostCalibrator& calibrator, std::size_t count,
                          double noise_amplitude, std::uint64_t seed) {
  const CostModel truth(planted_constants());
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const CostFeatures features = synthetic_features(i);
    const double noise = noise_amplitude * rng.uniform(-1.0, 1.0);
    calibrator.observe(features, truth.estimate(features) * (1.0 + noise));
  }
}

void expect_near_relative(double actual, double expected, double tolerance,
                          const char* label) {
  EXPECT_LE(std::abs(actual - expected), tolerance * expected)
      << label << ": fitted " << actual << " vs planted " << expected;
}

TEST(CostCalibrator, RecoversPlantedConstantsFromNoisyMeasurements) {
  CostCalibrator calibrator;
  observe_planted_jobs(calibrator, 200, /*noise_amplitude=*/0.02,
                       /*seed=*/0xc0ffee);
  ASSERT_TRUE(calibrator.ready());
  const CostConstants truth = planted_constants();
  const CostConstants fitted = calibrator.constants();
  expect_near_relative(fitted.per_request, truth.per_request, 0.05,
                       "per_request");
  expect_near_relative(fitted.dense_ops_per_node_sq,
                       truth.dense_ops_per_node_sq, 0.05,
                       "dense_ops_per_node_sq");
  expect_near_relative(fitted.sparse_ops_per_nnz, truth.sparse_ops_per_nnz,
                       0.05, "sparse_ops_per_nnz");
  expect_near_relative(fitted.per_call_overhead, truth.per_call_overhead,
                       0.05, "per_call_overhead");
  // Held fixed, never fitted.
  EXPECT_EQ(fitted.validations_per_core, truth.validations_per_core);
}

TEST(CostCalibrator, NoiseFreeFitIsExactToRidgePrecision) {
  CostCalibrator calibrator;
  observe_planted_jobs(calibrator, 64, /*noise_amplitude=*/0.0, /*seed=*/1);
  ASSERT_TRUE(calibrator.ready());
  const CostConstants truth = planted_constants();
  const CostConstants fitted = calibrator.constants();
  // The only perturbation left is the ~1e-8-relative ridge.
  expect_near_relative(fitted.per_request, truth.per_request, 1e-5,
                       "per_request");
  expect_near_relative(fitted.dense_ops_per_node_sq,
                       truth.dense_ops_per_node_sq, 1e-5,
                       "dense_ops_per_node_sq");
  expect_near_relative(fitted.sparse_ops_per_nnz, truth.sparse_ops_per_nnz,
                       1e-5, "sparse_ops_per_nnz");
  expect_near_relative(fitted.per_call_overhead, truth.per_call_overhead,
                       1e-5, "per_call_overhead");
}

TEST(CostCalibrator, ConvergenceHoldsAcrossSeeds) {
  // The property, not one lucky draw: several independent noise seeds
  // must all converge. Failures print the seed via SCOPED_TRACE.
  for (const std::uint64_t seed : {2ULL, 17ULL, 9001ULL, 0xdeadULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    CostCalibrator calibrator;
    observe_planted_jobs(calibrator, 160, /*noise_amplitude=*/0.05, seed);
    ASSERT_TRUE(calibrator.ready());
    const CostConstants truth = planted_constants();
    const CostConstants fitted = calibrator.constants();
    expect_near_relative(fitted.per_request, truth.per_request, 0.10,
                         "per_request");
    expect_near_relative(fitted.dense_ops_per_node_sq,
                         truth.dense_ops_per_node_sq, 0.10,
                         "dense_ops_per_node_sq");
    expect_near_relative(fitted.sparse_ops_per_nnz,
                         truth.sparse_ops_per_nnz, 0.10,
                         "sparse_ops_per_nnz");
    expect_near_relative(fitted.per_call_overhead, truth.per_call_overhead,
                         0.10, "per_call_overhead");
  }
}

TEST(CostCalibrator, ServesFallbackUntilMinSamples) {
  CostConstants fallback;
  fallback.per_request = 1234.5;
  CostCalibrator calibrator(fallback);
  const CostModel truth(planted_constants());
  for (std::size_t i = 0; i < CostCalibrator::kMinSamples - 1; ++i) {
    EXPECT_FALSE(calibrator.ready()) << "ready before sample " << i;
    EXPECT_EQ(calibrator.constants().per_request, fallback.per_request);
    const CostFeatures features = synthetic_features(i);
    calibrator.observe(features, truth.estimate(features));
  }
  EXPECT_EQ(calibrator.samples(), CostCalibrator::kMinSamples - 1);
  EXPECT_FALSE(calibrator.ready());
  const CostFeatures last = synthetic_features(CostCalibrator::kMinSamples);
  calibrator.observe(last, truth.estimate(last));
  EXPECT_TRUE(calibrator.ready());
}

TEST(CostCalibrator, IgnoresUnusableMeasurements) {
  CostCalibrator calibrator;
  const CostFeatures features = synthetic_features(0);
  calibrator.observe(features, std::nan(""));
  calibrator.observe(features, -1.0);
  calibrator.observe(features,
                     std::numeric_limits<double>::infinity());
  EXPECT_EQ(calibrator.samples(), 0u);
}

TEST(CostCalibrator, FittedConstantsStayPositiveOnDegenerateBatches) {
  // A batch that never exercises the sparse backend leaves that column
  // to the ridge; the coefficient floor must keep it positive so
  // estimates stay monotone.
  CostCalibrator calibrator;
  const CostModel truth(planted_constants());
  for (std::size_t i = 0; i < 64; ++i) {
    CostFeatures features = synthetic_features(i);
    features.sparse = false;
    calibrator.observe(features, truth.estimate(features));
  }
  ASSERT_TRUE(calibrator.ready());
  const CostConstants fitted = calibrator.constants();
  EXPECT_GT(fitted.sparse_ops_per_nnz, 0.0);
  EXPECT_GT(fitted.dense_ops_per_node_sq, 0.0);
  EXPECT_GT(fitted.per_request, 0.0);
  EXPECT_GT(fitted.per_call_overhead, 0.0);
}

TEST(CostCalibrator, SerializeRoundTripsExactly) {
  CostCalibrator calibrator;
  observe_planted_jobs(calibrator, 50, /*noise_amplitude=*/0.03, /*seed=*/7);
  const std::string state = calibrator.serialize();
  const auto restored = CostCalibrator::deserialize(state);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->samples(), calibrator.samples());
  // Shortest-round-trip numbers make the trip exact: the restored
  // calibrator re-serializes to the identical string and fits the
  // identical constants.
  EXPECT_EQ(restored->serialize(), state);
  const CostConstants a = calibrator.constants();
  const CostConstants b = restored->constants();
  EXPECT_EQ(a.per_request, b.per_request);
  EXPECT_EQ(a.dense_ops_per_node_sq, b.dense_ops_per_node_sq);
  EXPECT_EQ(a.sparse_ops_per_nnz, b.sparse_ops_per_nnz);
  EXPECT_EQ(a.per_call_overhead, b.per_call_overhead);
}

TEST(CostCalibrator, DeserializePassesFallbackThrough) {
  CostConstants fallback;
  fallback.per_request = 42.0;
  CostCalibrator empty(fallback);
  const auto restored = CostCalibrator::deserialize(empty.serialize(),
                                                    fallback);
  ASSERT_TRUE(restored.has_value());
  EXPECT_FALSE(restored->ready());
  EXPECT_EQ(restored->constants().per_request, 42.0);
}

TEST(CostCalibrator, DeserializeRejectsDamage) {
  CostCalibrator calibrator;
  observe_planted_jobs(calibrator, 40, 0.01, 3);
  const std::string good = calibrator.serialize();
  ASSERT_TRUE(CostCalibrator::deserialize(good).has_value());

  // Every damage class returns nullopt — never throws, never garbage.
  EXPECT_FALSE(CostCalibrator::deserialize("").has_value());
  EXPECT_FALSE(CostCalibrator::deserialize("not json").has_value());
  EXPECT_FALSE(CostCalibrator::deserialize("[1,2,3]").has_value());
  EXPECT_FALSE(
      CostCalibrator::deserialize(good.substr(0, good.size() / 2))
          .has_value());  // truncation
  std::string wrong_schema = good;
  const auto at = wrong_schema.find("thermo.calibration.v2");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 21, "thermo.calibration.v9");
  EXPECT_FALSE(CostCalibrator::deserialize(wrong_schema).has_value());
  // A member renamed away (missing "xty", unknown "xtz" in its place).
  std::string renamed = good;
  const auto xty_at = renamed.find("\"xty\"");
  ASSERT_NE(xty_at, std::string::npos);
  renamed.replace(xty_at, 5, "\"xtz\"");
  EXPECT_FALSE(CostCalibrator::deserialize(renamed).has_value());
  // Negative sample count.
  std::string negative = good;
  const auto samples_at = negative.find("\"samples\":");
  ASSERT_NE(samples_at, std::string::npos);
  negative.insert(samples_at + 10, "-");
  EXPECT_FALSE(CostCalibrator::deserialize(negative).has_value());
}

TEST(CostCalibrator, StateIsAPureFunctionOfTheObservationSequence) {
  CostCalibrator a;
  CostCalibrator b;
  observe_planted_jobs(a, 120, 0.04, 99);
  observe_planted_jobs(b, 120, 0.04, 99);
  EXPECT_EQ(a.serialize(), b.serialize());
  // Different sequence, different state (the equality above is not
  // trivially true).
  CostCalibrator c;
  observe_planted_jobs(c, 120, 0.04, 100);
  EXPECT_NE(a.serialize(), c.serialize());
}

TEST(MedianRelativeError, ZeroForProportionallyCorrectEstimates) {
  // Estimates in a different UNIT but perfect proportions: the metric
  // must report zero — this is exactly the fixed-constants-vs-seconds
  // comparison bench_dispatch gates on.
  const std::vector<double> measured = {1.0, 2.0, 8.0, 0.5};
  std::vector<double> estimates;
  for (const double m : measured) estimates.push_back(m * 1e6);
  EXPECT_EQ(median_relative_error(estimates, measured), 0.0);
}

TEST(MedianRelativeError, ScaleInvariant) {
  const std::vector<double> measured = {1.0, 3.0, 2.0, 9.0, 4.0};
  const std::vector<double> estimates = {1.1, 2.4, 2.2, 10.0, 3.0};
  const double base = median_relative_error(estimates, measured);
  std::vector<double> scaled;
  for (const double e : estimates) scaled.push_back(e * 123.456);
  EXPECT_DOUBLE_EQ(median_relative_error(scaled, measured), base);
  EXPECT_GT(base, 0.0);
}

TEST(MedianRelativeError, SkipsUnusablePairsAndEmptyInput) {
  EXPECT_EQ(median_relative_error({}, {}), 0.0);
  EXPECT_EQ(median_relative_error({0.0, -1.0}, {1.0, 1.0}), 0.0);
  // One valid pair among garbage: scale normalization makes it exact.
  EXPECT_EQ(median_relative_error({0.0, 2.0}, {1.0, 4.0}), 0.0);
}

}  // namespace
}  // namespace thermo::dispatch
