// Observability through the serve pipeline: tracing and metrics may
// never change the output bytes — {trace on,off} x {1,4} threads must
// be byte-identical — and when they record, they record *exactly*: the
// registry's counters must equal the summary's own stats, and the
// per-request queue_wait_s must ride the summary JSON additively.
#include "scenario/serve.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/demo.hpp"
#include "util/json.hpp"

namespace thermo::scenario {
namespace {

/// 20 demo requests followed by the same 20 lines again: with dedup on,
/// the second half must be answered from the memo (20 exact hits).
std::string duplicated_batch() {
  std::string half;
  for (const ScenarioRequest& request : demo_batch(20, 7)) {
    half += to_json_line(request) + "\n";
  }
  return half + half;
}

std::string run_serve(const std::string& input, std::size_t threads,
                      ServeSummary* summary_out = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  ScenarioRunner runner;
  ServeOptions options;
  options.threads = threads;
  const ServeSummary summary = serve_stream(in, out, runner, options);
  if (summary_out != nullptr) *summary_out = summary;
  return out.str();
}

TEST(ObsServe, TracingNeverChangesOutputBytes) {
  const std::string input = duplicated_batch();
  const std::string reference = run_serve(input, 1);
  ASSERT_FALSE(reference.empty());

  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    // Untraced.
    EXPECT_EQ(run_serve(input, threads), reference)
        << "threads=" << threads << " trace=off";
    // Traced.
    recorder.start();
    const std::string traced = run_serve(input, threads);
    recorder.stop();
    EXPECT_EQ(traced, reference) << "threads=" << threads << " trace=on";
    // And the trace the run produced must be non-trivial: spans from
    // serve, dispatch, and the scenario runner all fire per request.
    const JsonValue snapshot = recorder.snapshot_json();
    const JsonValue* events = snapshot.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->items().size(), 40u);
    const std::string dumped = snapshot.dump();
    EXPECT_NE(dumped.find("serve.batch"), std::string::npos);
    EXPECT_NE(dumped.find("dispatch.exec"), std::string::npos);
  }
}

TEST(ObsServe, MetricsDisabledChangesNothingButTheCounts) {
  const std::string input = duplicated_batch();
  const std::string reference = run_serve(input, 2);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  obs::set_enabled(false);
  const std::string disabled = run_serve(input, 2);
  obs::set_enabled(true);
  EXPECT_EQ(disabled, reference);
  EXPECT_EQ(registry.counter("scenario.requests").value(), 0u);
}

TEST(ObsServe, CountersExactlyMatchSummaryStats) {
  const std::string input = duplicated_batch();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  ServeSummary summary;
  run_serve(input, 4, &summary);

  EXPECT_EQ(summary.requests, 40u);
  EXPECT_EQ(summary.memo_hits, 20u);
  // The registry saw exactly what the summary reports — same events,
  // counted at different layers.
  EXPECT_EQ(registry.counter("scenario.requests").value(),
            summary.requests);
  EXPECT_EQ(registry.counter("dispatch.memo_hits").value(),
            summary.memo_hits);
  EXPECT_EQ(registry.counter("dispatch.executed").value(),
            summary.executed);
  EXPECT_EQ(registry.counter("dispatch.batches").value(), 1u);
  // Executed requests each record one exec + one queue-wait sample.
  EXPECT_EQ(registry.histogram("dispatch.exec_ns").count(),
            summary.executed);
  EXPECT_EQ(registry.histogram("dispatch.queue_wait_ns").count(),
            summary.executed);
}

TEST(ObsServe, QueueWaitRidesTheSummaryJson) {
  const std::string input = duplicated_batch();
  ServeSummary summary;
  run_serve(input, 2, &summary);
  ASSERT_EQ(summary.request_timings.size(), 40u);
  for (const RequestTiming& timing : summary.request_timings) {
    EXPECT_GE(timing.queue_wait_seconds, 0.0);
    // Memo hits never waited in the execution queue.
    if (timing.memo_hit) EXPECT_EQ(timing.queue_wait_seconds, 0.0);
  }

  const JsonValue json = serve_summary_to_json(summary);
  const JsonValue* timings = json.find("request_timings");
  ASSERT_NE(timings, nullptr);
  ASSERT_EQ(timings->items().size(), 40u);
  for (const JsonValue& entry : timings->items()) {
    const JsonValue* wait = entry.find("queue_wait_s");
    ASSERT_NE(wait, nullptr);
    EXPECT_GE(wait->as_number(), 0.0);
  }
  // The summary carries the process-wide metrics snapshot additively.
  const JsonValue* metrics = json.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("counters"), nullptr);
  EXPECT_NE(metrics->find("histograms"), nullptr);
}

}  // namespace
}  // namespace thermo::scenario
