// Direct solvers: LU and Cholesky.
#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/vector_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::linalg {
namespace {

DenseMatrix random_spd(std::size_t n, Rng& rng) {
  // A = B Bᵗ + n·I is symmetric positive definite.
  DenseMatrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
  }
  DenseMatrix a = b.multiply(b.transposed());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Lu, SolvesKnownSystem) {
  const auto a = DenseMatrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  const Vector x = lu_solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresSquareMatrix) {
  EXPECT_THROW(LuDecomposition(DenseMatrix(2, 3)), InvalidArgument);
}

TEST(Lu, SingularMatrixThrows) {
  const auto a = DenseMatrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_THROW(LuDecomposition{a}, NumericalError);
}

TEST(Lu, ZeroMatrixThrows) {
  EXPECT_THROW(LuDecomposition(DenseMatrix(3, 3, 0.0)), NumericalError);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap.
  const auto a = DenseMatrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const Vector x = lu_solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const auto a = DenseMatrix::from_rows({{2.0, 0.0}, {0.0, 3.0}});
  EXPECT_NEAR(LuDecomposition(a).determinant(), 6.0, 1e-12);
}

TEST(Lu, DeterminantTracksPermutationSign) {
  const auto a = DenseMatrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(LuDecomposition(a).determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  Rng rng(1);
  const DenseMatrix a = random_spd(5, rng);
  const DenseMatrix inv = LuDecomposition(a).inverse();
  EXPECT_TRUE(a.multiply(inv).approx_equal(DenseMatrix::identity(5), 1e-9));
}

TEST(Lu, ResidualSmallOnRandomSystems) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_index(15));
    const DenseMatrix a = random_spd(n, rng);
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-5.0, 5.0);
    const Vector x = lu_solve(a, b);
    const Vector residual = subtract(b, a.multiply(x));
    EXPECT_LT(norm2(residual), 1e-9 * (1.0 + norm2(b)));
  }
}

TEST(Lu, MatrixRhsSolve) {
  Rng rng(3);
  const DenseMatrix a = random_spd(4, rng);
  const DenseMatrix x = LuDecomposition(a).solve(DenseMatrix::identity(4));
  EXPECT_TRUE(a.multiply(x).approx_equal(DenseMatrix::identity(4), 1e-9));
}

TEST(Lu, RhsSizeMismatchThrows) {
  const auto a = DenseMatrix::identity(3);
  EXPECT_THROW(LuDecomposition(a).solve(Vector{1.0}), InvalidArgument);
}

TEST(Cholesky, SolvesKnownSpdSystem) {
  const auto a = DenseMatrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  const Vector x = cholesky_solve(a, {8.0, 7.0});
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, FactorReconstructsMatrix) {
  Rng rng(4);
  const DenseMatrix a = random_spd(6, rng);
  const CholeskyDecomposition chol(a);
  const DenseMatrix rebuilt = chol.l().multiply(chol.l().transposed());
  EXPECT_TRUE(rebuilt.approx_equal(a, 1e-9));
}

TEST(Cholesky, MatrixRhsSolve) {
  Rng rng(5);
  const DenseMatrix a = random_spd(4, rng);
  const CholeskyFactor chol(a);
  const DenseMatrix x = chol.solve(DenseMatrix::identity(4));
  EXPECT_TRUE(a.multiply(x).approx_equal(DenseMatrix::identity(4), 1e-9));
}

TEST(Cholesky, MatrixRhsRowMismatchThrows) {
  const auto a = DenseMatrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  EXPECT_THROW(CholeskyFactor(a).solve(DenseMatrix(3, 2, 1.0)),
               InvalidArgument);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  const auto a = DenseMatrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_THROW(CholeskyDecomposition{a}, NumericalError);
}

TEST(Cholesky, RejectsNegativeDefinite) {
  const auto a = DenseMatrix::from_rows({{-1.0, 0.0}, {0.0, -1.0}});
  EXPECT_THROW(CholeskyDecomposition{a}, NumericalError);
}

TEST(Cholesky, RequiresSquare) {
  EXPECT_THROW(CholeskyDecomposition(DenseMatrix(2, 3)), InvalidArgument);
}

TEST(Cholesky, AgreesWithLuOnRandomSpdSystems) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_index(12));
    const DenseMatrix a = random_spd(n, rng);
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-3.0, 3.0);
    const Vector x_lu = lu_solve(a, b);
    const Vector x_chol = cholesky_solve(a, b);
    EXPECT_LT(norm_inf(subtract(x_lu, x_chol)), 1e-9);
  }
}

}  // namespace
}  // namespace thermo::linalg
