#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "util/error.hpp"

namespace thermo {
namespace {

std::string parse_error_of(const std::string& text) {
  try {
    parse_json(text);
  } catch (const ParseError& e) {
    return e.what();
  }
  return "<no throw>";
}

TEST(JsonParse, Primitives) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse_json("2e+05").as_number(), 2e5);
  EXPECT_DOUBLE_EQ(parse_json("1.25E-3").as_number(), 1.25e-3);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceAroundDocument) {
  EXPECT_DOUBLE_EQ(parse_json(" \t\r\n 7 \n").as_number(), 7.0);
}

TEST(JsonParse, ArraysAndObjects) {
  const JsonValue v = parse_json(R"({"a":[1,2,3],"b":{"c":true}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("a")->items()[1].as_number(), 2.0);
  EXPECT_TRUE(v.find("b")->find("c")->as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\b\f\n\r\t")").as_string(),
            "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 encodes to 4 UTF-8 bytes.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, ObjectOrderIsPreserved) {
  const JsonValue v = parse_json(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
  EXPECT_EQ(v.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonParse, DuplicateKeysRejected) {
  EXPECT_EQ(parse_error_of(R"({"a":1,"a":2})"),
            "json: line 1, column 11: duplicate object key 'a'");
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  EXPECT_EQ(parse_error_of(""), "json: line 1, column 1: unexpected end of input");
  EXPECT_EQ(parse_error_of("{\n  \"a\" 1\n}"),
            "json: line 2, column 7: expected ':' after object key");
  EXPECT_EQ(parse_error_of("[1,2"),
            "json: line 1, column 5: unterminated array (expected ',' or ']')");
  EXPECT_EQ(parse_error_of("nul"),
            "json: line 1, column 1: invalid literal (expected 'null')");
  EXPECT_EQ(parse_error_of("1 2"),
            "json: line 1, column 3: trailing characters after JSON value");
}

TEST(JsonParse, StrictNumberGrammar) {
  EXPECT_EQ(parse_error_of("01"),
            "json: line 1, column 2: trailing characters after JSON value");
  EXPECT_EQ(parse_error_of("1."),
            "json: line 1, column 3: invalid number (expected a digit after '.')");
  EXPECT_EQ(parse_error_of("-"),
            "json: line 1, column 2: invalid number (expected a digit)");
  EXPECT_EQ(parse_error_of("1e"),
            "json: line 1, column 3: invalid number (expected a digit in exponent)");
  EXPECT_EQ(parse_error_of("1e999"),
            "json: line 1, column 6: number out of range");
}

TEST(JsonParse, RawControlCharacterRejected) {
  EXPECT_EQ(parse_error_of("\"a\tb\""),
            "json: line 1, column 4: raw control character in string "
            "(use \\u escapes)");
}

TEST(JsonParse, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  EXPECT_THROW(parse_json(deep), ParseError);
}

TEST(JsonDump, RoundTripIsIdentity) {
  // dump() is canonical: parsing canonical text and dumping returns the
  // same bytes. This is what makes serve output byte-comparable.
  const std::string canon =
      R"({"id":"x","n":0.1,"big":2e+21,"list":[true,null,"s\n"],"o":{}})";
  EXPECT_EQ(parse_json(canon).dump(), canon);
}

TEST(JsonDump, ShortestRoundTripNumbers) {
  EXPECT_EQ(format_json_number(15.0), "15");
  EXPECT_EQ(format_json_number(0.1), "0.1");
  EXPECT_EQ(format_json_number(2e5), "2e+05");
  EXPECT_EQ(format_json_number(-1.5e-3), "-0.0015");
  EXPECT_EQ(format_json_number(1.0 / 3.0), "0.3333333333333333");
}

TEST(JsonDump, NonFiniteNumbersThrow) {
  EXPECT_THROW(
      JsonValue::number(std::numeric_limits<double>::infinity()).dump(),
      InvalidArgument);
  EXPECT_THROW(format_json_number(std::numeric_limits<double>::quiet_NaN()),
               InvalidArgument);
}

TEST(JsonDump, EscapesControlCharacters) {
  EXPECT_EQ(JsonValue::string("a\1b").dump(), "\"a\\u0001b\"");
  EXPECT_EQ(JsonValue::string("q\"\\\n").dump(), R"("q\"\\\n")");
}

TEST(JsonValueApi, SetReplacesInPlace) {
  JsonValue obj = JsonValue::object();
  obj.set("a", JsonValue::number(1));
  obj.set("b", JsonValue::number(2));
  obj.set("a", JsonValue::number(9));
  EXPECT_EQ(obj.dump(), R"({"a":9,"b":2})");
}

TEST(JsonValueApi, TypeMismatchThrows) {
  const JsonValue v = JsonValue::number(3.0);
  EXPECT_THROW(v.as_string(), InvalidArgument);
  EXPECT_THROW(v.as_bool(), InvalidArgument);
  EXPECT_THROW(v.items(), InvalidArgument);
  EXPECT_THROW(v.members(), InvalidArgument);
  EXPECT_EQ(v.find("x"), nullptr);  // find never throws
  EXPECT_EQ(v.size(), 0u);
}

}  // namespace
}  // namespace thermo
