#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::core {
namespace {

using thermo::testing::nine_soc;

TEST(SocSpec, ValidatesCleanSpec) {
  EXPECT_NO_THROW(nine_soc().validate());
}

TEST(SocSpec, RejectsTestCountMismatch) {
  SocSpec soc = nine_soc();
  soc.tests.pop_back();
  EXPECT_THROW(soc.validate(), InvalidArgument);
}

TEST(SocSpec, RejectsNegativePowerAndZeroLength) {
  SocSpec soc = nine_soc();
  soc.tests[0].power = -1.0;
  EXPECT_THROW(soc.validate(), InvalidArgument);
  soc = nine_soc();
  soc.tests[3].length = 0.0;
  EXPECT_THROW(soc.validate(), InvalidArgument);
}

TEST(SocSpec, TestPowersVector) {
  SocSpec soc = nine_soc(4.0);
  const auto powers = soc.test_powers();
  ASSERT_EQ(powers.size(), 9u);
  for (double p : powers) EXPECT_DOUBLE_EQ(p, 4.0);
}

TEST(SocSpec, PowerDensity) {
  const SocSpec soc = nine_soc(8.0);
  // 2 mm x 2 mm blocks -> 4e-6 m^2.
  EXPECT_DOUBLE_EQ(soc.power_density(0), 8.0 / 4e-6);
  EXPECT_THROW(soc.power_density(9), InvalidArgument);
}

TEST(TestSession, ContainsAndSize) {
  TestSession s;
  s.cores = {1, 4, 7};
  EXPECT_TRUE(s.contains(4));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
}

TEST(TestSession, LengthIsLongestMemberTest) {
  SocSpec soc = nine_soc();
  soc.tests[1].length = 2.0;
  soc.tests[4].length = 5.0;
  TestSession s;
  s.cores = {1, 4};
  EXPECT_DOUBLE_EQ(s.length(soc), 5.0);
  EXPECT_DOUBLE_EQ(TestSession{}.length(soc), 0.0);
}

TEST(TestSession, PowerMapAndActiveMask) {
  const SocSpec soc = nine_soc(3.0);
  TestSession s;
  s.cores = {0, 8};
  const auto power = s.power_map(soc);
  EXPECT_DOUBLE_EQ(power[0], 3.0);
  EXPECT_DOUBLE_EQ(power[1], 0.0);
  EXPECT_DOUBLE_EQ(power[8], 3.0);
  const auto mask = s.active_mask(soc);
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[4]);
  EXPECT_TRUE(mask[8]);
}

TEST(TestSession, OutOfRangeCoreThrows) {
  const SocSpec soc = nine_soc();
  TestSession s;
  s.cores = {42};
  EXPECT_THROW(s.power_map(soc), InvalidArgument);
  EXPECT_THROW(s.length(soc), InvalidArgument);
}

TEST(TestSession, ToStringUsesBlockNames) {
  const SocSpec soc = nine_soc();
  TestSession s;
  s.cores = {0, 1};
  EXPECT_EQ(s.to_string(soc), "{b0_0, b0_1}");
}

TEST(TestSchedule, TotalLengthSumsSessions) {
  SocSpec soc = nine_soc();
  soc.tests[5].length = 3.0;
  TestSchedule sched;
  sched.sessions.push_back({{0, 1}});
  sched.sessions.push_back({{5}});
  EXPECT_DOUBLE_EQ(sched.total_length(soc), 4.0);
  EXPECT_EQ(sched.scheduled_core_count(), 3u);
}

TEST(TestSchedule, CompletenessDetection) {
  const SocSpec soc = nine_soc();
  TestSchedule sched;
  sched.sessions.push_back({{0, 1, 2, 3}});
  sched.sessions.push_back({{4, 5, 6, 7}});
  EXPECT_FALSE(sched.is_complete(soc));
  sched.sessions.push_back({{8}});
  EXPECT_TRUE(sched.is_complete(soc));
}

TEST(TestSchedule, DuplicateCoreIsIncompleteAndIllFormed) {
  const SocSpec soc = nine_soc();
  TestSchedule sched;
  sched.sessions.push_back({{0, 1}});
  sched.sessions.push_back({{1, 2}});
  EXPECT_FALSE(sched.is_complete(soc));
  EXPECT_THROW(sched.require_well_formed(soc), LogicError);
}

TEST(TestSchedule, EmptySessionIsIllFormed) {
  const SocSpec soc = nine_soc();
  TestSchedule sched;
  sched.sessions.push_back({});
  EXPECT_THROW(sched.require_well_formed(soc), LogicError);
}

TEST(TestSchedule, ToStringListsSessions) {
  const SocSpec soc = nine_soc();
  TestSchedule sched;
  sched.sessions.push_back({{0}});
  sched.sessions.push_back({{1}});
  const std::string text = sched.to_string(soc);
  EXPECT_NE(text.find("TS1"), std::string::npos);
  EXPECT_NE(text.find("TS2"), std::string::npos);
}

}  // namespace
}  // namespace thermo::core
