#include "util/error.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hpp"

namespace thermo {
namespace {

TEST(Require, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(THERMO_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Require, FailureThrowsInvalidArgumentWithContext) {
  try {
    THERMO_REQUIRE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("util_error_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(Ensure, FailureThrowsLogicError) {
  EXPECT_THROW(THERMO_ENSURE(false, "broken invariant"), LogicError);
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw LogicError("x"), Error);
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw ParseError("x"), Error);
}

TEST(Logging, RespectsLevel) {
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kWarn);
  THERMO_INFO() << "hidden";
  THERMO_WARN() << "visible";
  Logger::instance().set_sink(nullptr);
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST(Logging, OffSilencesEverything) {
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kOff);
  THERMO_ERROR() << "nope";
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_TRUE(sink.str().empty());
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "trace");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "error");
}

}  // namespace
}  // namespace thermo
