// The logger's concurrency contract: write() may be called from many
// threads at once (serve/sweep workers), and every message must come
// out as one whole line — never interleaved, never lost. This is the
// hammer the mutex in Logger::write exists for.
#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace thermo {
namespace {

/// Restores the logger's level and sink on scope exit so a failing
/// assertion can't leak a test sink into later tests.
class LoggerGuard {
 public:
  LoggerGuard() : level_(Logger::instance().level()) {}
  ~LoggerGuard() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(level_);
  }

 private:
  LogLevel level_;
};

TEST(Logging, LevelGatingAndFormat) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kWarn);
  THERMO_INFO() << "filtered out";
  THERMO_WARN() << "kept " << 42;
  EXPECT_EQ(sink.str(), "[thermo:warn] kept 42\n");
}

TEST(Logging, ConcurrentWritersProduceWholeLines) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Long enough that a torn write would be visible mid-line.
        THERMO_INFO() << "writer=" << t << " seq=" << i
                      << " padding=0123456789012345678901234567890123456789";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every expected line appears exactly once, intact; nothing else.
  std::istringstream lines(sink.str());
  std::set<std::string> seen;
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_TRUE(seen.insert(line).second) << "duplicate line: " << line;
    EXPECT_EQ(line.rfind("[thermo:info] writer=", 0), 0u)
        << "torn or foreign line: " << line;
    EXPECT_NE(line.find(" padding=0123456789012345678901234567890123456789"),
              std::string::npos)
        << "truncated line: " << line;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string expected =
          "[thermo:info] writer=" + std::to_string(t) +
          " seq=" + std::to_string(i) +
          " padding=0123456789012345678901234567890123456789";
      EXPECT_EQ(seen.count(expected), 1u) << "missing: " << expected;
    }
  }
}

}  // namespace
}  // namespace thermo
