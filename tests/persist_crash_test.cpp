// The crash sweep: the store's crash-consistency contract, proved at
// EVERY file-operation boundary rather than sampled. A canonical
// workload (puts spanning several rotations, a compaction, interleaved
// reads) first runs fault-free through a FaultFs to learn its operation
// count N; the sweep then replays it N times per fault kind, injecting
// a crash at op 0, 1, ..., N-1 — clean crashes on both sides of each
// boundary, short writes, and torn writes (prefix + garbage bytes).
// After each "crash" the directory is reopened with the REAL filesystem
// and the contract is checked:
//   * reopen succeeds — the store never refuses a crashed directory;
//   * every acknowledged record (put() returned) is served
//     byte-identically;
//   * at most the one in-flight record is unaccounted for, and if its
//     bytes did reach disk they are byte-identical too — a crash can
//     lose the tail, never corrupt what is served.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "persist/fault_fs.hpp"
#include "persist/segment_store.hpp"
#include "persist_test_util.hpp"
#include "util/error.hpp"

namespace thermo::persist {
namespace {

using testing::record_key;
using testing::record_payload;
using testing::ScopedTempDir;

constexpr std::size_t kRecords = 12;
constexpr std::size_t kCompactAt = 7;
constexpr std::size_t kValueBytes = 48;

StoreOptions sweep_options(Fs* fs) {
  StoreOptions options;
  // Small cap so the workload rotates several times: rotation and the
  // first put into a fresh segment are crash points worth sweeping.
  options.segment_size_cap = 400;
  options.fs = fs;
  return options;
}

/// The canonical workload. Every index pushed to `acknowledged` had its
/// put() return — the store vouched for that record's durability.
void run_workload(Fs& fs, const std::string& dir,
                  std::vector<std::size_t>* acknowledged) {
  StoreOptions options = sweep_options(&fs);
  SegmentStore store(dir, options);
  for (std::size_t i = 0; i < kRecords; ++i) {
    store.put(record_key(i), record_payload(i, kValueBytes));
    acknowledged->push_back(i);
    if (i == kCompactAt) store.compact();
    if (i == 4) store.get(record_key(1));  // reads share the op stream
  }
}

/// Post-crash contract check against the real filesystem.
void check_recovery(const std::string& dir,
                    const std::vector<std::size_t>& acknowledged) {
  // Reopen must succeed (a throw here fails the test with the message).
  SegmentStore reopened(dir, sweep_options(nullptr));
  for (const std::size_t i : acknowledged) {
    const auto value = reopened.get(record_key(i));
    ASSERT_TRUE(value.has_value())
        << "acknowledged record " << i << " lost after crash";
    ASSERT_EQ(*value, record_payload(i, kValueBytes))
        << "acknowledged record " << i << " corrupted after crash";
  }
  std::size_t unacknowledged_survivors = 0;
  for (std::size_t i = 0; i < kRecords; ++i) {
    if (i < acknowledged.size()) continue;  // acknowledged are 0..k-1
    if (const auto value = reopened.get(record_key(i))) {
      ++unacknowledged_survivors;
      // Present but unacknowledged is allowed (the crash hit between
      // durability and the return) — but only byte-identical.
      EXPECT_EQ(*value, record_payload(i, kValueBytes));
    }
  }
  EXPECT_LE(unacknowledged_survivors, 1u)
      << "more than the in-flight record appeared without acknowledgement";
}

TEST(PersistCrash, EveryCrashPointRecoversWithAtMostTheTailLost) {
  // Discovery: run fault-free to learn the workload's op count.
  std::size_t total_ops = 0;
  {
    const ScopedTempDir dir("crash-discovery");
    FaultFs fs(real_fs());
    std::vector<std::size_t> acknowledged;
    run_workload(fs, dir.path(), &acknowledged);
    ASSERT_EQ(acknowledged.size(), kRecords);
    total_ops = fs.ops_seen();
    // Sanity: the workload exercises rotation and compaction, so the
    // sweep has boundaries inside both.
    ASSERT_GT(total_ops, 40u);
  }

  for (const FaultKind kind :
       {FaultKind::kCrashBefore, FaultKind::kCrashAfter,
        FaultKind::kShortWrite, FaultKind::kTornWrite}) {
    for (std::size_t op = 0; op < total_ops; ++op) {
      SCOPED_TRACE("fault kind " + std::to_string(static_cast<int>(kind)) +
                   " at op " + std::to_string(op));
      const ScopedTempDir dir("crash-sweep");
      FaultPlan plan;
      plan.after_ops = op;
      plan.kind = kind;
      plan.seed = op * 1000003ULL + static_cast<std::uint64_t>(kind) + 1;
      FaultFs fs(real_fs(), plan);

      std::vector<std::size_t> acknowledged;
      bool crashed = false;
      try {
        run_workload(fs, dir.path(), &acknowledged);
      } catch (const CrashError&) {
        crashed = true;
      }
      if (!crashed) {
        // The only uncrashed case: the fault fired inside the store
        // destructor's final sync, where it is deliberately swallowed —
        // by then every record was acknowledged.
        EXPECT_EQ(acknowledged.size(), kRecords);
      }
      check_recovery(dir.path(), acknowledged);
    }
  }
}

TEST(PersistCrash, TransientIoFailuresSurfaceWithoutCorruptingTheStore) {
  // kFailOp: the op fails with IoError but the "filesystem" (and the
  // process) lives on. The store must surface the failure — the record
  // is NOT acknowledged — and keep working: later puts land in a fresh
  // segment, never after the partial tail of the failed one.
  std::size_t total_ops = 0;
  {
    const ScopedTempDir dir("failop-discovery");
    FaultFs fs(real_fs());
    std::vector<std::size_t> acknowledged;
    run_workload(fs, dir.path(), &acknowledged);
    total_ops = fs.ops_seen();
  }

  for (std::size_t op = 0; op < total_ops; ++op) {
    SCOPED_TRACE("transient failure at op " + std::to_string(op));
    const ScopedTempDir dir("failop-sweep");
    FaultPlan plan;
    plan.after_ops = op;
    plan.kind = FaultKind::kFailOp;
    plan.seed = op + 1;
    FaultFs fs(real_fs(), plan);

    StoreOptions options = sweep_options(&fs);
    std::vector<std::size_t> acknowledged;
    std::size_t failed_puts = 0;
    try {
      SegmentStore store(dir.path(), options);
      for (std::size_t i = 0; i < kRecords; ++i) {
        try {
          store.put(record_key(i), record_payload(i, kValueBytes));
          acknowledged.push_back(i);
        } catch (const IoError&) {
          ++failed_puts;  // surfaced, unacknowledged — and we carry on
        }
        if (i == kCompactAt) {
          try {
            store.compact();
          } catch (const IoError&) {
            // A failed compaction leaves the store serving from the old
            // segments; nothing acknowledged is affected.
          }
        }
      }
      // The still-open store serves everything it acknowledged. A
      // transient read failure may surface as IoError, but it must NOT
      // cost the record its index entry: the retry serves it.
      for (const std::size_t i : acknowledged) {
        std::optional<std::string> value;
        try {
          value = store.get(record_key(i));
        } catch (const IoError&) {
          value = store.get(record_key(i));
        }
        ASSERT_EQ(value, record_payload(i, kValueBytes));
      }
    } catch (const IoError&) {
      // The fault fired inside open (constructor): nothing was
      // acknowledged; recovery below must still work.
    }
    EXPECT_LE(failed_puts, 1u);  // the plan fires exactly once

    SegmentStore reopened(dir.path(), sweep_options(nullptr));
    for (const std::size_t i : acknowledged) {
      ASSERT_EQ(reopened.get(record_key(i)), record_payload(i, kValueBytes));
    }
    // Whatever the failed op left behind (a partial frame, a burned
    // segment) is at most scan debris, never served bytes: every record
    // the reopened store DOES serve must be byte-exact.
    for (std::size_t i = 0; i < kRecords; ++i) {
      if (const auto value = reopened.get(record_key(i))) {
        EXPECT_EQ(*value, record_payload(i, kValueBytes));
      }
    }
  }
}

}  // namespace
}  // namespace thermo::persist
