#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace thermo {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

TEST(Cli, ParsesDoubleOption) {
  CliParser cli("prog", "test");
  double value = 0.0;
  cli.add_double("tl", "limit", &value);
  auto args = argv_of({"prog", "--tl", "145.5"});
  EXPECT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(value, 145.5);
}

TEST(Cli, ParsesEqualsSyntax) {
  CliParser cli("prog", "test");
  double value = 0.0;
  cli.add_double("tl", "limit", &value);
  auto args = argv_of({"prog", "--tl=7"});
  EXPECT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(value, 7.0);
}

TEST(Cli, ParsesIntAndString) {
  CliParser cli("prog", "test");
  long long n = 0;
  std::string s;
  cli.add_int("n", "count", &n);
  cli.add_string("name", "a name", &s);
  auto args = argv_of({"prog", "--n", "12", "--name", "chip"});
  EXPECT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(n, 12);
  EXPECT_EQ(s, "chip");
}

TEST(Cli, FlagDefaultsFalseSetsTrue) {
  CliParser cli("prog", "test");
  bool flag = false;
  cli.add_flag("verbose", "talk", &flag);
  auto args = argv_of({"prog", "--verbose"});
  EXPECT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(flag);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("prog", "test");
  auto args = argv_of({"prog", "--nope"});
  EXPECT_THROW(cli.parse(static_cast<int>(args.size()), args.data()),
               ParseError);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("prog", "test");
  double value = 0.0;
  cli.add_double("tl", "limit", &value);
  auto args = argv_of({"prog", "--tl"});
  EXPECT_THROW(cli.parse(static_cast<int>(args.size()), args.data()),
               ParseError);
}

TEST(Cli, BadNumberThrows) {
  CliParser cli("prog", "test");
  double value = 0.0;
  cli.add_double("tl", "limit", &value);
  auto args = argv_of({"prog", "--tl", "hot"});
  EXPECT_THROW(cli.parse(static_cast<int>(args.size()), args.data()),
               ParseError);
}

TEST(Cli, FlagWithValueThrows) {
  CliParser cli("prog", "test");
  bool flag = false;
  cli.add_flag("v", "flag", &flag);
  auto args = argv_of({"prog", "--v=1"});
  EXPECT_THROW(cli.parse(static_cast<int>(args.size()), args.data()),
               ParseError);
}

TEST(Cli, CollectsPositionalArguments) {
  CliParser cli("prog", "test");
  auto args = argv_of({"prog", "file1", "file2"});
  EXPECT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  auto args = argv_of({"prog", "--help"});
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(static_cast<int>(args.size()), args.data()));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("prog"), std::string::npos);
}

TEST(Cli, DuplicateOptionRegistrationThrows) {
  CliParser cli("prog", "test");
  double a = 0.0, b = 0.0;
  cli.add_double("x", "first", &a);
  EXPECT_THROW(cli.add_double("x", "second", &b), InvalidArgument);
}

TEST(Cli, UsageListsOptions) {
  CliParser cli("prog", "does things");
  double v = 0;
  cli.add_double("knob", "turn me", &v);
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--knob"), std::string::npos);
  EXPECT_NE(usage.find("turn me"), std::string::npos);
}

}  // namespace
}  // namespace thermo
