// SolverBackend: dense and sparse backends must agree to the documented
// 1e-9 relative tolerance on steady and transient solves (random
// synthetic SoCs), kAuto must resolve by node count, and the sparse
// factor/stepper cache entries must mirror the dense ones' hit / LRU /
// invalidation semantics (thermal_solver_cache_test).
#include "thermal/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "floorplan/generator.hpp"
#include "soc/synthetic.hpp"
#include "test_helpers.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/solver_cache.hpp"
#include "thermal/steady_state.hpp"
#include "thermal/transient.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::thermal {
namespace {

using thermo::testing::nine_floorplan;
using thermo::testing::quad_floorplan;

/// Documented cross-backend agreement bound (docs/SOLVERS.md "Choosing
/// a backend"): two direct factorizations of the same well-conditioned
/// SPD system, so 1e-9 relative is generous.
constexpr double kBackendTolerance = 1e-9;

double max_rel_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale =
        std::max(1e-30, std::max(std::fabs(a[i]), std::fabs(b[i])));
    worst = std::max(worst, std::fabs(a[i] - b[i]) / scale);
  }
  return worst;
}

/// A grid model big enough that kAuto resolves to the sparse backend.
RCModel large_grid_model() {
  const floorplan::Floorplan fp =
      floorplan::make_grid_floorplan(17, 17, 0.016, 0.016);  // 299 nodes
  return RCModel(fp, PackageParams{});
}

TEST(SolverBackendTest, ResolveByNodeCount) {
  EXPECT_EQ(resolve_backend(SolverBackend::kDense, 100000),
            SolverBackend::kDense);
  EXPECT_EQ(resolve_backend(SolverBackend::kSparse, 4),
            SolverBackend::kSparse);
  EXPECT_EQ(resolve_backend(SolverBackend::kAuto, kSparseBackendCrossover - 1),
            SolverBackend::kDense);
  EXPECT_EQ(resolve_backend(SolverBackend::kAuto, kSparseBackendCrossover),
            SolverBackend::kSparse);
  EXPECT_EQ(resolve_backend(SolverBackend::kAuto, 10 * kSparseBackendCrossover),
            SolverBackend::kSparse);
}

TEST(SolverBackendTest, Names) {
  EXPECT_STREQ(solver_backend_name(SolverBackend::kDense), "dense");
  EXPECT_STREQ(solver_backend_name(SolverBackend::kSparse), "sparse");
  EXPECT_STREQ(solver_backend_name(SolverBackend::kAuto), "auto");
  // name -> enum is the exact inverse, and the single source of truth
  // for the CLI flag and the scenario request parser.
  for (SolverBackend backend : {SolverBackend::kDense, SolverBackend::kSparse,
                                SolverBackend::kAuto}) {
    EXPECT_EQ(solver_backend_from_name(solver_backend_name(backend)), backend);
  }
  EXPECT_EQ(solver_backend_from_name("cuda"), std::nullopt);
  EXPECT_EQ(solver_backend_from_name(""), std::nullopt);
}

TEST(SolverBackendTest, BackendsAgreeOnRandomSyntheticSocs) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    Rng rng(seed);
    soc::SyntheticOptions options;
    options.core_count = 40;
    const core::SocSpec soc = soc::make_synthetic_soc(rng, options);
    const RCModel model(soc.flp, soc.package);
    const std::vector<double> power = soc.test_powers();

    SteadyStateOptions dense_opts;
    dense_opts.backend = SolverBackend::kDense;
    SteadyStateOptions sparse_opts;
    sparse_opts.backend = SolverBackend::kSparse;
    const SteadyStateResult steady_dense =
        solve_steady_state(model, power, dense_opts);
    const SteadyStateResult steady_sparse =
        solve_steady_state(model, power, sparse_opts);
    EXPECT_LT(max_rel_diff(steady_dense.rise, steady_sparse.rise),
              kBackendTolerance)
        << "seed=" << seed;

    TransientOptions dense_topt;
    dense_topt.backend = SolverBackend::kDense;
    TransientOptions sparse_topt;
    sparse_topt.backend = SolverBackend::kSparse;
    const auto initial = ambient_state(model);
    const TransientResult tr_dense =
        simulate_transient(model, power, 0.035, initial, dense_topt);
    const TransientResult tr_sparse =
        simulate_transient(model, power, 0.035, initial, sparse_topt);
    ASSERT_EQ(tr_dense.steps, tr_sparse.steps);
    EXPECT_LT(max_rel_diff(tr_dense.final_temperature,
                           tr_sparse.final_temperature),
              kBackendTolerance)
        << "seed=" << seed;
    EXPECT_LT(
        max_rel_diff(tr_dense.peak_temperature, tr_sparse.peak_temperature),
        kBackendTolerance)
        << "seed=" << seed;
  }
}

TEST(SolverBackendTest, AutoPicksDenseBelowAndSparseAboveTheCrossover) {
  // Small model: kAuto must take the EXACT dense path (same cached
  // factor, bit-identical result).
  const RCModel small(nine_floorplan(), PackageParams{});
  ASSERT_LT(small.node_count(), kSparseBackendCrossover);
  const std::vector<double> small_power(9, 4.0);
  SteadyStateOptions auto_opts;  // backend defaults to kAuto
  SteadyStateOptions dense_opts;
  dense_opts.backend = SolverBackend::kDense;
  const auto via_auto = solve_steady_state(small, small_power, auto_opts);
  const auto via_dense = solve_steady_state(small, small_power, dense_opts);
  for (std::size_t i = 0; i < via_auto.rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_auto.rise[i], via_dense.rise[i]);
  }

  // Large model: kAuto must take the EXACT sparse path.
  const RCModel large = large_grid_model();
  ASSERT_GE(large.node_count(), kSparseBackendCrossover);
  const std::vector<double> large_power(large.block_count(), 1.0);
  SteadyStateOptions sparse_opts;
  sparse_opts.backend = SolverBackend::kSparse;
  const auto large_auto = solve_steady_state(large, large_power, auto_opts);
  const auto large_sparse = solve_steady_state(large, large_power, sparse_opts);
  for (std::size_t i = 0; i < large_auto.rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(large_auto.rise[i], large_sparse.rise[i]);
  }
}

TEST(SolverBackendTest, Rk4MatrixFreeSparsePathAgreesWithDense) {
  // The explicit integrator's stage derivative is a G product: dense n²
  // below the backend choice, the CSR SpMV fast path under kSparse
  // (ROADMAP "matrix-free RK4"). Same nonzero terms, same within-row
  // order, so the two must agree to roundoff — far inside the 1e-9
  // cross-backend bound.
  const RCModel model(quad_floorplan(), PackageParams{});
  const std::vector<double> power(model.block_count(), 6.0);
  const auto initial = ambient_state(model);
  TransientOptions dense_opts;
  dense_opts.integrator = TransientIntegrator::kRk4;
  dense_opts.dt = 1e-5;  // explicit integration of a stiff system
  dense_opts.backend = SolverBackend::kDense;
  TransientOptions sparse_opts = dense_opts;
  sparse_opts.backend = SolverBackend::kSparse;
  const TransientResult dense =
      simulate_transient(model, power, 0.005, initial, dense_opts);
  const TransientResult sparse =
      simulate_transient(model, power, 0.005, initial, sparse_opts);
  ASSERT_EQ(dense.steps, sparse.steps);
  EXPECT_LT(max_rel_diff(dense.final_temperature, sparse.final_temperature),
            kBackendTolerance);
  EXPECT_LT(max_rel_diff(dense.peak_temperature, sparse.peak_temperature),
            kBackendTolerance);
  // And the explicit path must track the implicit one on this horizon
  // (the existing RK4-vs-BE bound, re-checked through the sparse path).
  TransientOptions be_opts;
  be_opts.dt = 1e-5;
  be_opts.backend = SolverBackend::kSparse;
  const TransientResult be =
      simulate_transient(model, power, 0.005, initial, be_opts);
  EXPECT_LT(max_rel_diff(sparse.final_temperature, be.final_temperature),
            1e-3);
}

TEST(SolverBackendTest, AnalyzerHonoursTheBackend) {
  const core::SocSpec soc = testing::nine_soc();
  ThermalAnalyzer::Options dense_opts;
  dense_opts.backend = SolverBackend::kDense;
  ThermalAnalyzer::Options sparse_opts;
  sparse_opts.backend = SolverBackend::kSparse;
  ThermalAnalyzer dense(soc.flp, soc.package, dense_opts);
  ThermalAnalyzer sparse(soc.flp, soc.package, sparse_opts);
  const SessionSimulation sim_dense =
      dense.simulate_session(soc.test_powers(), 0.5);
  const SessionSimulation sim_sparse =
      sparse.simulate_session(soc.test_powers(), 0.5);
  EXPECT_EQ(sim_dense.hottest_block, sim_sparse.hottest_block);
  EXPECT_LT(max_rel_diff(sim_dense.peak_temperature,
                         sim_sparse.peak_temperature),
            kBackendTolerance);
}

// --- sparse cache entries: mirror thermal_solver_cache_test ----------

TEST(SparseSolverCacheTest, RepeatSparseLookupsHitTheCache) {
  ThermalSolverCache cache(8);
  const RCModel model(nine_floorplan(), PackageParams{});
  const auto first = cache.sparse_cholesky(model);
  EXPECT_EQ(cache.stats().misses, 1u);
  const auto second = cache.sparse_cholesky(model);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(first.get(), second.get());

  // Dense and sparse factors of the same model are distinct entries.
  cache.cholesky(model);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SparseSolverCacheTest, DistinctModelsNeverAlias) {
  ThermalSolverCache cache(8);
  const RCModel a(nine_floorplan(), PackageParams{});
  const RCModel b(nine_floorplan(), PackageParams{});
  EXPECT_NE(cache.sparse_cholesky(a).get(), cache.sparse_cholesky(b).get());
  const RCModel copy = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(cache.sparse_cholesky(a).get(), cache.sparse_cholesky(copy).get());
}

TEST(SparseSolverCacheTest, InvalidateDropsSparseEntriesToo) {
  ThermalSolverCache cache(8);
  const RCModel a(nine_floorplan(), PackageParams{});
  const RCModel b(quad_floorplan(), PackageParams{});
  const auto held = cache.sparse_cholesky(a);
  cache.sparse_stepper(a, 1e-3);
  cache.sparse_cholesky(b);
  EXPECT_EQ(cache.stats().entries, 3u);

  cache.invalidate(a);
  EXPECT_EQ(cache.stats().entries, 1u);  // only b's factor survives
  cache.reset_stats();
  cache.sparse_cholesky(b);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Handed-out factors stay valid after invalidation.
  EXPECT_NO_THROW(held->solve(std::vector<double>(a.node_count(), 1.0)));
}

TEST(SparseSolverCacheTest, SparseStepperIsCachedPerDt) {
  ThermalSolverCache cache(8);
  const RCModel model(nine_floorplan(), PackageParams{});
  const auto s1 = cache.sparse_stepper(model, 1e-3);
  const auto s2 = cache.sparse_stepper(model, 1e-3);
  const auto s3 = cache.sparse_stepper(model, 2e-3);
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_NE(s1.get(), s3.get());
  EXPECT_THROW(cache.sparse_stepper(model, 0.0), InvalidArgument);
  // Dense and sparse steppers at the same dt are distinct entries.
  EXPECT_NE(static_cast<const void*>(s1.get()),
            static_cast<const void*>(cache.stepper(model, 1e-3).get()));
}

TEST(SparseSolverCacheTest, LruEvictionBeyondCapacityStaysCorrect) {
  ThermalSolverCache small(2);
  const RCModel a(nine_floorplan(), PackageParams{});
  const RCModel b(quad_floorplan(), PackageParams{});
  const RCModel c(nine_floorplan(), PackageParams{});
  small.sparse_cholesky(a);
  small.sparse_cholesky(b);
  small.sparse_cholesky(c);  // evicts the LRU entry (a)
  EXPECT_EQ(small.stats().entries, 2u);

  small.reset_stats();
  const auto refactored = small.sparse_cholesky(a);
  EXPECT_EQ(small.stats().misses, 1u);
  const auto power = a.expand_power(std::vector<double>(9, 10.0));
  const auto rise = refactored->solve(power);
  const auto expected = linalg::SparseCholeskyFactor(a.conductance_sparse())
                            .solve(power);
  for (std::size_t i = 0; i < rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(rise[i], expected[i]);
  }
}

}  // namespace
}  // namespace thermo::thermal
