// Request-kind coverage: the two non-sweep kinds (power-trace replay,
// chained-session validation) pinned end to end — canonical request
// strings, exact validation-error messages, and exact serve records —
// plus the .flp block-count cost regression. Golden strings follow the
// same rule as scenario_request_test.cpp: any diff here is a schema
// change and must show up in docs/SERVE.md too.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "scenario/cost.hpp"
#include "scenario/request.hpp"
#include "scenario/runner.hpp"
#include "util/error.hpp"

namespace thermo::scenario {
namespace {

std::string normalize(const std::string& line) {
  return to_json_line(parse_request_line(line));
}

std::string validation_error_of(const std::string& line) {
  try {
    parse_request_line(line);
  } catch (const InvalidArgument& e) {
    return e.what();
  }
  return "<no throw>";
}

// A 2-step replay on the fig1 SoC; spaces in the inline trace, canonical
// form preserves the text verbatim.
constexpr const char* kPtraceInput =
    R"({"id":"pt","kind":"ptrace","soc":{"kind":"fig1"},)"
    R"("ptrace":{"text":"C1 C2 C3 C4 C5 C6 C7\n12 0 0 0 15 15 15\n)"
    R"(0 15 15 15 0 0 0\n","step_duration":0.05},"solver":{"dt":0.01}})";

constexpr const char* kPtraceGolden =
    R"({"id":"pt","kind":"ptrace","soc":{"kind":"fig1","power_scale":1},)"
    R"("ptrace":{"text":"C1 C2 C3 C4 C5 C6 C7\n12 0 0 0 15 15 15\n)"
    R"(0 15 15 15 0 0 0\n","step_duration":0.05},)"
    R"("solver":{"dt":0.01,"transient":true,"backend":"auto"}})";

constexpr const char* kChainedInput =
    R"({"id":"ch","kind":"chained","soc":{"kind":"fig1"},"stcl":60,)"
    R"("chained":{"cooling_gap":0.25},"solver":{"dt":0.01,"transient":false}})";

constexpr const char* kChainedGolden =
    R"({"id":"ch","kind":"chained","soc":{"kind":"fig1","power_scale":1},)"
    R"("tl":155,"stcl":60,"stc_scale":0,"weight_factor":1.1,)"
    R"("solo_policy":"raise-limit","core_order":"desc-solo-tc",)"
    R"("chained":{"cooling_gap":0.25},)"
    R"("solver":{"dt":0.01,"transient":false,"backend":"auto"}})";

TEST(KindGolden, PtraceCanonicalForm) {
  EXPECT_EQ(normalize(kPtraceInput), kPtraceGolden);
  EXPECT_EQ(normalize(kPtraceGolden), kPtraceGolden);  // fixpoint
}

TEST(KindGolden, ChainedCanonicalForm) {
  EXPECT_EQ(normalize(kChainedInput), kChainedGolden);
  EXPECT_EQ(normalize(kChainedGolden), kChainedGolden);  // fixpoint
}

TEST(KindParse, PtraceFieldsAreApplied) {
  const ScenarioRequest r = parse_request_line(kPtraceInput);
  EXPECT_EQ(r.kind, RequestKind::kPtrace);
  EXPECT_TRUE(r.ptrace.path.empty());
  EXPECT_NE(r.ptrace.text.find("C1 C2"), std::string::npos);
  EXPECT_DOUBLE_EQ(r.ptrace.step_duration, 0.05);
  EXPECT_TRUE(r.solver.transient);
}

TEST(KindParse, PtracePathForm) {
  const ScenarioRequest r = parse_request_line(
      R"({"kind":"ptrace","ptrace":{"path":"trace.ptrace"}})");
  EXPECT_EQ(r.ptrace.path, "trace.ptrace");
  EXPECT_DOUBLE_EQ(r.ptrace.step_duration, 0.001);  // default
}

TEST(KindParse, ChainedDefaultsApply) {
  // The chained object itself is optional; cooling_gap defaults to 0.
  const ScenarioRequest r = parse_request_line(R"({"kind":"chained"})");
  EXPECT_EQ(r.kind, RequestKind::kChained);
  EXPECT_DOUBLE_EQ(r.chained.cooling_gap, 0.0);
  EXPECT_TRUE(r.stcl.single());
}

TEST(KindParse, DefaultKindIsStclSweep) {
  EXPECT_EQ(parse_request_line("{}").kind, RequestKind::kStclSweep);
  EXPECT_STREQ(request_kind_name(RequestKind::kStclSweep), "stcl_sweep");
  EXPECT_STREQ(request_kind_name(RequestKind::kPtrace), "ptrace");
  EXPECT_STREQ(request_kind_name(RequestKind::kChained), "chained");
}

// --- exact validation-error messages ---------------------------------

TEST(KindValidation, UnknownKind) {
  EXPECT_EQ(validation_error_of(R"({"kind":"bogus"})"),
            "scenario request: kind: unknown kind 'bogus' (expected "
            "'stcl_sweep', 'ptrace', 'chained', or 'grid_steady')");
}

TEST(KindValidation, PtraceObjectRequired) {
  EXPECT_EQ(validation_error_of(R"({"kind":"ptrace"})"),
            "scenario request: ptrace: required for kind 'ptrace'");
}

TEST(KindValidation, PtraceOnlyValidForPtraceKind) {
  EXPECT_EQ(validation_error_of(R"({"ptrace":{"text":"x"}})"),
            "scenario request: ptrace: only valid for kind 'ptrace'");
}

TEST(KindValidation, PtraceNeedsExactlyOneSource) {
  EXPECT_EQ(validation_error_of(
                R"({"kind":"ptrace","ptrace":{"path":"a","text":"b"}})"),
            "scenario request: ptrace: exactly one of path or text is "
            "required");
  EXPECT_EQ(validation_error_of(R"({"kind":"ptrace","ptrace":{}})"),
            "scenario request: ptrace: exactly one of path or text is "
            "required");
}

TEST(KindValidation, PtraceStepDurationPositive) {
  EXPECT_EQ(validation_error_of(R"({"kind":"ptrace",)"
                                R"("ptrace":{"text":"x","step_duration":0}})"),
            "scenario request: ptrace.step_duration: must be finite and > 0");
}

TEST(KindValidation, PtraceUnknownField) {
  EXPECT_EQ(validation_error_of(
                R"({"kind":"ptrace","ptrace":{"text":"x","bogus":1}})"),
            "scenario request: ptrace: unknown field 'bogus'");
}

TEST(KindValidation, PtraceRequiresTransientSolver) {
  EXPECT_EQ(validation_error_of(R"({"kind":"ptrace","ptrace":{"text":"x"},)"
                                R"("solver":{"transient":false}})"),
            "scenario request: solver.transient: must be true for kind "
            "'ptrace'");
}

TEST(KindValidation, SchedulingKnobsRejectedForPtrace) {
  EXPECT_EQ(validation_error_of(
                R"({"kind":"ptrace","ptrace":{"text":"x"},"tl":100})"),
            "scenario request: tl: not valid for kind 'ptrace'");
  EXPECT_EQ(validation_error_of(
                R"({"kind":"ptrace","ptrace":{"text":"x"},"stcl":50})"),
            "scenario request: stcl: not valid for kind 'ptrace'");
  EXPECT_EQ(validation_error_of(R"({"kind":"ptrace","ptrace":{"text":"x"},)"
                                R"("weight_factor":1.2})"),
            "scenario request: weight_factor: not valid for kind 'ptrace'");
}

TEST(KindValidation, ChainedOnlyValidForChainedKind) {
  EXPECT_EQ(validation_error_of(R"({"chained":{}})"),
            "scenario request: chained: only valid for kind 'chained'");
}

TEST(KindValidation, ChainedCoolingGapNonNegative) {
  EXPECT_EQ(validation_error_of(
                R"({"kind":"chained","chained":{"cooling_gap":-1}})"),
            "scenario request: chained.cooling_gap: must be finite and >= 0");
}

TEST(KindValidation, ChainedUnknownField) {
  EXPECT_EQ(
      validation_error_of(R"({"kind":"chained","chained":{"bogus":1}})"),
      "scenario request: chained: unknown field 'bogus'");
}

TEST(KindValidation, ChainedRequiresSingleStcl) {
  EXPECT_EQ(validation_error_of(
                R"({"kind":"chained","stcl":{"min":20,"max":40,"step":10}})"),
            "scenario request: stcl: kind 'chained' requires a single stcl "
            "value");
}

// --- golden serve records --------------------------------------------
//
// Exact record bytes for the two golden requests. Like the serve smoke
// tests, these assume one platform/compiler produces stable floating
// point (x86-64 GCC, no FMA contraction at the baseline flags) — the
// same assumption every byte-determinism gate in this repo makes.

TEST(KindServe, PtraceGoldenRecord) {
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(parse_request_line(kPtraceInput));
  EXPECT_EQ(
      to_json(result).dump(),
      R"({"id":"pt","ok":true,"kind":"ptrace","soc":"fig1-hypothetical",)"
      R"("cores":7,"trace":{"steps":2,"duration":0.1,)"
      R"("max_temperature":98.53929376077154,"hottest":"C4"},)"
      R"("simulation_effort":0.1})");
}

TEST(KindServe, ChainedGoldenRecord) {
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(parse_request_line(kChainedInput));
  EXPECT_EQ(
      to_json(result).dump(),
      R"({"id":"ch","ok":true,"kind":"chained","soc":"fig1-hypothetical",)"
      R"("cores":7,"schedule":{"stcl":60,"length":1,"sessions":1,)"
      R"("effective_tl":155},"chained":{"cooling_gap":0.25,)"
      R"("independent_max_temperature":135.66064041622144,)"
      R"("chained_max_temperature":103.60444397187887,"violations":0,)"
      R"("safe":true},"simulation_effort":2})");
}

TEST(KindServe, EmptyTraceIsARuntimeError) {
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(parse_request_line(
      R"({"kind":"ptrace","soc":{"kind":"fig1"},)"
      R"("ptrace":{"text":"C1 C2 C3 C4 C5 C6 C7\n"}})"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "ptrace contains no time steps");
  // Error records keep the kind-less {id, ok, error} shape.
  const std::string record = to_json(result).dump();
  EXPECT_EQ(record.find(R"("kind")"), std::string::npos) << record;
}

TEST(KindServe, MissingTraceFileIsARuntimeError) {
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(parse_request_line(
      R"({"kind":"ptrace","ptrace":{"path":"/nonexistent/t.ptrace"}})"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot open ptrace file"), std::string::npos);
}

TEST(KindServe, CoolingGapReducesChainedPeak) {
  // Physics sanity on top of the goldens: a longer cooling gap can only
  // lower (or keep) the chained peak temperature.
  ScenarioRunner runner;
  auto chained_max = [&](double gap) {
    ScenarioRequest r = parse_request_line(kChainedInput);
    r.chained.cooling_gap = gap;
    return runner.run(r).chained.chained_max;
  };
  EXPECT_GE(chained_max(0.0), chained_max(2.0));
}

// --- .flp cost features read the real block count --------------------

std::string write_flp(const std::string& name, int blocks) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << "# comment line\n\n";
  for (int i = 0; i < blocks; ++i) {
    out << "b" << i << "\t0.001\t0.001\t" << 0.001 * i << "\t0\t# trailing\n";
  }
  return path;
}

ScenarioRequest flp_request(const std::string& path) {
  ScenarioRequest r;
  r.soc.kind = SocKind::kFlp;
  r.soc.flp_path = path;
  return r;
}

TEST(FlpCost, BlockCountIsReadFromTheFile) {
  const std::string path = write_flp("cost3.flp", 3);
  const dispatch::CostFeatures features =
      request_cost_features(flp_request(path));
  EXPECT_EQ(features.cores, 3u);  // comments/blanks don't count
}

TEST(FlpCost, UnreadableFileFallsBackToTheGuess) {
  const dispatch::CostFeatures features =
      request_cost_features(flp_request("/nonexistent/chip.flp"));
  EXPECT_EQ(features.cores, 40u);
}

TEST(FlpCost, RankingFollowsBlockCount) {
  // Regression for the old fixed guess: a 60-block floorplan must now
  // rank above a 3-block one (both previously scored as "40 cores").
  const std::string small = write_flp("rank3.flp", 3);
  const std::string large = write_flp("rank60.flp", 60);
  EXPECT_GT(estimate_request_cost(flp_request(large)),
            estimate_request_cost(flp_request(small)));
  // And the real count slots .flp requests correctly among synthetics.
  ScenarioRequest synthetic_mid;
  synthetic_mid.soc.kind = SocKind::kSynthetic;
  synthetic_mid.soc.synthetic.cores = 30;
  EXPECT_GT(estimate_request_cost(flp_request(large)),
            estimate_request_cost(synthetic_mid));
  EXPECT_LT(estimate_request_cost(flp_request(small)),
            estimate_request_cost(synthetic_mid));
}

// --- ptrace cost features --------------------------------------------

TEST(PtraceCost, OracleCallsEqualTraceSteps) {
  const ScenarioRequest r = parse_request_line(kPtraceInput);
  const dispatch::CostFeatures features = request_cost_features(r);
  EXPECT_DOUBLE_EQ(features.oracle_calls, 2.0);  // 2 trace lines
  EXPECT_TRUE(features.transient);
  EXPECT_EQ(features.stcl_points, 1u);
  EXPECT_DOUBLE_EQ(features.steps_per_call, 5.0);  // 0.05 / 0.01
}

TEST(PtraceCost, LongerTraceCostsMore) {
  ScenarioRequest short_trace = parse_request_line(kPtraceInput);
  ScenarioRequest long_trace = short_trace;
  for (int i = 0; i < 50; ++i) {
    long_trace.ptrace.text += "1 1 1 1 1 1 1\n";
  }
  EXPECT_GT(estimate_request_cost(long_trace),
            estimate_request_cost(short_trace));
}

}  // namespace
}  // namespace thermo::scenario
