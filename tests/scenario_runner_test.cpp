#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/thermal_scheduler.hpp"
#include "scenario/demo.hpp"
#include "scenario/serve.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"

namespace thermo::scenario {
namespace {

ScenarioRequest alpha_request(double stcl) {
  ScenarioRequest request;
  // Copy-assign from a named string: literal operator= here trips a
  // GCC 12 -Wrestrict false positive (PR105651) under heavy inlining.
  static const std::string kId = "t";
  request.id = kId;
  request.stcl.min = request.stcl.max = stcl;
  return request;
}

TEST(ScenarioRunner, MatchesDirectSchedulerRun) {
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(alpha_request(50.0));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.soc_name, soc::alpha_soc().name);
  EXPECT_EQ(result.cores, 15u);
  ASSERT_EQ(result.points.size(), 1u);

  // The same scenario lowered by hand must agree bit-for-bit.
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::ThermalSchedulerOptions options;
  options.temperature_limit = 155.0;
  options.stc_limit = 50.0;
  options.model.stc_scale = soc::alpha_stc_scale();
  options.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
  const core::ThermalAwareScheduler scheduler(options);
  const core::ScheduleResult direct = scheduler.generate(soc, analyzer);

  EXPECT_EQ(result.points[0].schedule_length, direct.schedule_length);
  EXPECT_EQ(result.points[0].simulation_effort, direct.simulation_effort);
  EXPECT_EQ(result.points[0].sessions, direct.schedule.session_count());
  EXPECT_EQ(result.points[0].max_temperature, direct.max_temperature);
  EXPECT_EQ(result.points[0].discarded_sessions, direct.discarded_sessions);
  EXPECT_EQ(result.simulation_effort, direct.simulation_effort);
}

TEST(ScenarioRunner, StclRangeYieldsOnePointPerValue) {
  ScenarioRunner runner;
  ScenarioRequest request = alpha_request(0.0);
  request.stcl.min = 30.0;
  request.stcl.max = 60.0;
  request.stcl.step = 15.0;
  request.solver.transient = false;  // keep the sweep cheap
  const ScenarioResult result = runner.run(request);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_DOUBLE_EQ(result.points[0].stcl, 30.0);
  EXPECT_DOUBLE_EQ(result.points[1].stcl, 45.0);
  EXPECT_DOUBLE_EQ(result.points[2].stcl, 60.0);
  double total = 0.0;
  for (const core::StclSweepPoint& point : result.points) {
    total += point.simulation_effort;
    EXPECT_GT(point.sessions, 0u);
  }
  EXPECT_DOUBLE_EQ(result.simulation_effort, total);
}

TEST(ScenarioRunner, SharesModelsByGeometry) {
  ScenarioRunner runner;
  ASSERT_TRUE(runner.run(alpha_request(40.0)).ok);
  ASSERT_TRUE(runner.run(alpha_request(60.0)).ok);
  ScenarioRequest scaled = alpha_request(40.0);
  scaled.soc.power_scale = 1.5;  // same geometry, different corner
  ASSERT_TRUE(runner.run(scaled).ok);
  EXPECT_EQ(runner.stats().model_misses, 1u);
  EXPECT_EQ(runner.stats().model_hits, 2u);

  ScenarioRequest fig1 = alpha_request(50.0);
  fig1.soc.kind = SocKind::kFig1;
  ASSERT_TRUE(runner.run(fig1).ok);
  EXPECT_EQ(runner.stats().model_misses, 2u);
}

/// A cheap request with its own synthetic geometry per `seed`: steady
/// oracle, one STCL point, 12 cores — distinct geometries without
/// distinct cost.
ScenarioRequest synthetic_request(std::uint64_t seed) {
  ScenarioRequest request;
  request.id = "syn-" + std::to_string(seed);
  request.soc.kind = SocKind::kSynthetic;
  request.soc.synthetic.seed = seed;
  request.stcl.min = request.stcl.max = 50.0;
  request.solver.transient = false;
  return request;
}

TEST(ScenarioRunner, ModelCacheEvictsCleanlyPastSixtyFourGeometries) {
  // Regression for the kMaxCachedModels LRU bound: the 65th distinct
  // geometry must evict the least recently used entry instead of
  // growing forever — and eviction must be invisible except as a
  // rebuild (a re-visited evicted geometry is a miss, a recently used
  // one still hits).
  ScenarioRunner runner;
  for (std::uint64_t seed = 1;
       seed <= ScenarioRunner::kMaxCachedModels + 1; ++seed) {
    ASSERT_TRUE(runner.run(synthetic_request(seed)).ok) << "seed " << seed;
  }
  EXPECT_EQ(runner.stats().model_misses, ScenarioRunner::kMaxCachedModels + 1);
  EXPECT_EQ(runner.stats().model_hits, 0u);

  // Seed 1 was the LRU victim when seed 65 arrived: revisiting it is a
  // rebuild...
  ASSERT_TRUE(runner.run(synthetic_request(1)).ok);
  EXPECT_EQ(runner.stats().model_misses, ScenarioRunner::kMaxCachedModels + 2);
  EXPECT_EQ(runner.stats().model_hits, 0u);
  // ...while the most recently inserted geometry is still resident.
  ASSERT_TRUE(
      runner.run(synthetic_request(ScenarioRunner::kMaxCachedModels + 1)).ok);
  EXPECT_EQ(runner.stats().model_hits, 1u);
}

TEST(ScenarioRunner, ServeOutputUnchangedByMidBatchEviction) {
  // A 66-geometry batch churns the model cache mid-serve; output bytes
  // must not notice, at any thread count.
  std::string input;
  for (std::uint64_t seed = 1;
       seed <= ScenarioRunner::kMaxCachedModels + 2; ++seed) {
    input += to_json_line(synthetic_request(seed));
    input += '\n';
  }
  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ScenarioRunner runner;
    ServeOptions options;
    options.threads = threads;
    std::istringstream in(input);
    std::ostringstream out;
    const ServeSummary summary = serve_stream(in, out, runner, options);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_EQ(summary.requests, ScenarioRunner::kMaxCachedModels + 2);
    if (reference.empty()) {
      reference = out.str();
    } else {
      EXPECT_EQ(out.str(), reference) << "threads=" << threads;
    }
  }
}

TEST(ScenarioRunner, CapturesErrorsInTheRecord) {
  ScenarioRunner runner;
  ScenarioRequest request;
  request.id = "missing-file";
  request.soc.kind = SocKind::kFlp;
  request.soc.flp_path = "/nonexistent/chip.flp";
  const ScenarioResult result = runner.run(request);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.id, "missing-file");
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.points.empty());

  const std::string record = to_json(result).dump();
  EXPECT_NE(record.find(R"("id":"missing-file")"), std::string::npos);
  EXPECT_NE(record.find(R"("ok":false)"), std::string::npos);
}

TEST(ScenarioResultJson, CanonicalRecordShape) {
  ScenarioResult result;
  result.id = "r";
  result.ok = true;
  result.soc_name = "alpha";
  result.cores = 15;
  result.points.push_back(
      core::StclSweepPoint{50.0, 5.0, 23.0, 5, 150.5, 2, 155.0});
  result.simulation_effort = 23.0;
  EXPECT_EQ(
      to_json(result).dump(),
      R"({"id":"r","ok":true,"kind":"stcl_sweep","soc":"alpha","cores":15,"points":[)"
      R"({"stcl":50,"schedule_length":5,"simulation_effort":23,"sessions":5,)"
      R"("max_temperature":150.5,"discarded_sessions":2,"effective_tl":155}],)"
      R"("simulation_effort":23})");
}

TEST(ServeStream, AnswersEveryLineInOrderAndDeterministically) {
  std::string input;
  input += to_json_line(alpha_request(40.0)) + "\n";
  input += "\n";  // blank line: skipped, no record
  input += "{broken json\n";
  input += R"({"tl":-5})" "\n";  // parses as JSON, fails validation
  ScenarioRequest anonymous = alpha_request(55.0);
  anonymous.id.clear();  // gets "line-5"
  input += to_json_line(anonymous) + "\n";

  auto run_with = [&](std::size_t threads) {
    std::istringstream in(input);
    std::ostringstream out;
    ScenarioRunner runner;
    ServeOptions options;
    options.threads = threads;
    const ServeSummary summary = serve_stream(in, out, runner, options);
    EXPECT_EQ(summary.requests, 4u);
    EXPECT_EQ(summary.succeeded, 2u);
    EXPECT_EQ(summary.failed, 2u);
    return out.str();
  };

  const std::string serial = run_with(1);
  const std::string parallel = run_with(4);
  EXPECT_EQ(serial, parallel);

  std::vector<std::string> records;
  std::istringstream lines(serial);
  for (std::string line; std::getline(lines, line);) records.push_back(line);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_NE(records[0].find(R"("id":"t","ok":true)"), std::string::npos);
  EXPECT_NE(records[1].find(R"("id":"line-3","ok":false)"), std::string::npos);
  EXPECT_NE(records[1].find("json: line 1"), std::string::npos);
  EXPECT_NE(records[2].find(R"("id":"line-4","ok":false)"), std::string::npos);
  EXPECT_NE(records[2].find("tl: must be finite and > 0"), std::string::npos);
  EXPECT_NE(records[3].find(R"("id":"line-5","ok":true)"), std::string::npos);
}

TEST(DemoBatch, IsDeterministicAndCoversKinds) {
  const std::vector<ScenarioRequest> a = demo_batch(25, 20);
  const std::vector<ScenarioRequest> b = demo_batch(25, 20);
  ASSERT_EQ(a.size(), 25u);
  bool saw_alpha = false, saw_fig1 = false, saw_synthetic = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(to_json_line(a[i]), to_json_line(b[i]));
    saw_alpha |= a[i].soc.kind == SocKind::kAlpha;
    saw_fig1 |= a[i].soc.kind == SocKind::kFig1;
    saw_synthetic |= a[i].soc.kind == SocKind::kSynthetic;
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_fig1);
  EXPECT_TRUE(saw_synthetic);
  // A different seed produces a different batch (the synthetic seeds
  // are drawn from the generator).
  EXPECT_NE(to_json_line(demo_batch(25, 21)[2]), to_json_line(a[2]));
}

}  // namespace
}  // namespace thermo::scenario
