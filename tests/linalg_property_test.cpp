// Parameterised property sweeps across the linear-algebra substrate:
// the solvers must agree with each other on any well-posed system, at
// any size in the range the thermal models use.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/ode.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"
#include "util/rng.hpp"

namespace thermo::linalg {
namespace {

/// Random symmetric diagonally-dominant (hence SPD) sparse system that
/// looks like a thermal conductance matrix: a 2-D grid Laplacian with
/// random positive couplings plus random grounding.
SparseMatrix random_conductance(std::size_t side, Rng& rng) {
  const std::size_t n = side * side;
  SparseMatrix::Builder builder(n, n);
  auto at = [side](std::size_t r, std::size_t c) { return r * side + c; };
  std::vector<double> diag(n, 0.0);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      if (c + 1 < side) {
        const double g = rng.uniform(0.1, 5.0);
        builder.add(at(r, c), at(r, c + 1), -g);
        builder.add(at(r, c + 1), at(r, c), -g);
        diag[at(r, c)] += g;
        diag[at(r, c + 1)] += g;
      }
      if (r + 1 < side) {
        const double g = rng.uniform(0.1, 5.0);
        builder.add(at(r, c), at(r + 1, c), -g);
        builder.add(at(r + 1, c), at(r, c), -g);
        diag[at(r, c)] += g;
        diag[at(r + 1, c)] += g;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Ground every node a little (convection-like), keeping SPD strict.
    builder.add(i, i, diag[i] + rng.uniform(0.01, 1.0));
  }
  return builder.build();
}

Vector random_rhs(std::size_t n, Rng& rng) {
  Vector b(n);
  for (double& v : b) v = rng.uniform(0.0, 20.0);
  return b;
}

class SolverAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverAgreement, AllFourSolversProduceTheSameSolution) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 131 + GetParam());
    const SparseMatrix a = random_conductance(GetParam(), rng);
    const Vector b = random_rhs(a.rows(), rng);
    const DenseMatrix dense = a.to_dense();

    const Vector x_lu = lu_solve(dense, b);
    const Vector x_chol = cholesky_solve(dense, b);
    const IterativeResult cg = conjugate_gradient(a, b);
    IterativeOptions gs_options;
    gs_options.max_iterations = 50000;
    const IterativeResult gs = gauss_seidel(a, b, gs_options);

    ASSERT_TRUE(cg.converged);
    ASSERT_TRUE(gs.converged);
    const double scale = 1.0 + norm_inf(x_lu);
    EXPECT_LT(norm_inf(subtract(x_lu, x_chol)) / scale, 1e-9);
    EXPECT_LT(norm_inf(subtract(x_lu, cg.solution)) / scale, 1e-6);
    EXPECT_LT(norm_inf(subtract(x_lu, gs.solution)) / scale, 1e-5);
  }
}

TEST_P(SolverAgreement, CgConvergesWithinDimensionIterations) {
  // For SPD systems CG converges in at most n steps (exact arithmetic);
  // with the Jacobi preconditioner and fp noise we allow 2n.
  Rng rng(GetParam() + 999);
  const SparseMatrix a = random_conductance(GetParam(), rng);
  const Vector b = random_rhs(a.rows(), rng);
  const IterativeResult cg = conjugate_gradient(a, b);
  EXPECT_TRUE(cg.converged);
  EXPECT_LE(cg.iterations, 2 * a.rows() + 10);
}

TEST_P(SolverAgreement, SolutionIsNonNegativeForNonNegativeRhs) {
  // Physical sanity: conductance systems map non-negative power to
  // non-negative temperature rises (inverse M-matrix positivity).
  Rng rng(GetParam() + 1234);
  const SparseMatrix a = random_conductance(GetParam(), rng);
  const Vector b = random_rhs(a.rows(), rng);
  const Vector x = cholesky_solve(a.to_dense(), b);
  for (double v : x) EXPECT_GE(v, -1e-12);
}

INSTANTIATE_TEST_SUITE_P(GridSides, SolverAgreement,
                         ::testing::Values(2, 3, 4, 6, 8));

class OdeAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OdeAgreement, BackwardEulerMatchesRk4OnRandomRcSystems) {
  Rng rng(GetParam() * 7 + 5);
  const SparseMatrix a = random_conductance(GetParam(), rng);
  const DenseMatrix g = a.to_dense();
  const std::size_t n = g.rows();
  Vector capacitance(n);
  for (double& c : capacitance) c = rng.uniform(0.5, 2.0);
  const Vector b = random_rhs(n, rng);

  // Backward Euler with a small step...
  const LinearImplicitStepper stepper(g, capacitance, 1e-3);
  Vector y_be(n, 0.0);
  for (int step = 0; step < 500; ++step) y_be = stepper.step(y_be, b);

  // ...vs RK4 on the same horizon.
  const OdeRhs rhs = [&](double, const Vector& y) {
    Vector dy = g.multiply(y);
    for (std::size_t i = 0; i < n; ++i) dy[i] = (b[i] - dy[i]) / capacitance[i];
    return dy;
  };
  const Vector y_rk4 = rk4_integrate(rhs, 0.0, 0.5, Vector(n, 0.0), 1e-4);

  const double scale = 1.0 + norm_inf(y_rk4);
  EXPECT_LT(norm_inf(subtract(y_be, y_rk4)) / scale, 5e-3);
}

TEST_P(OdeAgreement, SteadyStateOfOdeMatchesLinearSolve) {
  Rng rng(GetParam() * 13 + 17);
  const SparseMatrix a = random_conductance(GetParam(), rng);
  const DenseMatrix g = a.to_dense();
  const std::size_t n = g.rows();
  const Vector capacitance(n, 1.0);
  const Vector b = random_rhs(n, rng);

  const LinearImplicitStepper stepper(g, capacitance, 0.5);
  Vector y(n, 0.0);
  for (int step = 0; step < 2000; ++step) y = stepper.step(y, b);

  const Vector x = cholesky_solve(g, b);
  EXPECT_LT(norm_inf(subtract(y, x)) / (1.0 + norm_inf(x)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(GridSides, OdeAgreement, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace thermo::linalg
