#include "linalg/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace thermo::linalg {
namespace {

// dy/dt = -y, y(0) = 1  ->  y(t) = exp(-t)
const OdeRhs kDecay = [](double, const Vector& y) {
  return Vector{-y[0]};
};

TEST(Rk4, MatchesExponentialDecay) {
  const Vector y = rk4_integrate(kDecay, 0.0, 1.0, {1.0}, 1e-3);
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-9);
}

TEST(Rk4, FourthOrderConvergence) {
  // Halving dt should shrink the error by ~16x.
  auto error_at = [](double dt) {
    const Vector y = rk4_integrate(kDecay, 0.0, 1.0, {1.0}, dt);
    return std::fabs(y[0] - std::exp(-1.0));
  };
  const double e1 = error_at(0.1);
  const double e2 = error_at(0.05);
  EXPECT_GT(e1 / e2, 12.0);
  EXPECT_LT(e1 / e2, 20.0);
}

TEST(Rk4, LandsExactlyOnHorizon) {
  // 0.3 is not a multiple of dt=0.07; the last step must be shortened.
  const Vector y = rk4_integrate(kDecay, 0.0, 0.3, {1.0}, 0.07);
  EXPECT_NEAR(y[0], std::exp(-0.3), 1e-6);
}

TEST(Rk4, ObserverSeesMonotoneTime) {
  double last_t = -1.0;
  std::size_t calls = 0;
  rk4_integrate(kDecay, 0.0, 0.5, {1.0}, 0.1,
                [&](double t, const Vector&) {
                  EXPECT_GT(t, last_t);
                  last_t = t;
                  ++calls;
                });
  EXPECT_EQ(calls, 5u);
  EXPECT_NEAR(last_t, 0.5, 1e-12);
}

TEST(Rk4, RejectsNonPositiveDt) {
  EXPECT_THROW(rk4_integrate(kDecay, 0.0, 1.0, {1.0}, 0.0), InvalidArgument);
}

TEST(Rk4, RejectsBackwardHorizon) {
  EXPECT_THROW(rk4_integrate(kDecay, 1.0, 0.0, {1.0}, 0.1), InvalidArgument);
}

TEST(Rkf45, MatchesExponentialDecay) {
  const Vector y = rkf45_integrate(kDecay, 0.0, 2.0, {1.0});
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-6);
}

TEST(Rkf45, HandlesOscillator) {
  // y'' = -y as a system; energy x^2 + v^2 conserved.
  const OdeRhs osc = [](double, const Vector& y) {
    return Vector{y[1], -y[0]};
  };
  AdaptiveOptions options;
  options.rel_tol = 1e-9;
  options.abs_tol = 1e-12;
  const Vector y = rkf45_integrate(osc, 0.0, 2.0 * M_PI, {1.0, 0.0}, options);
  EXPECT_NEAR(y[0], 1.0, 1e-6);
  EXPECT_NEAR(y[1], 0.0, 1e-6);
}

TEST(Rkf45, StepBudgetThrows) {
  AdaptiveOptions options;
  options.max_steps = 3;
  options.dt_max = 1e-4;
  EXPECT_THROW(rkf45_integrate(kDecay, 0.0, 1.0, {1.0}, options),
               NumericalError);
}

TEST(Rkf45, ZeroLengthHorizonReturnsInitial) {
  const Vector y = rkf45_integrate(kDecay, 0.0, 0.0, {3.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(ImplicitStepper, ConvergesToSteadyState) {
  // C y' = b - G y with C=1, G=2, b=4: steady state y = 2.
  const auto g = DenseMatrix::from_rows({{2.0}});
  const LinearImplicitStepper stepper(g, {1.0}, 0.1);
  Vector y{0.0};
  for (int i = 0; i < 400; ++i) y = stepper.step(y, {4.0});
  EXPECT_NEAR(y[0], 2.0, 1e-8);
}

TEST(ImplicitStepper, MatchesAnalyticDecayWithinStepError) {
  // C y' = -G y: y(t) = exp(-t) with C=G=1. BE is first order.
  const auto g = DenseMatrix::from_rows({{1.0}});
  const double dt = 1e-3;
  const LinearImplicitStepper stepper(g, {1.0}, dt);
  Vector y{1.0};
  for (int i = 0; i < 1000; ++i) y = stepper.step(y, {0.0});
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-3);
}

TEST(ImplicitStepper, StableOnStiffSystemWithLargeStep) {
  // Fast mode (tau = 1e-4) plus slow mode (tau = 1): explicit RK4 at
  // dt = 0.05 would explode; backward Euler must stay bounded and hit
  // the right steady state.
  const auto g = DenseMatrix::from_rows({{1e4, 0.0}, {0.0, 1.0}});
  const LinearImplicitStepper stepper(g, {1.0, 1.0}, 0.05);
  Vector y{0.0, 0.0};
  const Vector b{1e4, 1.0};  // steady state {1, 1}
  for (int i = 0; i < 200; ++i) {
    y = stepper.step(y, b);
    EXPECT_LT(std::fabs(y[0]), 10.0);
  }
  EXPECT_NEAR(y[0], 1.0, 1e-6);
  EXPECT_NEAR(y[1], 1.0, 1e-3);
}

TEST(ImplicitStepper, ValidatesInputs) {
  const auto g = DenseMatrix::from_rows({{1.0}});
  EXPECT_THROW(LinearImplicitStepper(g, {1.0}, 0.0), InvalidArgument);
  EXPECT_THROW(LinearImplicitStepper(g, {0.0}, 0.1), InvalidArgument);
  EXPECT_THROW(LinearImplicitStepper(g, {1.0, 2.0}, 0.1), InvalidArgument);
  const LinearImplicitStepper stepper(g, {1.0}, 0.1);
  EXPECT_THROW(stepper.step({1.0, 2.0}, {0.0}), InvalidArgument);
}

}  // namespace
}  // namespace thermo::linalg
