// Chained-session simulation: residual heat carrying between sessions.
#include <gtest/gtest.h>

#include "core/safety_checker.hpp"
#include "core/sequential_scheduler.hpp"
#include "core/thermal_scheduler.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::core {
namespace {

using thermo::testing::nine_soc;

class ChainedTest : public ::testing::Test {
 protected:
  SocSpec soc_ = nine_soc(6.0);
  thermal::ThermalAnalyzer analyzer_{soc_.flp, soc_.package};
};

TEST_F(ChainedTest, SimulateSessionFromCarriesState) {
  const std::vector<double> power{6, 6, 6, 0, 0, 0, 0, 0, 0};
  std::vector<double> p(9, 0.0);
  p[0] = p[1] = p[2] = 6.0;
  auto first = analyzer_.simulate_session_from(p, 1.0,
                                               analyzer_.ambient_node_state());
  // Running the same session again from the warm state must be hotter.
  auto second = analyzer_.simulate_session_from(p, 1.0, first.final_state);
  EXPECT_GT(second.session.max_temperature, first.session.max_temperature);
}

TEST_F(ChainedTest, CoolDownDrainsHeatFromTheDie) {
  std::vector<double> p(9, 6.0);
  auto warm = analyzer_.simulate_session_from(p, 1.0,
                                              analyzer_.ambient_node_state());
  const auto cooled = analyzer_.cool_down(warm.final_state, 5.0);
  // Die blocks cool (heat may transiently *warm* the sink nodes as it
  // redistributes outward, so only block nodes are monotone here).
  for (std::size_t b = 0; b < soc_.core_count(); ++b) {
    EXPECT_LT(cooled[b], warm.final_state[b]);
  }
  // Stored thermal energy (sum of C * rise) strictly decreases.
  const auto& capacitance = analyzer_.model().capacitance();
  const double ambient = soc_.package.ambient;
  double energy_before = 0.0, energy_after = 0.0;
  for (std::size_t n = 0; n < cooled.size(); ++n) {
    energy_before += capacitance[n] * (warm.final_state[n] - ambient);
    energy_after += capacitance[n] * (cooled[n] - ambient);
  }
  EXPECT_LT(energy_after, energy_before);
  // Zero gap is the identity.
  const auto same = analyzer_.cool_down(warm.final_state, 0.0);
  EXPECT_EQ(same, warm.final_state);
  EXPECT_THROW(analyzer_.cool_down(warm.final_state, -1.0), InvalidArgument);
}

TEST_F(ChainedTest, ChainedCheckerIsAtLeastAsHotAsIndependent) {
  const SequentialScheduler scheduler;
  const ScheduleResult result = scheduler.generate(soc_, &analyzer_);

  const SafetyChecker independent(1000.0);
  const SafetyReport ri = independent.check(soc_, result.schedule, analyzer_);

  SafetyChecker::Options copt;
  copt.chained = true;
  copt.cooling_gap = 0.0;
  const SafetyChecker chained(1000.0, copt);
  const SafetyReport rc = chained.check(soc_, result.schedule, analyzer_);

  EXPECT_GE(rc.max_temperature + 1e-9, ri.max_temperature);
  for (std::size_t s = 1; s < rc.session_max_temperature.size(); ++s) {
    // Later sessions start warm, so each chained session is at least as
    // hot as its independent counterpart.
    EXPECT_GE(rc.session_max_temperature[s] + 1e-9,
              ri.session_max_temperature[s]);
  }
}

TEST_F(ChainedTest, CoolingGapRestoresIndependence) {
  const SequentialScheduler scheduler;
  const ScheduleResult result = scheduler.generate(soc_, &analyzer_);

  SafetyChecker::Options no_gap;
  no_gap.chained = true;
  const SafetyReport hot =
      SafetyChecker(1000.0, no_gap).check(soc_, result.schedule, analyzer_);

  SafetyChecker::Options long_gap;
  long_gap.chained = true;
  long_gap.cooling_gap = 120.0;  // several package time constants
  const SafetyReport cooled = SafetyChecker(1000.0, long_gap)
                                  .check(soc_, result.schedule, analyzer_);

  const SafetyReport independent =
      SafetyChecker(1000.0).check(soc_, result.schedule, analyzer_);

  EXPECT_LE(cooled.max_temperature, hot.max_temperature + 1e-9);
  // With a long gap the chained result approaches the independent one.
  EXPECT_NEAR(cooled.max_temperature, independent.max_temperature, 1.0);
}

TEST_F(ChainedTest, ChainedCheckerFlagsViolationsIndependentMisses) {
  // Pick a TL between the independent max and the chained max of a
  // back-to-back schedule: independent says safe, chained says unsafe.
  ThermalSchedulerOptions options;
  options.temperature_limit = 110.0;
  options.stc_limit = 1e6;
  const ScheduleResult result =
      ThermalAwareScheduler(options).generate(soc_, analyzer_);

  const SafetyReport independent =
      SafetyChecker(1000.0).check(soc_, result.schedule, analyzer_);
  SafetyChecker::Options copt;
  copt.chained = true;
  const SafetyReport chained =
      SafetyChecker(1000.0, copt).check(soc_, result.schedule, analyzer_);

  if (chained.max_temperature > independent.max_temperature + 0.2) {
    const double tl =
        (chained.max_temperature + independent.max_temperature) / 2.0;
    EXPECT_TRUE(SafetyChecker(tl).check(soc_, result.schedule, analyzer_).safe);
    EXPECT_FALSE(
        SafetyChecker(tl, copt).check(soc_, result.schedule, analyzer_).safe);
  }
}

TEST_F(ChainedTest, NegativeCoolingGapRejected) {
  SafetyChecker::Options bad;
  bad.cooling_gap = -1.0;
  EXPECT_THROW(SafetyChecker(100.0, bad), InvalidArgument);
}

TEST_F(ChainedTest, ChainedSimulationRequiresTransientOracle) {
  thermal::ThermalAnalyzer::Options steady;
  steady.transient = false;
  thermal::ThermalAnalyzer steady_analyzer(soc_.flp, soc_.package, steady);
  std::vector<double> p(9, 1.0);
  EXPECT_THROW(steady_analyzer.simulate_session_from(
                   p, 1.0, steady_analyzer.ambient_node_state()),
               InvalidArgument);
}

}  // namespace
}  // namespace thermo::core
