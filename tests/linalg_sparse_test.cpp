#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/vector_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::linalg {
namespace {

SparseMatrix laplacian_chain(std::size_t n) {
  // 1-D resistor chain grounded at both ends: SPD and diagonally dominant.
  SparseMatrix::Builder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 2.0 + 0.1 * static_cast<double>(i % 3));
    if (i + 1 < n) {
      builder.add(i, i + 1, -1.0);
      builder.add(i + 1, i, -1.0);
    }
  }
  return builder.build();
}

TEST(Sparse, BuilderSumsDuplicates) {
  SparseMatrix::Builder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 0, 2.5);
  builder.add(1, 0, -1.0);
  const SparseMatrix m = builder.build();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_EQ(m.nonzeros(), 2u);
}

TEST(Sparse, BuilderRejectsOutOfRange) {
  SparseMatrix::Builder builder(2, 2);
  EXPECT_THROW(builder.add(2, 0, 1.0), InvalidArgument);
  EXPECT_THROW(builder.add(0, 2, 1.0), InvalidArgument);
}

TEST(Sparse, EmptyRowsAreHandled) {
  SparseMatrix::Builder builder(3, 3);
  builder.add(2, 2, 1.0);  // rows 0 and 1 empty
  const SparseMatrix m = builder.build();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 1.0);
  const Vector y = m.multiply({1.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(Sparse, MatVecMatchesDense) {
  Rng rng(6);
  DenseMatrix dense(7, 7, 0.0);
  for (int k = 0; k < 20; ++k) {
    dense(rng.uniform_index(7), rng.uniform_index(7)) = rng.uniform(-2.0, 2.0);
  }
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  Vector x(7);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  EXPECT_LT(norm_inf(subtract(dense.multiply(x), sparse.multiply(x))), 1e-14);
}

TEST(Sparse, FromDenseDropsZeros) {
  DenseMatrix dense(2, 2, 0.0);
  dense(0, 0) = 1.0;
  EXPECT_EQ(SparseMatrix::from_dense(dense).nonzeros(), 1u);
}

TEST(Sparse, ToDenseRoundTrip) {
  const SparseMatrix m = laplacian_chain(5);
  const SparseMatrix again = SparseMatrix::from_dense(m.to_dense());
  EXPECT_EQ(again.nonzeros(), m.nonzeros());
  EXPECT_DOUBLE_EQ(again.at(2, 3), m.at(2, 3));
}

TEST(Sparse, DiagonalExtraction) {
  const SparseMatrix m = laplacian_chain(4);
  const Vector d = m.diagonal();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 2.1);
}

TEST(Sparse, SymmetryCheck) {
  EXPECT_TRUE(laplacian_chain(6).is_symmetric());
  SparseMatrix::Builder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, 1.0);
  builder.add(0, 1, 0.5);
  EXPECT_FALSE(builder.build().is_symmetric());
}

TEST(Iterative, CgMatchesLuOnChain) {
  const SparseMatrix a = laplacian_chain(30);
  Vector b(30, 1.0);
  const IterativeResult cg = conjugate_gradient(a, b);
  EXPECT_TRUE(cg.converged);
  const Vector x_lu = lu_solve(a.to_dense(), b);
  EXPECT_LT(norm_inf(subtract(cg.solution, x_lu)), 1e-6);
}

TEST(Iterative, GaussSeidelConvergesOnDominantSystem) {
  const SparseMatrix a = laplacian_chain(20);
  Vector b(20, 0.5);
  IterativeOptions options;
  options.tolerance = 1e-10;
  const IterativeResult gs = gauss_seidel(a, b, options);
  EXPECT_TRUE(gs.converged);
  EXPECT_LT(norm2(subtract(b, a.multiply(gs.solution))), 1e-8);
}

TEST(Iterative, JacobiConvergesSlowerThanGaussSeidel) {
  const SparseMatrix a = laplacian_chain(15);
  Vector b(15, 1.0);
  const IterativeResult gs = gauss_seidel(a, b);
  const IterativeResult jc = jacobi(a, b);
  EXPECT_TRUE(gs.converged);
  EXPECT_TRUE(jc.converged);
  EXPECT_LE(gs.iterations, jc.iterations);
}

TEST(Iterative, ZeroRhsIsImmediatelyConverged) {
  const SparseMatrix a = laplacian_chain(5);
  const IterativeResult cg = conjugate_gradient(a, Vector(5, 0.0));
  EXPECT_TRUE(cg.converged);
  EXPECT_EQ(cg.iterations, 0u);
  EXPECT_LT(norm2(cg.solution), 1e-15);
}

TEST(Iterative, CgRejectsIndefiniteMatrix) {
  SparseMatrix::Builder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -1.0);
  EXPECT_THROW(conjugate_gradient(builder.build(), {1.0, 1.0}),
               NumericalError);
}

TEST(Iterative, ZeroDiagonalThrows) {
  SparseMatrix::Builder builder(2, 2);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  const SparseMatrix a = builder.build();
  EXPECT_THROW(conjugate_gradient(a, {1.0, 1.0}), NumericalError);
  EXPECT_THROW(gauss_seidel(a, {1.0, 1.0}), NumericalError);
  EXPECT_THROW(jacobi(a, {1.0, 1.0}), NumericalError);
}

TEST(Iterative, IterationCapReportsNonConvergence) {
  const SparseMatrix a = laplacian_chain(40);
  IterativeOptions options;
  options.max_iterations = 1;
  options.tolerance = 1e-14;
  const IterativeResult r = jacobi(a, Vector(40, 1.0), options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
}

TEST(Iterative, RhsSizeMismatchThrows) {
  const SparseMatrix a = laplacian_chain(4);
  EXPECT_THROW(conjugate_gradient(a, Vector(3, 1.0)), InvalidArgument);
}

}  // namespace
}  // namespace thermo::linalg
