#include "floorplan/generator.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::floorplan {
namespace {

TEST(GridGenerator, ProducesExpectedBlockCountAndSize) {
  const Floorplan fp = make_grid_floorplan(3, 4, 0.012, 0.009);
  EXPECT_EQ(fp.size(), 12u);
  EXPECT_DOUBLE_EQ(fp.chip_width(), 0.012);
  EXPECT_DOUBLE_EQ(fp.chip_height(), 0.009);
  EXPECT_DOUBLE_EQ(fp.block(0).width, 0.003);
  EXPECT_DOUBLE_EQ(fp.block(0).height, 0.003);
}

TEST(GridGenerator, ResultValidatesWithFullCoverage) {
  const ValidationReport report = make_grid_floorplan(5, 5, 0.01, 0.01).validate();
  EXPECT_TRUE(report.ok);
  EXPECT_NEAR(report.coverage, 1.0, 1e-9);
}

TEST(GridGenerator, InteriorBlockHasFourNeighbours) {
  const Floorplan fp = make_grid_floorplan(3, 3, 0.01, 0.01);
  EXPECT_EQ(fp.neighbours(*fp.index_of("b1_1")).size(), 4u);
}

TEST(GridGenerator, RejectsDegenerateArguments) {
  EXPECT_THROW(make_grid_floorplan(0, 3, 0.01, 0.01), InvalidArgument);
  EXPECT_THROW(make_grid_floorplan(3, 3, 0.0, 0.01), InvalidArgument);
}

TEST(SlicingGenerator, ExactBlockCount) {
  Rng rng(1);
  SlicingOptions options;
  options.block_count = 17;
  const Floorplan fp = make_slicing_floorplan(rng, options);
  EXPECT_EQ(fp.size(), 17u);
}

TEST(SlicingGenerator, SingleBlockIsWholeChip) {
  Rng rng(2);
  SlicingOptions options;
  options.block_count = 1;
  const Floorplan fp = make_slicing_floorplan(rng, options);
  ASSERT_EQ(fp.size(), 1u);
  EXPECT_DOUBLE_EQ(fp.block(0).area(), options.chip_width * options.chip_height);
}

TEST(SlicingGenerator, DeterministicForSameSeed) {
  Rng a(7), b(7);
  const Floorplan fa = make_slicing_floorplan(a);
  const Floorplan fb = make_slicing_floorplan(b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_DOUBLE_EQ(fa.block(i).x, fb.block(i).x);
    EXPECT_DOUBLE_EQ(fa.block(i).area(), fb.block(i).area());
  }
}

TEST(SlicingGenerator, RejectsBadOptions) {
  Rng rng(3);
  SlicingOptions options;
  options.block_count = 0;
  EXPECT_THROW(make_slicing_floorplan(rng, options), InvalidArgument);
  options.block_count = 4;
  options.min_cut_fraction = 0.6;
  EXPECT_THROW(make_slicing_floorplan(rng, options), InvalidArgument);
}

// Property sweep: slicing floorplans of many sizes are always valid and
// fully covering.
class SlicingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlicingProperty, AlwaysValidAndCovering) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 977 + GetParam());
    SlicingOptions options;
    options.block_count = GetParam();
    const Floorplan fp = make_slicing_floorplan(rng, options);
    EXPECT_EQ(fp.size(), GetParam());
    const ValidationReport report = fp.validate();
    EXPECT_TRUE(report.ok) << "seed " << seed;
    EXPECT_NEAR(report.coverage, 1.0, 1e-9) << "seed " << seed;
    // Every block must be thermally reachable: neighbour or boundary.
    for (std::size_t i = 0; i < fp.size(); ++i) {
      EXPECT_TRUE(!fp.neighbours(i).empty() || fp.boundary_exposure(i) > 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, SlicingProperty,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace thermo::floorplan
