// Tests of the bundled evaluation SoCs (Alpha-15, Figure-1, synthetic).
#include <gtest/gtest.h>

#include <algorithm>

#include "soc/alpha.hpp"
#include "soc/fig1.hpp"
#include "soc/synthetic.hpp"
#include "util/error.hpp"

namespace thermo::soc {
namespace {

TEST(AlphaSoc, HasFifteenCoresAndValidates) {
  const core::SocSpec soc = alpha_soc();
  EXPECT_EQ(soc.core_count(), 15u);
  EXPECT_NO_THROW(soc.validate());
}

TEST(AlphaSoc, FloorplanFullyCoversDie) {
  const core::SocSpec soc = alpha_soc();
  const floorplan::ValidationReport report = soc.flp.validate();
  EXPECT_TRUE(report.ok);
  EXPECT_NEAR(report.coverage, 1.0, 1e-9);
  EXPECT_NEAR(soc.flp.chip_width(), 0.016, 1e-12);
  EXPECT_NEAR(soc.flp.chip_height(), 0.016, 1e-12);
}

TEST(AlphaSoc, PowerDensitySpreadIsLarge) {
  // The paper's premise: power density varies strongly across cores.
  const core::SocSpec soc = alpha_soc();
  double min_density = 1e300, max_density = 0.0;
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    min_density = std::min(min_density, soc.power_density(i));
    max_density = std::max(max_density, soc.power_density(i));
  }
  EXPECT_GT(max_density / min_density, 10.0);
}

TEST(AlphaSoc, ContainsExpectedUnits) {
  const core::SocSpec soc = alpha_soc();
  for (const char* name : {"L2_0", "L2_1", "Icache", "Dcache", "IntReg",
                           "FPMul", "Bpred", "Router"}) {
    EXPECT_TRUE(soc.flp.index_of(name).has_value()) << name;
  }
}

TEST(AlphaSoc, UniformOneSecondTests) {
  const core::SocSpec soc = alpha_soc();
  for (const auto& test : soc.tests) {
    EXPECT_DOUBLE_EQ(test.length, 1.0);
    EXPECT_GT(test.power, 0.0);
  }
}

TEST(AlphaSoc, PowerScaleMultipliesUniformly) {
  const core::SocSpec base = alpha_soc();
  const core::SocSpec scaled = alpha_soc_scaled(2.0);
  for (std::size_t i = 0; i < base.core_count(); ++i) {
    EXPECT_NEAR(scaled.tests[i].power, 2.0 * base.tests[i].power, 1e-9);
  }
  EXPECT_THROW(alpha_soc_scaled(0.0), InvalidArgument);
}

TEST(AlphaSoc, StcScaleIsPositive) {
  EXPECT_GT(alpha_stc_scale(), 0.0);
}

TEST(Fig1Soc, SevenCoresFullCoverage) {
  const core::SocSpec soc = fig1_soc();
  EXPECT_EQ(soc.core_count(), 7u);
  const floorplan::ValidationReport report = soc.flp.validate();
  EXPECT_TRUE(report.ok);
  EXPECT_NEAR(report.coverage, 1.0, 1e-9);
}

TEST(Fig1Soc, AllCoresDissipateFifteenWatts) {
  const core::SocSpec soc = fig1_soc();
  for (const auto& test : soc.tests) EXPECT_DOUBLE_EQ(test.power, 15.0);
}

TEST(Fig1Soc, DensityRatioIsExactlyFour) {
  const core::SocSpec soc = fig1_soc();
  const double dense = soc.power_density(*soc.flp.index_of("C2"));
  const double sparse = soc.power_density(*soc.flp.index_of("C5"));
  EXPECT_NEAR(dense / sparse, 4.0, 1e-9);
}

TEST(Fig1Soc, SessionsPartitionTheSmallAndLargeCores) {
  const core::SocSpec soc = fig1_soc();
  const core::TestSession ts1 = fig1_session_ts1(soc);
  const core::TestSession ts2 = fig1_session_ts2(soc);
  EXPECT_EQ(ts1.size(), 3u);
  EXPECT_EQ(ts2.size(), 3u);
  for (std::size_t core : ts1.cores) {
    for (std::size_t other : ts2.cores) EXPECT_NE(core, other);
  }
  double p1 = 0.0, p2 = 0.0;
  for (std::size_t core : ts1.cores) p1 += soc.tests[core].power;
  for (std::size_t core : ts2.cores) p2 += soc.tests[core].power;
  EXPECT_DOUBLE_EQ(p1, kFig1PowerLimit);
  EXPECT_DOUBLE_EQ(p2, kFig1PowerLimit);
}

TEST(SyntheticSoc, GeneratesRequestedCoreCount) {
  Rng rng(11);
  SyntheticOptions options;
  options.core_count = 23;
  const core::SocSpec soc = make_synthetic_soc(rng, options);
  EXPECT_EQ(soc.core_count(), 23u);
  EXPECT_NO_THROW(soc.validate());
}

TEST(SyntheticSoc, PowerDensitiesWithinConfiguredRange) {
  Rng rng(12);
  SyntheticOptions options;
  options.core_count = 30;
  options.power_density_min = 1e5;
  options.power_density_max = 3e6;
  const core::SocSpec soc = make_synthetic_soc(rng, options);
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    EXPECT_GE(soc.power_density(i), options.power_density_min * (1 - 1e-9));
    EXPECT_LE(soc.power_density(i), options.power_density_max * (1 + 1e-9));
  }
}

TEST(SyntheticSoc, DeterministicForSeed) {
  Rng a(5), b(5);
  const core::SocSpec sa = make_synthetic_soc(a);
  const core::SocSpec sb = make_synthetic_soc(b);
  ASSERT_EQ(sa.core_count(), sb.core_count());
  for (std::size_t i = 0; i < sa.core_count(); ++i) {
    EXPECT_DOUBLE_EQ(sa.tests[i].power, sb.tests[i].power);
  }
}

TEST(SyntheticSoc, RejectsBadOptions) {
  Rng rng(6);
  SyntheticOptions bad;
  bad.core_count = 0;
  EXPECT_THROW(make_synthetic_soc(rng, bad), InvalidArgument);
  bad = SyntheticOptions{};
  bad.power_density_max = bad.power_density_min / 2.0;
  EXPECT_THROW(make_synthetic_soc(rng, bad), InvalidArgument);
  bad = SyntheticOptions{};
  bad.test_length_min = 0.0;
  EXPECT_THROW(make_synthetic_soc(rng, bad), InvalidArgument);
}

TEST(SyntheticSoc, RaggedTestLengthsWhenConfigured) {
  Rng rng(7);
  SyntheticOptions options;
  options.core_count = 20;
  options.test_length_min = 0.5;
  options.test_length_max = 2.0;
  const core::SocSpec soc = make_synthetic_soc(rng, options);
  double lo = 1e9, hi = 0.0;
  for (const auto& test : soc.tests) {
    lo = std::min(lo, test.length);
    hi = std::max(hi, test.length);
  }
  EXPECT_GE(lo, 0.5);
  EXPECT_LE(hi, 2.0);
  EXPECT_GT(hi, lo);  // essentially certain with 20 draws
}

}  // namespace
}  // namespace thermo::soc
