// ScenarioSweep: results must be bit-identical for 1 and N threads, must
// match the direct (unswept) solver calls, and per-scenario failures
// must be captured without poisoning the batch. Plus ThreadPool basics.
#include "sweep/scenario_sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "sweep/thread_pool.hpp"
#include "test_helpers.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/transient.hpp"
#include "util/error.hpp"

namespace thermo::sweep {
namespace {

using thermo::testing::nine_floorplan;

std::vector<PowerScenario> mixed_scenarios(std::size_t blocks) {
  std::vector<PowerScenario> scenarios;
  for (std::size_t i = 0; i < 12; ++i) {
    PowerScenario s;
    s.name = "case" + std::to_string(i);
    s.block_power.assign(blocks, 0.0);
    for (std::size_t b = i % 3; b < blocks; b += 1 + i % 4) {
      s.block_power[b] = 2.0 + 0.5 * static_cast<double>(i);
    }
    s.duration = (i % 3 == 0) ? 0.01 : 0.0;  // mix transient and steady
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

class ScenarioSweepTest : public ::testing::Test {
 protected:
  thermal::RCModel model_{nine_floorplan(), thermal::PackageParams{}};
};

TEST_F(ScenarioSweepTest, OneAndManyThreadsProduceIdenticalResults) {
  const auto scenarios = mixed_scenarios(model_.block_count());

  SweepOptions serial_options;
  serial_options.threads = 1;
  SweepOptions parallel_options;
  parallel_options.threads = 4;
  const auto serial = ScenarioSweep(serial_options).run(model_, scenarios);
  const auto parallel = ScenarioSweep(parallel_options).run(model_, scenarios);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, scenarios[i].name);  // index order preserved
    EXPECT_TRUE(serial[i].ok);
    EXPECT_TRUE(parallel[i].ok);
    ASSERT_EQ(serial[i].block_peak.size(), parallel[i].block_peak.size());
    for (std::size_t b = 0; b < serial[i].block_peak.size(); ++b) {
      // Shared factor + independent back-substitution: bitwise equal.
      EXPECT_DOUBLE_EQ(serial[i].block_peak[b], parallel[i].block_peak[b]);
    }
    EXPECT_DOUBLE_EQ(serial[i].max_temperature, parallel[i].max_temperature);
    EXPECT_EQ(serial[i].hottest_block, parallel[i].hottest_block);
  }
}

TEST_F(ScenarioSweepTest, SteadyScenarioMatchesDirectSolve) {
  PowerScenario scenario;
  scenario.name = "steady";
  scenario.block_power.assign(model_.block_count(), 0.0);
  scenario.block_power[4] = 10.0;

  const auto outcomes = ScenarioSweep().run(model_, {scenario});
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok);

  const thermal::SteadyStateResult direct =
      thermal::solve_steady_state(model_, scenario.block_power);
  for (std::size_t b = 0; b < model_.block_count(); ++b) {
    EXPECT_DOUBLE_EQ(outcomes[0].block_peak[b], direct.temperature[b]);
  }
  EXPECT_EQ(outcomes[0].hottest_block, 4u);
}

TEST_F(ScenarioSweepTest, TransientScenarioMatchesDirectSimulation) {
  PowerScenario scenario;
  scenario.name = "transient";
  scenario.block_power.assign(model_.block_count(), 0.0);
  scenario.block_power[0] = 12.0;
  scenario.duration = 0.02;

  SweepOptions options;
  options.dt = 1e-3;
  const auto outcomes = ScenarioSweep(options).run(model_, {scenario});
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok);

  thermal::TransientOptions topt;
  topt.dt = options.dt;
  const thermal::TransientResult direct = thermal::simulate_transient(
      model_, scenario.block_power, scenario.duration,
      thermal::ambient_state(model_), topt);
  for (std::size_t b = 0; b < model_.block_count(); ++b) {
    EXPECT_DOUBLE_EQ(outcomes[0].block_peak[b], direct.peak_temperature[b]);
  }
}

TEST_F(ScenarioSweepTest, BadScenarioIsCapturedWithoutPoisoningTheBatch) {
  auto scenarios = mixed_scenarios(model_.block_count());
  scenarios[3].block_power.resize(2);  // wrong size: solver must reject

  const auto outcomes = ScenarioSweep().run(model_, scenarios);
  ASSERT_EQ(outcomes.size(), scenarios.size());
  EXPECT_FALSE(outcomes[3].ok);
  EXPECT_FALSE(outcomes[3].error.empty());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i != 3) {
      EXPECT_TRUE(outcomes[i].ok) << "scenario " << i << ": "
                                  << outcomes[i].error;
    }
  }
}

TEST_F(ScenarioSweepTest, MapReturnsResultsInIndexOrder) {
  SweepOptions options;
  options.threads = 4;
  const auto squares =
      ScenarioSweep(options).map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST_F(ScenarioSweepTest, MapPropagatesExceptions) {
  SweepOptions options;
  options.threads = 2;
  const ScenarioSweep sweeper(options);
  EXPECT_THROW(sweeper.map(8,
                           [](std::size_t i) -> int {
                             if (i == 5) throw std::runtime_error("boom");
                             return 0;
                           }),
               std::runtime_error);
}

TEST_F(ScenarioSweepTest, AnalyzersSharingAModelShareFactors) {
  // The pattern the examples and `thermosched sweep` rely on: analyzers
  // are per-thread, the model (and thus the cached factors) is shared.
  const auto model = std::make_shared<const thermal::RCModel>(
      nine_floorplan(), thermal::PackageParams{});
  SweepOptions options;
  options.threads = 3;
  const auto peaks =
      ScenarioSweep(options).map(6, [&](std::size_t i) {
        thermal::ThermalAnalyzer analyzer(model);
        std::vector<double> power(model->block_count(), 0.0);
        power[i % model->block_count()] = 10.0;
        return analyzer.simulate_session(power, 0.01).max_temperature;
      });
  // Same power pattern (indices 0..5 hit distinct blocks) — just assert
  // the fan-out ran and produced sane temperatures above ambient.
  for (double peak : peaks) EXPECT_GT(peak, 45.0);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool remains usable afterwards.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace thermo::sweep
