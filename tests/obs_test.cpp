// The observability layer's contracts: histogram quantiles are exact
// for values that are bucket floors, counters survive a multi-thread
// hammer without losing an increment, the trace ring drops oldest with
// exact accounting, and the exported trace JSON round-trips through
// util::json balanced and monotonic — the library-level version of what
// tools/check_trace.py and the serve trace smoke pin end to end.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace thermo::obs {
namespace {

TEST(Histogram, SmallValuesBucketExactly) {
  // bit_width(v) <= kSubBucketBits means shift 0: the bucket index IS
  // the value, so everything below 64 round-trips exactly.
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_floor(Histogram::bucket_index(v)), v);
  }
}

TEST(Histogram, BucketFloorsRoundTrip) {
  // Any value whose low (bit_width - 6) bits are zero is a bucket
  // floor; powers of two always qualify.
  for (unsigned k = 0; k < 63; ++k) {
    const std::uint64_t v = std::uint64_t{1} << k;
    EXPECT_EQ(Histogram::bucket_floor(Histogram::bucket_index(v)), v)
        << "k=" << k;
  }
  EXPECT_LE(Histogram::bucket_index(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(Histogram, RelativeErrorBounded) {
  // A non-floor value lands in a bucket whose floor is below it by at
  // most one sub-bucket width: floor <= v < floor * (1 + 1/64) + 1.
  for (const std::uint64_t v :
       {std::uint64_t{100}, std::uint64_t{999}, std::uint64_t{12345},
        std::uint64_t{987654321}, std::uint64_t{1} << 40}) {
    const std::uint64_t floor =
        Histogram::bucket_floor(Histogram::bucket_index(v));
    EXPECT_LE(floor, v);
    EXPECT_LE(v - floor, floor / Histogram::kSubBuckets + 1) << "v=" << v;
  }
}

TEST(Histogram, QuantilesExactOnPlantedDistribution) {
  Histogram h;
  // 0..63 are all bucket floors, so every quantile is the exact order
  // statistic: rank ceil(q * 64), 1-indexed.
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.sum(), 64u * 63u / 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 31u);   // rank 32 -> value 31
  EXPECT_EQ(h.quantile(0.90), 57u);  // rank ceil(57.6) = 58 -> 57
  EXPECT_EQ(h.quantile(0.95), 60u);  // rank ceil(60.8) = 61 -> 60
  EXPECT_EQ(h.quantile(1.0), 63u);
}

TEST(Histogram, QuantilesExactOnPowerOfTwoSpread) {
  Histogram h;
  h.record(1u << 10);
  h.record(1u << 14);
  h.record(1u << 20);
  EXPECT_EQ(h.quantile(0.0), 1u << 10);
  EXPECT_EQ(h.quantile(0.34), 1u << 14);  // rank ceil(1.02) = 2
  EXPECT_EQ(h.quantile(0.5), 1u << 14);
  EXPECT_EQ(h.quantile(0.99), 1u << 20);
  EXPECT_EQ(h.min(), 1u << 10);
  EXPECT_EQ(h.max(), 1u << 20);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(i % 64);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Every thread records the same multiset, so the quantiles are the
  // single-thread ones regardless of interleaving.
  EXPECT_EQ(h.quantile(0.5), 31u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(Counter, EightThreadHammerIsExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, DisabledPathRecordsNothing) {
  Counter c;
  Gauge g;
  Histogram h;
  set_enabled(false);
  c.add(5);
  g.set(7);
  h.record(123);
  { ScopedTimer timer(h); }
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(MetricsRegistry, SameNameSameObjectAndKindsAreExclusive) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  Counter& a = registry.counter("obs_test.reg.counter");
  Counter& b = registry.counter("obs_test.reg.counter");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.histogram("obs_test.reg.counter"), InvalidArgument);
  EXPECT_THROW(registry.gauge("obs_test.reg.counter"), InvalidArgument);
  Histogram& h = registry.histogram("obs_test.reg.hist");
  EXPECT_EQ(&h, &registry.histogram("obs_test.reg.hist"));
  EXPECT_THROW(registry.counter("obs_test.reg.hist"), InvalidArgument);
}

TEST(MetricsRegistry, SnapshotIsByteStable) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("obs_test.snap.b").add(2);
  registry.counter("obs_test.snap.a").add(1);
  registry.histogram("obs_test.snap.h").record(42);
  const std::string first = registry.to_json().dump();
  const std::string second = registry.to_json().dump();
  EXPECT_EQ(first, second);
  // Sorted-name iteration: a before b regardless of creation order.
  EXPECT_LT(first.find("obs_test.snap.a"), first.find("obs_test.snap.b"));
  const JsonValue parsed = parse_json(first);
  const JsonValue* counters = parsed.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* a = counters->find("obs_test.snap.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->as_number(), 1.0);
  const JsonValue* histograms = parsed.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* h = histograms->find("obs_test.snap.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_number(), 1.0);
  EXPECT_EQ(h->find("p50")->as_number(), 42.0);
}

TEST(Trace, InactiveRecorderCostsOneBranch) {
  ASSERT_FALSE(TraceRecorder::active());
  // These must be no-ops (and not crash) with no trace running.
  { TraceSpan span("obs_test.inactive"); }
  trace_instant("obs_test.inactive");
}

TEST(Trace, RingWraparoundDropsOldestWithExactAccounting) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start(64);
  for (int i = 0; i < 200; ++i) trace_instant("obs_test.wrap");
  recorder.stop();
  EXPECT_EQ(recorder.dropped_events(), 200u - 64u);
  const JsonValue snapshot = recorder.snapshot_json();
  const JsonValue* events = snapshot.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->items().size(), 64u);
  const JsonValue* dropped = snapshot.find("otherData");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->find("dropped_events")->as_number(), 136.0);
}

/// Walks a traceEvents array asserting per-tid monotonic timestamps and
/// stack-balanced B/E spans with matching names (what check_trace.py
/// enforces on real serve traces).
void expect_balanced_and_monotonic(const JsonValue& events) {
  std::map<double, double> last_ts;
  std::map<double, std::vector<std::string>> open;
  for (const JsonValue& event : events.items()) {
    const double tid = event.find("tid")->as_number();
    const double ts = event.find("ts")->as_number();
    const std::string phase = event.find("ph")->as_string();
    const std::string name = event.find("name")->as_string();
    if (last_ts.count(tid) != 0) EXPECT_GE(ts, last_ts[tid]);
    last_ts[tid] = ts;
    if (phase == "B") {
      open[tid].push_back(name);
    } else if (phase == "E") {
      ASSERT_FALSE(open[tid].empty()) << "unmatched E for " << name;
      EXPECT_EQ(open[tid].back(), name);
      open[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left spans open";
  }
}

TEST(Trace, JsonRoundTripsBalancedAcrossThreads) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start(1u << 12);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        TraceSpan outer("obs_test.outer");
        trace_instant("obs_test.tick");
        TraceSpan inner("obs_test.inner");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  recorder.stop();
  EXPECT_EQ(recorder.dropped_events(), 0u);

  // Round-trip through util::json: dump -> parse -> validate structure.
  const std::string dumped = recorder.snapshot_json().dump();
  const JsonValue parsed = parse_json(dumped);
  const JsonValue* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 4 threads x 50 iterations x (outer B/E + instant + inner B/E).
  EXPECT_EQ(events->items().size(), 4u * 50u * 5u);
  expect_balanced_and_monotonic(*events);
}

TEST(Trace, OverwrittenBeginsAreSkippedAndOpenSpansClosed) {
  TraceRecorder& recorder = TraceRecorder::instance();
  // Odd capacity: 150 B/E pairs leave the kept suffix starting on an
  // 'E' whose 'B' was overwritten — the exporter must skip it.
  recorder.start(63);
  for (int i = 0; i < 150; ++i) {
    TraceSpan span("obs_test.churn");
  }
  // A 'B' with no matching 'E': the exporter must synthesize a closing
  // event so no span dangles.
  TraceRecorder::record("obs_test.open", 'B');
  recorder.stop();
  EXPECT_GT(recorder.dropped_events(), 0u);
  const JsonValue snapshot = recorder.snapshot_json();
  const JsonValue* events = snapshot.find("traceEvents");
  ASSERT_NE(events, nullptr);
  expect_balanced_and_monotonic(*events);
}

}  // namespace
}  // namespace thermo::obs
