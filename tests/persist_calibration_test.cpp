// Fault sweep for the calibration blob: write_blob_file's crash-safety
// contract proved at EVERY file-operation boundary, persist_crash_test
// style. The workload writes blob A, then overwrites with blob B; a
// fault-free run through FaultFs learns its op count N, and the sweep
// replays it N times per fault kind (clean crash before/after each op,
// short write, torn write, transient IoError), injecting the fault at
// op 0, 1, ..., N-1. After each "crash" the file is re-read with the
// REAL filesystem and the atomic-replace contract is checked:
//
//   * read_blob_file never throws on the survivors — damage reads as
//     absence, exactly like a missing file;
//   * the observable payload is A-complete, B-complete, or absent;
//     NEVER a mix, a prefix, or garbage (a torn calibration record must
//     fall back to defaults, not skew estimates);
//   * once blob A's write acknowledged, a crash during the overwrite
//     can never lose it: only the B-rename (the commit point) may
//     switch the observable payload away from A;
//   * kFailOp (transient I/O error, process survives) surfaces as
//     IoError to the caller while the previous blob stays readable —
//     the serve path catches it, warns, and keeps going.
//
// The tail of the file closes the loop end to end: a damaged-on-disk
// calibration blob round-trips through read_blob_file +
// CostCalibrator::deserialize into "use the defaults", never an abort.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "dispatch/calibrator.hpp"
#include "persist/blob_file.hpp"
#include "persist/fault_fs.hpp"
#include "persist_test_util.hpp"
#include "util/error.hpp"

namespace thermo::persist {
namespace {

using testing::ScopedTempDir;

constexpr const char* kName = "calibration.v1";

/// Payloads with embedded NULs and newlines: the blob frame pins length
/// and checksum, so 8-bit-clean round-trips are part of the contract.
std::string payload_a() {
  return std::string("payload-A \0 first\nline two", 26);
}
std::string payload_b() {
  // Longer than A, so a torn B-over-A tmp leaves trailing bytes a naive
  // truncating writer would miss (the protocol removes the tmp first).
  return std::string("payload-B \0 second, longer than A\nwith more", 43);
}

/// The canonical workload: first write (no previous blob), then an
/// overwrite (previous blob must survive until the rename commits).
/// `acked` counts how many writes returned.
void run_workload(Fs& fs, const std::string& dir, int* acked) {
  write_blob_file(fs, dir, kName, payload_a());
  *acked = 1;
  write_blob_file(fs, dir, kName, payload_b());
  *acked = 2;
}

TEST(PersistCalibration, WriteThenReadRoundTrips) {
  const ScopedTempDir dir("blob-roundtrip");
  write_blob_file(real_fs(), dir.path(), kName, payload_a());
  const auto read = read_blob_file(real_fs(), dir.path() + "/" + kName);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, payload_a());
  // Overwrite replaces in full.
  write_blob_file(real_fs(), dir.path(), kName, payload_b());
  const auto again = read_blob_file(real_fs(), dir.path() + "/" + kName);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, payload_b());
}

TEST(PersistCalibration, MissingFileReadsAsAbsent) {
  const ScopedTempDir dir("blob-missing");
  EXPECT_FALSE(
      read_blob_file(real_fs(), dir.path() + "/" + kName).has_value());
}

TEST(PersistCalibration, EveryFaultPointLeavesOldCompleteNewCompleteOrAbsent) {
  // Discovery: fault-free run to learn the op count.
  std::size_t total_ops = 0;
  {
    const ScopedTempDir dir("blob-discovery");
    FaultFs fs(real_fs());
    int acked = 0;
    run_workload(fs, dir.path(), &acked);
    ASSERT_EQ(acked, 2);
    total_ops = fs.ops_seen();
    // Sanity: both writes cross several op boundaries each.
    ASSERT_GT(total_ops, 10u);
  }

  for (const FaultKind kind :
       {FaultKind::kCrashBefore, FaultKind::kCrashAfter,
        FaultKind::kShortWrite, FaultKind::kTornWrite, FaultKind::kFailOp}) {
    for (std::size_t op = 0; op < total_ops; ++op) {
      SCOPED_TRACE("fault kind " + std::to_string(static_cast<int>(kind)) +
                   " at op " + std::to_string(op));
      const ScopedTempDir dir("blob-sweep");
      FaultPlan plan;
      plan.after_ops = op;
      plan.kind = kind;
      plan.seed = op * 1000003ULL + static_cast<std::uint64_t>(kind) + 1;
      FaultFs fs(real_fs(), plan);

      int acked = 0;
      bool faulted = false;
      try {
        run_workload(fs, dir.path(), &acked);
      } catch (const IoError&) {
        faulted = true;  // CrashError derives from IoError
      }

      // Recovery check with the real filesystem. read_blob_file must
      // not throw: structural damage reads as absence.
      const auto read =
          read_blob_file(real_fs(), dir.path() + "/" + kName);
      const bool is_a = read.has_value() && *read == payload_a();
      const bool is_b = read.has_value() && *read == payload_b();
      if (read.has_value()) {
        EXPECT_TRUE(is_a || is_b)
            << "observable blob is neither A-complete nor B-complete";
      }
      // Acknowledged writes bound what absence is allowed to mean:
      // after A acked, A (or newer) must be observable — the overwrite
      // may not lose it short of committing B.
      if (acked >= 1) {
        EXPECT_TRUE(is_a || is_b)
            << "acknowledged blob lost (read "
            << (read.has_value() ? "damaged bytes" : "nothing") << ")";
      }
      if (acked == 2) {
        EXPECT_TRUE(is_b) << "second acknowledged write not observable";
      }

      if (kind == FaultKind::kFailOp && faulted) {
        // Transient failure: the "process" survives. A retry through
        // the now-clean fs must succeed and commit B.
        int retry_acked = acked;
        if (acked < 1) {
          write_blob_file(fs, dir.path(), kName, payload_a());
          retry_acked = 1;
        }
        if (retry_acked < 2) {
          write_blob_file(fs, dir.path(), kName, payload_b());
        }
        const auto after_retry =
            read_blob_file(real_fs(), dir.path() + "/" + kName);
        ASSERT_TRUE(after_retry.has_value());
        EXPECT_EQ(*after_retry, payload_b());
      }
    }
  }
}

TEST(PersistCalibration, DamagedBlobFallsBackToDefaultCalibration) {
  // End to end: persist a real calibrator, damage the file on disk in
  // several ways, and check each damage class lands on "absent" →
  // default constants, never a throw and never garbage constants.
  const ScopedTempDir dir("blob-damage");
  const std::string path = dir.path() + "/" + kName;

  dispatch::CostCalibrator calibrator;
  dispatch::CostFeatures features;
  features.nodes = 64;
  features.cores = 4;
  for (std::size_t i = 0; i < 40; ++i) {
    features.stcl_points = 1 + i % 3;
    calibrator.observe(features, 0.5 + 0.01 * static_cast<double>(i));
  }
  write_blob_file(real_fs(), dir.path(), kName, calibrator.serialize());

  // Undamaged: restores and is ready.
  {
    const auto blob = read_blob_file(real_fs(), path);
    ASSERT_TRUE(blob.has_value());
    const auto restored = dispatch::CostCalibrator::deserialize(*blob);
    ASSERT_TRUE(restored.has_value());
    EXPECT_TRUE(restored->ready());
    EXPECT_EQ(restored->samples(), calibrator.samples());
  }

  const std::string intact = real_fs().read_file(path);
  const auto rewrite = [&](const std::string& bytes) {
    real_fs().remove_file(path);
    auto file = real_fs().open_append(path);
    file->append(bytes);
    file->sync();
    file->close();
  };

  // Truncation (torn tail), header corruption, payload bit-flip, and a
  // stale tmp left next to a missing blob.
  rewrite(intact.substr(0, intact.size() - 5));
  EXPECT_FALSE(read_blob_file(real_fs(), path).has_value());

  std::string bad_magic = intact;
  bad_magic[0] = 'X';
  rewrite(bad_magic);
  EXPECT_FALSE(read_blob_file(real_fs(), path).has_value());

  std::string flipped = intact;
  flipped[intact.size() - 3] ^= 0x20;  // payload byte: checksum catches it
  rewrite(flipped);
  EXPECT_FALSE(read_blob_file(real_fs(), path).has_value());

  // A leftover tmp from a crashed writer must not satisfy the read, and
  // the next write must clear it and commit cleanly.
  real_fs().remove_file(path);
  {
    auto tmp = real_fs().open_append(path + ".tmp");
    tmp->append("half-written garbage");
    tmp->sync();
    tmp->close();
  }
  EXPECT_FALSE(read_blob_file(real_fs(), path).has_value());
  write_blob_file(real_fs(), dir.path(), kName, calibrator.serialize());
  const auto recovered = read_blob_file(real_fs(), path);
  ASSERT_TRUE(recovered.has_value());
  const auto restored = dispatch::CostCalibrator::deserialize(*recovered);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->ready());
}

}  // namespace
}  // namespace thermo::persist
