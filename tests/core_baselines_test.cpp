// Power-constrained and sequential baseline schedulers + safety checker.
#include <gtest/gtest.h>

#include <cmath>

#include "core/power_scheduler.hpp"
#include "core/safety_checker.hpp"
#include "core/sequential_scheduler.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::core {
namespace {

using thermo::testing::nine_soc;

class BaselineTest : public ::testing::Test {
 protected:
  SocSpec soc_ = nine_soc(6.0);
  thermal::ThermalAnalyzer analyzer_{soc_.flp, soc_.package};
};

TEST_F(BaselineTest, PowerSchedulerRespectsBudgetPerSession) {
  PowerSchedulerOptions options;
  options.power_limit = 20.0;  // 6 W cores -> at most 3 per session
  const PowerConstrainedScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc_);
  EXPECT_TRUE(result.schedule.is_complete(soc_));
  for (const TestSession& session : result.schedule.sessions) {
    double power = 0.0;
    for (std::size_t core : session.cores) power += soc_.tests[core].power;
    EXPECT_LE(power, options.power_limit + 1e-12);
    EXPECT_LE(session.size(), 3u);
  }
}

TEST_F(BaselineTest, PowerSchedulerPacksGreedily) {
  PowerSchedulerOptions options;
  options.power_limit = 18.0;  // exactly 3 cores of 6 W
  const PowerConstrainedScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc_);
  EXPECT_EQ(result.schedule.session_count(), 3u);
  EXPECT_DOUBLE_EQ(result.schedule_length, 3.0);
}

TEST_F(BaselineTest, PowerSchedulerIsBlindToPowerDensity) {
  // Two equal-power sessions, one dense one sparse: the power scheduler
  // accepts both; the thermal outcome differs. (The paper's Figure 1
  // argument, on the 3x3 grid.)
  SocSpec soc = nine_soc(6.0);
  const PowerConstrainedScheduler scheduler(
      PowerSchedulerOptions{.power_limit = 18.0, .sort_by_power = false});
  const ScheduleResult result = scheduler.generate(soc, &analyzer_);
  ASSERT_EQ(result.outcomes.size(), 3u);
  for (const SessionOutcome& outcome : result.outcomes) {
    EXPECT_GT(outcome.max_temperature, soc.package.ambient);
  }
}

TEST_F(BaselineTest, OverBudgetCoreGetsDedicatedSessionWithNote) {
  SocSpec soc = nine_soc(6.0);
  soc.tests[2].power = 50.0;
  PowerSchedulerOptions options;
  options.power_limit = 20.0;
  const PowerConstrainedScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc);
  EXPECT_TRUE(result.schedule.is_complete(soc));
  bool found_solo = false;
  for (const TestSession& session : result.schedule.sessions) {
    if (session.contains(2)) {
      EXPECT_EQ(session.size(), 1u);
      found_solo = true;
    }
  }
  EXPECT_TRUE(found_solo);
  ASSERT_EQ(result.notes.size(), 1u);
  EXPECT_NE(result.notes[0].find("exceeds"), std::string::npos);
}

TEST_F(BaselineTest, PowerSchedulerWithoutAnalyzerSkipsSimulation) {
  const PowerConstrainedScheduler scheduler(
      PowerSchedulerOptions{.power_limit = 30.0});
  const ScheduleResult result = scheduler.generate(soc_, nullptr);
  EXPECT_DOUBLE_EQ(result.simulation_effort, 0.0);
  EXPECT_DOUBLE_EQ(result.max_temperature, 0.0);
  EXPECT_TRUE(result.schedule.is_complete(soc_));
}

TEST_F(BaselineTest, PowerSchedulerOptionValidation) {
  PowerSchedulerOptions bad;
  bad.power_limit = 0.0;
  EXPECT_THROW(PowerConstrainedScheduler{bad}, InvalidArgument);
}

TEST_F(BaselineTest, SequentialSchedulerOneCorePerSession) {
  const SequentialScheduler scheduler;
  const ScheduleResult result = scheduler.generate(soc_, &analyzer_);
  EXPECT_EQ(result.schedule.session_count(), soc_.core_count());
  EXPECT_TRUE(result.schedule.is_complete(soc_));
  EXPECT_DOUBLE_EQ(result.schedule_length,
                   static_cast<double>(soc_.core_count()));
  EXPECT_EQ(result.bcmt.size(), soc_.core_count());
}

TEST_F(BaselineTest, SequentialIsCoolestSchedule) {
  // No concurrency -> per-session temperatures are the per-core solos,
  // which lower-bound any concurrent schedule's max temperature.
  const SequentialScheduler seq;
  const ScheduleResult sres = seq.generate(soc_, &analyzer_);
  const PowerConstrainedScheduler pow(
      PowerSchedulerOptions{.power_limit = 60.0});
  const ScheduleResult pres = pow.generate(soc_, &analyzer_);
  EXPECT_LE(sres.max_temperature, pres.max_temperature + 1e-9);
}

TEST_F(BaselineTest, SafetyCheckerAcceptsCoolSchedule) {
  const SequentialScheduler scheduler;
  const ScheduleResult result = scheduler.generate(soc_, &analyzer_);
  const SafetyChecker checker(150.0);
  const SafetyReport report =
      checker.check(soc_, result.schedule, analyzer_);
  EXPECT_TRUE(report.safe);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.session_max_temperature.size(),
            result.schedule.session_count());
}

TEST_F(BaselineTest, SafetyCheckerFlagsHotSessions) {
  TestSchedule all_at_once;
  TestSession everything;
  for (std::size_t i = 0; i < soc_.core_count(); ++i) {
    everything.cores.push_back(i);
  }
  all_at_once.sessions.push_back(everything);
  // Pick a limit between ambient and the all-on peak.
  const SafetyChecker checker(soc_.package.ambient + 5.0);
  const SafetyReport report = checker.check(soc_, all_at_once, analyzer_);
  EXPECT_FALSE(report.safe);
  EXPECT_FALSE(report.violations.empty());
  EXPECT_GT(report.max_temperature, soc_.package.ambient + 5.0);
  const std::string text = report.to_string(soc_);
  EXPECT_NE(text.find("UNSAFE"), std::string::npos);
}

TEST_F(BaselineTest, SafetyCheckerValidatesSchedule) {
  TestSchedule bad;
  bad.sessions.push_back({{0}});
  bad.sessions.push_back({{0}});  // duplicate
  const SafetyChecker checker(100.0);
  EXPECT_THROW(checker.check(soc_, bad, analyzer_), LogicError);
}

TEST_F(BaselineTest, SafetyCheckerRejectsNonFiniteLimit) {
  EXPECT_THROW(SafetyChecker(std::nan("")), InvalidArgument);
}

}  // namespace
}  // namespace thermo::core
