// SparseCholeskyFactor: the sparse LDLᵗ must agree with the dense
// factorizations on the same matrix, reject non-SPD input, produce the
// expected fill for structures we can reason about, and its backward-
// Euler stepper must track the dense LinearImplicitStepper.
#include "linalg/sparse_cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/ode.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::linalg {
namespace {

/// Random sparse symmetric diagonally dominant (hence SPD) matrix:
/// a ring of negative off-diagonals plus `extra` random symmetric
/// couplings, diagonal = |row sum| + margin. Mimics the structure of a
/// grounded thermal conductance matrix.
SparseMatrix random_spd(Rng& rng, std::size_t n, std::size_t extra) {
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  auto couple = [&](std::size_t i, std::size_t j, double g) {
    dense[i][j] -= g;
    dense[j][i] -= g;
    dense[i][i] += g;
    dense[j][j] += g;
  };
  for (std::size_t i = 0; i < n; ++i) {
    couple(i, (i + 1) % n, rng.uniform(0.5, 2.0));
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long long>(n) - 1));
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long long>(n) - 1));
    if (i == j) continue;
    couple(i, j, rng.uniform(0.1, 1.0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    dense[i][i] += rng.uniform(0.05, 0.5);  // grounding: strict dominance
  }
  SparseMatrix::Builder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (dense[i][j] != 0.0) builder.add(i, j, dense[i][j]);
    }
  }
  return builder.build();
}

Vector random_rhs(Rng& rng, std::size_t n) {
  Vector b(n);
  for (double& v : b) v = rng.uniform(-5.0, 5.0);
  return b;
}

double max_rel_diff(const Vector& a, const Vector& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max(1e-30, std::max(std::fabs(a[i]), std::fabs(b[i])));
    worst = std::max(worst, std::fabs(a[i] - b[i]) / scale);
  }
  return worst;
}

TEST(SparseCholeskyTest, MatchesDenseCholeskyOnRandomSpdSystems) {
  Rng rng(42);
  for (std::size_t n : {3u, 10u, 40u, 97u}) {
    const SparseMatrix a = random_spd(rng, n, 2 * n);
    const SparseCholeskyFactor sparse(a);
    const CholeskyFactor dense(a.to_dense());
    for (int trial = 0; trial < 3; ++trial) {
      const Vector b = random_rhs(rng, n);
      // Two direct factorizations of a well-conditioned SPD system:
      // the documented cross-backend tolerance is 1e-9 relative
      // (docs/SOLVERS.md "Choosing a backend"); these small systems
      // agree far tighter.
      EXPECT_LT(max_rel_diff(sparse.solve(b), dense.solve(b)), 1e-11)
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(SparseCholeskyTest, SolveIsDeterministicAcrossCalls) {
  Rng rng(7);
  const SparseMatrix a = random_spd(rng, 50, 100);
  const Vector b = random_rhs(rng, 50);
  const SparseCholeskyFactor f1(a);
  const SparseCholeskyFactor f2(a);
  const Vector x1 = f1.solve(b);
  const Vector x2 = f2.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_DOUBLE_EQ(x1[i], x2[i]);  // same algorithm, same bits
  }
}

TEST(SparseCholeskyTest, TridiagonalHasNoFill) {
  // A tridiagonal SPD matrix factors with exactly one sub-diagonal
  // entry per column: nnz(L) == n - 1 proves the symbolic analysis is
  // not over-allocating.
  const std::size_t n = 12;
  SparseMatrix::Builder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 2.5);
    if (i + 1 < n) {
      builder.add(i, i + 1, -1.0);
      builder.add(i + 1, i, -1.0);
    }
  }
  const SparseCholeskyFactor factor(builder.build());
  EXPECT_EQ(factor.factor_nonzeros(), n - 1);
}

TEST(SparseCholeskyTest, RejectsNonSpdAndBadShapes) {
  SparseMatrix::Builder indefinite(2, 2);
  indefinite.add(0, 0, 1.0);
  indefinite.add(0, 1, 3.0);
  indefinite.add(1, 0, 3.0);
  indefinite.add(1, 1, 1.0);  // eigenvalues 4 and -2
  EXPECT_THROW(SparseCholeskyFactor{indefinite.build()}, NumericalError);

  SparseMatrix::Builder negative(1, 1);
  negative.add(0, 0, -1.0);
  EXPECT_THROW(SparseCholeskyFactor{negative.build()}, NumericalError);

  SparseMatrix::Builder rect(2, 3);
  rect.add(0, 0, 1.0);
  EXPECT_THROW(SparseCholeskyFactor{rect.build()}, InvalidArgument);

  Rng rng(1);
  const SparseCholeskyFactor factor(random_spd(rng, 4, 0));
  EXPECT_THROW(factor.solve(Vector(5, 0.0)), InvalidArgument);
}

TEST(SparseImplicitStepperTest, TracksDenseStepper) {
  Rng rng(11);
  const SparseMatrix g = random_spd(rng, 30, 60);
  Vector capacitance(30);
  for (double& c : capacitance) c = rng.uniform(0.5, 3.0);
  const double dt = 1e-2;

  const SparseImplicitStepper sparse(g, capacitance, dt);
  const LinearImplicitStepper dense(g.to_dense(), capacitance, dt);
  EXPECT_DOUBLE_EQ(sparse.dt(), dt);
  EXPECT_EQ(sparse.size(), 30u);

  Vector y_sparse(30, 0.0);
  Vector y_dense(30, 0.0);
  const Vector b = random_rhs(rng, 30);
  for (int step = 0; step < 25; ++step) {
    y_sparse = sparse.step(y_sparse, b);
    y_dense = dense.step(y_dense, b);
  }
  EXPECT_LT(max_rel_diff(y_sparse, y_dense), 1e-10);
}

TEST(SparseImplicitStepperTest, RejectsBadInputs) {
  Rng rng(3);
  const SparseMatrix g = random_spd(rng, 5, 0);
  const Vector c(5, 1.0);
  EXPECT_THROW(SparseImplicitStepper(g, c, 0.0), InvalidArgument);
  EXPECT_THROW(SparseImplicitStepper(g, Vector(4, 1.0), 1e-3), InvalidArgument);
  EXPECT_THROW(SparseImplicitStepper(g, Vector(5, -1.0), 1e-3), InvalidArgument);
  const SparseImplicitStepper stepper(g, c, 1e-3);
  EXPECT_THROW(stepper.step(Vector(4, 0.0), Vector(5, 0.0)), InvalidArgument);
}

TEST(SparseMatrixTest, MultiplyIntoMatchesMultiply) {
  Rng rng(5);
  const SparseMatrix a = random_spd(rng, 20, 40);
  const Vector x = random_rhs(rng, 20);
  const Vector expected = a.multiply(x);
  Vector y(3, 99.0);  // wrong size on purpose: must be resized
  a.multiply_into(x, y);
  ASSERT_EQ(y.size(), expected.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(y[i], expected[i]);
  }
}

}  // namespace
}  // namespace thermo::linalg
