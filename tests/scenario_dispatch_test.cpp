// The dispatch-backed serve path: the property the whole subsystem
// hangs on — output bytes identical across {fifo,ljf} × {1,4} threads
// × dedup {on,off} on a randomized batch with invalid lines in place —
// plus request cost estimation, per-request timings, duplicate-batch
// memoization, and the summary JSON payload.
#include "scenario/serve.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dispatch/result_memo.hpp"
#include "scenario/cost.hpp"
#include "scenario/demo.hpp"

namespace thermo::scenario {
namespace {

/// A randomized-but-reproducible 50-line batch: 46 demo requests (mixed
/// SoCs, corners, STCL spans — see demo_batch) with four invalid lines
/// spliced in at fixed positions, which must produce ok:false records
/// *in place*.
std::string mixed_batch() {
  std::string input;
  std::size_t line = 0;
  for (const ScenarioRequest& request : demo_batch(46, 33)) {
    if (line == 3) input += "{definitely not json\n";
    if (line == 10) input += "{\"tl\":-40}\n";
    if (line == 27) input += "{\"soc\":{\"kind\":\"alhpa\"}}\n";
    if (line == 40) input += "{\"stcl\":{\"min\":5}}\n";
    input += to_json_line(request) + "\n";
    ++line;
  }
  return input;
}

struct RunOutput {
  std::string records;
  ServeSummary summary;
};

RunOutput run_serve(const std::string& input, const ServeOptions& options,
                    ScenarioRunner* shared_runner = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  ScenarioRunner local_runner;
  ScenarioRunner& runner =
      shared_runner != nullptr ? *shared_runner : local_runner;
  const ServeSummary summary = serve_stream(in, out, runner, options);
  return RunOutput{out.str(), summary};
}

TEST(ServeDispatch, ByteIdenticalAcrossPolicyThreadsAndDedup) {
  const std::string input = mixed_batch();
  ServeOptions reference_options;
  reference_options.threads = 1;
  const RunOutput reference = run_serve(input, reference_options);
  EXPECT_EQ(reference.summary.requests, 50u);
  EXPECT_EQ(reference.summary.failed, 4u);
  EXPECT_EQ(reference.summary.succeeded, 46u);

  for (const dispatch::SchedulePolicy policy :
       {dispatch::SchedulePolicy::kFifo, dispatch::SchedulePolicy::kLjf}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const bool dedup : {true, false}) {
        ServeOptions options;
        options.policy = policy;
        options.threads = threads;
        options.dedup = dedup;
        const RunOutput run = run_serve(input, options);
        EXPECT_EQ(run.records, reference.records)
            << "policy=" << dispatch::schedule_policy_name(policy)
            << " threads=" << threads << " dedup=" << dedup;
        EXPECT_EQ(run.summary.failed, 4u);
      }
    }
  }
}

TEST(ServeDispatch, InvalidLinesFailInPlace) {
  const RunOutput run = run_serve(mixed_batch(), {});
  std::vector<std::string> records;
  std::istringstream lines(run.records);
  for (std::string l; std::getline(lines, l);) records.push_back(l);
  ASSERT_EQ(records.size(), 50u);
  // The invalid lines were spliced in before demo lines 3/10/27/40, so
  // they landed at batch slots 3, 11, 29, and 43 (each earlier splice
  // shifts the later ones by one).
  for (const std::size_t slot : {std::size_t{3}, std::size_t{11},
                                 std::size_t{29}, std::size_t{43}}) {
    EXPECT_NE(records[slot].find("\"ok\":false"), std::string::npos)
        << "slot " << slot << ": " << records[slot];
    EXPECT_NE(records[slot].find("\"id\":\"line-"), std::string::npos);
  }
  EXPECT_NE(records[3].find("json: line 1"), std::string::npos);
  EXPECT_NE(records[11].find("tl: must be finite and > 0"), std::string::npos);
  EXPECT_NE(records[29].find("unknown SoC kind 'alhpa'"), std::string::npos);
  EXPECT_NE(records[43].find("requires both min and max"), std::string::npos);
}

TEST(ServeDispatch, PerRequestTimingsRideInTheSummaryOnly) {
  ServeOptions options;
  options.threads = 2;
  const RunOutput run = run_serve(mixed_batch(), options);
  ASSERT_EQ(run.summary.request_timings.size(), 50u);
  std::size_t ok_count = 0;
  for (const RequestTiming& timing : run.summary.request_timings) {
    EXPECT_FALSE(timing.id.empty());
    EXPECT_GE(timing.wall_seconds, 0.0);
    EXPECT_GE(timing.cpu_seconds, 0.0);
    if (timing.ok) ++ok_count;
  }
  EXPECT_EQ(ok_count, run.summary.succeeded);
  // Valid requests carry a positive cost estimate; every request ran
  // (the demo batch has no duplicate lines for the memo to collapse).
  EXPECT_GT(run.summary.request_timings[0].cost, 0.0);
  // Wall-clock must never leak into the deterministic records.
  EXPECT_EQ(run.records.find("wall"), std::string::npos);
  EXPECT_GT(run.summary.makespan_seconds, 0.0);
  EXPECT_LE(run.summary.makespan_seconds, run.summary.wall_seconds);
}

TEST(ServeDispatch, DuplicateRequestsHitTheMemoWithinABatch) {
  // Ten copies of one request (same explicit id ⇒ identical canonical
  // bytes ⇒ one execution) plus one distinct request.
  ScenarioRequest repeated;
  static const std::string kRepeatedId = "rep";
  repeated.id = kRepeatedId;
  repeated.stcl.min = repeated.stcl.max = 45.0;
  ScenarioRequest other;
  static const std::string kOtherId = "other";
  other.id = kOtherId;
  other.stcl.min = other.stcl.max = 60.0;
  std::string input;
  for (int i = 0; i < 10; ++i) input += to_json_line(repeated) + "\n";
  input += to_json_line(other) + "\n";

  ServeOptions dedup_on;
  dedup_on.threads = 4;
  const RunOutput on = run_serve(input, dedup_on);
  EXPECT_EQ(on.summary.executed, 2u);
  EXPECT_EQ(on.summary.memo_hits, 9u);
  EXPECT_EQ(on.summary.succeeded, 11u);

  ServeOptions dedup_off = dedup_on;
  dedup_off.dedup = false;
  const RunOutput off = run_serve(input, dedup_off);
  EXPECT_EQ(off.summary.executed, 11u);
  EXPECT_EQ(off.summary.memo_hits, 0u);
  EXPECT_EQ(off.records, on.records);  // the invariant, again

  // All ten records are identical lines; the distinct one differs.
  std::vector<std::string> records;
  std::istringstream lines(on.records);
  for (std::string l; std::getline(lines, l);) records.push_back(l);
  ASSERT_EQ(records.size(), 11u);
  for (int i = 1; i < 10; ++i) EXPECT_EQ(records[i], records[0]);
  EXPECT_NE(records[10], records[0]);
}

TEST(ServeDispatch, SharedMemoDedupsAcrossBatches) {
  const std::string input = mixed_batch();
  dispatch::ResultMemo memo;
  ScenarioRunner runner;
  ServeOptions options;
  options.threads = 2;
  options.memo = &memo;

  const RunOutput first = run_serve(input, options, &runner);
  EXPECT_EQ(first.summary.executed, 50u);  // 46 valid + 4 keyless invalid
  EXPECT_EQ(first.summary.memo_hits, 0u);
  EXPECT_EQ(first.summary.threads, 2u);  // workers actually executing

  const RunOutput second = run_serve(input, options, &runner);
  // Valid requests are all answered from the memo; the invalid lines
  // re-execute (their records depend on line numbers, so they are
  // deliberately keyless) — but they cost nothing.
  EXPECT_EQ(second.summary.memo_hits, 46u);
  EXPECT_EQ(second.summary.executed, 4u);
  EXPECT_EQ(second.records, first.records);
}

TEST(ServeDispatch, SummaryJsonSchemaAndCounts) {
  ServeOptions options;
  options.threads = 2;
  options.policy = dispatch::SchedulePolicy::kLjf;
  const RunOutput run = run_serve(mixed_batch(), options);
  const JsonValue json = serve_summary_to_json(run.summary);
  EXPECT_EQ(json.find("schema")->as_string(), "thermo.serve_summary.v1");
  EXPECT_EQ(json.find("requests")->as_number(), 50.0);
  EXPECT_EQ(json.find("ok")->as_number(), 46.0);
  EXPECT_EQ(json.find("failed")->as_number(), 4.0);
  EXPECT_EQ(json.find("policy")->as_string(), "ljf");
  EXPECT_TRUE(json.find("dedup")->as_bool());
  EXPECT_GT(json.find("makespan_s")->as_number(), 0.0);
  ASSERT_NE(json.find("memo"), nullptr);
  EXPECT_EQ(json.find("memo")->find("executed")->as_number(), 50.0);
  ASSERT_NE(json.find("tail"), nullptr);
  EXPECT_GT(json.find("tail")->find("slowest_wall_s")->as_number(), 0.0);
  ASSERT_NE(json.find("tail")->find("p95_wall_s"), nullptr);
  ASSERT_NE(json.find("model_cache"), nullptr);
  const JsonValue* timings = json.find("request_timings");
  ASSERT_NE(timings, nullptr);
  ASSERT_EQ(timings->items().size(), 50u);
  EXPECT_EQ(timings->items()[0].find("id")->as_string(),
            run.summary.request_timings[0].id);
  // The payload must round-trip through the serializer (finite numbers,
  // valid structure).
  EXPECT_FALSE(json.dump().empty());
}

TEST(RequestCost, RanksTheWhaleAboveTheMinnow) {
  ScenarioRequest minnow;  // default: alpha, single STCL, transient
  ScenarioRequest whale;
  whale.soc.kind = SocKind::kSynthetic;
  whale.soc.synthetic.cores = 1024;
  whale.solver.transient = false;
  const double minnow_cost = estimate_request_cost(minnow);
  const double whale_cost = estimate_request_cost(whale);
  EXPECT_GT(whale_cost, minnow_cost);

  // The whale resolves to the sparse backend; its features say so.
  const dispatch::CostFeatures features = request_cost_features(whale);
  EXPECT_TRUE(features.sparse);
  EXPECT_EQ(features.nodes, 1034u);
  EXPECT_FALSE(features.transient);
  const dispatch::CostFeatures small = request_cost_features(minnow);
  EXPECT_FALSE(small.sparse);
  EXPECT_EQ(small.nodes, 25u);
  EXPECT_EQ(small.stcl_points, 1u);

  // An STCL range multiplies the estimate.
  ScenarioRequest span = minnow;
  span.stcl.min = 20.0;
  span.stcl.max = 100.0;
  span.stcl.step = 10.0;
  EXPECT_GT(estimate_request_cost(span), 5.0 * minnow_cost);
}

}  // namespace
}  // namespace thermo::scenario
