// The dispatch layer in isolation: cost-model ordering, work-queue
// policies, the content-addressed result memo (FNV addressing, LRU,
// stats), the streaming ordered writer, and the engine's hard
// invariant — output bytes identical across thread counts, policies,
// and dedup settings.
#include "dispatch/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dispatch/cost_model.hpp"
#include "dispatch/ordered_writer.hpp"
#include "dispatch/result_memo.hpp"
#include "dispatch/work_queue.hpp"
#include "util/error.hpp"

namespace thermo::dispatch {
namespace {

TEST(CostModel, MonotoneInEveryFeature) {
  const CostModel model;
  CostFeatures base;
  base.nodes = 25;
  base.cores = 15;
  base.transient = true;
  base.steps_per_call = 1000.0;
  base.stcl_points = 1;
  const double reference = model.estimate(base);
  EXPECT_GT(reference, 0.0);

  CostFeatures more = base;
  more.nodes = 250;
  EXPECT_GT(model.estimate(more), reference);
  more = base;
  more.cores = 150;
  EXPECT_GT(model.estimate(more), reference);
  more = base;
  more.steps_per_call = 10000.0;
  EXPECT_GT(model.estimate(more), reference);
  more = base;
  more.stcl_points = 9;
  EXPECT_GT(model.estimate(more), reference);
}

TEST(CostModel, SteadyIsCheaperThanTransientAndSparseScalesLinearly) {
  const CostModel model;
  CostFeatures transient;
  transient.nodes = 1034;
  transient.cores = 1024;
  transient.sparse = true;
  transient.transient = true;
  transient.steps_per_call = 1000.0;
  CostFeatures steady = transient;
  steady.transient = false;
  EXPECT_LT(model.estimate(steady), model.estimate(transient));

  // At 1034 nodes the dense n² term must dominate the sparse c·n one —
  // the same reason the solver backend crosses over.
  CostFeatures dense = steady;
  dense.sparse = false;
  EXPECT_GT(model.estimate(dense), model.estimate(steady));
}

TEST(CostModel, ConstantsAreOverridable) {
  CostConstants constants;
  constants.per_request = 7.0;
  constants.validations_per_core = 1.0;
  constants.per_call_overhead = 0.0;
  constants.dense_ops_per_node_sq = 1.0;
  const CostModel model(constants);
  CostFeatures f;
  f.nodes = 10;
  f.cores = 2;
  f.transient = false;
  f.stcl_points = 3;
  // 7 + 3 points * 2 calls * (1 solve * 100 ops) = 607, exactly.
  EXPECT_DOUBLE_EQ(model.estimate(f), 607.0);
}

TEST(SchedulePolicy, NamesRoundTrip) {
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kFifo), "fifo");
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kLjf), "ljf");
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kEdf), "edf");
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kPriority), "priority");
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kSrpt), "srpt");
  for (SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kLjf, SchedulePolicy::kEdf,
        SchedulePolicy::kPriority, SchedulePolicy::kSrpt}) {
    EXPECT_EQ(schedule_policy_from_name(schedule_policy_name(policy)), policy);
  }
  EXPECT_EQ(schedule_policy_from_name("sjf"), std::nullopt);
  EXPECT_EQ(schedule_policy_from_name(""), std::nullopt);
}

TEST(SchedulePolicy, BuiltinsAreRegistered) {
  for (const char* name : {"fifo", "ljf", "edf", "priority", "srpt"}) {
    EXPECT_TRUE(schedule_policy_registered(name)) << name;
  }
  EXPECT_FALSE(schedule_policy_registered("sjf"));
  const std::vector<std::string> names = registered_schedule_policies();
  for (const char* builtin : {"fifo", "ljf", "edf", "priority", "srpt"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin << " missing from registered_schedule_policies()";
  }
}

TEST(SchedulePolicy, RegistryAcceptsThirdPartyPoliciesOnce) {
  // Largest-index-first: trivially wrong as a scheduler, obviously
  // distinguishable from every built-in order.
  register_schedule_policy("test.reverse",
                           [](const WorkItem& a, const WorkItem& b) {
                             return a.index > b.index;
                           });
  EXPECT_TRUE(schedule_policy_registered("test.reverse"));
  WorkQueue queue(std::string_view("test.reverse"));
  queue.push(0, 1.0);
  queue.push(1, 2.0);
  queue.push(2, 3.0);
  queue.seal();
  EXPECT_EQ(queue.pop(), 2u);
  EXPECT_EQ(queue.pop(), 1u);
  EXPECT_EQ(queue.pop(), 0u);

  // First registration wins forever: a retaken name throws, built-ins
  // included; the empty name is never valid.
  EXPECT_THROW(register_schedule_policy("test.reverse", {}), InvalidArgument);
  EXPECT_THROW(register_schedule_policy("fifo", {}), InvalidArgument);
  EXPECT_THROW(register_schedule_policy("", {}), InvalidArgument);
}

TEST(SchedulePolicy, QueueRejectsUnknownPolicyName) {
  EXPECT_THROW(WorkQueue(std::string_view("no-such-policy")), InvalidArgument);
  EXPECT_THROW(WorkQueue(std::string_view("")), InvalidArgument);
}

TEST(WorkQueue, FifoPopsInInsertionOrder) {
  WorkQueue queue(SchedulePolicy::kFifo);
  queue.push(0, 5.0);
  queue.push(1, 50.0);
  queue.push(2, 0.5);
  queue.seal();
  EXPECT_EQ(queue.pop(), 0u);
  EXPECT_EQ(queue.pop(), 1u);
  EXPECT_EQ(queue.pop(), 2u);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(WorkQueue, LjfPopsByDescendingCostWithIndexTiebreak) {
  WorkQueue queue(SchedulePolicy::kLjf);
  queue.push(0, 1.0);
  queue.push(1, 9.0);
  queue.push(2, 1.0);
  queue.push(3, 100.0);
  queue.push(4, 9.0);
  queue.seal();
  std::vector<std::size_t> order;
  while (const auto i = queue.pop()) order.push_back(*i);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 4, 0, 2}));
}

/// Builds a WorkItem inline; kNoDeadline / priority 1 defaults apply.
WorkItem item(std::size_t index, double cost, double deadline = kNoDeadline,
              double priority = 1.0) {
  WorkItem out;
  out.index = index;
  out.cost = cost;
  out.deadline = deadline;
  out.priority = priority;
  return out;
}

std::vector<std::size_t> drain(WorkQueue& queue) {
  queue.seal();
  std::vector<std::size_t> order;
  while (const auto i = queue.pop()) order.push_back(*i);
  return order;
}

TEST(WorkQueue, EdfPopsByAscendingDeadlineWithDeadlineFreeLast) {
  WorkQueue queue(SchedulePolicy::kEdf);
  queue.push(item(0, 9.0));             // no deadline: after every deadlined job
  queue.push(item(1, 1.0, 5.0));
  queue.push(item(2, 1.0, 0.5));
  queue.push(item(3, 1.0, 5.0));        // ties 1 on deadline: index breaks it
  queue.push(item(4, 50.0, 2.0));
  queue.push(item(5, 1.0));             // ties 0 at kNoDeadline: index again
  EXPECT_EQ(drain(queue), (std::vector<std::size_t>{2, 4, 1, 3, 0, 5}));
}

TEST(WorkQueue, PriorityPopsByAscendingCostOverPriorityRatio) {
  WorkQueue queue(SchedulePolicy::kPriority);
  queue.push(item(0, 8.0, kNoDeadline, 1.0));  // ratio 8
  queue.push(item(1, 8.0, kNoDeadline, 4.0));  // ratio 2
  queue.push(item(2, 1.0, kNoDeadline, 1.0));  // ratio 1
  queue.push(item(3, 4.0, kNoDeadline, 2.0));  // ratio 2: ties 1, index breaks
  queue.push(item(4, 2.0, kNoDeadline, 0.25)); // ratio 8: ties 0, index breaks
  EXPECT_EQ(drain(queue), (std::vector<std::size_t>{2, 1, 3, 0, 4}));
}

TEST(WorkQueue, SrptPopsByAscendingCostWithIndexTiebreak) {
  WorkQueue queue(SchedulePolicy::kSrpt);
  queue.push(item(0, 9.0));
  queue.push(item(1, 1.0));
  queue.push(item(2, 100.0));
  queue.push(item(3, 1.0));  // ties 1: index breaks it
  queue.push(item(4, 0.5));
  EXPECT_EQ(drain(queue), (std::vector<std::size_t>{4, 1, 3, 0, 2}));
}

TEST(WorkQueue, PushRejectsUnusableItems) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  WorkQueue queue(SchedulePolicy::kEdf);
  EXPECT_THROW(queue.push(item(0, -1.0)), InvalidArgument);        // cost < 0
  EXPECT_THROW(queue.push(item(0, inf)), InvalidArgument);         // cost inf
  EXPECT_THROW(queue.push(item(0, nan)), InvalidArgument);         // cost NaN
  EXPECT_THROW(queue.push(item(0, 1.0, nan)), InvalidArgument);    // deadline NaN
  EXPECT_THROW(queue.push(item(0, 1.0, 0.0)), InvalidArgument);    // deadline 0
  EXPECT_THROW(queue.push(item(0, 1.0, -2.0)), InvalidArgument);   // deadline < 0
  EXPECT_THROW(queue.push(item(0, 1.0, 1.0, 0.0)), InvalidArgument);   // prio 0
  EXPECT_THROW(queue.push(item(0, 1.0, 1.0, -1.0)), InvalidArgument);  // prio < 0
  EXPECT_THROW(queue.push(item(0, 1.0, 1.0, inf)), InvalidArgument);   // prio inf
  EXPECT_THROW(queue.push(item(0, 1.0, 1.0, nan)), InvalidArgument);   // prio NaN
  // kNoDeadline (+inf) is the explicit "no deadline" value, not misuse.
  queue.push(item(0, 1.0, kNoDeadline));
  queue.seal();
  EXPECT_EQ(queue.pop(), 0u);  // none of the rejected pushes got in
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(WorkQueue, GuardsAgainstMisuse) {
  WorkQueue queue;
  queue.push(0, 1.0);
  EXPECT_THROW(queue.pop(), InvalidArgument);  // pop before seal
  queue.seal();
  EXPECT_THROW(queue.push(1, 1.0), InvalidArgument);  // push after seal
  EXPECT_THROW(queue.seal(), InvalidArgument);        // double seal
}

TEST(ResultMemo, Fnv1a64ReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ResultMemo, FindInsertAndStats) {
  ResultMemo memo;
  EXPECT_EQ(memo.find("k1"), std::nullopt);
  memo.insert("k1", "record-1");
  EXPECT_EQ(memo.find("k1"), "record-1");
  EXPECT_EQ(memo.find("k2"), std::nullopt);
  const auto stats = memo.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResultMemo, FirstInsertWinsOnIdenticalDuplicate) {
  // Racing duplicate executions of one key produce identical bytes
  // (records are pure functions of their keys); the memo keeps the
  // first copy and counts no second insertion.
  ResultMemo memo;
  memo.insert("k", "record");
  memo.insert("k", "record");
  EXPECT_EQ(memo.find("k"), "record");
  EXPECT_EQ(memo.stats().insertions, 1u);
}

TEST(ResultMemo, DivergentDuplicateInsertThrows) {
  // A duplicate insert carrying DIFFERENT bytes means a writer broke
  // the pure-function-of-the-key premise; silently keeping either copy
  // would let the cache serve one of two different answers, so the
  // memo fails loudly instead.
  ResultMemo memo;
  memo.insert("k", "first");
  EXPECT_THROW(memo.insert("k", "second"), LogicError);
  EXPECT_EQ(memo.find("k"), "first");  // the resident record is untouched
}

TEST(ResultMemo, ConcurrentHammerKeepsCountersConsistent) {
  // Counter-consistency under contention: every operation (stats
  // included) is serialized on one mutex, so however the threads
  // interleave, the totals must balance exactly:
  //   hits + misses == find() calls,
  //   insertions - evictions == entries,
  //   entries <= capacity.
  // The small capacity forces eviction/insert races on hot keys.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 2000;
  constexpr std::size_t kKeySpace = 64;
  constexpr std::size_t kCapacity = 16;
  const auto value_of = [](std::size_t k) {
    return "record-" + std::to_string(k);
  };
  ResultMemo memo(kCapacity);
  std::atomic<std::size_t> total_finds{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t state = t + 1;
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::size_t k = state % kKeySpace;
        const std::string key = "key-" + std::to_string(k);
        const auto found = memo.find(key);
        total_finds.fetch_add(1, std::memory_order_relaxed);
        if (found) {
          // Every served record must be the key's one true value —
          // an insert/evict race may lose entries, never corrupt them.
          ASSERT_EQ(*found, value_of(k));
        } else {
          memo.insert(key, value_of(k));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto stats = memo.stats();
  EXPECT_EQ(stats.hits + stats.misses, total_finds.load());
  EXPECT_EQ(stats.insertions - stats.evictions, stats.entries);
  EXPECT_LE(stats.entries, kCapacity);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // capacity < keyspace forces churn
}

TEST(ResultMemo, LruEvictionAtCapacity) {
  ResultMemo memo(2);
  memo.insert("a", "ra");
  memo.insert("b", "rb");
  EXPECT_EQ(memo.find("a"), "ra");  // refresh a, making b the LRU victim
  memo.insert("c", "rc");
  EXPECT_EQ(memo.stats().evictions, 1u);
  EXPECT_EQ(memo.stats().entries, 2u);
  EXPECT_EQ(memo.find("b"), std::nullopt);  // evicted
  EXPECT_EQ(memo.find("a"), "ra");
  EXPECT_EQ(memo.find("c"), "rc");
}

TEST(OrderedWriter, StreamsInOrderRegardlessOfPushOrder) {
  std::ostringstream out;
  std::vector<std::size_t> observed;
  OrderedWriter writer(out, 4, [&](std::size_t index, const std::string&) {
    observed.push_back(index);
  });
  writer.push(2, "r2");
  EXPECT_EQ(out.str(), "");  // 0 not written yet: nothing may stream
  writer.push(0, "r0");
  EXPECT_EQ(out.str(), "r0\n");  // 1 still missing, 2 stays buffered
  writer.push(1, "r1");
  EXPECT_EQ(out.str(), "r0\nr1\nr2\n");  // 1 unblocked 2 as well
  writer.push(3, "r3");
  writer.finish();
  EXPECT_EQ(out.str(), "r0\nr1\nr2\nr3\n");
  EXPECT_EQ(writer.written(), 4u);
  EXPECT_EQ(writer.max_buffered(), 1u);
  EXPECT_EQ(observed, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(OrderedWriter, GuardsAgainstMisuse) {
  std::ostringstream out;
  OrderedWriter writer(out, 2);
  writer.push(0, "r0");
  EXPECT_THROW(writer.push(0, "again"), InvalidArgument);
  EXPECT_THROW(writer.push(2, "range"), InvalidArgument);
  EXPECT_THROW(writer.finish(), LogicError);  // index 1 never arrived
}

/// A batch whose records are pure functions of the key content: job i
/// computes "v:<payload>". Payloads repeat to exercise dedup.
struct FakeBatch {
  std::vector<std::string> payloads;

  std::vector<Job> jobs(bool keyed = true) const {
    std::vector<Job> out(payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      if (keyed) out[i].memo_key = payloads[i];
      out[i].cost = static_cast<double>(payloads[i].size());
      // Deterministic SLO spread so edf/priority actually reorder:
      // every third job carries a deadline, priorities cycle 1..4.
      if (i % 3 == 0) out[i].deadline = 1.0 + static_cast<double>(i % 5);
      out[i].priority = 1.0 + static_cast<double>(i % 4);
    }
    return out;
  }

  std::string run(const EngineOptions& options, EngineStats* stats_out = nullptr,
                  std::atomic<std::size_t>* executions = nullptr) const {
    std::ostringstream out;
    OrderedWriter writer(out, payloads.size());
    const EngineStats stats = run_batch(
        this->jobs(),
        [&](std::size_t i) {
          if (executions != nullptr) executions->fetch_add(1);
          return "v:" + payloads[i];
        },
        writer, options);
    if (stats_out != nullptr) *stats_out = stats;
    return out.str();
  }
};

TEST(Engine, OutputBytesInvariantAcrossThreadsPolicyAndDedup) {
  // append() instead of `"p" + std::to_string(...)` / `"v:" + p + "\n"`:
  // those operator+ chains trip the GCC 12 -Wrestrict false positive
  // (PR105651) under heavy inlining.
  FakeBatch batch;
  for (int i = 0; i < 40; ++i) {
    std::string payload("p");
    payload.append(std::to_string(i % 17));  // duplicates
    batch.payloads.push_back(std::move(payload));
  }
  std::string expected;
  for (const std::string& p : batch.payloads) {
    expected.append("v:").append(p).push_back('\n');
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const SchedulePolicy policy :
         {SchedulePolicy::kFifo, SchedulePolicy::kLjf, SchedulePolicy::kEdf,
          SchedulePolicy::kPriority, SchedulePolicy::kSrpt}) {
      for (const bool dedup : {true, false}) {
        EngineOptions options;
        options.threads = threads;
        options.policy = policy;
        options.dedup = dedup;
        EXPECT_EQ(batch.run(options), expected)
            << "threads=" << threads << " policy="
            << schedule_policy_name(policy) << " dedup=" << dedup;
      }
    }
  }
}

TEST(Engine, DedupExecutesEachDistinctKeyOnce) {
  FakeBatch batch;
  batch.payloads = {"a", "b", "a", "c", "b", "a"};
  EngineOptions options;
  options.threads = 1;
  EngineStats stats;
  std::atomic<std::size_t> executions{0};
  batch.run(options, &stats, &executions);
  EXPECT_EQ(executions.load(), 3u);  // a, b, c
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.memo_hits, 3u);  // the three within-batch duplicates
  EXPECT_FALSE(stats.timings[0].memo_hit);
  EXPECT_TRUE(stats.timings[2].memo_hit);
  EXPECT_TRUE(stats.timings[4].memo_hit);
  EXPECT_TRUE(stats.timings[5].memo_hit);
}

TEST(Engine, DedupOffExecutesEverything) {
  FakeBatch batch;
  batch.payloads = {"a", "a", "a"};
  EngineOptions options;
  options.threads = 2;
  options.dedup = false;
  EngineStats stats;
  std::atomic<std::size_t> executions{0};
  batch.run(options, &stats, &executions);
  EXPECT_EQ(executions.load(), 3u);
  EXPECT_EQ(stats.memo_hits, 0u);
}

TEST(Engine, SharedMemoDedupsAcrossBatches) {
  FakeBatch batch;
  batch.payloads = {"x", "y", "z", "x"};
  ResultMemo memo;
  EngineOptions options;
  options.threads = 2;
  options.memo = &memo;

  EngineStats first;
  std::atomic<std::size_t> executions{0};
  const std::string out_first = batch.run(options, &first, &executions);
  EXPECT_EQ(executions.load(), 3u);
  EXPECT_EQ(first.memo_hits, 1u);  // the within-batch duplicate "x"

  // Identical batch again: everything is answered from the memo.
  EngineStats second;
  const std::string out_second = batch.run(options, &second, &executions);
  EXPECT_EQ(executions.load(), 3u);  // nothing new ran
  EXPECT_EQ(second.memo_hits, 4u);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(out_second, out_first);
}

TEST(Engine, KeylessJobsAlwaysExecuteAndNeverEnterTheMemo) {
  ResultMemo memo;
  std::atomic<std::size_t> executions{0};
  const auto run_once = [&] {
    std::ostringstream out;
    OrderedWriter writer(out, 2);
    EngineOptions options;
    options.threads = 1;
    options.memo = &memo;
    std::vector<Job> jobs(2);  // both keyless
    run_batch(
        jobs,
        [&](std::size_t i) {
          executions.fetch_add(1);
          return "r" + std::to_string(i);
        },
        writer, options);
    return out.str();
  };
  EXPECT_EQ(run_once(), "r0\nr1\n");
  EXPECT_EQ(run_once(), "r0\nr1\n");
  EXPECT_EQ(executions.load(), 4u);
  EXPECT_EQ(memo.stats().entries, 0u);
}

TEST(Engine, TimingsAndMakespanArePopulated) {
  FakeBatch batch;
  batch.payloads = {"a", "b", "c"};
  EngineOptions options;
  options.threads = 2;
  EngineStats stats;
  batch.run(options, &stats);
  ASSERT_EQ(stats.timings.size(), 3u);
  EXPECT_GE(stats.makespan_seconds, 0.0);
  for (const JobTiming& timing : stats.timings) {
    EXPECT_GE(timing.wall_seconds, 0.0);
    EXPECT_GE(timing.cpu_seconds, 0.0);
    // Completion offsets share the makespan's execution-window origin,
    // so no job can complete after the window closes.
    EXPECT_GE(timing.done_seconds, 0.0);
    EXPECT_LE(timing.done_seconds, stats.makespan_seconds);
  }
}

TEST(Engine, ReportsTheWriterHighWaterMark) {
  // 1 thread + ljf + ascending costs: execution order is exactly the
  // reverse of input order, so records 2 and 1 must buffer until 0
  // lands — a deterministic out-of-order completion.
  FakeBatch batch;
  batch.payloads = {"a", "bb", "ccc"};  // cost = length
  EngineOptions options;
  options.threads = 1;
  options.policy = SchedulePolicy::kLjf;
  EngineStats stats;
  batch.run(options, &stats);
  EXPECT_EQ(stats.max_buffered, 2u);

  // Fifo on 1 thread completes in input order: nothing ever buffers.
  options.policy = SchedulePolicy::kFifo;
  batch.run(options, &stats);
  EXPECT_EQ(stats.max_buffered, 0u);
}

TEST(Engine, ExecuteExceptionPropagates) {
  std::ostringstream out;
  OrderedWriter writer(out, 2);
  std::vector<Job> jobs(2);
  EngineOptions options;
  options.threads = 2;
  EXPECT_THROW(
      run_batch(
          jobs,
          [&](std::size_t i) -> std::string {
            if (i == 1) throw NumericalError("solver blew up");
            return "ok";
          },
          writer, options),
      NumericalError);
}

TEST(Engine, EmptyBatchIsANoOp) {
  std::ostringstream out;
  OrderedWriter writer(out, 0);
  const EngineStats stats = run_batch(
      {}, [](std::size_t) { return std::string{}; }, writer);
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(out.str(), "");
}

}  // namespace
}  // namespace thermo::dispatch
