// Shared helpers for the persist-layer test suite: scratch directories
// and deterministic record payloads (binary-unsafe bytes included, so
// round-trip tests prove the store is 8-bit clean).
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/rng.hpp"

namespace thermo::testing {

/// A unique scratch directory path under the gtest temp dir, recursively
/// removed on scope exit. The directory itself is NOT created — stores
/// with create_if_missing exercise their own creation path.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    std::string name = tag;
    if (const ::testing::TestInfo* info =
            ::testing::UnitTest::GetInstance()->current_test_info()) {
      name += std::string("-") + info->test_suite_name() + "-" + info->name();
    }
    for (char& c : name) {
      if (c == '/' || c == '\\') c = '_';
    }
    path_ = ::testing::TempDir() + name;
    std::filesystem::remove_all(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Deterministic binary payload for record index `i`: seeded bytes over
/// the full 0..255 range (embedded NULs, newlines, 0xff) of a
/// pseudo-random length in [min_length, min_length + 64).
inline std::string record_payload(std::size_t i, std::size_t min_length = 16) {
  Rng rng(0x9e3779b97f4a7c15ULL ^ i);
  const std::size_t length =
      min_length + static_cast<std::size_t>(rng.uniform_index(64));
  std::string bytes;
  bytes.reserve(length);
  for (std::size_t b = 0; b < length; ++b) {
    bytes.push_back(static_cast<char>(rng.next_u64() & 0xff));
  }
  return bytes;
}

inline std::string record_key(std::size_t i) {
  return "key-" + std::to_string(i);
}

}  // namespace thermo::testing
