// DiskResultMemo: the two-tier (memory LRU over crash-safe segment
// store) result memo behind `thermosched serve --cache-dir`. Covered
// here: tier ordering and promotion, durable write-through, cold-process
// inheritance, schema-revision invalidation, engine integration through
// the polymorphic ResultMemo*, and I/O failure propagation.
#include "dispatch/disk_result_memo.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dispatch/engine.hpp"
#include "dispatch/ordered_writer.hpp"
#include "persist/fault_fs.hpp"
#include "persist_test_util.hpp"

namespace thermo::dispatch {
namespace {

using testing::record_key;
using testing::record_payload;
using testing::ScopedTempDir;

TEST(DiskResultMemo, MemoryTierAnswersBeforeDisk) {
  const ScopedTempDir dir("diskmemo");
  DiskResultMemo memo(dir.path());
  memo.insert("k", "record");
  EXPECT_EQ(memo.find("k"), "record");
  EXPECT_EQ(memo.disk_hits(), 0u);  // resident in memory, disk untouched
  EXPECT_EQ(memo.store().stats().get_hits, 0u);
}

TEST(DiskResultMemo, ColdProcessInheritsEveryRecordFromDisk) {
  const ScopedTempDir dir("diskmemo");
  {
    DiskResultMemo memo(dir.path());
    for (std::size_t i = 0; i < 20; ++i) {
      memo.insert(record_key(i), record_payload(i));
    }
  }
  // A fresh object over the same directory models a restarted process:
  // empty memory tier, warm disk tier.
  DiskResultMemo cold(dir.path());
  for (std::size_t i = 0; i < 20; ++i) {
    const auto value = cold.find(record_key(i));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, record_payload(i));
  }
  EXPECT_EQ(cold.disk_hits(), 20u);
  // Promotion: the second pass is answered from memory.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(cold.find(record_key(i)), record_payload(i));
  }
  EXPECT_EQ(cold.disk_hits(), 20u);  // unchanged
}

TEST(DiskResultMemo, InsertIsDurableBeforeItReturns) {
  const ScopedTempDir dir("diskmemo");
  DiskResultMemo memo(dir.path());
  memo.insert("k", "record");
  // Default store mode is fsync-per-record: the bytes are on disk the
  // moment insert() returns, not at close.
  EXPECT_EQ(memo.store().stats().appends, 1u);
  EXPECT_TRUE(memo.store().contains("k"));
}

TEST(DiskResultMemo, MemoryEvictionDoesNotLoseDurableRecords) {
  const ScopedTempDir dir("diskmemo");
  DiskResultMemo::Options options;
  options.memory_capacity = 4;  // far smaller than the record count
  DiskResultMemo memo(dir.path(), options);
  for (std::size_t i = 0; i < 32; ++i) {
    memo.insert(record_key(i), record_payload(i));
  }
  // Most records were evicted from memory; all must come back from disk.
  for (std::size_t i = 0; i < 32; ++i) {
    const auto value = memo.find(record_key(i));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, record_payload(i));
  }
  EXPECT_GT(memo.disk_hits(), 0u);
}

TEST(DiskResultMemo, SchemaRevisionBumpInvalidatesTheCache) {
  const ScopedTempDir dir("diskmemo");
  {
    // An older process wrote records under a different payload schema.
    persist::StoreOptions stale;
    stale.schema_revision = kResultSchemaRevision + 1;
    persist::SegmentStore store(dir.path(), stale);
    store.put("k", "stale-format record");
  }
  DiskResultMemo memo(dir.path());
  EXPECT_TRUE(memo.store().stats().wiped_on_open);
  EXPECT_EQ(memo.find("k"), std::nullopt);  // never served across formats
  memo.insert("k", "fresh record");
  EXPECT_EQ(memo.find("k"), "fresh record");
}

TEST(DiskResultMemo, EngineServesAWholeBatchFromDiskAfterRestart) {
  // End-to-end through run_batch's ResultMemo*: first process executes
  // and persists; the restarted process answers every job from the memo
  // (zero executions) with byte-identical output.
  const ScopedTempDir dir("diskmemo");
  const std::size_t n = 24;
  const auto execute = [](std::size_t i) {
    return "result-" + std::to_string(i % 8);  // 8 distinct records
  };
  std::vector<Job> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i].memo_key = "job-" + std::to_string(i % 8);
    jobs[i].cost = 1.0;
  }

  std::string first_output;
  {
    DiskResultMemo memo(dir.path());
    std::ostringstream out;
    OrderedWriter writer(out, n);
    EngineOptions options;
    options.threads = 3;
    options.memo = &memo;
    const EngineStats stats = run_batch(jobs, execute, writer, options);
    EXPECT_EQ(stats.executed, 8u);
    first_output = out.str();
  }
  {
    DiskResultMemo memo(dir.path());  // cold restart
    std::ostringstream out;
    OrderedWriter writer(out, n);
    EngineOptions options;
    options.threads = 3;
    options.memo = &memo;
    const EngineStats stats = run_batch(jobs, execute, writer, options);
    EXPECT_EQ(stats.executed, 0u);  // everything answered from the cache
    EXPECT_EQ(stats.memo_hits, n);
    EXPECT_EQ(out.str(), first_output);  // byte-identical
    EXPECT_EQ(memo.disk_hits(), 8u);
  }
}

TEST(DiskResultMemo, AppendFailurePropagatesAndNothingIsCached) {
  // Learn which op indices make up the first insert (segment creation,
  // header append, frame append, fsync), then fail each one in turn:
  // every variant must surface IoError, acknowledge nothing, and leave
  // the memo usable.
  std::size_t insert_ops_begin = 0;
  std::size_t insert_ops_end = 0;
  {
    const ScopedTempDir discover("diskmemo-discover");
    persist::FaultFs fs(persist::real_fs());
    DiskResultMemo::Options options;
    options.store.fs = &fs;
    DiskResultMemo memo(discover.path(), options);
    insert_ops_begin = fs.ops_seen();
    memo.insert("k", "record");
    insert_ops_end = fs.ops_seen();
  }
  ASSERT_GT(insert_ops_end, insert_ops_begin);

  for (std::size_t op = insert_ops_begin; op < insert_ops_end; ++op) {
    SCOPED_TRACE("transient failure at op " + std::to_string(op));
    const ScopedTempDir dir("diskmemo-fail");
    persist::FaultPlan plan;
    plan.after_ops = op;
    plan.kind = persist::FaultKind::kFailOp;
    persist::FaultFs fs(persist::real_fs(), plan);
    DiskResultMemo::Options options;
    options.store.fs = &fs;
    DiskResultMemo memo(dir.path(), options);
    EXPECT_THROW(memo.insert("k", "record"), persist::IoError);
    // The record was not acknowledged, so neither tier may serve it.
    EXPECT_EQ(memo.find("k"), std::nullopt);
    // The memo stays usable: the store abandoned the damaged segment
    // and the next insert lands in a fresh one.
    memo.insert("k2", "record-2");
    EXPECT_EQ(memo.find("k2"), "record-2");
  }
}

}  // namespace
}  // namespace thermo::dispatch
