// Fill-reducing ordering: min_degree_ordering must be a deterministic
// valid permutation that strictly cuts factor fill on grid-structured
// patterns, symbolic_factor_nonzeros must agree with the numeric
// factor's fill, dense rows must be withheld to the end, and the
// ordered factor's solutions must match natural-order and dense
// factorizations to the documented 1e-9 cross-backend tolerance.
#include "linalg/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/sparse_cholesky.hpp"
#include "util/rng.hpp"

namespace thermo::linalg {
namespace {

/// Random sparse symmetric diagonally dominant (hence SPD) matrix, the
/// same shape family as linalg_sparse_cholesky_test: a ring plus random
/// symmetric couplings, grounded diagonal.
SparseMatrix random_spd(Rng& rng, std::size_t n, std::size_t extra) {
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  auto couple = [&](std::size_t i, std::size_t j, double g) {
    dense[i][j] -= g;
    dense[j][i] -= g;
    dense[i][i] += g;
    dense[j][j] += g;
  };
  for (std::size_t i = 0; i < n; ++i) {
    couple(i, (i + 1) % n, rng.uniform(0.5, 2.0));
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long long>(n) - 1));
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long long>(n) - 1));
    if (i == j) continue;
    couple(i, j, rng.uniform(0.1, 1.0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    dense[i][i] += rng.uniform(0.05, 0.5);
  }
  SparseMatrix::Builder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (dense[i][j] != 0.0) builder.add(i, j, dense[i][j]);
    }
  }
  return builder.build();
}

/// 5-point Laplacian of a `side` x `side` grid with grounding — the
/// structure of a GridThermalModel die, where natural (row-major)
/// ordering is bandwidth-bound and min-degree wins big.
SparseMatrix grid_laplacian(std::size_t side) {
  const std::size_t n = side * side;
  SparseMatrix::Builder builder(n, n);
  auto at = [side](std::size_t r, std::size_t c) { return r * side + c; };
  std::vector<double> diag(n, 0.1);  // grounding keeps it SPD
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      const std::size_t i = at(r, c);
      if (c + 1 < side) {
        builder.add(i, at(r, c + 1), -1.0);
        builder.add(at(r, c + 1), i, -1.0);
        diag[i] += 1.0;
        diag[at(r, c + 1)] += 1.0;
      }
      if (r + 1 < side) {
        builder.add(i, at(r + 1, c), -1.0);
        builder.add(at(r + 1, c), i, -1.0);
        diag[i] += 1.0;
        diag[at(r + 1, c)] += 1.0;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, diag[i]);
  return builder.build();
}

double max_rel_diff(const Vector& a, const Vector& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale =
        std::max(1e-30, std::max(std::fabs(a[i]), std::fabs(b[i])));
    worst = std::max(worst, std::fabs(a[i] - b[i]) / scale);
  }
  return worst;
}

TEST(MinDegreeOrderingTest, IsAValidPermutationAndDeterministic) {
  Rng rng(17);
  for (std::size_t n : {1u, 2u, 13u, 50u, 120u}) {
    const SparseMatrix a = random_spd(rng, n, n);
    const std::vector<std::size_t> perm = min_degree_ordering(a);
    ASSERT_EQ(perm.size(), n);
    std::vector<bool> seen(n, false);
    for (const std::size_t p : perm) {
      ASSERT_LT(p, n);
      EXPECT_FALSE(seen[p]) << "index " << p << " eliminated twice";
      seen[p] = true;
    }
    // Pure function of the pattern: a second call must be identical.
    EXPECT_EQ(min_degree_ordering(a), perm) << "n=" << n;
  }
}

TEST(MinDegreeOrderingTest, WithholdsDenseRowsToTheEnd) {
  // A 200-node ring plus one hub coupled to every node: the hub's
  // degree (199) is far past max(16, 4*sqrt(201)) ~ 57, so it must be
  // withheld from the active graph and eliminated last.
  const std::size_t n = 201;
  const std::size_t hub = 0;
  SparseMatrix::Builder builder(n, n);
  std::vector<double> diag(n, 0.1);
  auto couple = [&](std::size_t i, std::size_t j) {
    builder.add(i, j, -1.0);
    builder.add(j, i, -1.0);
    diag[i] += 1.0;
    diag[j] += 1.0;
  };
  for (std::size_t i = 1; i + 1 < n; ++i) couple(i, i + 1);
  for (std::size_t i = 1; i < n; ++i) couple(hub, i);
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, diag[i]);
  const SparseMatrix a = builder.build();

  const std::vector<std::size_t> perm = min_degree_ordering(a);
  ASSERT_EQ(perm.size(), n);
  EXPECT_EQ(perm.back(), hub);
}

TEST(SymbolicFactorTest, CountMatchesNumericFactorFill) {
  Rng rng(23);
  for (std::size_t n : {5u, 40u, 90u}) {
    const SparseMatrix a = random_spd(rng, n, 2 * n);

    const SparseCholeskyFactor natural(a, Ordering::kNatural);
    EXPECT_EQ(symbolic_factor_nonzeros(a), natural.factor_nonzeros())
        << "n=" << n;

    const SparseCholeskyFactor ordered(a, Ordering::kMinDegree);
    EXPECT_EQ(symbolic_factor_nonzeros(a, ordered.permutation()),
              ordered.factor_nonzeros())
        << "n=" << n;
  }
}

TEST(SymbolicFactorTest, TridiagonalAndEmptyEdgeCases) {
  SparseMatrix::Builder tri(6, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    tri.add(i, i, 2.5);
    if (i + 1 < 6) {
      tri.add(i, i + 1, -1.0);
      tri.add(i + 1, i, -1.0);
    }
  }
  EXPECT_EQ(symbolic_factor_nonzeros(tri.build()), 5u);

  SparseMatrix::Builder diag(3, 3);
  for (std::size_t i = 0; i < 3; ++i) diag.add(i, i, 1.0);
  EXPECT_EQ(symbolic_factor_nonzeros(diag.build()), 0u);
}

TEST(MinDegreeOrderingTest, StrictlyCutsGridFill) {
  // The ISSUE acceptance bar: on a 64x64 grid pattern the ordered
  // factor's fill must be strictly below natural order. Natural
  // (banded) fill is ~side^3 = 260k here; min-degree lands ~60-80k.
  const SparseMatrix a = grid_laplacian(64);

  const SparseCholeskyFactor natural(a, Ordering::kNatural);
  const SparseCholeskyFactor ordered(a, Ordering::kMinDegree);
  EXPECT_LT(ordered.factor_nonzeros(), natural.factor_nonzeros());
  // Not just barely: the ordering should cut grid fill by >= 2x.
  EXPECT_LT(2 * ordered.factor_nonzeros(), natural.factor_nonzeros());

  // The symbolic counter sees the same two numbers without factoring.
  EXPECT_EQ(symbolic_factor_nonzeros(a), natural.factor_nonzeros());
  EXPECT_EQ(symbolic_factor_nonzeros(a, ordered.permutation()),
            ordered.factor_nonzeros());
}

TEST(OrderedFactorTest, AutoResolvesByNodeCount) {
  Rng rng(31);
  const SparseMatrix small = random_spd(rng, kOrderingAutoMinNodes - 1, 20);
  const SparseCholeskyFactor small_factor(small);  // kAuto default
  EXPECT_EQ(small_factor.ordering(), Ordering::kNatural);
  EXPECT_TRUE(small_factor.permutation().empty());

  const SparseMatrix large = random_spd(rng, kOrderingAutoMinNodes, 20);
  const SparseCholeskyFactor large_factor(large);
  EXPECT_EQ(large_factor.ordering(), Ordering::kMinDegree);
  EXPECT_EQ(large_factor.permutation().size(), kOrderingAutoMinNodes);
}

TEST(OrderedFactorTest, OrderedNaturalAndDenseSolvesAgree) {
  // Property test: on random SPD systems the ordered factor, the
  // natural-order factor, and the dense Cholesky must agree to the
  // documented 1e-9 cross-backend tolerance (docs/SOLVERS.md), and the
  // ordered solve must be bit-reproducible across factorizations.
  for (std::uint64_t seed : {2u, 8u, 21u}) {
    Rng rng(seed);
    for (std::size_t n : {30u, 80u, 150u}) {
      const SparseMatrix a = random_spd(rng, n, 3 * n);
      const SparseCholeskyFactor ordered(a, Ordering::kMinDegree);
      const SparseCholeskyFactor natural(a, Ordering::kNatural);
      const CholeskyFactor dense(a.to_dense());

      Vector b(n);
      for (double& v : b) v = rng.uniform(-5.0, 5.0);
      const Vector x_ordered = ordered.solve(b);
      EXPECT_LT(max_rel_diff(x_ordered, natural.solve(b)), 1e-9)
          << "seed=" << seed << " n=" << n;
      EXPECT_LT(max_rel_diff(x_ordered, dense.solve(b)), 1e-9)
          << "seed=" << seed << " n=" << n;

      const SparseCholeskyFactor again(a, Ordering::kMinDegree);
      const Vector x_again = again.solve(b);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(x_ordered[i], x_again[i]);  // same perm, same bits
      }
    }
  }
}

}  // namespace
}  // namespace thermo::linalg
