// Cross-module property sweeps over randomly generated SoCs
// (TEST_P over seeds): the scheduler invariants must hold for *any*
// valid input, not just the bundled evaluation systems.
#include <gtest/gtest.h>

#include <cmath>

#include "core/safety_checker.hpp"
#include "core/session_model.hpp"
#include "core/thermal_scheduler.hpp"
#include "soc/synthetic.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/steady_state.hpp"
#include "util/rng.hpp"

namespace thermo {
namespace {

core::SocSpec random_soc(std::uint64_t seed, std::size_t cores) {
  Rng rng(seed);
  soc::SyntheticOptions options;
  options.core_count = cores;
  // Keep densities moderate so solo tests stay below the TL used here.
  options.power_density_min = 1e5;
  options.power_density_max = 8e5;
  return soc::make_synthetic_soc(rng, options);
}

class SchedulerInvariants
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(SchedulerInvariants, CompleteSafeDeterministicAndAccounted) {
  const auto [seed, cores] = GetParam();
  const core::SocSpec soc = random_soc(seed, cores);
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  core::ThermalSchedulerOptions options;
  options.temperature_limit = 120.0;
  options.stc_limit = 500.0;
  options.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
  const core::ThermalAwareScheduler scheduler(options);
  const core::ScheduleResult result = scheduler.generate(soc, analyzer);

  // 1. Completeness: every core scheduled exactly once.
  EXPECT_TRUE(result.schedule.is_complete(soc));
  EXPECT_NO_THROW(result.schedule.require_well_formed(soc));

  // 2. Safety: verified against the full simulator.
  const double tl = scheduler.effective_temperature_limit();
  const core::SafetyChecker checker(tl);
  const core::SafetyReport report =
      checker.check(soc, result.schedule, analyzer);
  EXPECT_TRUE(report.safe) << "seed " << seed << ": "
                           << report.to_string(soc);

  // 3. Accounting: effort >= schedule length; committed sessions match.
  EXPECT_GE(result.simulation_effort + 1e-12, result.schedule_length);
  EXPECT_EQ(result.outcomes.size(), result.schedule.session_count());

  // 4. Determinism.
  const core::ScheduleResult again = scheduler.generate(soc, analyzer);
  ASSERT_EQ(again.schedule.session_count(), result.schedule.session_count());
  for (std::size_t s = 0; s < again.schedule.sessions.size(); ++s) {
    EXPECT_EQ(again.schedule.sessions[s].cores,
              result.schedule.sessions[s].cores);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSocs, SchedulerInvariants,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(4u, 8u, 14u)));

class ThermalInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThermalInvariants, SteadyStateBoundsAndMonotonicity) {
  const core::SocSpec soc = random_soc(GetParam() + 100, 10);
  const thermal::RCModel model(soc.flp, soc.package);

  // Steady state bounds 1 s transient peaks (paper modification 1).
  const auto power = soc.test_powers();
  const auto steady = thermal::solve_steady_state(model, power);
  const auto transient = thermal::simulate_transient(
      model, power, 1.0, thermal::ambient_state(model));
  for (std::size_t n = 0; n < model.node_count(); ++n) {
    EXPECT_LE(transient.peak_temperature[n], steady.temperature[n] + 1e-6);
  }

  // Adding power to one core heats every node (or leaves it equal).
  std::vector<double> more = power;
  more[0] += 5.0;
  const auto hotter = thermal::solve_steady_state(model, more);
  for (std::size_t n = 0; n < model.node_count(); ++n) {
    EXPECT_GE(hotter.rise[n] + 1e-12, steady.rise[n]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThermalInvariants,
                         ::testing::Range<std::uint64_t>(1, 7));

class SessionModelInvariants : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SessionModelInvariants, RthGrowsAsSessionsFill) {
  // Adding any core to a session never *decreases* another member's
  // equivalent resistance (paths to ground can only disappear).
  const core::SocSpec soc = random_soc(GetParam() + 200, 9);
  const core::SessionThermalModel model(soc.flp, soc.package, {});
  Rng rng(GetParam());
  std::vector<bool> active(soc.core_count(), false);
  const std::size_t member = rng.uniform_index(soc.core_count());
  active[member] = true;
  double previous = model.equivalent_resistance(active, member);
  for (std::size_t step = 0; step < soc.core_count(); ++step) {
    const std::size_t next = rng.uniform_index(soc.core_count());
    if (active[next]) continue;
    active[next] = true;
    const double rth = model.equivalent_resistance(active, member);
    if (std::isinf(previous)) {
      EXPECT_TRUE(std::isinf(rth));
    } else {
      EXPECT_GE(rth + 1e-15, previous);
    }
    previous = rth;
  }
}

TEST_P(SessionModelInvariants, StcIsMonotoneUnderMembershipGrowth) {
  const core::SocSpec soc = random_soc(GetParam() + 300, 8);
  const core::SessionThermalModel model(soc.flp, soc.package, {});
  const auto power = soc.test_powers();
  const std::vector<double> weight(soc.core_count(), 1.0);
  std::vector<bool> active(soc.core_count(), false);
  double previous = 0.0;
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    active[i] = true;
    const double stc = model.session_characteristic(active, power, weight);
    EXPECT_GE(stc, previous - 1e-12);
    previous = stc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionModelInvariants,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace thermo
