// Shared fixtures and builders for the ThermoSched test suite.
#pragma once

#include <vector>

#include "core/soc_spec.hpp"
#include "floorplan/floorplan.hpp"
#include "thermal/package.hpp"

namespace thermo::testing {

/// 2x2 grid of 1 mm blocks named a, b, c, d:
///   c d     (c,d on top row)
///   a b
inline floorplan::Floorplan quad_floorplan() {
  floorplan::Floorplan fp("quad");
  fp.add_block({"a", 1e-3, 1e-3, 0.0, 0.0});
  fp.add_block({"b", 1e-3, 1e-3, 1e-3, 0.0});
  fp.add_block({"c", 1e-3, 1e-3, 0.0, 1e-3});
  fp.add_block({"d", 1e-3, 1e-3, 1e-3, 1e-3});
  return fp;
}

/// 3x3 grid of 2 mm blocks named b<r>_<c>; the centre block b1_1 has no
/// chip-boundary exposure.
// GCC 12's -Wrestrict misfires on `const char* + std::string` chains
// inlined from libstdc++'s basic_string (PR tree-optimization/105651):
// it reports a potential overlap of 2^63 bytes that cannot occur.
// Suppressed around this helper only; the code is correct as written.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
inline floorplan::Floorplan nine_floorplan() {
  floorplan::Floorplan fp("nine");
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      floorplan::Block block;
      block.name = "b" + std::to_string(r) + "_" + std::to_string(c);
      block.width = 2e-3;
      block.height = 2e-3;
      block.x = c * 2e-3;
      block.y = r * 2e-3;
      fp.add_block(std::move(block));
    }
  }
  return fp;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// A small SocSpec over the 3x3 grid with uniform power/length.
inline core::SocSpec nine_soc(double power = 6.0, double length = 1.0) {
  core::SocSpec soc;
  soc.name = "nine-soc";
  soc.flp = nine_floorplan();
  soc.package = thermal::PackageParams{};
  soc.tests.assign(soc.flp.size(), core::CoreTest{power, length});
  return soc;
}

/// Index lookup that asserts the name exists.
inline std::size_t idx(const floorplan::Floorplan& fp, const char* name) {
  const auto i = fp.index_of(name);
  if (!i) throw std::runtime_error(std::string("no block ") + name);
  return *i;
}

}  // namespace thermo::testing
