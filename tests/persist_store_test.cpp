// SegmentStore in isolation: round-trips (binary-safe), first-put-wins,
// rotation, reopen-by-scan, schema policies, verify, compaction, and
// read-time checksum re-verification. Crash points and deliberate
// corruption have their own suites (persist_crash_test,
// persist_corruption_test).
#include "persist/segment_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "persist_test_util.hpp"
#include "util/error.hpp"

namespace thermo::persist {
namespace {

using testing::record_key;
using testing::record_payload;
using testing::ScopedTempDir;

TEST(SegmentStore, PutGetRoundTripsBinaryPayloads) {
  const ScopedTempDir dir("segstore");
  SegmentStore store(dir.path());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(store.put(record_key(i), record_payload(i)));
  }
  for (std::size_t i = 0; i < 32; ++i) {
    const auto value = store.get(record_key(i));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, record_payload(i));  // byte-exact, NULs included
  }
  EXPECT_EQ(store.get("absent"), std::nullopt);
  const auto stats = store.stats();
  EXPECT_EQ(stats.records, 32u);
  EXPECT_EQ(stats.appends, 32u);
  EXPECT_EQ(stats.get_hits, 32u);
  EXPECT_EQ(stats.get_misses, 1u);
  EXPECT_EQ(stats.read_corruptions, 0u);
}

TEST(SegmentStore, FirstPutWinsAndDuplicatesNeverTouchDisk) {
  const ScopedTempDir dir("segstore");
  SegmentStore store(dir.path());
  EXPECT_TRUE(store.put("k", "value"));
  const std::uint64_t bytes_after_first = store.stats().disk_bytes;
  EXPECT_FALSE(store.put("k", "value"));
  EXPECT_EQ(store.stats().disk_bytes, bytes_after_first);
  EXPECT_EQ(store.stats().deduped_puts, 1u);
  EXPECT_EQ(store.get("k"), "value");
}

TEST(SegmentStore, RejectsEmptyKeys) {
  const ScopedTempDir dir("segstore");
  SegmentStore store(dir.path());
  EXPECT_THROW(store.put("", "value"), InvalidArgument);
}

TEST(SegmentStore, ReopenRebuildsTheIndexByScan) {
  const ScopedTempDir dir("segstore");
  {
    SegmentStore store(dir.path());
    for (std::size_t i = 0; i < 20; ++i) {
      store.put(record_key(i), record_payload(i));
    }
  }
  SegmentStore reopened(dir.path());
  EXPECT_EQ(reopened.stats().records, 20u);
  EXPECT_EQ(reopened.stats().damaged_at_open, 0u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(reopened.get(record_key(i)), record_payload(i));
  }
}

TEST(SegmentStore, RotatesAtTheSizeCapAndScansAllSegments) {
  const ScopedTempDir dir("segstore");
  StoreOptions options;
  options.segment_size_cap = 512;  // a handful of records per segment
  {
    SegmentStore store(dir.path(), options);
    for (std::size_t i = 0; i < 40; ++i) {
      store.put(record_key(i), record_payload(i, 64));
    }
    EXPECT_GT(store.stats().segments, 3u);
  }
  SegmentStore reopened(dir.path(), options);
  EXPECT_EQ(reopened.stats().records, 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(reopened.get(record_key(i)), record_payload(i, 64));
  }
}

TEST(SegmentStore, EachWriterSessionGetsAFreshSegment) {
  // The store must never append to a segment it did not create in this
  // session — a torn tail from a crashed writer would swallow every
  // record appended after it. So: reopen + put => a new segment file.
  const ScopedTempDir dir("segstore");
  {
    SegmentStore store(dir.path());
    store.put("a", "1");
  }
  {
    SegmentStore store(dir.path());
    EXPECT_EQ(store.stats().segments, 1u);
    store.put("b", "2");
    EXPECT_EQ(store.stats().segments, 2u);
  }
  SegmentStore reopened(dir.path());
  EXPECT_EQ(reopened.get("a"), "1");
  EXPECT_EQ(reopened.get("b"), "2");
}

TEST(SegmentStore, CreateIfMissingFalseRefusesAMissingDirectory) {
  const ScopedTempDir dir("segstore");
  StoreOptions options;
  options.create_if_missing = false;
  EXPECT_THROW(SegmentStore(dir.path(), options), IoError);
  // And it must not have created the directory as a side effect.
  EXPECT_FALSE(std::filesystem::exists(dir.path()));
}

TEST(SegmentStore, SchemaMismatchWipesUnderWipePolicy) {
  const ScopedTempDir dir("segstore");
  {
    StoreOptions options;
    options.schema_revision = 1;
    SegmentStore store(dir.path(), options);
    store.put("old", "record");
  }
  StoreOptions bumped;
  bumped.schema_revision = 2;
  SegmentStore store(dir.path(), bumped);
  EXPECT_TRUE(store.stats().wiped_on_open);
  EXPECT_EQ(store.stats().records, 0u);
  EXPECT_EQ(store.get("old"), std::nullopt);
  // The wiped store is fully usable at the new revision.
  EXPECT_TRUE(store.put("new", "record"));
  EXPECT_EQ(store.get("new"), "record");
}

TEST(SegmentStore, SchemaMismatchThrowsUnderFailPolicyWithoutDestroying) {
  const ScopedTempDir dir("segstore");
  {
    StoreOptions options;
    options.schema_revision = 1;
    SegmentStore store(dir.path(), options);
    store.put("old", "record");
  }
  StoreOptions bumped;
  bumped.schema_revision = 2;
  bumped.schema_policy = SchemaPolicy::kFailOnMismatch;
  EXPECT_THROW(SegmentStore(dir.path(), bumped), Error);
  // The refusal must leave the data intact for the matching revision.
  StoreOptions original;
  original.schema_revision = 1;
  SegmentStore store(dir.path(), original);
  EXPECT_EQ(store.get("old"), "record");
}

TEST(SegmentStore, VerifyIsCleanOnAHealthyStore) {
  const ScopedTempDir dir("segstore");
  StoreOptions options;
  options.segment_size_cap = 512;
  SegmentStore store(dir.path(), options);
  for (std::size_t i = 0; i < 25; ++i) {
    store.put(record_key(i), record_payload(i, 64));
  }
  const auto report = store.verify();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.valid_records, 25u);
  EXPECT_EQ(report.segments, store.stats().segments);
}

TEST(SegmentStore, CompactMergesSegmentsAndPreservesEveryRecord) {
  const ScopedTempDir dir("segstore");
  StoreOptions options;
  options.segment_size_cap = 512;
  std::map<std::string, std::string> expected;
  {
    SegmentStore store(dir.path(), options);
    for (std::size_t i = 0; i < 30; ++i) {
      expected[record_key(i)] = record_payload(i, 64);
      store.put(record_key(i), expected[record_key(i)]);
    }
    EXPECT_GT(store.stats().segments, 2u);
    const std::size_t carried = store.compact();
    EXPECT_EQ(carried, 30u);
    EXPECT_EQ(store.stats().segments, 1u);
    // The live store keeps answering from the compacted segment.
    for (const auto& [key, value] : expected) {
      EXPECT_EQ(store.get(key), value);
    }
    // And it can keep appending after compaction.
    EXPECT_TRUE(store.put("post-compact", "value"));
  }
  SegmentStore reopened(dir.path(), options);
  EXPECT_EQ(reopened.stats().records, 31u);
  EXPECT_TRUE(reopened.verify().clean());
  for (const auto& [key, value] : expected) {
    EXPECT_EQ(reopened.get(key), value);
  }
  EXPECT_EQ(reopened.get("post-compact"), "value");
}

TEST(SegmentStore, CompactScrubsCrashDebris) {
  // A leftover compact.tmp (crashed compaction, pre-rename) must be
  // removed at open, never mistaken for a segment.
  const ScopedTempDir dir("segstore");
  {
    SegmentStore store(dir.path());
    store.put("k", "v");
  }
  const std::string tmp = dir.path() + "/compact.tmp";
  std::ofstream(tmp, std::ios::binary) << "half-written garbage";
  SegmentStore store(dir.path());
  EXPECT_FALSE(std::filesystem::exists(tmp));
  EXPECT_EQ(store.get("k"), "v");
  EXPECT_EQ(store.stats().damaged_at_open, 0u);
}

TEST(SegmentStore, GetReverifiesChecksumsAndDegradesToAMiss) {
  // Corruption that lands AFTER open (the scan saw healthy bytes) is
  // caught by get()'s re-verification: the record degrades to a miss
  // and is dropped from the index — wrong bytes are never served.
  const ScopedTempDir dir("segstore");
  SegmentStore store(dir.path());
  const std::string value(64, 'x');
  store.put("victim", value);
  store.put("witness", "intact");

  // Flip one byte of the victim's value region on disk, under the
  // store's feet. Frame layout: 20-byte segment header, then
  // [8 length bytes]["victim"][value...] — offset 40 is inside value.
  const std::string path = dir.path() + "/" + SegmentStore::segment_name(1);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(40);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(40);
    file.write(&byte, 1);
  }

  EXPECT_EQ(store.get("victim"), std::nullopt);
  EXPECT_EQ(store.stats().read_corruptions, 1u);
  EXPECT_EQ(store.get("victim"), std::nullopt);  // dropped, plain miss now
  EXPECT_EQ(store.stats().read_corruptions, 1u);
  EXPECT_EQ(store.get("witness"), "intact");
}

TEST(SegmentStore, OnRotateModeStillServesBufferedRecords) {
  const ScopedTempDir dir("segstore");
  StoreOptions options;
  options.sync_mode = SyncMode::kOnRotate;
  SegmentStore store(dir.path(), options);
  store.put("k", "buffered");
  // The record may still sit in application buffers; get() must flush
  // enough to serve it.
  EXPECT_EQ(store.get("k"), "buffered");
}

TEST(SegmentStore, ForeignFilesInTheDirectoryAreIgnored) {
  const ScopedTempDir dir("segstore");
  {
    SegmentStore store(dir.path());
    store.put("k", "v");
  }
  std::ofstream(dir.path() + "/README", std::ios::binary) << "not a segment";
  std::ofstream(dir.path() + "/seg-abc.log", std::ios::binary) << "bad name";
  SegmentStore store(dir.path());
  EXPECT_EQ(store.get("k"), "v");
  EXPECT_EQ(store.stats().damaged_at_open, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/README"));
}

}  // namespace
}  // namespace thermo::persist
