#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace thermo {
namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row(0).size(), 3u);
  EXPECT_EQ(t.row(0)[1], "");
}

TEST(Table, RejectsWideRows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), InvalidArgument);
}

TEST(Table, RowAccessOutOfRangeThrows) {
  Table t({"a"});
  EXPECT_THROW(t.row(0), InvalidArgument);
}

TEST(Table, NumericRowFormatting) {
  Table t({"x", "y"});
  t.add_numeric_row({1.234, 5.0}, 1);
  EXPECT_EQ(t.row(0)[0], "1.2");
  EXPECT_EQ(t.row(0)[1], "5.0");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"long-name", "1"});
  t.add_row({"x", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| name      | v  |"), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesFieldsWithCommas) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace thermo
