#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"

namespace thermo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(12);
  std::set<long long> seen;
  for (int i = 0; i < 500; ++i) {
    const long long v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgument);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(15);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(16);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, ChanceProbabilityRoughlyRespected) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(18);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

}  // namespace
}  // namespace thermo
