#include "core/exact_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/safety_checker.hpp"
#include "core/thermal_scheduler.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace thermo::core {
namespace {

using thermo::testing::nine_soc;

class ExactSchedulerTest : public ::testing::Test {
 protected:
  SocSpec soc_ = nine_soc(6.0);
  thermal::ThermalAnalyzer analyzer_{soc_.flp, soc_.package};
};

TEST_F(ExactSchedulerTest, ProducesCompleteSafeSchedule) {
  ExactSchedulerOptions options;
  options.temperature_limit = 110.0;
  const ExactScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  EXPECT_TRUE(result.schedule.is_complete(soc_));
  const SafetyChecker checker(110.0);
  EXPECT_TRUE(checker.check(soc_, result.schedule, analyzer_).safe);
}

TEST_F(ExactSchedulerTest, RelaxedLimitNeedsFewSessions) {
  ExactSchedulerOptions options;
  options.temperature_limit = 1000.0;  // everything fits together
  const ExactScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  EXPECT_EQ(result.schedule.session_count(), 1u);
}

TEST_F(ExactSchedulerTest, TightLimitForcesSequential) {
  // Just above the hottest solo temperature: any pairing violates.
  // Find the hottest solo first.
  double hottest = 0.0;
  for (std::size_t i = 0; i < soc_.core_count(); ++i) {
    TestSession solo;
    solo.cores.push_back(i);
    const auto sim = analyzer_.simulate_session(solo.power_map(soc_), 1.0);
    hottest = std::max(hottest, sim.peak_temperature[i]);
  }
  ExactSchedulerOptions options;
  options.temperature_limit = hottest + 0.05;
  const ExactScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  // Sequential or near-sequential: no session may pair two hot
  // neighbours, and the count must be close to n.
  EXPECT_GE(result.schedule.session_count(), soc_.core_count() / 2);
  EXPECT_TRUE(result.schedule.is_complete(soc_));
}

TEST_F(ExactSchedulerTest, NeverWorseThanGreedyHeuristic) {
  // The whole point: optimal session count <= Algorithm 1's.
  for (double tl : {100.0, 115.0, 130.0}) {
    ExactSchedulerOptions eopt;
    eopt.temperature_limit = tl;
    const ScheduleResult exact =
        ExactScheduler(eopt).generate(soc_, analyzer_);

    ThermalSchedulerOptions hopt;
    hopt.temperature_limit = tl;
    hopt.stc_limit = 1e6;
    const ScheduleResult greedy =
        ThermalAwareScheduler(hopt).generate(soc_, analyzer_);

    EXPECT_LE(exact.schedule.session_count(), greedy.schedule.session_count())
        << "TL = " << tl;
  }
}

TEST_F(ExactSchedulerTest, UnschedulableCoreThrows) {
  ExactSchedulerOptions options;
  options.temperature_limit = 46.0;  // below every solo peak
  const ExactScheduler scheduler(options);
  EXPECT_THROW(scheduler.generate(soc_, analyzer_), InvalidArgument);
}

TEST_F(ExactSchedulerTest, RefusesOversizedInstances) {
  ExactSchedulerOptions options;
  options.max_cores = 4;
  const ExactScheduler scheduler(options);
  EXPECT_THROW(scheduler.generate(soc_, analyzer_), InvalidArgument);
}

TEST_F(ExactSchedulerTest, OptionValidation) {
  ExactSchedulerOptions bad;
  bad.max_cores = 0;
  EXPECT_THROW(ExactScheduler{bad}, InvalidArgument);
  bad = ExactSchedulerOptions{};
  bad.max_cores = 21;
  EXPECT_THROW(ExactScheduler{bad}, InvalidArgument);
}

TEST_F(ExactSchedulerTest, EffortCountsDistinctSubsetsOnly) {
  ExactSchedulerOptions options;
  options.temperature_limit = 120.0;
  const ExactScheduler scheduler(options);
  const ScheduleResult result = scheduler.generate(soc_, analyzer_);
  // At most 2^9 distinct subsets can ever be simulated (1 s each).
  EXPECT_LE(result.simulation_count, 512u);
  EXPECT_GT(result.simulation_count, 0u);
}

}  // namespace
}  // namespace thermo::core
