# Dispatch-policy serve smoke: a skewed batch (one 1034-thermal-node
# synthetic sparse request placed LAST behind small Alpha requests,
# including one duplicated line) must produce byte-identical results
# across {1,4} worker threads x {fifo,ljf} x {dedup on,off} — the
# dispatch layer's hard invariant: placement and memoization may change
# when work runs, never what is written. Also checks that
# --summary-json emits the thermo.serve_summary.v1 record and that
# every request answers ok:true.
#
# Usage: cmake -DSERVE_BIN=<thermosched> -DWORK_DIR=<scratch dir>
#              -P RunLjfServeSmoke.cmake
if(NOT SERVE_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "SERVE_BIN and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests_skewed.jsonl")
set(reference "${WORK_DIR}/results_ljf_t1.jsonl")
set(summary "${WORK_DIR}/summary_ljf.json")

# 8 distinct small Alpha requests (steady oracle, varied corners), one
# duplicated line (slot 1 == slot 5: the memo must answer it without
# changing the bytes), and the sparse whale LAST — under ljf it must
# start first, under fifo last; either way the output order is fixed.
set(small_tail "\"tl\":155,\"stcl\":50,\"solver\":{\"transient\":false}}")
set(whale "{\"id\":\"whale\",\"soc\":{\"kind\":\"synthetic\",\"seed\":7,\"cores\":1024,\"test_length_min\":0.02,\"test_length_max\":0.02},\"tl\":400,\"stcl\":120,\"solver\":{\"transient\":false,\"backend\":\"sparse\"}}")
file(WRITE "${requests}"
  "{\"id\":\"s0\",\"soc\":{\"power_scale\":1.01},${small_tail}\n"
  "{\"id\":\"s1\",\"soc\":{\"power_scale\":1.02},${small_tail}\n"
  "{\"id\":\"s2\",\"soc\":{\"power_scale\":1.03},${small_tail}\n"
  "{\"id\":\"s3\",\"soc\":{\"power_scale\":1.04},${small_tail}\n"
  "{\"id\":\"s4\",\"soc\":{\"power_scale\":1.05},${small_tail}\n"
  "{\"id\":\"s1\",\"soc\":{\"power_scale\":1.02},${small_tail}\n"
  "{\"id\":\"s6\",\"soc\":{\"power_scale\":1.06},${small_tail}\n"
  "{\"id\":\"s7\",\"soc\":{\"power_scale\":1.07},${small_tail}\n"
  "${whale}\n")

# Reference: ljf on 1 thread, with the summary JSON.
execute_process(
  COMMAND "${SERVE_BIN}" serve --in "${requests}" --out "${reference}"
          --threads 1 --schedule-policy ljf --summary-json "${summary}"
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "reference serve exited with ${serve_rc}\n${serve_err}")
endif()

# Every other configuration must reproduce the reference bytes. (Each
# quoted item is one ;-separated record — foreach over ITEMS keeps them
# intact where a LISTS variable would flatten.)
foreach(config
    "4;ljf;on;results_ljf_t4.jsonl"
    "4;fifo;on;results_fifo_t4.jsonl"
    "4;ljf;off;results_ljf_t4_nodedup.jsonl"
    "1;fifo;off;results_fifo_t1_nodedup.jsonl")
  list(GET config 0 threads)
  list(GET config 1 policy)
  list(GET config 2 dedup)
  list(GET config 3 outname)
  set(outfile "${WORK_DIR}/${outname}")
  execute_process(
    COMMAND "${SERVE_BIN}" serve --in "${requests}" --out "${outfile}"
            --threads ${threads} --schedule-policy ${policy} --dedup ${dedup}
    ERROR_VARIABLE serve_err
    RESULT_VARIABLE serve_rc)
  if(NOT serve_rc EQUAL 0)
    message(FATAL_ERROR
      "serve --threads ${threads} --schedule-policy ${policy} --dedup "
      "${dedup} exited with ${serve_rc}\n${serve_err}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${reference}" "${outfile}"
    RESULT_VARIABLE cmp_rc)
  if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
      "serve output differs from the 1-thread ljf reference for "
      "--threads ${threads} --schedule-policy ${policy} --dedup ${dedup} "
      "(${reference} vs ${outfile}) — the dispatch layer lost determinism")
  endif()
endforeach()

file(READ "${reference}" results)
if(results STREQUAL "")
  message(FATAL_ERROR "ljf serve smoke produced an empty results file")
endif()
string(REGEX MATCHALL "\n" newlines "${results}")
list(LENGTH newlines line_count)
if(NOT line_count EQUAL 9)
  message(FATAL_ERROR "expected 9 result records, got ${line_count}")
endif()
string(REGEX MATCHALL "\"ok\":true" oks "${results}")
list(LENGTH oks ok_count)
if(NOT ok_count EQUAL 9)
  message(FATAL_ERROR
    "expected 9 ok:true records, got ${ok_count}:\n${results}")
endif()

file(READ "${summary}" summary_text)
foreach(needle
    "\"schema\":\"thermo.serve_summary.v1\""
    "\"policy\":\"ljf\""
    "\"requests\":9"
    "\"memo\":"
    "\"request_timings\":")
  string(FIND "${summary_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "--summary-json payload is missing ${needle}:\n${summary_text}")
  endif()
endforeach()

message(STATUS
  "ljf serve smoke OK: 9-record skewed batch byte-identical across "
  "threads x policy x dedup; summary JSON present")
