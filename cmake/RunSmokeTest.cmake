# Smoke-test driver: run a binary and require (a) exit code 0 and (b) non-empty
# stdout. CTest's PASS_REGULAR_EXPRESSION ignores the exit code, so a plain
# add_test() cannot express both conditions — this script can.
#
# Usage: cmake -DSMOKE_BIN=<path> [-DSMOKE_ARGS="a;b;c"] -P RunSmokeTest.cmake
if(NOT SMOKE_BIN)
  message(FATAL_ERROR "SMOKE_BIN not set")
endif()
execute_process(
  COMMAND "${SMOKE_BIN}" ${SMOKE_ARGS}
  OUTPUT_VARIABLE smoke_out
  ERROR_VARIABLE smoke_err
  RESULT_VARIABLE smoke_rc)
if(NOT smoke_rc EQUAL 0)
  message(FATAL_ERROR "${SMOKE_BIN} exited with ${smoke_rc}\nstdout:\n${smoke_out}\nstderr:\n${smoke_err}")
endif()
string(STRIP "${smoke_out}" smoke_stripped)
if(smoke_stripped STREQUAL "")
  message(FATAL_ERROR "${SMOKE_BIN} exited 0 but printed nothing to stdout")
endif()
string(LENGTH "${smoke_out}" smoke_len)
message(STATUS "smoke OK: ${SMOKE_BIN} printed ${smoke_len} bytes")
