# SLO serve smoke: a seeded `thermosched gen --deadline-rate` stream is
# served end to end and must (a) report the exactly-predictable deadline
# scoreboard — the generator only draws the tight 1e-7 s deadline (every
# executed request misses it on any machine) and the generous 1e6 s one
# (never missed) — and (b) produce byte-identical results across
# {1,4} threads x {fifo,edf,priority,srpt} x --calibrate {on,off}: the
# new placement policies and the self-calibrating cost model may change
# when work runs, never what is written. Also checks the summary JSON
# keeps the v1 schema needle while carrying the new slo + calibration
# sections.
#
# Usage: cmake -DSERVE_BIN=<thermosched> -DWORK_DIR=<scratch dir>
#              -P RunEdfServeSmoke.cmake
if(NOT SERVE_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "SERVE_BIN and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests_deadlined.jsonl")
set(reference "${WORK_DIR}/results_edf_t1.jsonl")
set(summary "${WORK_DIR}/summary_edf.json")

# Seeded stream: 24 requests, small sizes (zipf 1.6 keeps the ladder's
# whales away so the config sweep stays quick), half deadlined.
execute_process(
  COMMAND "${SERVE_BIN}" gen --count 24 --seed 19 --zipf 1.6
          --deadline-rate 0.5 --out "${requests}"
  ERROR_VARIABLE gen_err
  RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "gen exited with ${gen_rc}\n${gen_err}")
endif()

# The scoreboard is machine-independent: count the two pinned deadline
# values in the stream itself.
file(READ "${requests}" request_text)
string(REGEX MATCHALL "\"deadline_s\":1e-07" tights "${request_text}")
list(LENGTH tights tight_count)
string(REGEX MATCHALL "\"deadline_s\":1e\\+06" generouses "${request_text}")
list(LENGTH generouses generous_count)
if(tight_count EQUAL 0 OR generous_count EQUAL 0)
  message(FATAL_ERROR
    "seeded stream must carry both deadline values (tight=${tight_count} "
    "generous=${generous_count}):\n${request_text}")
endif()

# Reference: edf on 1 thread with calibration on, plus the summary JSON.
execute_process(
  COMMAND "${SERVE_BIN}" serve --in "${requests}" --out "${reference}"
          --threads 1 --schedule-policy edf --calibrate on
          --summary-json "${summary}"
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "reference serve exited with ${serve_rc}\n${serve_err}")
endif()

# Every other configuration must reproduce the reference bytes. (Each
# quoted item is one ;-separated record — foreach over ITEMS keeps them
# intact where a LISTS variable would flatten.)
foreach(config
    "4;edf;on;results_edf_t4.jsonl"
    "4;fifo;off;results_fifo_t4.jsonl"
    "1;priority;on;results_priority_t1.jsonl"
    "4;srpt;off;results_srpt_t4.jsonl")
  list(GET config 0 threads)
  list(GET config 1 policy)
  list(GET config 2 calibrate)
  list(GET config 3 outname)
  set(outfile "${WORK_DIR}/${outname}")
  execute_process(
    COMMAND "${SERVE_BIN}" serve --in "${requests}" --out "${outfile}"
            --threads ${threads} --schedule-policy ${policy}
            --calibrate ${calibrate}
    ERROR_VARIABLE serve_err
    RESULT_VARIABLE serve_rc)
  if(NOT serve_rc EQUAL 0)
    message(FATAL_ERROR
      "serve --threads ${threads} --schedule-policy ${policy} --calibrate "
      "${calibrate} exited with ${serve_rc}\n${serve_err}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${reference}" "${outfile}"
    RESULT_VARIABLE cmp_rc)
  if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
      "serve output differs from the 1-thread edf reference for "
      "--threads ${threads} --schedule-policy ${policy} --calibrate "
      "${calibrate} (${reference} vs ${outfile}) — the dispatch layer "
      "lost determinism")
  endif()
endforeach()

file(READ "${reference}" results)
string(REGEX MATCHALL "\"ok\":true" oks "${results}")
list(LENGTH oks ok_count)
if(NOT ok_count EQUAL 24)
  message(FATAL_ERROR
    "expected 24 ok:true records, got ${ok_count}:\n${results}")
endif()

# Summary: v1 schema survives, the slo scoreboard is exactly the pinned
# counts, and the calibration section is present.
file(READ "${summary}" summary_text)
math(EXPR deadlined "${tight_count} + ${generous_count}")
foreach(needle
    "\"schema\":\"thermo.serve_summary.v1\""
    "\"policy\":\"edf\""
    "\"slo\":{\"deadline_requests\":${deadlined},\"met\":${generous_count},\"missed\":${tight_count}}"
    "\"calibration\":{\"enabled\":true"
    "\"request_timings\":")
  string(FIND "${summary_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "--summary-json payload is missing ${needle}:\n${summary_text}")
  endif()
endforeach()

message(STATUS
  "edf serve smoke OK: 24-request deadlined stream byte-identical across "
  "threads x policy x calibration; missed exactly the ${tight_count} "
  "tight deadlines")
