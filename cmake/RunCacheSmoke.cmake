# Cross-process persistent-cache smoke: `thermosched serve --cache-dir`
# must let a COLD process (new invocation, same cache directory) serve
# the same generated batch byte-identically without executing anything,
# and the `thermosched cache` maintenance verbs must work against the
# directory the serves left behind:
#   1. gen a seeded stream (duplicates included);
#   2. serve it with --cache-dir (cold cache) + --summary-json;
#   3. `cache stats` sees the records; `cache verify` exits 0 (clean);
#   4. serve the SAME stream again — a separate process — and require
#      byte-identical results, executed == 0, and a disk-hit count equal
#      to the distinct-request count (>= 99% by construction);
#   5. `cache compact` squeezes the segments; a third serve still
#      reproduces the reference bytes.
#
# Usage: cmake -DSCHED_BIN=<thermosched> -DWORK_DIR=<scratch dir>
#              -P RunCacheSmoke.cmake
if(NOT SCHED_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "SCHED_BIN and WORK_DIR must be set")
endif()
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests_cache.jsonl")
set(cache_dir "${WORK_DIR}/cache")
set(reference "${WORK_DIR}/results_cold.jsonl")
set(count 60)

execute_process(
  COMMAND "${SCHED_BIN}" gen --count ${count} --seed 11 --dup 0.3
          --out "${requests}"
  ERROR_VARIABLE gen_err
  RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "thermosched gen exited with ${gen_rc}\n${gen_err}")
endif()

# Run 1: cold cache. Every distinct request executes and is persisted.
execute_process(
  COMMAND "${SCHED_BIN}" serve --in "${requests}" --out "${reference}"
          --cache-dir "${cache_dir}" --threads 2
          --summary-json "${WORK_DIR}/summary_cold.json"
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "cold serve exited with ${serve_rc}\n${serve_err}")
endif()
file(READ "${WORK_DIR}/summary_cold.json" cold_summary)
string(JSON cold_enabled GET "${cold_summary}" disk_cache enabled)
string(JSON cold_records GET "${cold_summary}" disk_cache records)
string(JSON cold_executed GET "${cold_summary}" memo executed)
if(NOT cold_enabled STREQUAL "ON")
  message(FATAL_ERROR
    "--cache-dir was passed but the summary says the disk cache was not "
    "enabled:\n${cold_summary}")
endif()
if(NOT cold_records EQUAL cold_executed)
  message(FATAL_ERROR
    "cold serve executed ${cold_executed} requests but persisted "
    "${cold_records} records — every executed record must be cached")
endif()

# The maintenance verbs work against what the serve left behind.
execute_process(
  COMMAND "${SCHED_BIN}" cache stats --cache-dir "${cache_dir}"
  OUTPUT_VARIABLE stats_out
  ERROR_VARIABLE stats_err
  RESULT_VARIABLE stats_rc)
if(NOT stats_rc EQUAL 0)
  message(FATAL_ERROR "cache stats exited with ${stats_rc}\n${stats_err}")
endif()
string(FIND "${stats_out}" "${cold_records}" found_records)
if(found_records EQUAL -1)
  message(FATAL_ERROR
    "cache stats does not report the ${cold_records} cached records:\n"
    "${stats_out}")
endif()
execute_process(
  COMMAND "${SCHED_BIN}" cache verify --cache-dir "${cache_dir}"
  ERROR_VARIABLE verify_err
  RESULT_VARIABLE verify_rc)
if(NOT verify_rc EQUAL 0)
  message(FATAL_ERROR
    "cache verify found damage in a healthy cache (exit ${verify_rc})\n"
    "${verify_err}")
endif()

# Run 2: a separate process over the same directory must answer the
# whole batch from disk, byte-identically.
execute_process(
  COMMAND "${SCHED_BIN}" serve --in "${requests}"
          --out "${WORK_DIR}/results_warm.jsonl"
          --cache-dir "${cache_dir}" --threads 4 --schedule-policy ljf
          --summary-json "${WORK_DIR}/summary_warm.json"
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "warm serve exited with ${serve_rc}\n${serve_err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${reference}" "${WORK_DIR}/results_warm.jsonl"
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "warm serve output differs from the cold run — the disk cache "
    "changed served bytes")
endif()
file(READ "${WORK_DIR}/summary_warm.json" warm_summary)
string(JSON warm_executed GET "${warm_summary}" memo executed)
string(JSON warm_disk_hits GET "${warm_summary}" disk_cache hits)
if(NOT warm_executed EQUAL 0)
  message(FATAL_ERROR
    "warm serve recomputed ${warm_executed} requests instead of serving "
    "them from the cache:\n${warm_summary}")
endif()
if(NOT warm_disk_hits EQUAL cold_records)
  message(FATAL_ERROR
    "warm serve answered ${warm_disk_hits} requests from disk, expected "
    "${cold_records} (one per distinct request):\n${warm_summary}")
endif()

# Compaction is invisible to served bytes.
execute_process(
  COMMAND "${SCHED_BIN}" cache compact --cache-dir "${cache_dir}"
  ERROR_VARIABLE compact_err
  RESULT_VARIABLE compact_rc)
if(NOT compact_rc EQUAL 0)
  message(FATAL_ERROR "cache compact exited with ${compact_rc}\n${compact_err}")
endif()
execute_process(
  COMMAND "${SCHED_BIN}" serve --in "${requests}"
          --out "${WORK_DIR}/results_compacted.jsonl"
          --cache-dir "${cache_dir}" --threads 1
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR
    "post-compaction serve exited with ${serve_rc}\n${serve_err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${reference}" "${WORK_DIR}/results_compacted.jsonl"
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "post-compaction serve output differs from the cold run — "
    "compaction changed served bytes")
endif()

message(STATUS
  "cache smoke OK: ${count}-request stream served from a cold process "
  "with ${warm_disk_hits}/${cold_records} disk hits, byte-identical "
  "before and after compaction")
