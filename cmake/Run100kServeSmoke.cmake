# 100k-node grid serve smoke: one grid_steady request discretising the
# fig1 SoC at 317x317 cells (100,489 + 10 package = 100,499 thermal
# nodes — past the 100k mark where the dense backend is infeasible)
# must (a) run end to end through `thermosched serve` on the sparse
# backend's fill-ordered factor, (b) produce byte-identical results for
# 1 and 4 worker threads, and (c) answer ok:true.
#
# The batch carries the big request twice under different ids plus a
# small 64x64 warm-up, so it also exercises the runner's shared grid
# model cache (one 100k assembly + factorization, not two) across
# worker threads.
#
# Usage: cmake -DSERVE_BIN=<thermosched> -DWORK_DIR=<scratch dir>
#              -P Run100kServeSmoke.cmake
if(NOT SERVE_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "SERVE_BIN and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests_100k.jsonl")
set(out1 "${WORK_DIR}/results_100k_t1.jsonl")
set(outN "${WORK_DIR}/results_100k_t4.jsonl")

file(WRITE "${requests}"
  "{\"id\":\"grid-warmup-64\",\"kind\":\"grid_steady\",\"soc\":{\"kind\":\"fig1\"},\"grid\":{\"rows\":64,\"cols\":64}}\n"
  "{\"id\":\"grid-100k-a\",\"kind\":\"grid_steady\",\"soc\":{\"kind\":\"fig1\"},\"grid\":{\"rows\":317,\"cols\":317},\"solver\":{\"backend\":\"sparse\"}}\n"
  "{\"id\":\"grid-100k-b\",\"kind\":\"grid_steady\",\"soc\":{\"kind\":\"fig1\"},\"grid\":{\"rows\":317,\"cols\":317},\"solver\":{\"backend\":\"sparse\"}}\n")

foreach(pair "1;${out1}" "4;${outN}")
  list(GET pair 0 threads)
  list(GET pair 1 outfile)
  execute_process(
    COMMAND "${SERVE_BIN}" serve --in "${requests}" --out "${outfile}"
            --threads ${threads}
    OUTPUT_VARIABLE serve_out
    ERROR_VARIABLE serve_err
    RESULT_VARIABLE serve_rc)
  if(NOT serve_rc EQUAL 0)
    message(FATAL_ERROR
      "serve --threads ${threads} exited with ${serve_rc}\n${serve_err}")
  endif()
endforeach()

file(READ "${out1}" results_1)
file(READ "${outN}" results_n)
if(results_1 STREQUAL "")
  message(FATAL_ERROR "100k serve smoke produced an empty results file")
endif()
if(NOT results_1 STREQUAL results_n)
  message(FATAL_ERROR
    "grid_steady serve output differs between --threads 1 and "
    "--threads 4 (${out1} vs ${outN}) — the 100k path lost determinism")
endif()
string(REGEX MATCHALL "\n" newlines "${results_1}")
list(LENGTH newlines line_count)
if(NOT line_count EQUAL 3)
  message(FATAL_ERROR "expected 3 result records, got ${line_count}")
endif()
string(REGEX MATCHALL "\"ok\":true" oks "${results_1}")
list(LENGTH oks ok_count)
if(NOT ok_count EQUAL 3)
  message(FATAL_ERROR
    "expected 3 ok:true records, got ${ok_count}:\n${results_1}")
endif()
string(REGEX MATCHALL "\"nodes\":100499" big_nodes "${results_1}")
list(LENGTH big_nodes big_count)
if(NOT big_count EQUAL 2)
  message(FATAL_ERROR
    "expected 2 records with nodes:100499, got ${big_count}:\n${results_1}")
endif()
message(STATUS
  "100k serve smoke OK: 2 x 100499-node grid_steady requests, "
  "1-vs-4-thread results identical")
