# Large-SoC sparse-backend serve smoke: a batch of >=1000-thermal-node
# synthetic requests with {"solver": {"backend": "sparse"}} must (a)
# succeed end to end through `thermosched serve`, (b) produce
# byte-identical results for 1 and 4 worker threads (the sparse LDLt
# path must be as deterministic as the dense one), and (c) answer every
# request ok:true.
#
# The four requests share one 1024-core geometry (1034 thermal nodes)
# across two power corners and both oracle modes, so the batch also
# exercises cross-thread sharing of one sparse factorization.
#
# Usage: cmake -DSERVE_BIN=<thermosched> -DWORK_DIR=<scratch dir>
#              -P RunSparseServeSmoke.cmake
if(NOT SERVE_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "SERVE_BIN and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests_sparse.jsonl")
set(out1 "${WORK_DIR}/results_sparse_t1.jsonl")
set(outN "${WORK_DIR}/results_sparse_t4.jsonl")

set(soc "\"soc\":{\"kind\":\"synthetic\",\"seed\":7,\"cores\":1024,\"test_length_min\":0.02,\"test_length_max\":0.02")
file(WRITE "${requests}"
  "{\"id\":\"sparse-steady-1.0\",${soc}},\"tl\":400,\"stcl\":120,\"solver\":{\"transient\":false,\"backend\":\"sparse\"}}\n"
  "{\"id\":\"sparse-steady-1.1\",${soc},\"power_scale\":1.1},\"tl\":400,\"stcl\":120,\"solver\":{\"transient\":false,\"backend\":\"sparse\"}}\n"
  "{\"id\":\"sparse-transient-1.0\",${soc}},\"tl\":400,\"stcl\":120,\"solver\":{\"dt\":0.002,\"backend\":\"sparse\"}}\n"
  "{\"id\":\"sparse-transient-1.1\",${soc},\"power_scale\":1.1},\"tl\":400,\"stcl\":120,\"solver\":{\"dt\":0.002,\"backend\":\"sparse\"}}\n")

foreach(pair "1;${out1}" "4;${outN}")
  list(GET pair 0 threads)
  list(GET pair 1 outfile)
  execute_process(
    COMMAND "${SERVE_BIN}" serve --in "${requests}" --out "${outfile}"
            --threads ${threads}
    OUTPUT_VARIABLE serve_out
    ERROR_VARIABLE serve_err
    RESULT_VARIABLE serve_rc)
  if(NOT serve_rc EQUAL 0)
    message(FATAL_ERROR
      "serve --threads ${threads} exited with ${serve_rc}\n${serve_err}")
  endif()
endforeach()

file(READ "${out1}" results_1)
file(READ "${outN}" results_n)
if(results_1 STREQUAL "")
  message(FATAL_ERROR "sparse serve smoke produced an empty results file")
endif()
if(NOT results_1 STREQUAL results_n)
  message(FATAL_ERROR
    "sparse-backend serve output differs between --threads 1 and "
    "--threads 4 (${out1} vs ${outN}) — the sparse path lost determinism")
endif()
string(REGEX MATCHALL "\n" newlines "${results_1}")
list(LENGTH newlines line_count)
if(NOT line_count EQUAL 4)
  message(FATAL_ERROR "expected 4 result records, got ${line_count}")
endif()
string(REGEX MATCHALL "\"ok\":true" oks "${results_1}")
list(LENGTH oks ok_count)
if(NOT ok_count EQUAL 4)
  message(FATAL_ERROR
    "expected 4 ok:true records, got ${ok_count}:\n${results_1}")
endif()
message(STATUS
  "sparse serve smoke OK: 4 x 1034-node sparse requests, "
  "1-vs-4-thread results identical")
