# Observability smoke: tracing and metrics may never change what serve
# writes. A generated stream is served untraced on 1 thread (reference),
# then with --trace/--metrics-json/--metrics on 1 and 4 threads — every
# run must reproduce the reference bytes exactly. The recorded trace
# must pass tools/check_trace.py (balanced B/E spans, per-thread
# monotonic timestamps) and the metrics snapshot must contain the
# dispatch/scenario counters (docs/OBSERVABILITY.md).
#
# Usage: cmake -DSCHED_BIN=<thermosched> -DWORK_DIR=<scratch dir>
#              -DPYTHON_BIN=<python3> -DCHECK_TRACE=<check_trace.py>
#              -P RunTraceServeSmoke.cmake
if(NOT SCHED_BIN OR NOT WORK_DIR OR NOT PYTHON_BIN OR NOT CHECK_TRACE)
  message(FATAL_ERROR
    "SCHED_BIN, WORK_DIR, PYTHON_BIN, and CHECK_TRACE must be set")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests.jsonl")
set(reference "${WORK_DIR}/results_untraced_t1.jsonl")
set(count 80)

# Duplicates exercise the memo-hit instrumentation; the default mix
# covers the per-kind scenario spans.
execute_process(
  COMMAND "${SCHED_BIN}" gen --count ${count} --seed 11 --dup 0.2
          --out "${requests}"
  ERROR_VARIABLE gen_err
  RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "thermosched gen exited with ${gen_rc}\n${gen_err}")
endif()

# Reference: untraced, 1 thread.
execute_process(
  COMMAND "${SCHED_BIN}" serve --in "${requests}" --out "${reference}"
          --threads 1
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "reference serve exited with ${serve_rc}\n${serve_err}")
endif()

# Traced runs must reproduce the reference bytes for 1 and 4 threads.
foreach(threads 1 4)
  set(outfile "${WORK_DIR}/results_traced_t${threads}.jsonl")
  set(trace "${WORK_DIR}/trace_t${threads}.json")
  set(metrics "${WORK_DIR}/metrics_t${threads}.json")
  execute_process(
    COMMAND "${SCHED_BIN}" serve --in "${requests}" --out "${outfile}"
            --threads ${threads} --trace "${trace}"
            --metrics-json "${metrics}" --metrics
    ERROR_VARIABLE serve_err
    RESULT_VARIABLE serve_rc)
  if(NOT serve_rc EQUAL 0)
    message(FATAL_ERROR
      "traced serve --threads ${threads} exited with ${serve_rc}\n"
      "${serve_err}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${reference}" "${outfile}"
    RESULT_VARIABLE cmp_rc)
  if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
      "traced serve --threads ${threads} changed the output bytes "
      "(${reference} vs ${outfile}) — observability broke the "
      "determinism contract")
  endif()

  # The trace must be structurally valid: balanced spans, monotonic
  # per-thread timestamps, and enough events to prove instrumentation
  # actually fired (each request contributes several spans).
  execute_process(
    COMMAND "${PYTHON_BIN}" "${CHECK_TRACE}" "${trace}"
            --min-events ${count}
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err
    RESULT_VARIABLE check_rc)
  if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
      "check_trace.py rejected ${trace}:\n${check_out}${check_err}")
  endif()

  # The metrics snapshot must carry the pipeline's counters.
  file(READ "${metrics}" metrics_text)
  foreach(needle
      "\"dispatch.jobs\""
      "\"dispatch.exec_ns\""
      "\"dispatch.queue_wait_ns\""
      "\"scenario.requests\""
      "\"thermal.factor_ns\"")
    string(FIND "${metrics_text}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR
        "metrics snapshot ${metrics} is missing ${needle}")
    endif()
  endforeach()
endforeach()

message(STATUS
  "trace serve smoke OK: traced {1,4}-thread runs byte-identical to the "
  "untraced reference, traces balanced and monotonic, metrics present")
