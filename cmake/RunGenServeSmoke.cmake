# Generator -> serve pipeline smoke: `thermosched gen` must be
# deterministic (two runs with the same flags produce byte-identical
# request files), the generated stream must contain all three request
# kinds, and serving it must produce byte-identical results across
# {1,4} worker threads x {fifo,ljf} x {dedup on,off} with every record
# ok:true — the end-to-end version of what tests/gen_test.cpp and
# bench_gen pin at the library level.
#
# Usage: cmake -DSCHED_BIN=<thermosched> -DWORK_DIR=<scratch dir>
#              -P RunGenServeSmoke.cmake
if(NOT SCHED_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "SCHED_BIN and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests_gen.jsonl")
set(requests_again "${WORK_DIR}/requests_gen_again.jsonl")
set(reference "${WORK_DIR}/results_gen_t1.jsonl")
set(count 150)

# A small but adversarial stream: duplicates for the memo, whale-last
# arrival for the placer, the default kind mix for coverage.
set(gen_flags --count ${count} --seed 5 --dup 0.25 --order whale-last)
foreach(outfile "${requests}" "${requests_again}")
  execute_process(
    COMMAND "${SCHED_BIN}" gen ${gen_flags} --out "${outfile}"
    ERROR_VARIABLE gen_err
    RESULT_VARIABLE gen_rc)
  if(NOT gen_rc EQUAL 0)
    message(FATAL_ERROR "thermosched gen exited with ${gen_rc}\n${gen_err}")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${requests}" "${requests_again}"
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "two `thermosched gen` runs with identical flags produced different "
    "bytes (${requests} vs ${requests_again}) — the generator lost its "
    "determinism contract")
endif()

# The stream must actually exercise the full request surface.
file(READ "${requests}" request_text)
foreach(needle
    "\"kind\":\"stcl_sweep\""
    "\"kind\":\"ptrace\""
    "\"kind\":\"chained\"")
  string(FIND "${request_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "generated stream is missing ${needle} requests:\n${requests}")
  endif()
endforeach()

# Reference: fifo on 1 thread, dedup on.
execute_process(
  COMMAND "${SCHED_BIN}" serve --in "${requests}" --out "${reference}"
          --threads 1
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "reference serve exited with ${serve_rc}\n${serve_err}")
endif()

# Every other configuration must reproduce the reference bytes. (Each
# quoted item is one ;-separated record — foreach over ITEMS keeps them
# intact where a LISTS variable would flatten.)
foreach(config
    "4;fifo;on;results_gen_fifo_t4.jsonl"
    "4;ljf;on;results_gen_ljf_t4.jsonl"
    "1;ljf;off;results_gen_ljf_t1_nodedup.jsonl"
    "4;fifo;off;results_gen_fifo_t4_nodedup.jsonl")
  list(GET config 0 threads)
  list(GET config 1 policy)
  list(GET config 2 dedup)
  list(GET config 3 outname)
  set(outfile "${WORK_DIR}/${outname}")
  execute_process(
    COMMAND "${SCHED_BIN}" serve --in "${requests}" --out "${outfile}"
            --threads ${threads} --schedule-policy ${policy} --dedup ${dedup}
    ERROR_VARIABLE serve_err
    RESULT_VARIABLE serve_rc)
  if(NOT serve_rc EQUAL 0)
    message(FATAL_ERROR
      "serve --threads ${threads} --schedule-policy ${policy} --dedup "
      "${dedup} exited with ${serve_rc}\n${serve_err}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${reference}" "${outfile}"
    RESULT_VARIABLE cmp_rc)
  if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
      "serve output differs from the 1-thread fifo reference for "
      "--threads ${threads} --schedule-policy ${policy} --dedup ${dedup} "
      "(${reference} vs ${outfile}) on the generated stream")
  endif()
endforeach()

file(READ "${reference}" results)
string(REGEX MATCHALL "\n" newlines "${results}")
list(LENGTH newlines line_count)
if(NOT line_count EQUAL ${count})
  message(FATAL_ERROR
    "expected ${count} result records, got ${line_count}")
endif()
string(REGEX MATCHALL "\"ok\":true" oks "${results}")
list(LENGTH oks ok_count)
if(NOT ok_count EQUAL ${count})
  message(FATAL_ERROR
    "expected ${count} ok:true records, got ${ok_count}")
endif()

message(STATUS
  "gen serve smoke OK: ${count}-request generated stream deterministic, "
  "all kinds present, byte-identical across threads x policy x dedup")
