# Serve determinism smoke: generate a demo JSONL batch, run
# `thermosched serve` over it once with 1 thread and once with several,
# and require (a) every step exits 0, (b) the two results files are
# byte-identical, (c) one result line per request.
#
# Usage: cmake -DGEN_BIN=<make_requests> -DSERVE_BIN=<thermosched>
#              -DWORK_DIR=<scratch dir> [-DREQUEST_COUNT=120] -P RunServeSmoke.cmake
if(NOT GEN_BIN OR NOT SERVE_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "GEN_BIN, SERVE_BIN and WORK_DIR must be set")
endif()
if(NOT REQUEST_COUNT)
  set(REQUEST_COUNT 120)
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests.jsonl")
set(out1 "${WORK_DIR}/results_t1.jsonl")
set(outN "${WORK_DIR}/results_tN.jsonl")

execute_process(
  COMMAND "${GEN_BIN}" --count ${REQUEST_COUNT}
  OUTPUT_FILE "${requests}"
  ERROR_VARIABLE gen_err
  RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "make_requests exited with ${gen_rc}\n${gen_err}")
endif()

foreach(pair "1;${out1}" "4;${outN}")
  list(GET pair 0 threads)
  list(GET pair 1 outfile)
  execute_process(
    COMMAND "${SERVE_BIN}" serve --in "${requests}" --out "${outfile}"
            --threads ${threads}
    OUTPUT_VARIABLE serve_out
    ERROR_VARIABLE serve_err
    RESULT_VARIABLE serve_rc)
  if(NOT serve_rc EQUAL 0)
    message(FATAL_ERROR
      "serve --threads ${threads} exited with ${serve_rc}\n${serve_err}")
  endif()
endforeach()

file(READ "${out1}" results_1)
file(READ "${outN}" results_n)
if(results_1 STREQUAL "")
  message(FATAL_ERROR "serve produced an empty results file")
endif()
if(NOT results_1 STREQUAL results_n)
  message(FATAL_ERROR
    "serve output differs between --threads 1 and --threads 4 "
    "(${out1} vs ${outN}) — the batch front-end lost determinism")
endif()
string(REGEX MATCHALL "\n" newlines "${results_1}")
list(LENGTH newlines line_count)
if(NOT line_count EQUAL REQUEST_COUNT)
  message(FATAL_ERROR
    "expected ${REQUEST_COUNT} result records, got ${line_count}")
endif()
message(STATUS
  "serve smoke OK: ${REQUEST_COUNT} requests, 1-vs-4-thread results identical")
