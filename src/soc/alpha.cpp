#include "soc/alpha.hpp"

#include "util/error.hpp"

namespace thermo::soc {

namespace {

constexpr double kMm = 1e-3;  // all layout coordinates below are in mm

struct UnitSpec {
  const char* name;
  double x0, y0, x1, y1;     // mm
  double functional_power;   // W
  double test_factor;        // test power = factor * functional (1.5..8)
};

// 16 mm x 16 mm die, fully covered, 15 units.
//  * bottom half: two 8x8 L2 banks (large, low density);
//  * top-left quadrant: memory controllers, router, IO (medium);
//  * top-right quadrant: the CPU core cluster (small, hot units).
constexpr UnitSpec kUnits[] = {
    //  name       x0    y0    x1    y1    P_func  factor
    {"L2_0",      0.0,  0.0,  8.0,  8.0,   4.0,   2.0},
    {"L2_1",      8.0,  0.0, 16.0,  8.0,   4.0,   2.5},
    {"MC0",       0.0,  8.0,  4.0, 12.0,   3.0,   3.0},
    {"MC1",       0.0, 12.0,  4.0, 16.0,   3.0,   3.0},
    {"Router",    4.0,  8.0,  8.0, 12.0,   4.0,   2.0},
    {"IO",        4.0, 12.0,  8.0, 16.0,   2.0,   4.0},
    {"Icache",    8.0,  8.0, 12.0, 10.0,   5.0,   3.0},
    {"Dcache",   12.0,  8.0, 16.0, 10.0,   6.0,   2.5},
    {"LSQ",       8.0, 10.0, 10.0, 13.0,   3.0,   4.0},
    {"IntReg",   10.0, 10.0, 12.0, 13.0,   4.5,   3.0},
    {"IntExe",   12.0, 10.0, 16.0, 13.0,   5.0,   2.5},
    {"Bpred",     8.0, 13.0, 10.0, 16.0,   2.5,   5.0},
    {"IntMap",   10.0, 13.0, 12.0, 16.0,   2.0,   6.0},
    {"FPAdd",    12.0, 13.0, 14.0, 16.0,   3.0,   4.0},
    {"FPMul",    14.0, 13.0, 16.0, 16.0,   3.5,   3.0},
};

/// Global multiplier applied to all test powers so that the hottest solo
/// core lands just below the paper's tightest limit (TL = 145 C) under
/// the default package — the regime Table 1 explores. Calibrated against
/// this repository's RC simulator.
constexpr double kTestPowerCalibration = 2.75;

}  // namespace

core::SocSpec alpha_soc() { return alpha_soc_scaled(1.0); }

core::SocSpec alpha_soc_scaled(double power_scale) {
  THERMO_REQUIRE(power_scale > 0.0, "power scale must be positive");
  core::SocSpec soc;
  soc.name = "alpha21364-15";
  soc.flp.set_name(soc.name);
  for (const UnitSpec& unit : kUnits) {
    floorplan::Block block;
    block.name = unit.name;
    block.x = unit.x0 * kMm;
    block.y = unit.y0 * kMm;
    block.width = (unit.x1 - unit.x0) * kMm;
    block.height = (unit.y1 - unit.y0) * kMm;
    soc.flp.add_block(std::move(block));

    core::CoreTest test;
    test.power = unit.functional_power * unit.test_factor *
                 kTestPowerCalibration * power_scale;
    test.length = 1.0;  // uniform 1 s tests; see docs/ARCHITECTURE.md,
                        // "Deviations from the paper"
    soc.tests.push_back(test);
  }
  soc.package = thermal::PackageParams{};
  soc.validate();
  return soc;
}

double alpha_stc_scale() {
  // Calibrated so the paper's STCL axis (20..100) spans "hot cores must
  // run alone" (solo STCs range 3.6 .. 23.8) to "most cores in one
  // session" (the 7-unit CPU cluster scores ~82) for alpha_soc(). See
  // bench/bench_table1 and EXPERIMENTS.md.
  return 2.8e-3;
}

}  // namespace thermo::soc
