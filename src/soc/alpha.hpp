// The evaluation SoC of the paper: a 15-core system modelled on the
// Compaq Alpha 21364 floorplan shipped with HotSpot.
//
// Substitution note (see docs/ARCHITECTURE.md, "Deviations from the
// paper"): the authors used the exact
// HotSpot floorplan file; we reconstruct a 16 mm x 16 mm die with the
// same character — two large L2 banks, mid-sized memory/network
// blocks, and a cluster of small, hot CPU-core units — which is what
// the paper's argument rests on (heterogeneous power density plus a
// realistic adjacency structure). Functional powers follow published
// Alpha-class breakdowns; test powers are 1.5x-8x functional, as in the
// paper (Section 4).
#pragma once

#include "core/soc_spec.hpp"

namespace thermo::soc {

/// The 15-core Alpha-like SoC with default package and test set.
core::SocSpec alpha_soc();

/// Same SoC with every test power multiplied by `power_scale`
/// (calibration hook for exploring other thermal regimes).
core::SocSpec alpha_soc_scaled(double power_scale);

/// STC normalization placing this SoC's session-characteristic range
/// onto the paper's STCL axis (20..100): with this scale, single-core
/// STCs fall around 3.6-23.8 and multi-core sessions span 20-100+.
double alpha_stc_scale();

}  // namespace thermo::soc
