// Random synthetic SoCs for property testing, scaling studies, and
// synthetic serve scenarios: a random slicing floorplan
// (floorplan::make_slicing_floorplan) whose blocks get test powers
// drawn so that power *densities* spread over roughly an order of
// magnitude — the heterogeneity that motivates thermal-aware scheduling
// in the first place (a power-constrained scheduler treats 2 W in a
// small hot block and 2 W in a large cool block identically; the
// thermal model does not).
//
// Densities are drawn log-uniformly between the min/max bounds, so
// small hot blocks and large cool blocks are both common, mirroring
// real SoCs. Test lengths default to a uniform 1 s (schedule length ==
// session count, the paper's convention); widen the length range for
// ragged-session studies.
//
// Determinism: the SoC is a pure function of the Rng state and options.
// The floorplan is generated *before* any power/length draw, so two
// calls with equal seeds and equal geometry options (core_count, chip
// dimensions) produce identical floorplans even when the power bounds
// differ — scenario::ScenarioRunner relies on exactly this to share one
// RC model across power corners (see SocSelector::geometry_key()).
#pragma once

#include "core/soc_spec.hpp"
#include "util/rng.hpp"

namespace thermo::soc {

struct SyntheticOptions {
  std::size_t core_count = 12;
  double chip_width = 0.016;       ///< metres
  double chip_height = 0.016;      ///< metres
  double power_density_min = 2e5;  ///< W/m^2 (0.2 W/mm^2)
  double power_density_max = 2e6;  ///< W/m^2 (2.0 W/mm^2)
  double test_length_min = 1.0;    ///< s
  double test_length_max = 1.0;    ///< s (set > min for ragged sessions)
};

/// Generates a valid, validate()-clean SocSpec named
/// "synthetic-<core_count>" with the default thermal package.
/// Deterministic for a given RNG state (see file comment). Throws
/// InvalidArgument when a range is empty/non-positive or core_count is 0.
core::SocSpec make_synthetic_soc(Rng& rng, const SyntheticOptions& options = {});

}  // namespace thermo::soc
