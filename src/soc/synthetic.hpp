// Random synthetic SoCs for property testing and scaling studies:
// a random slicing floorplan plus test powers drawn so that power
// densities spread over roughly an order of magnitude (the situation
// that motivates thermal-aware scheduling).
#pragma once

#include "core/soc_spec.hpp"
#include "util/rng.hpp"

namespace thermo::soc {

struct SyntheticOptions {
  std::size_t core_count = 12;
  double chip_width = 0.016;       ///< metres
  double chip_height = 0.016;      ///< metres
  double power_density_min = 2e5;  ///< W/m^2 (0.2 W/mm^2)
  double power_density_max = 2e6;  ///< W/m^2 (2.0 W/mm^2)
  double test_length_min = 1.0;    ///< s
  double test_length_max = 1.0;    ///< s (set > min for ragged sessions)
};

/// Generates a valid SocSpec; deterministic for a given RNG state.
core::SocSpec make_synthetic_soc(Rng& rng, const SyntheticOptions& options = {});

}  // namespace thermo::soc
