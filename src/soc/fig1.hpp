// The motivational example of the paper (Figure 1): a hypothetical
// 7-core SoC where every core dissipates the same 15 W during test but
// core areas differ by 4x, so a 45 W chip-level power constraint admits
// both TS1 = {C2, C3, C4} (small, dense, clustered cores -> hot spot)
// and TS2 = {C5, C6, C7} (large cores -> cool), despite a ~58 C gap in
// peak temperature.
#pragma once

#include "core/schedule.hpp"
#include "core/soc_spec.hpp"

namespace thermo::soc {

/// The 7-core hypothetical SoC. Geometry: 10 mm x 15 mm die; C1 is a
/// 4 mm x 15 mm slab; C2-C4 are 2 mm x 3 mm (6 mm^2); C5-C7 are
/// 6 mm x 4 mm (24 mm^2): the power density of C2 is exactly 4x that
/// of C5, as stated in the paper.
core::SocSpec fig1_soc();

/// TS1 = {C2, C3, C4}: 45 W total, high power density.
core::TestSession fig1_session_ts1(const core::SocSpec& soc);

/// TS2 = {C5, C6, C7}: 45 W total, low power density.
core::TestSession fig1_session_ts2(const core::SocSpec& soc);

/// The paper's chip-level power constraint for this example [W].
inline constexpr double kFig1PowerLimit = 45.0;

}  // namespace thermo::soc
