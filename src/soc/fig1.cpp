#include "soc/fig1.hpp"

#include "util/error.hpp"

namespace thermo::soc {

namespace {
constexpr double kMm = 1e-3;

struct UnitSpec {
  const char* name;
  double x0, y0, x1, y1;  // mm
};

// 10 mm x 15 mm die, fully covered.
constexpr UnitSpec kUnits[] = {
    {"C1", 0.0, 0.0, 4.0, 15.0},    // 60 mm^2
    {"C2", 4.0, 12.0, 6.0, 15.0},   // 6 mm^2  (dense)
    {"C3", 6.0, 12.0, 8.0, 15.0},   // 6 mm^2  (dense)
    {"C4", 8.0, 12.0, 10.0, 15.0},  // 6 mm^2  (dense)
    {"C5", 4.0, 0.0, 10.0, 4.0},    // 24 mm^2
    {"C6", 4.0, 4.0, 10.0, 8.0},    // 24 mm^2
    {"C7", 4.0, 8.0, 10.0, 12.0},   // 24 mm^2
};

constexpr double kTestPowerWatts = 15.0;  // P(Ci) = 15 W, i = 1..7
}  // namespace

core::SocSpec fig1_soc() {
  core::SocSpec soc;
  soc.name = "fig1-hypothetical";
  soc.flp.set_name(soc.name);
  for (const UnitSpec& unit : kUnits) {
    floorplan::Block block;
    block.name = unit.name;
    block.x = unit.x0 * kMm;
    block.y = unit.y0 * kMm;
    block.width = (unit.x1 - unit.x0) * kMm;
    block.height = (unit.y1 - unit.y0) * kMm;
    soc.flp.add_block(std::move(block));
    soc.tests.push_back(core::CoreTest{kTestPowerWatts, 1.0});
  }
  soc.package = thermal::PackageParams{};
  soc.validate();
  return soc;
}

namespace {
core::TestSession session_of(const core::SocSpec& soc,
                             std::initializer_list<const char*> names) {
  core::TestSession session;
  for (const char* name : names) {
    const auto index = soc.flp.index_of(name);
    THERMO_ENSURE(index.has_value(), std::string("missing core ") + name);
    session.cores.push_back(*index);
  }
  return session;
}
}  // namespace

core::TestSession fig1_session_ts1(const core::SocSpec& soc) {
  return session_of(soc, {"C2", "C3", "C4"});
}

core::TestSession fig1_session_ts2(const core::SocSpec& soc) {
  return session_of(soc, {"C5", "C6", "C7"});
}

}  // namespace thermo::soc
