#include "soc/synthetic.hpp"

#include <cmath>

#include "floorplan/generator.hpp"
#include "util/error.hpp"

namespace thermo::soc {

core::SocSpec make_synthetic_soc(Rng& rng, const SyntheticOptions& options) {
  THERMO_REQUIRE(options.core_count >= 1, "need at least one core");
  THERMO_REQUIRE(options.power_density_min > 0.0 &&
                     options.power_density_max >= options.power_density_min,
                 "power density range must be positive and ordered");
  THERMO_REQUIRE(options.test_length_min > 0.0 &&
                     options.test_length_max >= options.test_length_min,
                 "test length range must be positive and ordered");

  floorplan::SlicingOptions slicing;
  slicing.block_count = options.core_count;
  slicing.chip_width = options.chip_width;
  slicing.chip_height = options.chip_height;

  core::SocSpec soc;
  soc.flp = floorplan::make_slicing_floorplan(rng, slicing);
  soc.name = "synthetic-" + std::to_string(options.core_count);
  soc.flp.set_name(soc.name);
  soc.package = thermal::PackageParams{};

  for (std::size_t i = 0; i < soc.flp.size(); ++i) {
    // Log-uniform density: small hot blocks and large cool blocks are
    // both common, mirroring real SoCs.
    const double log_min = std::log(options.power_density_min);
    const double log_max = std::log(options.power_density_max);
    const double density = std::exp(rng.uniform(log_min, log_max));
    core::CoreTest test;
    test.power = density * soc.flp.block(i).area();
    test.length = rng.uniform(options.test_length_min, options.test_length_max);
    soc.tests.push_back(test);
  }
  soc.validate();
  return soc;
}

}  // namespace thermo::soc
