// Deterministic workload generation for the serve stack: turn one seed
// plus a handful of distribution knobs into a JSONL request stream the
// `thermosched serve` front-end (and the dispatch engine underneath it)
// can be measured against. Hand-rolled demo batches stop at a dozen
// requests; the daemon/disk-cache/SLO roadmap items need streams of
// millions with *controllable* skew, duplication, and arrival order —
// this layer is that fuel (docs/GEN.md is the user-facing reference).
//
// Determinism contract: generate_stream is a pure function of GenConfig.
// Identical configs produce byte-identical streams — every random choice
// is drawn from one util::Rng seeded with config.seed, and nothing else
// (no clocks, no addresses, no iteration over unordered containers).
// This is what makes generated streams usable as regression anchors:
// a bench or bug report only needs to record the flags, not the stream.
//
// Validity contract: every emitted line is a *canonical* request —
// generated requests are serialized through scenario::to_json_line after
// construction, so parse(line) succeeds and re-serialization is a
// fixpoint by construction (pinned by the tests/gen_test.cpp property
// sweep). Duplicated lines are byte-identical copies of earlier lines,
// id included, which is exactly what serve's memoization keys on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace thermo::gen {

/// Arrival order of the finished stream.
enum class OrderPattern {
  kAsGenerated,  ///< emission order (random sizes, no rearrangement)
  kShuffled,     ///< uniform random permutation (the default)
  kSortedAsc,    ///< cheapest first — pessimal for ljf placement
  kSortedDesc,   ///< costliest first — what ljf would choose anyway
  kWhaleLast     ///< adversarial: the single costliest request arrives
                 ///< last, maximizing the tail a placer cannot fix
};

/// Canonical spelling ("as-generated", "shuffled", "sorted",
/// "sorted-desc", "whale-last").
const char* order_pattern_name(OrderPattern order);

/// Inverse of order_pattern_name; nullopt for unknown names.
std::optional<OrderPattern> order_pattern_from_name(std::string_view name);

/// Request-kind mix as relative weights (normalized internally; they do
/// not need to sum to 1).
struct KindMix {
  double sweep = 0.7;    ///< kind "stcl_sweep"
  double ptrace = 0.15;  ///< kind "ptrace" (power-trace replay)
  double chained = 0.15; ///< kind "chained" (chained-session validation)
  /// kind "grid_steady" (fine-grid steady solve). Default 0: a grid
  /// request is orders of magnitude heavier than the rest of the mix,
  /// so streams opt in explicitly — and the 0 weight draws nothing,
  /// keeping pre-knob streams byte-identical (the gen_test golden).
  double grid = 0.0;
};

/// The deadline values --deadline-rate draws from, machine-independent
/// by construction: kTight is far below any real scenario execution (an
/// executed job always misses it; only a planning-time memo hit, whose
/// record exists at window start, meets it), kGenerous is far above any
/// batch makespan (never missed). Tests and bench gates can therefore
/// pin exact miss counts from the stream alone.
constexpr double kTightDeadlineS = 1e-7;
constexpr double kGenerousDeadlineS = 1e6;

struct GenConfig {
  std::uint64_t seed = 1;
  std::size_t count = 1000;  ///< total lines, duplicates included

  /// Size skew: synthetic core counts are drawn from `core_ladder` with
  /// Zipf probability P(rank k) ∝ 1/(k+1)^zipf_skew — rank 0 (smallest)
  /// dominates, the big sparse-backend whales form the heavy tail.
  /// 0 = uniform over the ladder.
  double zipf_skew = 1.5;

  /// Probability that a line is a byte-identical copy of an earlier line
  /// instead of a fresh request, in [0, 1). Fresh requests carry unique
  /// ids, so with --dedup the serve memo hit count equals the duplicate
  /// count exactly (the bench_gen gate).
  double dup_rate = 0.0;

  /// Probability that a fresh request carries a deadline_s, in [0, 1]:
  /// half tight (kTightDeadlineS — always missed when executed), half
  /// generous (kGenerousDeadlineS — never missed), so SLO tests can pin
  /// miss counts without timing assumptions. 0 (the default) draws
  /// nothing from the RNG, keeping streams byte-identical to configs
  /// that predate the knob.
  double deadline_rate = 0.0;

  KindMix mix;
  OrderPattern order = OrderPattern::kShuffled;

  /// Synthetic sweep sizes. The default ladder spans the dense/sparse
  /// crossover: cores + 10 package nodes gives 18..512 thermal nodes
  /// around thermal::kSparseBackendCrossover = 256 (246 cores = exactly
  /// 256 nodes, the first auto-sparse rung).
  std::vector<std::size_t> core_ladder = {8, 16, 34, 64, 128, 246, 502};

  /// Throws InvalidArgument on out-of-range knobs
  /// ("gen config: <field>: <problem>").
  void validate() const;
};

/// What the generator actually emitted (per-kind counts include
/// duplicated lines — they are counted as their original's kind).
struct GenStats {
  std::size_t count = 0;       ///< lines emitted
  std::size_t fresh = 0;       ///< distinct requests
  std::size_t duplicates = 0;  ///< byte-identical copies
  std::size_t sweep = 0;
  std::size_t ptrace = 0;
  std::size_t chained = 0;
  std::size_t grid = 0;
  std::size_t deadlined = 0;   ///< lines carrying a deadline_s (dups included)
};

struct GeneratedStream {
  /// Canonical request lines (no trailing newline), in arrival order.
  std::vector<std::string> lines;
  /// scenario::estimate_request_cost per line — what the order patterns
  /// sort by, exposed so callers can reason about the skew they got.
  std::vector<double> costs;
  GenStats stats;
};

/// Generates the stream. Pure function of `config` (see determinism
/// contract above); throws InvalidArgument on invalid configs.
GeneratedStream generate_stream(const GenConfig& config);

/// Writes lines + '\n' each; flushes nothing (caller owns the stream).
void write_stream(const GeneratedStream& stream, std::ostream& out);

}  // namespace thermo::gen
