#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <ostream>
#include <utility>

#include "scenario/cost.hpp"
#include "scenario/request.hpp"
#include "scenario/runner.hpp"
#include "thermal/ptrace_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::gen {

namespace {

using scenario::RequestKind;
using scenario::ScenarioRequest;
using scenario::SocKind;

[[noreturn]] void fail(const std::string& field, const std::string& message) {
  throw InvalidArgument("gen config: " + field + ": " + message);
}

/// Fresh-request ids: "g000000", "g000001"... Unique per stream, so two
/// distinct requests can never share a serve memo key; only deliberate
/// duplicates (verbatim line copies) dedup.
std::string serial_id(std::size_t serial) {
  std::string digits = std::to_string(serial);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return "g" + digits;
}

/// Zipf CDF over ladder ranks: P(k) ∝ 1/(k+1)^skew.
std::vector<double> zipf_cdf(std::size_t n, double skew) {
  std::vector<double> cdf(n, 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::size_t sample_cdf(Rng& rng, const std::vector<double>& cdf) {
  const double u = rng.uniform();
  for (std::size_t k = 0; k < cdf.size(); ++k) {
    if (u < cdf[k]) return k;
  }
  return cdf.size() - 1;
}

/// Synthetic geometry seeds are drawn from a deliberately tiny pool so a
/// long stream revisits the same floorplans: that keeps the number of
/// distinct geometries far below ScenarioRunner::kMaxCachedModels and
/// lets the solver cache amortize factorizations — the generated stream
/// measures scheduling throughput, not repeated Cholesky.
constexpr std::uint64_t kGeometrySeeds = 4;

/// One STCL-sweep request. Small ranks occasionally use the named SoCs
/// (alpha/fig1) for variety; everything else is synthetic at the ladder
/// size. Mostly steady-state oracles — the point of a big stream is
/// serve-stack behaviour, and steady keeps a 10k-request batch runnable
/// on CI; a small transient slice keeps that path exercised too.
ScenarioRequest make_sweep(Rng& rng, std::size_t cores) {
  ScenarioRequest r;
  r.kind = RequestKind::kStclSweep;
  if (cores <= 16 && rng.chance(0.3)) {
    r.soc.kind = rng.chance(0.5) ? SocKind::kAlpha : SocKind::kFig1;
  } else {
    r.soc.kind = SocKind::kSynthetic;
    r.soc.synthetic.cores = cores;
    r.soc.synthetic.seed =
        static_cast<std::uint64_t>(rng.uniform_int(1, kGeometrySeeds));
    const double length = cores >= 128 ? 0.05 : 0.2;
    r.soc.synthetic.test_length_min = length;
    r.soc.synthetic.test_length_max = length;
    if (cores >= 128) {
      // The big rungs need headroom: many hot cores in one session push
      // peaks well past the default 155 C (bench_dispatch's whale uses
      // the same corner).
      r.tl = 400.0;
    }
  }
  r.soc.power_scale = 1.0 + 0.001 * static_cast<double>(rng.uniform_int(0, 99));
  const double stcl = static_cast<double>(
      rng.uniform_int(30, cores >= 128 ? 120 : 80));
  r.stcl.min = r.stcl.max = stcl;
  if (cores < 128 && rng.chance(0.2)) {
    r.stcl.max = stcl + 20.0;
    r.stcl.step = 10.0;  // a 3-point mini-sweep
  }
  if (cores <= 64 && rng.chance(0.15)) {
    r.solver.transient = true;
    r.solver.dt = 0.01;  // coarse: the slice is for path coverage
  } else {
    r.solver.transient = false;
  }
  return r;
}

/// Block names + test powers for a selector, built once per distinct
/// geometry per stream (the generator needs them to emit trace columns
/// that align with the floorplan a replay will build).
const core::SocSpec& soc_for(
    std::map<std::string, core::SocSpec>& cache,
    const scenario::SocSelector& selector) {
  const std::string key = selector.geometry_key();
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  return cache.emplace(key, scenario::ScenarioRunner::build_soc(selector))
      .first->second;
}

/// One power-trace replay request: a small SoC, 3..8 trace steps, each
/// block drawing a random fraction of its test power (rounded to mW so
/// the inline text stays short). step_duration == dt: one backward-Euler
/// step per trace line — replay cost is the line count, which is exactly
/// what the cost mapping claims via oracle_calls.
ScenarioRequest make_ptrace(Rng& rng,
                            std::map<std::string, core::SocSpec>& socs) {
  ScenarioRequest r;
  r.kind = RequestKind::kPtrace;
  const int pick = static_cast<int>(rng.uniform_int(0, 2));
  if (pick == 0) {
    r.soc.kind = SocKind::kAlpha;
  } else if (pick == 1) {
    r.soc.kind = SocKind::kFig1;
  } else {
    r.soc.kind = SocKind::kSynthetic;
    r.soc.synthetic.cores = rng.chance(0.5) ? 16 : 34;
    r.soc.synthetic.seed =
        static_cast<std::uint64_t>(rng.uniform_int(1, kGeometrySeeds));
  }
  const core::SocSpec& soc = soc_for(socs, r.soc);

  thermal::PowerTrace trace;
  for (std::size_t b = 0; b < soc.flp.size(); ++b) {
    trace.unit_names.push_back(soc.flp.block(b).name);
  }
  const std::size_t steps = static_cast<std::size_t>(rng.uniform_int(3, 8));
  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<double> row(soc.flp.size(), 0.0);
    for (std::size_t b = 0; b < row.size(); ++b) {
      const double base = b < soc.tests.size() ? soc.tests[b].power : 1.0;
      const double watts = base * rng.uniform(0.2, 1.0);
      row[b] = std::round(watts * 1000.0) / 1000.0;
    }
    trace.steps.push_back(std::move(row));
  }
  r.ptrace.text = thermal::to_ptrace_string(trace);
  r.ptrace.step_duration = 0.01;
  r.solver.transient = true;
  r.solver.dt = 0.01;
  return r;
}

/// One chained-session request: schedule a small SoC at one STCL value
/// with the cheap steady oracle, then replay the sessions back to back
/// (transient, residual heat carried) with a small cooling gap.
ScenarioRequest make_chained(Rng& rng) {
  ScenarioRequest r;
  r.kind = RequestKind::kChained;
  if (rng.chance(0.4)) {
    r.soc.kind = rng.chance(0.5) ? SocKind::kAlpha : SocKind::kFig1;
  } else {
    r.soc.kind = SocKind::kSynthetic;
    r.soc.synthetic.cores = rng.chance(0.5) ? 8 : 16;
    r.soc.synthetic.seed =
        static_cast<std::uint64_t>(rng.uniform_int(1, kGeometrySeeds));
    r.soc.synthetic.test_length_min = 0.2;
    r.soc.synthetic.test_length_max = 0.2;
  }
  r.stcl.min = r.stcl.max = static_cast<double>(rng.uniform_int(40, 70));
  r.solver.transient = false;
  r.solver.dt = 0.01;  // step of the transient chained replay
  const double gaps[] = {0.0, 0.25, 0.5};
  r.chained.cooling_gap = gaps[rng.uniform_index(3)];
  return r;
}

/// One fine-grid steady request: a named SoC discretised at one of a
/// few ladder resolutions. 64..160 per side keeps a generated stream's
/// grid slice heavy (4k..26k nodes, always the sparse backend) without
/// turning every stream into a 100k-node soak — that scale has its own
/// dedicated smoke (cmake/Run100kServeSmoke.cmake).
ScenarioRequest make_grid(Rng& rng) {
  ScenarioRequest r;
  r.kind = RequestKind::kGridSteady;
  r.soc.kind = rng.chance(0.5) ? SocKind::kAlpha : SocKind::kFig1;
  const std::size_t sides[] = {64, 96, 128, 160};
  const std::size_t side = sides[rng.uniform_index(4)];
  r.grid.rows = side;
  r.grid.cols = side;
  r.soc.power_scale = 1.0 + 0.001 * static_cast<double>(rng.uniform_int(0, 99));
  return r;
}

/// Applies the arrival-order pattern in place (lines/costs permuted
/// together). Sorts are stable on the pre-permutation index, so order is
/// a pure function of the generated costs.
void apply_order(OrderPattern order, Rng& rng, std::vector<std::string>& lines,
                 std::vector<double>& costs) {
  const std::size_t n = lines.size();
  if (n < 2 || order == OrderPattern::kAsGenerated) return;

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  switch (order) {
    case OrderPattern::kAsGenerated:
      break;
    case OrderPattern::kShuffled:
      rng.shuffle(perm);
      break;
    case OrderPattern::kSortedAsc:
      std::stable_sort(perm.begin(), perm.end(),
                       [&](std::size_t a, std::size_t b) {
                         return costs[a] < costs[b];
                       });
      break;
    case OrderPattern::kSortedDesc:
      std::stable_sort(perm.begin(), perm.end(),
                       [&](std::size_t a, std::size_t b) {
                         return costs[a] > costs[b];
                       });
      break;
    case OrderPattern::kWhaleLast: {
      // Shuffle, then move the costliest request to the very end — the
      // arrival order a cost-aware placer can do least about.
      rng.shuffle(perm);
      std::size_t whale_pos = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (costs[perm[i]] > costs[perm[whale_pos]]) whale_pos = i;
      }
      std::rotate(perm.begin() + static_cast<std::ptrdiff_t>(whale_pos),
                  perm.begin() + static_cast<std::ptrdiff_t>(whale_pos) + 1,
                  perm.end());
      break;
    }
  }

  std::vector<std::string> new_lines(n);
  std::vector<double> new_costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    new_lines[i] = std::move(lines[perm[i]]);
    new_costs[i] = costs[perm[i]];
  }
  lines = std::move(new_lines);
  costs = std::move(new_costs);
}

}  // namespace

const char* order_pattern_name(OrderPattern order) {
  switch (order) {
    case OrderPattern::kAsGenerated: return "as-generated";
    case OrderPattern::kShuffled: return "shuffled";
    case OrderPattern::kSortedAsc: return "sorted";
    case OrderPattern::kSortedDesc: return "sorted-desc";
    case OrderPattern::kWhaleLast: return "whale-last";
  }
  return "?";
}

std::optional<OrderPattern> order_pattern_from_name(std::string_view name) {
  if (name == "as-generated") return OrderPattern::kAsGenerated;
  if (name == "shuffled") return OrderPattern::kShuffled;
  if (name == "sorted") return OrderPattern::kSortedAsc;
  if (name == "sorted-desc") return OrderPattern::kSortedDesc;
  if (name == "whale-last") return OrderPattern::kWhaleLast;
  return std::nullopt;
}

void GenConfig::validate() const {
  if (count < 1) fail("count", "must be >= 1");
  if (!std::isfinite(zipf_skew) || zipf_skew < 0.0) {
    fail("zipf_skew", "must be finite and >= 0");
  }
  if (!std::isfinite(dup_rate) || dup_rate < 0.0 || dup_rate >= 1.0) {
    fail("dup_rate", "must be in [0, 1)");
  }
  if (!std::isfinite(deadline_rate) || deadline_rate < 0.0 ||
      deadline_rate > 1.0) {
    fail("deadline_rate", "must be in [0, 1]");
  }
  for (const auto& [weight, name] :
       {std::pair{mix.sweep, "mix.sweep"}, {mix.ptrace, "mix.ptrace"},
        {mix.chained, "mix.chained"}, {mix.grid, "mix.grid"}}) {
    if (!std::isfinite(weight) || weight < 0.0) {
      fail(name, "must be finite and >= 0");
    }
  }
  if (mix.sweep + mix.ptrace + mix.chained + mix.grid <= 0.0) {
    fail("mix", "at least one kind weight must be > 0");
  }
  if (core_ladder.empty()) fail("core_ladder", "must not be empty");
  for (const std::size_t cores : core_ladder) {
    if (cores < 2) fail("core_ladder", "entries must be >= 2");
  }
}

GeneratedStream generate_stream(const GenConfig& config) {
  config.validate();

  Rng rng(config.seed);
  const std::vector<double> ladder_cdf =
      zipf_cdf(config.core_ladder.size(), config.zipf_skew);
  const double mix_total = config.mix.sweep + config.mix.ptrace +
                           config.mix.chained + config.mix.grid;
  const double sweep_cut = config.mix.sweep / mix_total;
  const double ptrace_cut = sweep_cut + config.mix.ptrace / mix_total;
  const double chained_cut = ptrace_cut + config.mix.chained / mix_total;

  std::map<std::string, core::SocSpec> socs;
  GeneratedStream stream;
  stream.lines.reserve(config.count);
  stream.costs.reserve(config.count);
  std::vector<RequestKind> kinds;  // per line, for stats
  kinds.reserve(config.count);
  std::vector<char> deadlined;     // per line, for stats
  deadlined.reserve(config.count);

  for (std::size_t i = 0; i < config.count; ++i) {
    if (!stream.lines.empty() && rng.chance(config.dup_rate)) {
      // Verbatim copy, id included: the line is byte-identical to an
      // earlier one, which is exactly what serve's memo keys on.
      const std::size_t source =
          static_cast<std::size_t>(rng.uniform_index(stream.lines.size()));
      stream.lines.push_back(stream.lines[source]);
      stream.costs.push_back(stream.costs[source]);
      kinds.push_back(kinds[source]);
      deadlined.push_back(deadlined[source]);
      ++stream.stats.duplicates;
      continue;
    }
    ScenarioRequest request;
    const double kind_draw = rng.uniform();
    if (kind_draw < sweep_cut) {
      request = make_sweep(rng, config.core_ladder[sample_cdf(rng, ladder_cdf)]);
    } else if (kind_draw < ptrace_cut) {
      request = make_ptrace(rng, socs);
    } else if (kind_draw < chained_cut || config.mix.grid <= 0.0) {
      request = make_chained(rng);
    } else {
      request = make_grid(rng);
    }
    // The outer rate check short-circuits: a deadline_rate of 0 draws
    // NOTHING, so streams from configs predating the knob stay
    // byte-identical (the gen_test golden pins this).
    if (config.deadline_rate > 0.0 && rng.chance(config.deadline_rate)) {
      request.deadline_s =
          rng.chance(0.5) ? kTightDeadlineS : kGenerousDeadlineS;
    }
    deadlined.push_back(request.deadline_s > 0.0 ? 1 : 0);
    request.id = serial_id(stream.stats.fresh);
    stream.lines.push_back(scenario::to_json_line(request));
    stream.costs.push_back(scenario::estimate_request_cost(request));
    kinds.push_back(request.kind);
    ++stream.stats.fresh;
  }

  apply_order(config.order, rng, stream.lines, stream.costs);

  stream.stats.count = stream.lines.size();
  for (const RequestKind kind : kinds) {
    switch (kind) {
      case RequestKind::kStclSweep: ++stream.stats.sweep; break;
      case RequestKind::kPtrace: ++stream.stats.ptrace; break;
      case RequestKind::kChained: ++stream.stats.chained; break;
      case RequestKind::kGridSteady: ++stream.stats.grid; break;
    }
  }
  for (const char flag : deadlined) {
    if (flag != 0) ++stream.stats.deadlined;
  }
  return stream;
}

void write_stream(const GeneratedStream& stream, std::ostream& out) {
  for (const std::string& line : stream.lines) {
    out << line << '\n';
  }
}

}  // namespace thermo::gen
