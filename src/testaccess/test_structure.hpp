// Test-access substrate: derive per-core test lengths (and power) from
// scan-test structural parameters, following the classic SoC test-access
// cost model (Iyengar & Chakrabarty, VTS'01 - reference [4] of the
// paper): a core with p patterns and internal scan chains balanced over
// a TAM (test access mechanism) of width w needs
//
//     cycles(w) = (1 + ceil(f / w)) * p + ceil(f / w)
//
// clock cycles, where f is the core's scan flip-flop count; dividing by
// the scan clock frequency gives the test length in seconds. Wider TAMs
// shorten tests but raise simultaneous switching, so average test power
// is modelled as growing with the effective scan bandwidth.
//
// This substrate lets the scheduler benches operate on structurally
// realistic (rather than fixed 1 s) test sets and exposes the classic
// width/time/power trade-off (examples/tam_exploration).
#pragma once

#include <cstddef>
#include <vector>

#include "core/soc_spec.hpp"

namespace thermo::testaccess {

struct CoreTestStructure {
  std::size_t patterns = 0;     ///< test pattern count p
  std::size_t scan_flops = 0;   ///< scan flip-flops f
  /// Average switching power at 1 bit/cycle of scan bandwidth [W]; the
  /// effective power scales with min(w, f) bits moved per cycle.
  double power_per_bit = 0.05;
};

/// Scan cycles needed at TAM width w (w >= 1).
std::size_t test_cycles(const CoreTestStructure& structure, std::size_t width);

/// Test length in seconds at width w and scan clock `clock_hz`.
double test_length_seconds(const CoreTestStructure& structure,
                           std::size_t width, double clock_hz);

/// Average test power at width w [W]: power_per_bit * min(w, scan_flops),
/// saturating when the TAM is wider than the core's scan structure.
double test_power_watts(const CoreTestStructure& structure, std::size_t width);

/// Builds a schedulable SocSpec from per-core structures: every core is
/// given the same TAM width (uniform-width TAM architecture).
/// `structures` must align with `flp` blocks.
core::SocSpec make_soc_from_structures(
    const floorplan::Floorplan& flp,
    const std::vector<CoreTestStructure>& structures, std::size_t tam_width,
    double clock_hz, const thermal::PackageParams& package);

/// Pareto sweep entry for one core: width vs time vs power.
struct WidthPoint {
  std::size_t width = 0;
  double length_s = 0.0;
  double power_w = 0.0;
};

/// All width points from 1..max_width (inclusive); monotone decreasing
/// in time, increasing in power.
std::vector<WidthPoint> width_sweep(const CoreTestStructure& structure,
                                    std::size_t max_width, double clock_hz);

}  // namespace thermo::testaccess
