#include "testaccess/test_structure.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace thermo::testaccess {

std::size_t test_cycles(const CoreTestStructure& structure,
                        std::size_t width) {
  THERMO_REQUIRE(width >= 1, "TAM width must be at least 1");
  THERMO_REQUIRE(structure.patterns >= 1, "need at least one pattern");
  THERMO_REQUIRE(structure.scan_flops >= 1, "need at least one scan flop");
  const std::size_t scan_cycles =
      (structure.scan_flops + width - 1) / width;  // ceil(f / w)
  return (1 + scan_cycles) * structure.patterns + scan_cycles;
}

double test_length_seconds(const CoreTestStructure& structure,
                           std::size_t width, double clock_hz) {
  THERMO_REQUIRE(clock_hz > 0.0, "clock frequency must be positive");
  return static_cast<double>(test_cycles(structure, width)) / clock_hz;
}

double test_power_watts(const CoreTestStructure& structure,
                        std::size_t width) {
  THERMO_REQUIRE(width >= 1, "TAM width must be at least 1");
  THERMO_REQUIRE(structure.power_per_bit >= 0.0,
                 "power per bit must be non-negative");
  const std::size_t effective = std::min(width, structure.scan_flops);
  return structure.power_per_bit * static_cast<double>(effective);
}

core::SocSpec make_soc_from_structures(
    const floorplan::Floorplan& flp,
    const std::vector<CoreTestStructure>& structures, std::size_t tam_width,
    double clock_hz, const thermal::PackageParams& package) {
  flp.require_valid();
  THERMO_REQUIRE(structures.size() == flp.size(),
                 "one test structure per floorplan block required");

  core::SocSpec soc;
  soc.name = flp.name() + "-tam" + std::to_string(tam_width);
  soc.flp = flp;
  soc.package = package;
  for (const CoreTestStructure& structure : structures) {
    core::CoreTest test;
    test.length = test_length_seconds(structure, tam_width, clock_hz);
    test.power = test_power_watts(structure, tam_width);
    soc.tests.push_back(test);
  }
  soc.validate();
  return soc;
}

std::vector<WidthPoint> width_sweep(const CoreTestStructure& structure,
                                    std::size_t max_width, double clock_hz) {
  THERMO_REQUIRE(max_width >= 1, "max width must be at least 1");
  std::vector<WidthPoint> points;
  points.reserve(max_width);
  for (std::size_t w = 1; w <= max_width; ++w) {
    points.push_back(WidthPoint{w, test_length_seconds(structure, w, clock_hz),
                                test_power_watts(structure, w)});
  }
  return points;
}

}  // namespace thermo::testaccess
