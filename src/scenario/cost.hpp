// Request → cost features: the scenario side of the dispatch layer's
// CostModel. dispatch::CostFeatures is plain numbers on purpose; this
// is the one place that knows how to read them off a ScenarioRequest
// *without building the SoC* — estimation must cost microseconds, it
// runs once per request line before any scheduling starts.
//
// Everything is derived from request fields (plus, for files the
// request *names*, a cached line count — one read per distinct path per
// process, never per request):
//   * node/core counts: exact for the named SoCs (alpha = 15 cores,
//     fig1 = 7, + 10 package nodes — thermal::RCModel::kPackageNodes)
//     and for synthetic (cores field); a `.flp` request's block count is
//     read off the file itself (one non-comment line per block, cached
//     by path), falling back to a fixed moderate guess when the file is
//     unreadable — a wrong count only costs scheduling quality, never
//     correctness;
//   * backend: thermal::resolve_backend over the estimated node count,
//     exactly the resolution the solve will use;
//   * transient steps per oracle call: mean test length / dt (named
//     SoCs ship 1 s tests; synthetic carries its length range);
//   * STCL points: the span's expanded size;
//   * kind ptrace: the oracle-call count is exact — one transient call
//     per trace step (CostFeatures::oracle_calls);
//   * kind chained: a transient single-point run (the chained replay
//     dominates, whatever oracle generated the schedule).
#pragma once

#include "dispatch/cost_model.hpp"
#include "scenario/request.hpp"

namespace thermo::scenario {

/// Cost features of one request (see file comment for the estimates).
dispatch::CostFeatures request_cost_features(const ScenarioRequest& request);

/// model.estimate(request_cost_features(request)) — the score the serve
/// path feeds the ljf work queue.
double estimate_request_cost(const ScenarioRequest& request,
                             const dispatch::CostModel& model = {});

}  // namespace thermo::scenario
