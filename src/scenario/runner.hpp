// ScenarioRunner: lowers parsed ScenarioRequests onto the scheduling
// stack (SoC construction -> shared RCModel -> ThermalAwareScheduler per
// STCL value) and renders machine-readable result records.
//
// Model sharing is the whole point of running scenarios through one
// runner instead of one process each: every request whose SocSelector
// has the same geometry_key() gets the *same* shared RCModel instance,
// so the solver cache (keyed by RCModel::identity(), see
// thermal/solver_cache.hpp) factors each distinct floorplan once per
// batch no matter how many requests — or worker threads — reference it.
// A 100-request Alpha batch performs one Cholesky factorization, not
// 100.
//
// Thread safety: run() is safe to call concurrently (the model cache is
// mutex-guarded; each run builds private analyzers/schedulers), which is
// how serve_stream fans requests across a sweep::ScenarioSweep pool.
// Per-request failures — bad .flp paths, scheduler throws — are captured
// in the result record (`ok:false` + the error message); run() itself
// only propagates non-thermo exceptions (e.g. bad_alloc).
//
// Determinism: a result record depends only on the request content,
// never on thread interleaving or cache state, so a batch's output is
// bit-identical for 1 and N threads (pinned by the serve smoke test and
// bench_serve).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/soc_spec.hpp"
#include "core/stcl_sweep.hpp"
#include "scenario/request.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/rc_model.hpp"

namespace thermo::scenario {

/// Result record for one request; serialized as one JSONL line by
/// to_json (schema in docs/SERVE.md). Points are the same
/// core::StclSweepPoint the `thermosched sweep` path produces — the
/// runner lowers onto core::sweep_stcl rather than reimplementing it.
/// kind == kPtrace: what the trace replay observed.
struct PtraceOutcome {
  std::size_t steps = 0;          ///< trace lines replayed
  double duration = 0.0;          ///< steps * step_duration [s]
  double max_temperature = 0.0;   ///< hottest block across all steps [deg C]
  std::string hottest;            ///< name of that block
};

/// kind == kChained: the schedule plus its chained re-validation.
struct ChainedOutcome {
  double stcl = 0.0;
  double schedule_length = 0.0;   ///< [s]
  std::size_t sessions = 0;
  double effective_tl = 0.0;      ///< after any raise-limit adjustment
  double cooling_gap = 0.0;       ///< [s]
  /// Hottest core under the paper's independent-session assumption (the
  /// scheduler's own oracle, every session starting from ambient)...
  double independent_max = 0.0;
  /// ...and under chained replay with residual heat carry-over. The gap
  /// between the two is the quantity this request kind measures.
  double chained_max = 0.0;
  std::size_t violations = 0;     ///< chained limit violations
  bool safe = true;               ///< no chained violation
};

/// kind == kGridSteady: the fine-grid steady-state solve.
struct GridOutcome {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t nodes = 0;              ///< rows*cols + 10 package nodes
  double max_cell_temperature = 0.0;  ///< hottest cell [deg C]
  double mean_cell_temperature = 0.0; ///< arithmetic mean over cells [deg C]
  double max_block_temperature = 0.0; ///< hottest block's covered-cell max
  std::string hottest;                ///< name of that block
};

struct ScenarioResult {
  std::string id;
  RequestKind kind = RequestKind::kStclSweep;
  bool ok = false;
  std::string error;     ///< set when !ok
  std::string soc_name;  ///< empty when the SoC could not be built
  std::size_t cores = 0;
  /// One point per STCL value, in request order (kind == kStclSweep).
  std::vector<core::StclSweepPoint> points;
  PtraceOutcome ptrace;    ///< kind == kPtrace
  ChainedOutcome chained;  ///< kind == kChained
  GridOutcome grid;        ///< kind == kGridSteady
  /// Total simulated seconds across all points — the paper's effort
  /// metric, and the deterministic "timing" field of the record (wall
  /// time would break 1-vs-N-thread reproducibility; serve reports it
  /// separately in its stderr summary).
  double simulation_effort = 0.0;
};

/// Serializes a result record (canonical member order, deterministic).
JsonValue to_json(const ScenarioResult& result);

class ScenarioRunner {
 public:
  ScenarioRunner() = default;

  /// Executes one request: builds (or reuses) the SoC's RCModel, runs
  /// Algorithm 1 once per STCL value, returns the filled record. Thermo
  /// errors land in the record instead of propagating.
  ScenarioResult run(const ScenarioRequest& request);

  /// Builds the SocSpec a selector describes (validated; power_scale
  /// applied). Throws on invalid selectors, e.g. unreadable .flp files.
  static core::SocSpec build_soc(const SocSelector& selector);

  /// The shared model for a selector's geometry, built on first use.
  /// `soc` must be the selector's build_soc result.
  std::shared_ptr<const thermal::RCModel> model_for(
      const SocSelector& selector, const core::SocSpec& soc);

  /// The shared grid model for (geometry, rows×cols), built on first
  /// use — same LRU discipline as model_for, so repeated grid_steady
  /// requests on one discretisation share one cached sparse factor.
  std::shared_ptr<const thermal::GridThermalModel> grid_model_for(
      const SocSelector& selector, const core::SocSpec& soc,
      const GridSpec& grid);

  struct Stats {
    std::size_t model_hits = 0;    ///< requests that reused a cached model
    std::size_t model_misses = 0;  ///< model builds (distinct geometries + re-builds after eviction)
  };
  Stats stats() const;

  /// Cached-model bound. Like ThermalSolverCache, the cache is capped
  /// so a long-lived runner fed ever-new geometries (synthetic seeds,
  /// .flp paths) cannot grow memory monotonically; the least recently
  /// used geometry is evicted and simply rebuilt if it returns.
  static constexpr std::size_t kMaxCachedModels = 64;

 private:
  struct CachedModel {
    std::shared_ptr<const thermal::RCModel> model;
    std::uint64_t last_used = 0;  ///< LRU stamp (monotonic use counter)
  };
  struct CachedGrid {
    std::shared_ptr<const thermal::GridThermalModel> model;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, CachedModel> models_;
  std::map<std::string, CachedGrid> grids_;
  std::uint64_t use_counter_ = 0;
  Stats stats_;
};

}  // namespace thermo::scenario
