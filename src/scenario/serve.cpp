#include "scenario/serve.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <string>
#include <utility>
#include <vector>

#include "dispatch/disk_result_memo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/cost.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace thermo::scenario {

namespace {

/// One non-blank input line after the parse pass: either a runnable
/// request (id resolved, batch backend default applied) or a ready-made
/// ok:false record. Parsing happens up front on the calling thread —
/// the dispatch engine needs the canonical serialization (the memo's
/// content address) and the cost estimate before placement, and a
/// parse costs microseconds next to a scheduler run.
struct PreparedLine {
  bool valid = false;
  ScenarioRequest request;    ///< when valid
  std::string error_record;   ///< when !valid: the serialized record
  std::string id;             ///< resolved id, for the timing summary
};

PreparedLine prepare_line(const std::string& text, std::size_t line_number,
                          const ServeOptions& options) {
  PreparedLine prepared;
  try {
    prepared.request = parse_request_line(text);
    if (prepared.request.id.empty()) {
      prepared.request.id = "line-" + std::to_string(line_number);
    }
    if (!prepared.request.solver.backend_explicit) {
      prepared.request.solver.backend = options.default_backend;
    }
    prepared.id = prepared.request.id;
    prepared.valid = true;
  } catch (const Error& e) {
    // Malformed JSON or an invalid request body: the record carries the
    // parser's message; the rest of the batch is unaffected. The record
    // depends on the line NUMBER, so it is never memoized (no key).
    ScenarioResult result;
    result.id = "line-" + std::to_string(line_number);
    result.ok = false;
    result.error = e.what();
    prepared.error_record = to_json(result).dump();
    prepared.id = result.id;
  }
  return prepared;
}

/// Whether a serialized result record carries ok:true. Safe on the raw
/// bytes: records are canonically serialized ({"id":…,"ok":…), and the
/// literal `"ok":false` cannot occur inside a JSON string value — the
/// quotes there would be escaped as \" — so the substring test can only
/// match the record's own ok member.
bool record_is_ok(const std::string& record) {
  return record.find("\"ok\":false") == std::string::npos;
}

}  // namespace

ServeSummary serve_stream(std::istream& in, std::ostream& out,
                          ScenarioRunner& runner, const ServeOptions& options) {
  const auto batch_start = std::chrono::steady_clock::now();
  obs::TraceSpan batch_span("serve.batch");
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& requests_metric = registry.counter("scenario.requests");
  static obs::Counter& parse_errors_metric =
      registry.counter("scenario.parse_errors");
  static obs::Histogram& parse_ns = registry.histogram("scenario.parse_ns");

  std::vector<PreparedLine> lines;
  {
    obs::TraceSpan parse_span("serve.parse");
    std::string raw;
    std::size_t number = 0;
    while (std::getline(in, raw)) {
      ++number;
      if (!raw.empty() && raw.back() == '\r') raw.pop_back();  // CRLF input
      if (trim(raw).empty()) continue;
      const obs::ScopedTimer line_timer(parse_ns);
      lines.push_back(prepare_line(raw, number, options));
      if (!lines.back().valid) parse_errors_metric.add();
    }
  }
  const std::size_t n = lines.size();
  requests_metric.add(n);

  // Job descriptions for the engine: the canonical serialization is the
  // memo's content address (identical bytes ⇔ identical record — the
  // id and backend defaults are already resolved above, so two lines
  // that differ only in *those* do not alias). Keys are only
  // serialized when the memo will actually read them. With a calibrator
  // wired in, costs come from its current constants (fitted seconds
  // once warm); placement consumes only their ordering, so a different
  // model can never change output bytes.
  const dispatch::CostModel cost_model = options.calibrator != nullptr
                                             ? options.calibrator->model()
                                             : dispatch::CostModel();
  const bool calibration_active =
      options.calibrator != nullptr && options.calibrator->ready();
  std::vector<dispatch::Job> jobs(n);
  std::vector<dispatch::CostFeatures> features(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (lines[i].valid) {
      if (options.dedup) {
        // The memo key strips the SLO envelope: deadline/priority only
        // say how urgently to serve, the record is identical — two
        // requests differing only there must share one cache entry.
        ScenarioRequest keyed = lines[i].request;
        keyed.deadline_s = 0.0;
        keyed.priority = 1.0;
        jobs[i].memo_key = to_json_line(keyed);
      }
      features[i] = request_cost_features(lines[i].request);
      jobs[i].cost = cost_model.estimate(features[i]);
      jobs[i].deadline = lines[i].request.deadline_s > 0.0
                             ? lines[i].request.deadline_s
                             : dispatch::kNoDeadline;
      jobs[i].priority = lines[i].request.priority;
    }
  }

  ServeSummary summary;
  summary.requests = n;
  summary.policy = options.policy;
  summary.dedup = options.dedup;

  // ok/failed are tallied as records stream out (memoized records never
  // pass through ScenarioResult, so the writer is the one place every
  // record crosses).
  std::vector<int> ok_flags(n, 0);
  dispatch::OrderedWriter writer(
      out, n, [&](std::size_t index, const std::string& record) {
        ok_flags[index] = record_is_ok(record) ? 1 : 0;
      });

  dispatch::EngineOptions engine_options;
  engine_options.threads = options.threads;
  engine_options.policy = options.policy;
  engine_options.dedup = options.dedup;
  engine_options.memo = options.memo;
  const std::size_t disk_hits_before =
      options.disk_memo != nullptr ? options.disk_memo->disk_hits() : 0;
  if (options.disk_memo != nullptr) engine_options.memo = options.disk_memo;
  const dispatch::EngineStats stats = dispatch::run_batch(
      jobs,
      [&](std::size_t i) {
        if (!lines[i].valid) return lines[i].error_record;
        return to_json(runner.run(lines[i].request)).dump();
      },
      writer, engine_options);

  summary.threads = stats.threads;
  summary.makespan_seconds = stats.makespan_seconds;
  summary.executed = stats.executed;
  summary.memo_hits = stats.memo_hits;
  summary.max_buffered = stats.max_buffered;
  summary.request_timings.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    RequestTiming& timing = summary.request_timings[i];
    timing.id = lines[i].id;
    timing.ok = ok_flags[i] != 0;
    timing.memo_hit = stats.timings[i].memo_hit;
    timing.cost = jobs[i].cost;
    timing.wall_seconds = stats.timings[i].wall_seconds;
    timing.cpu_seconds = stats.timings[i].cpu_seconds;
    timing.queue_wait_seconds = stats.timings[i].wait_seconds;
    timing.done_seconds = stats.timings[i].done_seconds;
    if (lines[i].valid && lines[i].request.deadline_s > 0.0) {
      timing.deadline_s = lines[i].request.deadline_s;
      timing.deadline_met = timing.done_seconds <= timing.deadline_s;
      ++summary.deadline_requests;
      if (timing.deadline_met) {
        ++summary.deadline_met;
      } else {
        ++summary.deadline_missed;
      }
    }
    if (timing.ok) {
      ++summary.succeeded;
    } else {
      ++summary.failed;
    }
  }

  if (options.calibrator != nullptr) {
    summary.calibration_enabled = true;
    summary.calibration_active = calibration_active;
    // Close the loop: fold this batch's executed ok requests back into
    // the fit (memo hits carry no measurement; failed records measure
    // error-path time, not scenario cost), then score the fixed
    // constants against the post-batch fit on the same jobs.
    std::vector<std::size_t> observed;
    for (std::size_t i = 0; i < n; ++i) {
      if (lines[i].valid && !stats.timings[i].memo_hit && ok_flags[i] != 0) {
        options.calibrator->observe(features[i], stats.timings[i].wall_seconds);
        observed.push_back(i);
      }
    }
    summary.calibration_samples = options.calibrator->samples();
    const dispatch::CostModel fixed_model;
    const dispatch::CostModel fitted_model = options.calibrator->model();
    std::vector<double> fixed_estimates, fitted_estimates, measured;
    fixed_estimates.reserve(observed.size());
    fitted_estimates.reserve(observed.size());
    measured.reserve(observed.size());
    for (const std::size_t i : observed) {
      fixed_estimates.push_back(fixed_model.estimate(features[i]));
      fitted_estimates.push_back(fitted_model.estimate(features[i]));
      measured.push_back(stats.timings[i].wall_seconds);
    }
    summary.fixed_error =
        dispatch::median_relative_error(fixed_estimates, measured);
    summary.calibrated_error =
        dispatch::median_relative_error(fitted_estimates, measured);
  }
  if (options.disk_memo != nullptr && options.dedup) {
    summary.disk_cache_enabled = true;
    summary.disk_hits = options.disk_memo->disk_hits() - disk_hits_before;
    const persist::SegmentStore::Stats disk =
        options.disk_memo->store().stats();
    summary.disk_records = disk.records;
    summary.disk_segments = disk.segments;
    summary.disk_bytes = disk.disk_bytes;
  }
  summary.runner = runner.stats();
  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    batch_start)
          .count();
  return summary;
}

JsonValue serve_summary_to_json(const ServeSummary& summary) {
  JsonValue out = JsonValue::object();
  out.set("schema", JsonValue::string("thermo.serve_summary.v1"));
  out.set("requests",
          JsonValue::number(static_cast<double>(summary.requests)));
  out.set("ok", JsonValue::number(static_cast<double>(summary.succeeded)));
  out.set("failed", JsonValue::number(static_cast<double>(summary.failed)));
  out.set("threads", JsonValue::number(static_cast<double>(summary.threads)));
  out.set("policy",
          JsonValue::string(dispatch::schedule_policy_name(summary.policy)));
  out.set("dedup", JsonValue::boolean(summary.dedup));
  out.set("wall_s", JsonValue::number(summary.wall_seconds));
  out.set("makespan_s", JsonValue::number(summary.makespan_seconds));
  out.set("max_buffered",
          JsonValue::number(static_cast<double>(summary.max_buffered)));

  JsonValue memo = JsonValue::object();
  memo.set("executed",
           JsonValue::number(static_cast<double>(summary.executed)));
  memo.set("hits", JsonValue::number(static_cast<double>(summary.memo_hits)));
  memo.set("hit_rate",
           JsonValue::number(summary.requests > 0
                                 ? static_cast<double>(summary.memo_hits) /
                                       static_cast<double>(summary.requests)
                                 : 0.0));
  out.set("memo", std::move(memo));

  // SLO scoreboard: requests carrying a deadline_s, split by whether
  // their record existed within it (additive to schema v1 — consumers
  // that predate deadlines never see a changed field).
  JsonValue slo = JsonValue::object();
  slo.set("deadline_requests",
          JsonValue::number(static_cast<double>(summary.deadline_requests)));
  slo.set("met", JsonValue::number(static_cast<double>(summary.deadline_met)));
  slo.set("missed",
          JsonValue::number(static_cast<double>(summary.deadline_missed)));
  out.set("slo", std::move(slo));

  // Cost-model calibration. `enabled` mirrors --calibrate; `active`
  // says placement actually used fitted constants (kMinSamples reached
  // before this batch); the two errors compare the hand-tuned defaults
  // to the post-batch fit on this batch's executed requests.
  JsonValue calibration = JsonValue::object();
  calibration.set("enabled", JsonValue::boolean(summary.calibration_enabled));
  if (summary.calibration_enabled) {
    calibration.set("active", JsonValue::boolean(summary.calibration_active));
    calibration.set(
        "samples",
        JsonValue::number(static_cast<double>(summary.calibration_samples)));
    calibration.set("fixed_error", JsonValue::number(summary.fixed_error));
    calibration.set("calibrated_error",
                    JsonValue::number(summary.calibrated_error));
  }
  out.set("calibration", std::move(calibration));

  // Disk tier of the memo (serve --cache-dir). `enabled` is always
  // present so consumers can branch without probing for keys; counts
  // appear only when a disk cache actually served the batch.
  JsonValue disk_cache = JsonValue::object();
  disk_cache.set("enabled", JsonValue::boolean(summary.disk_cache_enabled));
  if (summary.disk_cache_enabled) {
    disk_cache.set("hits",
                   JsonValue::number(static_cast<double>(summary.disk_hits)));
    disk_cache.set(
        "records", JsonValue::number(static_cast<double>(summary.disk_records)));
    disk_cache.set(
        "segments",
        JsonValue::number(static_cast<double>(summary.disk_segments)));
    disk_cache.set("disk_bytes",
                   JsonValue::number(static_cast<double>(summary.disk_bytes)));
  }
  out.set("disk_cache", std::move(disk_cache));

  JsonValue model_cache = JsonValue::object();
  model_cache.set("hits", JsonValue::number(
                              static_cast<double>(summary.runner.model_hits)));
  model_cache.set(
      "misses",
      JsonValue::number(static_cast<double>(summary.runner.model_misses)));
  out.set("model_cache", std::move(model_cache));

  // Tail latency over the per-request wall times: the slowest request
  // and the p95 — the numbers the scheduling policy exists to improve.
  JsonValue tail = JsonValue::object();
  std::string slowest_id;
  double slowest_wall = 0.0;
  std::vector<double> walls;
  walls.reserve(summary.request_timings.size());
  for (const RequestTiming& timing : summary.request_timings) {
    walls.push_back(timing.wall_seconds);
    if (timing.wall_seconds > slowest_wall) {
      slowest_wall = timing.wall_seconds;
      slowest_id = timing.id;
    }
  }
  double p95 = 0.0;
  if (!walls.empty()) {
    std::sort(walls.begin(), walls.end());
    const std::size_t rank = (walls.size() * 95 + 99) / 100;  // ceil(0.95 n)
    p95 = walls[rank == 0 ? 0 : rank - 1];
  }
  tail.set("slowest_id", JsonValue::string(slowest_id));
  tail.set("slowest_wall_s", JsonValue::number(slowest_wall));
  tail.set("p95_wall_s", JsonValue::number(p95));
  out.set("tail", std::move(tail));

  JsonValue timings = JsonValue::array();
  for (const RequestTiming& timing : summary.request_timings) {
    JsonValue t = JsonValue::object();
    t.set("id", JsonValue::string(timing.id));
    t.set("ok", JsonValue::boolean(timing.ok));
    t.set("memo_hit", JsonValue::boolean(timing.memo_hit));
    t.set("cost", JsonValue::number(timing.cost));
    t.set("wall_s", JsonValue::number(timing.wall_seconds));
    t.set("cpu_s", JsonValue::number(timing.cpu_seconds));
    t.set("queue_wait_s", JsonValue::number(timing.queue_wait_seconds));
    t.set("done_s", JsonValue::number(timing.done_seconds));
    if (timing.deadline_s > 0.0) {
      t.set("deadline_s", JsonValue::number(timing.deadline_s));
      t.set("deadline_met", JsonValue::boolean(timing.deadline_met));
    }
    timings.append(std::move(t));
  }
  out.set("request_timings", std::move(timings));

  // Process-wide metrics snapshot (additive to schema v1): the obs
  // registry's counters/gauges/histograms at dump time. Counters are
  // process totals — in a one-shot `thermosched serve` they equal this
  // batch's stats exactly (bench_obs cross-checks that).
  out.set("metrics", obs::MetricsRegistry::instance().to_json());
  return out;
}

}  // namespace thermo::scenario
