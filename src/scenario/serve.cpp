#include "scenario/serve.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sweep/scenario_sweep.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace thermo::scenario {

namespace {

struct InputLine {
  std::string text;
  std::size_t number = 0;  ///< 1-based line number in the input stream
};

struct LineOutcome {
  std::string record;  ///< serialized JSONL result line
  int ok = 0;          ///< int, not bool: vector<bool> slots race (sweep)
};

LineOutcome process_line(const InputLine& line, ScenarioRunner& runner,
                         const ServeOptions& options) {
  ScenarioResult result;
  try {
    ScenarioRequest request = parse_request_line(line.text);
    if (request.id.empty()) {
      request.id = "line-" + std::to_string(line.number);
    }
    if (!request.solver.backend_explicit) {
      request.solver.backend = options.default_backend;
    }
    result = runner.run(request);
  } catch (const Error& e) {
    // Malformed JSON or an invalid request body: the record carries the
    // parser's message; the rest of the batch is unaffected.
    result.id = "line-" + std::to_string(line.number);
    result.ok = false;
    result.error = e.what();
  }
  return LineOutcome{to_json(result).dump(), result.ok ? 1 : 0};
}

}  // namespace

ServeSummary serve_stream(std::istream& in, std::ostream& out,
                          ScenarioRunner& runner, const ServeOptions& options) {
  std::vector<InputLine> lines;
  std::string raw;
  std::size_t number = 0;
  while (std::getline(in, raw)) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();  // CRLF input
    if (trim(raw).empty()) continue;
    lines.push_back(InputLine{raw, number});
  }

  sweep::SweepOptions sweep_options;
  sweep_options.threads = options.threads;
  const sweep::ScenarioSweep sweeper(sweep_options);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<LineOutcome> outcomes = sweeper.map(
      lines.size(),
      [&](std::size_t i) { return process_line(lines[i], runner, options); });
  const auto stop = std::chrono::steady_clock::now();

  ServeSummary summary;
  summary.requests = lines.size();
  summary.threads = sweeper.thread_count();
  summary.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  for (const LineOutcome& outcome : outcomes) {
    out << outcome.record << '\n';
    if (outcome.ok != 0) {
      ++summary.succeeded;
    } else {
      ++summary.failed;
    }
  }
  summary.runner = runner.stats();
  return summary;
}

}  // namespace thermo::scenario
