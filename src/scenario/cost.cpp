#include "scenario/cost.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "thermal/backend.hpp"
#include "thermal/rc_model.hpp"

namespace thermo::scenario {

namespace {

/// Fallback block count when a `.flp` file cannot be read at estimation
/// time (the run itself will fail loudly later; the estimate just needs
/// *a* rank). Mid-sized is the safe wrong answer — a misranked .flp job
/// degrades ljf toward fifo, nothing more.
constexpr std::size_t kFlpCoreGuess = 40;

/// True when the line still has content after stripping a '#' comment
/// and whitespace — exactly the lines flp_io/ptrace_io parse.
bool content_line(const std::string& line) {
  std::size_t end = line.find('#');
  if (end == std::string::npos) end = line.size();
  return line.find_first_not_of(" \t\r\n", 0) < end;
}

std::size_t count_content_lines(std::istream& in) {
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (content_line(line)) ++count;
  }
  return count;
}

/// Content lines of a file, cached by path. Estimation runs once per
/// request line, so a 10k-request batch naming the same .flp/.ptrace
/// must not read it 10k times; the cache is process-lifetime (paths in
/// a batch are assumed stable while it runs, same contract as the
/// runner's model cache).
std::size_t cached_file_content_lines(const std::string& path) {
  static std::mutex mutex;
  static std::map<std::string, std::size_t> cache;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(path);
    if (it != cache.end()) return it->second;
  }
  std::size_t count = 0;
  std::ifstream in(path);
  if (in) count = count_content_lines(in);
  const std::lock_guard<std::mutex> lock(mutex);
  return cache.emplace(path, count).first->second;
}

/// Block count of a `.flp` request read from the file itself (one
/// non-comment line per block), replacing the old fixed guess; the
/// guess survives only as the unreadable-file fallback.
std::size_t flp_block_count(const std::string& path) {
  const std::size_t count = cached_file_content_lines(path);
  return count > 0 ? count : kFlpCoreGuess;
}

std::size_t estimated_cores(const SocSelector& soc) {
  switch (soc.kind) {
    case SocKind::kAlpha: return 15;
    case SocKind::kFig1: return 7;
    case SocKind::kSynthetic: return soc.synthetic.cores;
    case SocKind::kFlp: return flp_block_count(soc.flp_path);
  }
  return kFlpCoreGuess;
}

double mean_test_length(const SocSelector& soc) {
  if (soc.kind == SocKind::kSynthetic) {
    return 0.5 * (soc.synthetic.test_length_min + soc.synthetic.test_length_max);
  }
  return 1.0;  // the named SoCs ship 1 s tests (docs/ARCHITECTURE.md)
}

/// Trace steps of a ptrace request: content lines minus the unit-name
/// header. Inline text is counted directly; a path goes through the
/// file cache. Never returns 0 — an unreadable trace still needs a rank.
std::size_t ptrace_step_count(const PtraceSpec& ptrace) {
  std::size_t lines = 0;
  if (!ptrace.text.empty()) {
    std::istringstream in(ptrace.text);
    lines = count_content_lines(in);
  } else {
    lines = cached_file_content_lines(ptrace.path);
  }
  return std::max<std::size_t>(lines, 2) - 1;
}

}  // namespace

dispatch::CostFeatures request_cost_features(const ScenarioRequest& request) {
  dispatch::CostFeatures features;
  features.cores = estimated_cores(request.soc);
  // A grid request's model size is the discretisation, not the core
  // count: rows·cols cells + the 10 package nodes. That is exactly the
  // request shape (no estimate needed) and is what makes a 317×317 grid
  // solve rank as the whale it is.
  features.nodes = request.kind == RequestKind::kGridSteady
                       ? request.grid.rows * request.grid.cols + 10
                       : features.cores + thermal::RCModel::kPackageNodes;
  features.sparse =
      thermal::resolve_backend(request.solver.backend, features.nodes) ==
      thermal::SolverBackend::kSparse;
  // Post-ordering fill model for the sparse back-substitution term
  // (docs/SOLVERS.md "Ordering"); estimate() would apply the same
  // default, set explicitly here so the feature record is complete.
  features.solve_nnz = dispatch::predicted_factor_nnz(features.nodes);
  switch (request.kind) {
    case RequestKind::kStclSweep:
      features.transient = request.solver.transient;
      features.steps_per_call =
          request.solver.transient
              ? mean_test_length(request.soc) / request.solver.dt
              : 0.0;
      features.stcl_points = request.stcl.values().size();
      break;
    case RequestKind::kPtrace:
      // Replay is exactly one transient call per trace step, each
      // integrating step_duration seconds — the request shape gives the
      // oracle-call count up front, no Algorithm 1 estimate needed.
      features.transient = true;
      features.steps_per_call =
          std::max(1.0, request.ptrace.step_duration / request.solver.dt);
      features.stcl_points = 1;
      features.oracle_calls =
          static_cast<double>(ptrace_step_count(request.ptrace));
      break;
    case RequestKind::kChained:
      // Schedule generation at one STCL point plus a transient chained
      // replay of every committed session; the replay dominates, so the
      // features are those of a transient single-point run even when the
      // scheduling oracle itself is steady-state.
      features.transient = true;
      features.steps_per_call =
          mean_test_length(request.soc) / request.solver.dt;
      features.stcl_points = 1;
      break;
    case RequestKind::kGridSteady:
      // One steady-state solve of the rows·cols grid: a single oracle
      // call, no transient stepping. The cold factorization is folded
      // into the per-call term by calibration.
      features.transient = false;
      features.steps_per_call = 0.0;
      features.stcl_points = 1;
      features.oracle_calls = 1.0;
      break;
  }
  return features;
}

double estimate_request_cost(const ScenarioRequest& request,
                             const dispatch::CostModel& model) {
  return model.estimate(request_cost_features(request));
}

}  // namespace thermo::scenario
