#include "scenario/cost.hpp"

#include "thermal/backend.hpp"
#include "thermal/rc_model.hpp"

namespace thermo::scenario {

namespace {

/// Block count guess for a `.flp` request: counting the real blocks
/// would need file I/O per line. Mid-sized is the safe wrong answer —
/// a misranked .flp job degrades ljf toward fifo, nothing more.
constexpr std::size_t kFlpCoreGuess = 40;

std::size_t estimated_cores(const SocSelector& soc) {
  switch (soc.kind) {
    case SocKind::kAlpha: return 15;
    case SocKind::kFig1: return 7;
    case SocKind::kSynthetic: return soc.synthetic.cores;
    case SocKind::kFlp: return kFlpCoreGuess;
  }
  return kFlpCoreGuess;
}

double mean_test_length(const SocSelector& soc) {
  if (soc.kind == SocKind::kSynthetic) {
    return 0.5 * (soc.synthetic.test_length_min + soc.synthetic.test_length_max);
  }
  return 1.0;  // the named SoCs ship 1 s tests (docs/ARCHITECTURE.md)
}

}  // namespace

dispatch::CostFeatures request_cost_features(const ScenarioRequest& request) {
  dispatch::CostFeatures features;
  features.cores = estimated_cores(request.soc);
  features.nodes = features.cores + thermal::RCModel::kPackageNodes;
  features.sparse =
      thermal::resolve_backend(request.solver.backend, features.nodes) ==
      thermal::SolverBackend::kSparse;
  features.transient = request.solver.transient;
  features.steps_per_call =
      request.solver.transient
          ? mean_test_length(request.soc) / request.solver.dt
          : 0.0;
  features.stcl_points = request.stcl.values().size();
  return features;
}

double estimate_request_cost(const ScenarioRequest& request,
                             const dispatch::CostModel& model) {
  return model.estimate(request_cost_features(request));
}

}  // namespace thermo::scenario
