#include "scenario/demo.hpp"

#include "util/rng.hpp"

namespace thermo::scenario {

std::vector<ScenarioRequest> demo_batch(std::size_t count,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ScenarioRequest> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ScenarioRequest request;
    request.id = "demo-" + std::to_string(i);
    request.tl = 145.0 + 5.0 * static_cast<double>(i % 5);  // 145..165

    switch (i % 5) {
      case 0:  // Alpha at one STCL value
        request.soc.kind = SocKind::kAlpha;
        request.stcl.min = request.stcl.max =
            30.0 + 10.0 * static_cast<double>(i % 7);
        break;
      case 1:  // the Fig.1 motivating SoC
        request.soc.kind = SocKind::kFig1;
        request.stcl.min = request.stcl.max = 50.0;
        break;
      case 2:  // synthetic SoC, varying size and seed
        request.soc.kind = SocKind::kSynthetic;
        request.soc.synthetic.seed = rng.next_u64() >> 12;
        request.soc.synthetic.cores = 8 + i % 6;
        request.stcl.min = request.stcl.max = 40.0;
        break;
      case 3:  // Alpha across a small STCL range
        request.soc.kind = SocKind::kAlpha;
        request.stcl.min = 30.0;
        request.stcl.max = 60.0;
        request.stcl.step = 15.0;
        break;
      default:  // synthetic at a shifted power corner
        request.soc.kind = SocKind::kSynthetic;
        request.soc.synthetic.seed = rng.next_u64() >> 12;
        request.soc.synthetic.cores = 10;
        request.soc.power_scale = 0.8 + 0.4 * rng.uniform();
        request.stcl.min = request.stcl.max = 60.0;
        break;
    }

    // The steady-state oracle keeps big batches cheap; every tenth
    // request exercises the transient path (coarse dt — it is the code
    // path we want covered, not fine-grained integration).
    if (i % 10 == 9) {
      request.solver.transient = true;
      request.solver.dt = 1e-2;
    } else {
      request.solver.transient = false;
    }
    batch.push_back(std::move(request));
  }
  return batch;
}

}  // namespace thermo::scenario
