#include "scenario/request.hpp"

#include <cmath>

#include "core/stcl_sweep.hpp"
#include "util/error.hpp"

namespace thermo::scenario {

namespace {

/// Largest STCL range a single request may expand to. A serve batch
/// should stay a batch of bounded work items; bigger scans belong in
/// multiple requests.
constexpr std::size_t kMaxStclPoints = 10000;

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  const std::string where = path.empty() ? "" : path + ": ";
  throw InvalidArgument("scenario request: " + where + message);
}

double require_number(const JsonValue& v, const std::string& path) {
  if (!v.is_number()) {
    fail(path, std::string("expected a number, got ") + v.type_name());
  }
  return v.as_number();
}

std::string require_string(const JsonValue& v, const std::string& path) {
  if (!v.is_string()) {
    fail(path, std::string("expected a string, got ") + v.type_name());
  }
  return v.as_string();
}

bool require_bool(const JsonValue& v, const std::string& path) {
  if (!v.is_bool()) {
    fail(path, std::string("expected a bool, got ") + v.type_name());
  }
  return v.as_bool();
}

double positive_number(const JsonValue& v, const std::string& path) {
  const double value = require_number(v, path);
  if (!std::isfinite(value) || value <= 0.0) {
    fail(path, "must be finite and > 0");
  }
  return value;
}

std::uint64_t require_integer(const JsonValue& v, const std::string& path,
                              std::uint64_t min_value) {
  const double value = require_number(v, path);
  if (!std::isfinite(value) || value != std::floor(value) || value < 0.0 ||
      value > 9.007199254740992e15) {  // 2^53: exactly representable range
    fail(path, "must be a non-negative integer");
  }
  const auto integer = static_cast<std::uint64_t>(value);
  if (integer < min_value) {
    fail(path, "must be an integer >= " + std::to_string(min_value));
  }
  return integer;
}

RequestKind parse_request_kind(const JsonValue& v) {
  const std::string name = require_string(v, "kind");
  if (name == "stcl_sweep") return RequestKind::kStclSweep;
  if (name == "ptrace") return RequestKind::kPtrace;
  if (name == "chained") return RequestKind::kChained;
  if (name == "grid_steady") return RequestKind::kGridSteady;
  fail("kind",
       "unknown kind '" + name +
           "' (expected 'stcl_sweep', 'ptrace', 'chained', or 'grid_steady')");
}

/// The Algorithm 1 knobs (tl, stcl, weighting, ordering) only make sense
/// when a schedule is being generated — every kind except ptrace replay
/// and the grid oracle.
void require_scheduling_kind(RequestKind kind, const std::string& path) {
  if (kind == RequestKind::kPtrace || kind == RequestKind::kGridSteady) {
    fail(path, std::string("not valid for kind '") + request_kind_name(kind) +
                   "'");
  }
}

GridSpec parse_grid(const JsonValue& v) {
  if (!v.is_object()) {
    fail("grid", std::string("expected an object, got ") + v.type_name());
  }
  GridSpec spec;
  for (const auto& [key, value] : v.members()) {
    const std::string path = "grid." + key;
    if (key == "rows") {
      spec.rows = static_cast<std::size_t>(require_integer(value, path, 2));
    } else if (key == "cols") {
      spec.cols = static_cast<std::size_t>(require_integer(value, path, 2));
    } else {
      fail("grid", "unknown field '" + key + "'");
    }
  }
  if (spec.rows > kMaxGridSide || spec.cols > kMaxGridSide) {
    fail("grid", "rows and cols must be <= " + std::to_string(kMaxGridSide));
  }
  return spec;
}

PtraceSpec parse_ptrace(const JsonValue& v) {
  if (!v.is_object()) {
    fail("ptrace", std::string("expected an object, got ") + v.type_name());
  }
  PtraceSpec spec;
  for (const auto& [key, value] : v.members()) {
    const std::string path = "ptrace." + key;
    if (key == "path") {
      spec.path = require_string(value, path);
      if (spec.path.empty()) fail(path, "must be a non-empty path");
    } else if (key == "text") {
      spec.text = require_string(value, path);
      if (spec.text.empty()) fail(path, "must be non-empty ptrace content");
    } else if (key == "step_duration") {
      spec.step_duration = positive_number(value, path);
    } else {
      fail("ptrace", "unknown field '" + key + "'");
    }
  }
  if (spec.path.empty() == spec.text.empty()) {
    fail("ptrace", "exactly one of path or text is required");
  }
  return spec;
}

ChainedSpec parse_chained(const JsonValue& v) {
  if (!v.is_object()) {
    fail("chained", std::string("expected an object, got ") + v.type_name());
  }
  ChainedSpec spec;
  for (const auto& [key, value] : v.members()) {
    const std::string path = "chained." + key;
    if (key == "cooling_gap") {
      const double gap = require_number(value, path);
      if (!std::isfinite(gap) || gap < 0.0) {
        fail(path, "must be finite and >= 0");
      }
      spec.cooling_gap = gap;
    } else {
      fail("chained", "unknown field '" + key + "'");
    }
  }
  return spec;
}

SocKind parse_soc_kind(const JsonValue& v) {
  const std::string name = require_string(v, "soc.kind");
  if (name == "alpha") return SocKind::kAlpha;
  if (name == "fig1") return SocKind::kFig1;
  if (name == "synthetic") return SocKind::kSynthetic;
  if (name == "flp") return SocKind::kFlp;
  fail("soc.kind", "unknown SoC kind '" + name +
                       "' (expected 'alpha', 'fig1', 'synthetic', or 'flp')");
}

void parse_synthetic_field(SyntheticSpec& syn, const std::string& key,
                           const JsonValue& value, const std::string& path) {
  if (key == "seed") {
    syn.seed = require_integer(value, path, 0);
  } else if (key == "cores") {
    syn.cores = static_cast<std::size_t>(require_integer(value, path, 1));
  } else if (key == "chip_width") {
    syn.chip_width = positive_number(value, path);
  } else if (key == "chip_height") {
    syn.chip_height = positive_number(value, path);
  } else if (key == "power_density_min") {
    syn.power_density_min = positive_number(value, path);
  } else if (key == "power_density_max") {
    syn.power_density_max = positive_number(value, path);
  } else if (key == "test_length_min") {
    syn.test_length_min = positive_number(value, path);
  } else {
    syn.test_length_max = positive_number(value, path);
  }
}

SocSelector parse_soc(const JsonValue& v) {
  if (!v.is_object()) {
    fail("soc", std::string("expected an object, got ") + v.type_name());
  }
  SocSelector soc;
  if (const JsonValue* kind = v.find("kind")) {
    soc.kind = parse_soc_kind(*kind);
  }
  for (const auto& [key, value] : v.members()) {
    const std::string path = "soc." + key;
    if (key == "kind") {
      continue;  // handled above, before kind-specific fields
    } else if (key == "power_scale") {
      soc.power_scale = positive_number(value, path);
    } else if (key == "path") {
      if (soc.kind != SocKind::kFlp) {
        fail(path, "only valid for kind 'flp'");
      }
      soc.flp_path = require_string(value, path);
      if (soc.flp_path.empty()) fail(path, "must be a non-empty path");
    } else if (key == "density") {
      if (soc.kind != SocKind::kFlp) {
        fail(path, "only valid for kind 'flp'");
      }
      soc.flp_density = positive_number(value, path);
    } else if (key == "seed" || key == "cores" || key == "chip_width" ||
               key == "chip_height" || key == "power_density_min" ||
               key == "power_density_max" || key == "test_length_min" ||
               key == "test_length_max") {
      if (soc.kind != SocKind::kSynthetic) {
        fail(path, "only valid for kind 'synthetic'");
      }
      parse_synthetic_field(soc.synthetic, key, value, path);
    } else {
      fail(path, "unknown field '" + key + "'");
    }
  }
  if (soc.kind == SocKind::kFlp && soc.flp_path.empty()) {
    fail("soc.path", "required for kind 'flp'");
  }
  if (soc.kind == SocKind::kSynthetic) {
    if (soc.synthetic.power_density_max < soc.synthetic.power_density_min) {
      fail("soc.power_density_max", "must be >= power_density_min");
    }
    if (soc.synthetic.test_length_max < soc.synthetic.test_length_min) {
      fail("soc.test_length_max", "must be >= test_length_min");
    }
  }
  return soc;
}

StclSpan parse_stcl(const JsonValue& v) {
  StclSpan span;
  if (v.is_number()) {
    const double value = v.as_number();
    if (!std::isfinite(value) || value <= 0.0) {
      fail("stcl", "must be finite and > 0");
    }
    span.min = span.max = value;
    return span;
  }
  if (!v.is_object()) {
    fail("stcl", std::string("expected a number or an object with "
                             "min/max/step, got ") +
                     v.type_name());
  }
  for (const auto& [key, value] : v.members()) {
    const std::string path = "stcl." + key;
    if (key == "min") {
      span.min = require_number(value, path);
      if (!std::isfinite(span.min) || span.min <= 0.0) {
        fail(path, "must be finite and > 0");
      }
    } else if (key == "max") {
      span.max = require_number(value, path);
      if (!std::isfinite(span.max) || span.max <= 0.0) {
        fail(path, "must be finite and > 0");
      }
    } else if (key == "step") {
      span.step = require_number(value, path);
      if (!std::isfinite(span.step) || span.step <= 0.0) {
        fail(path, "must be finite and > 0");
      }
    } else {
      fail("stcl", "unknown field '" + key + "'");
    }
  }
  if (v.find("min") == nullptr || v.find("max") == nullptr) {
    fail("stcl", "an stcl object requires both min and max");
  }
  if (span.max < span.min) {
    fail("stcl", "max must be >= min");
  }
  if ((span.max - span.min) / span.step + 1.0 >
      static_cast<double>(kMaxStclPoints)) {
    fail("stcl", "range would expand to more than " +
                     std::to_string(kMaxStclPoints) + " points");
  }
  return span;
}

core::SoloViolationPolicy parse_solo_policy(const JsonValue& v) {
  const std::string name = require_string(v, "solo_policy");
  if (name == "throw") return core::SoloViolationPolicy::kThrow;
  if (name == "raise-limit") return core::SoloViolationPolicy::kRaiseLimit;
  if (name == "exclude") return core::SoloViolationPolicy::kExclude;
  fail("solo_policy", "unknown policy '" + name +
                          "' (expected 'throw', 'raise-limit', or 'exclude')");
}

const char* solo_policy_name(core::SoloViolationPolicy policy) {
  switch (policy) {
    case core::SoloViolationPolicy::kThrow: return "throw";
    case core::SoloViolationPolicy::kRaiseLimit: return "raise-limit";
    case core::SoloViolationPolicy::kExclude: return "exclude";
  }
  return "?";
}

core::CoreOrder parse_core_order(const JsonValue& v) {
  const std::string name = require_string(v, "core_order");
  if (name == "input") return core::CoreOrder::kInputOrder;
  if (name == "desc-power") return core::CoreOrder::kDescendingPower;
  if (name == "desc-solo-tc") return core::CoreOrder::kDescendingSoloTc;
  if (name == "asc-solo-tc") return core::CoreOrder::kAscendingSoloTc;
  fail("core_order",
       "unknown order '" + name +
           "' (expected 'input', 'desc-power', 'desc-solo-tc', or "
           "'asc-solo-tc')");
}

const char* core_order_name(core::CoreOrder order) {
  switch (order) {
    case core::CoreOrder::kInputOrder: return "input";
    case core::CoreOrder::kDescendingPower: return "desc-power";
    case core::CoreOrder::kDescendingSoloTc: return "desc-solo-tc";
    case core::CoreOrder::kAscendingSoloTc: return "asc-solo-tc";
  }
  return "?";
}

thermal::SolverBackend parse_backend(const JsonValue& v,
                                     const std::string& path) {
  const std::string name = require_string(v, path);
  const auto backend = thermal::solver_backend_from_name(name);
  if (!backend) {
    fail(path, "unknown backend '" + name +
                   "' (expected 'dense', 'sparse', or 'auto')");
  }
  return *backend;
}

SolverSpec parse_solver(const JsonValue& v) {
  if (!v.is_object()) {
    fail("solver", std::string("expected an object, got ") + v.type_name());
  }
  SolverSpec solver;
  for (const auto& [key, value] : v.members()) {
    const std::string path = "solver." + key;
    if (key == "dt") {
      solver.dt = positive_number(value, path);
    } else if (key == "transient") {
      solver.transient = require_bool(value, path);
    } else if (key == "backend") {
      solver.backend = parse_backend(value, path);
      solver.backend_explicit = true;
    } else {
      fail("solver", "unknown field '" + key + "'");
    }
  }
  return solver;
}

}  // namespace

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kStclSweep: return "stcl_sweep";
    case RequestKind::kPtrace: return "ptrace";
    case RequestKind::kChained: return "chained";
    case RequestKind::kGridSteady: return "grid_steady";
  }
  return "?";
}

const char* soc_kind_name(SocKind kind) {
  switch (kind) {
    case SocKind::kAlpha: return "alpha";
    case SocKind::kFig1: return "fig1";
    case SocKind::kSynthetic: return "synthetic";
    case SocKind::kFlp: return "flp";
  }
  return "?";
}

std::string SocSelector::geometry_key() const {
  switch (kind) {
    case SocKind::kAlpha: return "alpha";
    case SocKind::kFig1: return "fig1";
    case SocKind::kFlp: return "flp:" + flp_path;
    case SocKind::kSynthetic:
      // Geometry is fully determined by the slicing inputs + seed; the
      // power/length ranges are drawn *after* the floorplan from the
      // same stream and so cannot change it.
      return "synthetic:" + std::to_string(synthetic.seed) + ":" +
             std::to_string(synthetic.cores) + ":" +
             format_json_number(synthetic.chip_width) + ":" +
             format_json_number(synthetic.chip_height);
  }
  return "?";
}

std::vector<double> StclSpan::values() const {
  return core::stcl_range(min, max, step);
}

ScenarioRequest parse_request(const JsonValue& json) {
  if (!json.is_object()) {
    fail("", std::string("expected a JSON object, got ") + json.type_name());
  }
  ScenarioRequest request;
  if (const JsonValue* kind = json.find("kind")) {
    request.kind = parse_request_kind(*kind);
  }
  bool saw_ptrace = false;
  for (const auto& [key, value] : json.members()) {
    if (key == "kind") {
      continue;  // handled above, before kind-gated fields
    } else if (key == "id") {
      request.id = require_string(value, "id");
    } else if (key == "deadline_s") {
      // Serving-contract knob, valid for every kind (unlike the
      // Algorithm 1 fields): a replay request can carry an SLO too.
      request.deadline_s = positive_number(value, "deadline_s");
    } else if (key == "priority") {
      request.priority = positive_number(value, "priority");
    } else if (key == "soc") {
      request.soc = parse_soc(value);
    } else if (key == "ptrace") {
      if (request.kind != RequestKind::kPtrace) {
        fail("ptrace", "only valid for kind 'ptrace'");
      }
      request.ptrace = parse_ptrace(value);
      saw_ptrace = true;
    } else if (key == "chained") {
      if (request.kind != RequestKind::kChained) {
        fail("chained", "only valid for kind 'chained'");
      }
      request.chained = parse_chained(value);
    } else if (key == "grid") {
      if (request.kind != RequestKind::kGridSteady) {
        fail("grid", "only valid for kind 'grid_steady'");
      }
      request.grid = parse_grid(value);
    } else if (key == "tl") {
      require_scheduling_kind(request.kind, "tl");
      request.tl = positive_number(value, "tl");
    } else if (key == "stcl") {
      require_scheduling_kind(request.kind, "stcl");
      request.stcl = parse_stcl(value);
    } else if (key == "stc_scale") {
      require_scheduling_kind(request.kind, "stc_scale");
      const double value_d = require_number(value, "stc_scale");
      if (!std::isfinite(value_d) || value_d < 0.0) {
        fail("stc_scale", "must be finite and >= 0 (0 = auto)");
      }
      request.stc_scale = value_d;
    } else if (key == "weight_factor") {
      require_scheduling_kind(request.kind, "weight_factor");
      const double value_d = require_number(value, "weight_factor");
      if (!std::isfinite(value_d) || value_d < 1.0) {
        fail("weight_factor", "must be finite and >= 1");
      }
      request.weight_factor = value_d;
    } else if (key == "solo_policy") {
      require_scheduling_kind(request.kind, "solo_policy");
      request.solo_policy = parse_solo_policy(value);
    } else if (key == "core_order") {
      require_scheduling_kind(request.kind, "core_order");
      request.core_order = parse_core_order(value);
    } else if (key == "solver") {
      request.solver = parse_solver(value);
    } else {
      fail("", "unknown field '" + key + "'");
    }
  }
  if (request.kind == RequestKind::kPtrace) {
    if (!saw_ptrace) {
      fail("ptrace", "required for kind 'ptrace'");
    }
    if (!request.solver.transient) {
      fail("solver.transient", "must be true for kind 'ptrace'");
    }
  }
  if (request.kind == RequestKind::kChained && !request.stcl.single()) {
    fail("stcl", "kind 'chained' requires a single stcl value");
  }
  return request;
}

ScenarioRequest parse_request_line(std::string_view text) {
  return parse_request(parse_json(text));
}

JsonValue to_json(const ScenarioRequest& request) {
  JsonValue out = JsonValue::object();
  out.set("id", JsonValue::string(request.id));
  out.set("kind", JsonValue::string(request_kind_name(request.kind)));
  // SLO fields are emitted only when set: requests without them keep
  // byte-identical canonical form across schema versions (the golden
  // round-trip files and gen streams predate these fields).
  if (request.deadline_s != 0.0) {
    out.set("deadline_s", JsonValue::number(request.deadline_s));
  }
  if (request.priority != 1.0) {
    out.set("priority", JsonValue::number(request.priority));
  }

  JsonValue soc = JsonValue::object();
  soc.set("kind", JsonValue::string(soc_kind_name(request.soc.kind)));
  if (request.soc.kind == SocKind::kFlp) {
    soc.set("path", JsonValue::string(request.soc.flp_path));
    soc.set("density", JsonValue::number(request.soc.flp_density));
  }
  if (request.soc.kind == SocKind::kSynthetic) {
    const SyntheticSpec& syn = request.soc.synthetic;
    soc.set("seed", JsonValue::number(static_cast<double>(syn.seed)));
    soc.set("cores", JsonValue::number(static_cast<double>(syn.cores)));
    soc.set("chip_width", JsonValue::number(syn.chip_width));
    soc.set("chip_height", JsonValue::number(syn.chip_height));
    soc.set("power_density_min", JsonValue::number(syn.power_density_min));
    soc.set("power_density_max", JsonValue::number(syn.power_density_max));
    soc.set("test_length_min", JsonValue::number(syn.test_length_min));
    soc.set("test_length_max", JsonValue::number(syn.test_length_max));
  }
  soc.set("power_scale", JsonValue::number(request.soc.power_scale));
  out.set("soc", std::move(soc));

  if (request.kind == RequestKind::kPtrace) {
    // Replay requests have no scheduling knobs; canonical form is just
    // the trace plus the solver it will be integrated with.
    JsonValue ptrace = JsonValue::object();
    if (!request.ptrace.path.empty()) {
      ptrace.set("path", JsonValue::string(request.ptrace.path));
    } else {
      ptrace.set("text", JsonValue::string(request.ptrace.text));
    }
    ptrace.set("step_duration", JsonValue::number(request.ptrace.step_duration));
    out.set("ptrace", std::move(ptrace));
  } else if (request.kind == RequestKind::kGridSteady) {
    // The grid oracle has no scheduling knobs either; canonical form is
    // the discretisation plus the solver.
    JsonValue grid = JsonValue::object();
    grid.set("rows", JsonValue::number(static_cast<double>(request.grid.rows)));
    grid.set("cols", JsonValue::number(static_cast<double>(request.grid.cols)));
    out.set("grid", std::move(grid));
  } else {
    out.set("tl", JsonValue::number(request.tl));
    if (request.stcl.single()) {
      out.set("stcl", JsonValue::number(request.stcl.min));
    } else {
      JsonValue span = JsonValue::object();
      span.set("min", JsonValue::number(request.stcl.min));
      span.set("max", JsonValue::number(request.stcl.max));
      span.set("step", JsonValue::number(request.stcl.step));
      out.set("stcl", std::move(span));
    }
    out.set("stc_scale", JsonValue::number(request.stc_scale));
    out.set("weight_factor", JsonValue::number(request.weight_factor));
    out.set("solo_policy",
            JsonValue::string(solo_policy_name(request.solo_policy)));
    out.set("core_order",
            JsonValue::string(core_order_name(request.core_order)));
    if (request.kind == RequestKind::kChained) {
      JsonValue chained = JsonValue::object();
      chained.set("cooling_gap", JsonValue::number(request.chained.cooling_gap));
      out.set("chained", std::move(chained));
    }
  }

  JsonValue solver = JsonValue::object();
  solver.set("dt", JsonValue::number(request.solver.dt));
  solver.set("transient", JsonValue::boolean(request.solver.transient));
  solver.set("backend", JsonValue::string(thermal::solver_backend_name(
                            request.solver.backend)));
  out.set("solver", std::move(solver));
  return out;
}

std::string to_json_line(const ScenarioRequest& request) {
  return to_json(request).dump();
}

}  // namespace thermo::scenario
