#include "scenario/runner.hpp"

#include "floorplan/flp_io.hpp"
#include "soc/alpha.hpp"
#include "soc/fig1.hpp"
#include "soc/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::scenario {

namespace {

/// Per-SoC default STC normalisation, the same rule the CLI applies:
/// the Alpha SoC ships a calibrated scale; everything else uses the
/// generic 2.8e-3 that places typical block-level SoCs on the paper's
/// 20..100 STCL axis.
double auto_stc_scale(SocKind kind) {
  return kind == SocKind::kAlpha ? soc::alpha_stc_scale() : 2.8e-3;
}

}  // namespace

JsonValue to_json(const ScenarioResult& result) {
  JsonValue out = JsonValue::object();
  out.set("id", JsonValue::string(result.id));
  out.set("ok", JsonValue::boolean(result.ok));
  if (!result.ok) {
    out.set("error", JsonValue::string(result.error));
    return out;
  }
  out.set("soc", JsonValue::string(result.soc_name));
  out.set("cores", JsonValue::number(static_cast<double>(result.cores)));
  JsonValue points = JsonValue::array();
  for (const core::StclSweepPoint& point : result.points) {
    JsonValue p = JsonValue::object();
    p.set("stcl", JsonValue::number(point.stcl));
    p.set("schedule_length", JsonValue::number(point.schedule_length));
    p.set("simulation_effort", JsonValue::number(point.simulation_effort));
    p.set("sessions", JsonValue::number(static_cast<double>(point.sessions)));
    p.set("max_temperature", JsonValue::number(point.max_temperature));
    p.set("discarded_sessions",
          JsonValue::number(static_cast<double>(point.discarded_sessions)));
    p.set("effective_tl",
          JsonValue::number(point.effective_temperature_limit));
    points.append(std::move(p));
  }
  out.set("points", std::move(points));
  out.set("simulation_effort", JsonValue::number(result.simulation_effort));
  return out;
}

core::SocSpec ScenarioRunner::build_soc(const SocSelector& selector) {
  core::SocSpec soc;
  switch (selector.kind) {
    case SocKind::kAlpha:
      soc = soc::alpha_soc();
      break;
    case SocKind::kFig1:
      soc = soc::fig1_soc();
      break;
    case SocKind::kSynthetic: {
      Rng rng(selector.synthetic.seed);
      soc::SyntheticOptions options;
      options.core_count = selector.synthetic.cores;
      options.chip_width = selector.synthetic.chip_width;
      options.chip_height = selector.synthetic.chip_height;
      options.power_density_min = selector.synthetic.power_density_min;
      options.power_density_max = selector.synthetic.power_density_max;
      options.test_length_min = selector.synthetic.test_length_min;
      options.test_length_max = selector.synthetic.test_length_max;
      soc = soc::make_synthetic_soc(rng, options);
      break;
    }
    case SocKind::kFlp: {
      soc.flp = floorplan::load_flp(selector.flp_path);
      soc.name = soc.flp.name();
      soc.package = thermal::PackageParams{};
      for (std::size_t i = 0; i < soc.flp.size(); ++i) {
        soc.tests.push_back(core::CoreTest{
            selector.flp_density * soc.flp.block(i).area(), 1.0});
      }
      break;
    }
  }
  if (selector.power_scale != 1.0) {
    for (core::CoreTest& test : soc.tests) test.power *= selector.power_scale;
  }
  soc.validate();
  return soc;
}

std::shared_ptr<const thermal::RCModel> ScenarioRunner::model_for(
    const SocSelector& selector, const core::SocSpec& soc) {
  const std::string key = selector.geometry_key();
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(key);
  if (it != models_.end()) {
    ++stats_.model_hits;
    it->second.last_used = ++use_counter_;
    return it->second.model;
  }
  if (models_.size() >= kMaxCachedModels) {
    auto victim = models_.begin();
    for (auto cand = models_.begin(); cand != models_.end(); ++cand) {
      if (cand->second.last_used < victim->second.last_used) victim = cand;
    }
    models_.erase(victim);
  }
  // Built under the lock: assembly is O(n^2) matrix stamping, cheap next
  // to the O(n^3) factorizations, which happen later in the solver cache
  // *outside* any lock here.
  auto model = std::make_shared<const thermal::RCModel>(soc.flp, soc.package);
  models_.emplace(key, CachedModel{model, ++use_counter_});
  ++stats_.model_misses;
  return model;
}

ScenarioRunner::Stats ScenarioRunner::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ScenarioResult ScenarioRunner::run(const ScenarioRequest& request) {
  ScenarioResult result;
  result.id = request.id;
  try {
    const core::SocSpec soc = build_soc(request.soc);
    const auto model = model_for(request.soc, soc);
    result.soc_name = soc.name;
    result.cores = soc.core_count();

    core::StclSweepConfig config;
    config.scheduler.temperature_limit = request.tl;
    config.scheduler.weight_factor = request.weight_factor;
    config.scheduler.solo_policy = request.solo_policy;
    config.scheduler.core_order = request.core_order;
    config.scheduler.model.stc_scale = request.stc_scale > 0.0
                                           ? request.stc_scale
                                           : auto_stc_scale(request.soc.kind);
    config.analyzer.dt = request.solver.dt;
    config.analyzer.transient = request.solver.transient;
    config.analyzer.backend = request.solver.backend;
    // threads = 1: runs inline on this thread — serve already fans
    // *requests* across a pool, so per-request point loops stay serial.
    config.threads = 1;

    result.points = core::sweep_stcl(soc, model, request.stcl.values(), config);
    for (const core::StclSweepPoint& point : result.points) {
      result.simulation_effort += point.simulation_effort;
    }
    result.ok = true;
  } catch (const Error& e) {
    result.ok = false;
    result.error = e.what();
    result.points.clear();
    result.simulation_effort = 0.0;
  }
  return result;
}

}  // namespace thermo::scenario
