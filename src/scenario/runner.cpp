#include "scenario/runner.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "core/safety_checker.hpp"
#include "core/thermal_scheduler.hpp"
#include "floorplan/flp_io.hpp"
#include "soc/alpha.hpp"
#include "soc/fig1.hpp"
#include "soc/synthetic.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/ptrace_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::scenario {

namespace {

/// Per-SoC default STC normalisation, the same rule the CLI applies:
/// the Alpha SoC ships a calibrated scale; everything else uses the
/// generic 2.8e-3 that places typical block-level SoCs on the paper's
/// 20..100 STCL axis.
double auto_stc_scale(SocKind kind) {
  return kind == SocKind::kAlpha ? soc::alpha_stc_scale() : 2.8e-3;
}

/// Per-kind run observability: execution count + wall histogram + the
/// span name (a static literal, as the trace ring requires).
struct KindMetrics {
  obs::Counter& runs;
  obs::Histogram& run_ns;
  const char* span_name;
};

KindMetrics& kind_metrics(RequestKind kind) {
  auto& registry = obs::MetricsRegistry::instance();
  static KindMetrics sweep{registry.counter("scenario.run.stcl_sweep"),
                           registry.histogram("scenario.run.stcl_sweep_ns"),
                           "scenario.run.stcl_sweep"};
  static KindMetrics ptrace{registry.counter("scenario.run.ptrace"),
                            registry.histogram("scenario.run.ptrace_ns"),
                            "scenario.run.ptrace"};
  static KindMetrics chained{registry.counter("scenario.run.chained"),
                             registry.histogram("scenario.run.chained_ns"),
                             "scenario.run.chained"};
  static KindMetrics grid{registry.counter("scenario.run.grid_steady"),
                          registry.histogram("scenario.run.grid_steady_ns"),
                          "scenario.run.grid_steady"};
  switch (kind) {
    case RequestKind::kPtrace: return ptrace;
    case RequestKind::kChained: return chained;
    case RequestKind::kGridSteady: return grid;
    case RequestKind::kStclSweep: break;
  }
  return sweep;
}

obs::Histogram& model_build_ns() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::instance().histogram("scenario.model_build_ns");
  return histogram;
}

}  // namespace

JsonValue to_json(const ScenarioResult& result) {
  JsonValue out = JsonValue::object();
  out.set("id", JsonValue::string(result.id));
  out.set("ok", JsonValue::boolean(result.ok));
  if (!result.ok) {
    out.set("error", JsonValue::string(result.error));
    return out;
  }
  out.set("kind", JsonValue::string(request_kind_name(result.kind)));
  out.set("soc", JsonValue::string(result.soc_name));
  out.set("cores", JsonValue::number(static_cast<double>(result.cores)));
  if (result.kind == RequestKind::kPtrace) {
    JsonValue trace = JsonValue::object();
    trace.set("steps",
              JsonValue::number(static_cast<double>(result.ptrace.steps)));
    trace.set("duration", JsonValue::number(result.ptrace.duration));
    trace.set("max_temperature",
              JsonValue::number(result.ptrace.max_temperature));
    trace.set("hottest", JsonValue::string(result.ptrace.hottest));
    out.set("trace", std::move(trace));
    out.set("simulation_effort", JsonValue::number(result.simulation_effort));
    return out;
  }
  if (result.kind == RequestKind::kChained) {
    JsonValue schedule = JsonValue::object();
    schedule.set("stcl", JsonValue::number(result.chained.stcl));
    schedule.set("length", JsonValue::number(result.chained.schedule_length));
    schedule.set("sessions",
                 JsonValue::number(static_cast<double>(result.chained.sessions)));
    schedule.set("effective_tl", JsonValue::number(result.chained.effective_tl));
    out.set("schedule", std::move(schedule));
    JsonValue chained = JsonValue::object();
    chained.set("cooling_gap", JsonValue::number(result.chained.cooling_gap));
    chained.set("independent_max_temperature",
                JsonValue::number(result.chained.independent_max));
    chained.set("chained_max_temperature",
                JsonValue::number(result.chained.chained_max));
    chained.set("violations", JsonValue::number(static_cast<double>(
                                  result.chained.violations)));
    chained.set("safe", JsonValue::boolean(result.chained.safe));
    out.set("chained", std::move(chained));
    out.set("simulation_effort", JsonValue::number(result.simulation_effort));
    return out;
  }
  if (result.kind == RequestKind::kGridSteady) {
    JsonValue grid = JsonValue::object();
    grid.set("rows", JsonValue::number(static_cast<double>(result.grid.rows)));
    grid.set("cols", JsonValue::number(static_cast<double>(result.grid.cols)));
    grid.set("nodes",
             JsonValue::number(static_cast<double>(result.grid.nodes)));
    grid.set("max_cell_temperature",
             JsonValue::number(result.grid.max_cell_temperature));
    grid.set("mean_cell_temperature",
             JsonValue::number(result.grid.mean_cell_temperature));
    grid.set("max_block_temperature",
             JsonValue::number(result.grid.max_block_temperature));
    grid.set("hottest", JsonValue::string(result.grid.hottest));
    out.set("grid", std::move(grid));
    out.set("simulation_effort", JsonValue::number(result.simulation_effort));
    return out;
  }
  JsonValue points = JsonValue::array();
  for (const core::StclSweepPoint& point : result.points) {
    JsonValue p = JsonValue::object();
    p.set("stcl", JsonValue::number(point.stcl));
    p.set("schedule_length", JsonValue::number(point.schedule_length));
    p.set("simulation_effort", JsonValue::number(point.simulation_effort));
    p.set("sessions", JsonValue::number(static_cast<double>(point.sessions)));
    p.set("max_temperature", JsonValue::number(point.max_temperature));
    p.set("discarded_sessions",
          JsonValue::number(static_cast<double>(point.discarded_sessions)));
    p.set("effective_tl",
          JsonValue::number(point.effective_temperature_limit));
    points.append(std::move(p));
  }
  out.set("points", std::move(points));
  out.set("simulation_effort", JsonValue::number(result.simulation_effort));
  return out;
}

core::SocSpec ScenarioRunner::build_soc(const SocSelector& selector) {
  core::SocSpec soc;
  switch (selector.kind) {
    case SocKind::kAlpha:
      soc = soc::alpha_soc();
      break;
    case SocKind::kFig1:
      soc = soc::fig1_soc();
      break;
    case SocKind::kSynthetic: {
      Rng rng(selector.synthetic.seed);
      soc::SyntheticOptions options;
      options.core_count = selector.synthetic.cores;
      options.chip_width = selector.synthetic.chip_width;
      options.chip_height = selector.synthetic.chip_height;
      options.power_density_min = selector.synthetic.power_density_min;
      options.power_density_max = selector.synthetic.power_density_max;
      options.test_length_min = selector.synthetic.test_length_min;
      options.test_length_max = selector.synthetic.test_length_max;
      soc = soc::make_synthetic_soc(rng, options);
      break;
    }
    case SocKind::kFlp: {
      soc.flp = floorplan::load_flp(selector.flp_path);
      soc.name = soc.flp.name();
      soc.package = thermal::PackageParams{};
      for (std::size_t i = 0; i < soc.flp.size(); ++i) {
        soc.tests.push_back(core::CoreTest{
            selector.flp_density * soc.flp.block(i).area(), 1.0});
      }
      break;
    }
  }
  if (selector.power_scale != 1.0) {
    for (core::CoreTest& test : soc.tests) test.power *= selector.power_scale;
  }
  soc.validate();
  return soc;
}

std::shared_ptr<const thermal::RCModel> ScenarioRunner::model_for(
    const SocSelector& selector, const core::SocSpec& soc) {
  const std::string key = selector.geometry_key();
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(key);
  if (it != models_.end()) {
    ++stats_.model_hits;
    it->second.last_used = ++use_counter_;
    return it->second.model;
  }
  if (models_.size() >= kMaxCachedModels) {
    auto victim = models_.begin();
    for (auto cand = models_.begin(); cand != models_.end(); ++cand) {
      if (cand->second.last_used < victim->second.last_used) victim = cand;
    }
    models_.erase(victim);
  }
  // Built under the lock: assembly is O(n^2) matrix stamping, cheap next
  // to the O(n^3) factorizations, which happen later in the solver cache
  // *outside* any lock here.
  obs::TraceSpan build_span("scenario.model_build");
  obs::ScopedTimer build_timer(model_build_ns());
  auto model = std::make_shared<const thermal::RCModel>(soc.flp, soc.package);
  models_.emplace(key, CachedModel{model, ++use_counter_});
  ++stats_.model_misses;
  return model;
}

std::shared_ptr<const thermal::GridThermalModel> ScenarioRunner::grid_model_for(
    const SocSelector& selector, const core::SocSpec& soc,
    const GridSpec& grid) {
  const std::string key = selector.geometry_key() + ":grid:" +
                          std::to_string(grid.rows) + "x" +
                          std::to_string(grid.cols);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = grids_.find(key);
  if (it != grids_.end()) {
    ++stats_.model_hits;
    it->second.last_used = ++use_counter_;
    return it->second.model;
  }
  if (grids_.size() >= kMaxCachedModels) {
    auto victim = grids_.begin();
    for (auto cand = grids_.begin(); cand != grids_.end(); ++cand) {
      if (cand->second.last_used < victim->second.last_used) victim = cand;
    }
    grids_.erase(victim);
  }
  // Grid assembly is sparse-first (one Builder pass over rows*cols
  // cells), so even a 100k-node build under the lock stays O(nnz); the
  // expensive fill-ordered factorization happens later in the solver
  // cache, outside this mutex.
  obs::TraceSpan build_span("scenario.model_build");
  obs::ScopedTimer build_timer(model_build_ns());
  auto model = std::make_shared<const thermal::GridThermalModel>(
      soc.flp, soc.package, thermal::GridOptions{grid.rows, grid.cols});
  grids_.emplace(key, CachedGrid{model, ++use_counter_});
  ++stats_.model_misses;
  return model;
}

ScenarioRunner::Stats ScenarioRunner::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

namespace {

void run_stcl_sweep(const ScenarioRequest& request, const core::SocSpec& soc,
                    const std::shared_ptr<const thermal::RCModel>& model,
                    ScenarioResult& result) {
  core::StclSweepConfig config;
  config.scheduler.temperature_limit = request.tl;
  config.scheduler.weight_factor = request.weight_factor;
  config.scheduler.solo_policy = request.solo_policy;
  config.scheduler.core_order = request.core_order;
  config.scheduler.model.stc_scale = request.stc_scale > 0.0
                                         ? request.stc_scale
                                         : auto_stc_scale(request.soc.kind);
  config.analyzer.dt = request.solver.dt;
  config.analyzer.transient = request.solver.transient;
  config.analyzer.backend = request.solver.backend;
  // threads = 1: runs inline on this thread — serve already fans
  // *requests* across a pool, so per-request point loops stay serial.
  config.threads = 1;

  result.points = core::sweep_stcl(soc, model, request.stcl.values(), config);
  for (const core::StclSweepPoint& point : result.points) {
    result.simulation_effort += point.simulation_effort;
  }
}

void run_ptrace(const ScenarioRequest& request, const core::SocSpec& soc,
                const std::shared_ptr<const thermal::RCModel>& model,
                ScenarioResult& result) {
  const thermal::PowerTrace trace =
      (request.ptrace.text.empty()
           ? thermal::load_ptrace(request.ptrace.path)
           : thermal::parse_ptrace_string(request.ptrace.text))
          .aligned_to(soc.flp);
  if (trace.step_count() == 0) {
    throw InvalidArgument("ptrace contains no time steps");
  }

  thermal::ThermalAnalyzer::Options options;
  options.dt = request.solver.dt;
  options.transient = true;  // enforced at parse: replay carries state
  options.backend = request.solver.backend;
  thermal::ThermalAnalyzer analyzer(model, options);

  std::vector<double> state = analyzer.ambient_node_state();
  std::size_t hottest = 0;
  result.ptrace.steps = trace.step_count();
  result.ptrace.duration =
      static_cast<double>(trace.step_count()) * request.ptrace.step_duration;
  for (const std::vector<double>& row : trace.steps) {
    thermal::ThermalAnalyzer::Chained step = analyzer.simulate_session_from(
        row, request.ptrace.step_duration, state);
    state = std::move(step.final_state);
    if (step.session.max_temperature > result.ptrace.max_temperature) {
      result.ptrace.max_temperature = step.session.max_temperature;
      hottest = step.session.hottest_block;
    }
  }
  result.ptrace.hottest = soc.flp.block(hottest).name;
  result.simulation_effort = analyzer.simulation_effort();
}

void run_chained(const ScenarioRequest& request, const core::SocSpec& soc,
                 const std::shared_ptr<const thermal::RCModel>& model,
                 ScenarioResult& result) {
  core::ThermalSchedulerOptions options;
  options.temperature_limit = request.tl;
  options.stc_limit = request.stcl.min;  // single value, enforced at parse
  options.weight_factor = request.weight_factor;
  options.solo_policy = request.solo_policy;
  options.core_order = request.core_order;
  options.model.stc_scale = request.stc_scale > 0.0
                                ? request.stc_scale
                                : auto_stc_scale(request.soc.kind);

  thermal::ThermalAnalyzer::Options sched_options;
  sched_options.dt = request.solver.dt;
  sched_options.transient = request.solver.transient;
  sched_options.backend = request.solver.backend;
  thermal::ThermalAnalyzer sched_analyzer(model, sched_options);

  const core::ThermalAwareScheduler scheduler(options);
  const core::ScheduleResult sched = scheduler.generate(soc, sched_analyzer);

  // The chained replay always needs transient state carry-over, whatever
  // oracle the schedule was *generated* with.
  thermal::ThermalAnalyzer::Options check_options = sched_options;
  check_options.transient = true;
  thermal::ThermalAnalyzer check_analyzer(model, check_options);
  core::SafetyChecker::Options chain;
  chain.chained = true;
  chain.cooling_gap = request.chained.cooling_gap;
  const core::SafetyChecker checker(scheduler.effective_temperature_limit(),
                                    chain);
  const core::SafetyReport report =
      checker.check(soc, sched.schedule, check_analyzer);

  result.chained.stcl = request.stcl.min;
  result.chained.schedule_length = sched.schedule_length;
  result.chained.sessions = sched.schedule.session_count();
  result.chained.effective_tl = scheduler.effective_temperature_limit();
  result.chained.cooling_gap = request.chained.cooling_gap;
  result.chained.independent_max = sched.max_temperature;
  result.chained.chained_max = report.max_temperature;
  result.chained.violations = report.violations.size();
  result.chained.safe = report.safe;
  result.simulation_effort =
      sched_analyzer.simulation_effort() + check_analyzer.simulation_effort();
}

void run_grid_steady(const ScenarioRequest& request, const core::SocSpec& soc,
                     const std::shared_ptr<const thermal::GridThermalModel>& model,
                     ScenarioResult& result) {
  // Every block dissipates its test power simultaneously — the
  // all-cores-under-test worst case the grid oracle is asked to resolve
  // at cell granularity (power_scale is already applied by build_soc).
  std::vector<double> power(soc.tests.size(), 0.0);
  for (std::size_t i = 0; i < soc.tests.size(); ++i) {
    power[i] = soc.tests[i].power;
  }
  const thermal::GridSteadyResult steady =
      model->solve(power, request.solver.backend);

  result.grid.rows = model->rows();
  result.grid.cols = model->cols();
  result.grid.nodes = model->node_count();
  double max_cell = steady.cell_temperature.empty()
                        ? 0.0
                        : steady.cell_temperature.front();
  double sum = 0.0;
  for (const double t : steady.cell_temperature) {
    if (t > max_cell) max_cell = t;
    sum += t;
  }
  result.grid.max_cell_temperature = max_cell;
  result.grid.mean_cell_temperature =
      steady.cell_temperature.empty()
          ? 0.0
          : sum / static_cast<double>(steady.cell_temperature.size());
  std::size_t hottest = 0;
  for (std::size_t b = 1; b < steady.block_max_temperature.size(); ++b) {
    if (steady.block_max_temperature[b] >
        steady.block_max_temperature[hottest]) {
      hottest = b;
    }
  }
  if (!steady.block_max_temperature.empty()) {
    result.grid.max_block_temperature = steady.block_max_temperature[hottest];
    result.grid.hottest = soc.flp.block(hottest).name;
  }
  // Steady state simulates no transient seconds; the record's effort
  // metric stays 0 by design (wall time is serve's stderr concern).
  result.simulation_effort = 0.0;
}

}  // namespace

ScenarioResult ScenarioRunner::run(const ScenarioRequest& request) {
  KindMetrics& metrics = kind_metrics(request.kind);
  obs::TraceSpan run_span(metrics.span_name);
  obs::ScopedTimer run_timer(metrics.run_ns);
  metrics.runs.add();
  ScenarioResult result;
  result.id = request.id;
  result.kind = request.kind;
  try {
    const core::SocSpec soc = build_soc(request.soc);
    result.soc_name = soc.name;
    result.cores = soc.core_count();

    if (request.kind == RequestKind::kGridSteady) {
      // The block-level RCModel is never consulted for a grid solve, so
      // skip model_for entirely — at 100k nodes the savings matter.
      run_grid_steady(request, soc,
                      grid_model_for(request.soc, soc, request.grid), result);
    } else {
      const auto model = model_for(request.soc, soc);
      switch (request.kind) {
        case RequestKind::kStclSweep:
          run_stcl_sweep(request, soc, model, result);
          break;
        case RequestKind::kPtrace:
          run_ptrace(request, soc, model, result);
          break;
        case RequestKind::kChained:
          run_chained(request, soc, model, result);
          break;
        case RequestKind::kGridSteady:
          break;  // handled above
      }
    }
    result.ok = true;
  } catch (const Error& e) {
    result.ok = false;
    result.error = e.what();
    result.points.clear();
    result.ptrace = PtraceOutcome{};
    result.chained = ChainedOutcome{};
    result.grid = GridOutcome{};
    result.simulation_effort = 0.0;
  }
  return result;
}

}  // namespace thermo::scenario
