// The batch front-end behind `thermosched serve`: stream JSONL scenario
// requests (one JSON object per line) through a ScenarioRunner, executed
// by the dispatch engine (src/dispatch) — cost-aware placement, result
// memoization, streaming ordered output — and write one JSONL result
// record per request *in input order*.
//
// Contract (docs/SERVE.md):
//   * line i of the output answers line i of the input (blank lines are
//     skipped and produce no record);
//   * a malformed or invalid request line yields an `ok:false` record in
//     its slot — one bad request never aborts the batch;
//   * requests without an "id" are assigned "line-<input line number>";
//   * the output bytes are identical for any thread count, schedule
//     policy, and dedup setting (results are streamed in index order;
//     every record is a pure function of its request line — placement
//     and memoization change when work runs, never what is written).
// Wall-clock timing lives in the returned summary, NOT in the records —
// that is what keeps them reproducible. Per-request wall/CPU timings
// ride in the summary too (the `--summary-json` payload).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dispatch/calibrator.hpp"
#include "dispatch/engine.hpp"
#include "scenario/runner.hpp"
#include "thermal/backend.hpp"
#include "util/json.hpp"

namespace thermo::dispatch {
class DiskResultMemo;
}  // namespace thermo::dispatch

namespace thermo::scenario {

struct ServeOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency.
  std::size_t threads = 0;
  /// Batch-level solver backend applied to every request whose JSON did
  /// not name `solver.backend` itself (a request's explicit choice
  /// always wins) — what `thermosched serve --solver-backend` sets.
  thermal::SolverBackend default_backend = thermal::SolverBackend::kAuto;
  /// Execution-start order: kFifo = input order (historical behaviour),
  /// kLjf = longest-job-first by estimated cost — cuts makespan on
  /// skewed batches (bench_dispatch gates this). Output bytes do not
  /// depend on the choice.
  dispatch::SchedulePolicy policy = dispatch::SchedulePolicy::kFifo;
  /// Memoize result records by canonical request content so duplicate
  /// requests (within this batch, or across batches via `memo`) execute
  /// once. Off = every request executes; output bytes are unchanged.
  bool dedup = true;
  /// Cross-batch memo (borrowed); nullptr = a throwaway per-call memo,
  /// i.e. within-batch dedup only.
  dispatch::ResultMemo* memo = nullptr;
  /// Disk-backed memo (borrowed) — what `thermosched serve --cache-dir`
  /// wires in. When set it takes precedence over `memo` and results are
  /// durably cached across *processes*: a cold restart serving the same
  /// batch answers from disk instead of executing. Output bytes are
  /// unchanged (the cache changes when work runs, never what is
  /// written). Ignored when dedup is off — without content addressing
  /// there is nothing to key the cache by.
  dispatch::DiskResultMemo* disk_memo = nullptr;
  /// Self-calibrating cost model (borrowed) — what `thermosched serve
  /// --calibrate on` wires in. When set, job costs are estimated with
  /// the calibrator's current constants (the hand-tuned defaults until
  /// it has seen CostCalibrator::kMinSamples executions), and every
  /// executed ok request's (features, measured wall) pair is folded
  /// back in after the batch — so a long-lived process converges on
  /// *this machine's* seconds. Output bytes are unchanged: calibration
  /// only reorders execution starts. nullptr = fixed constants.
  dispatch::CostCalibrator* calibrator = nullptr;
};

/// Per-request execution facts, index-aligned with the (non-blank)
/// input lines. Summary-only: none of this may appear in the JSONL
/// records, which must stay byte-deterministic.
struct RequestTiming {
  std::string id;             ///< resolved id ("line-<n>" when absent)
  bool ok = false;            ///< the record's ok flag
  bool memo_hit = false;      ///< served from the memo / a duplicate
  double cost = 0.0;          ///< CostModel estimate (relative units,
                              ///< or seconds once a calibrator is warm)
  double wall_seconds = 0.0;  ///< execution wall time (0 on memo hits)
  double cpu_seconds = 0.0;   ///< executing thread's CPU time
  /// Execution-window start to execution start (same steady clock as
  /// done_seconds; 0 on memo hits) — the part of a request's latency
  /// the scheduling policy controls.
  double queue_wait_seconds = 0.0;
  /// When this request's record existed, as an offset from the start of
  /// the execution window (0 for planning-time memo hits) — the clock
  /// deadline_s is scored against.
  double done_seconds = 0.0;
  double deadline_s = 0.0;    ///< the request's SLO deadline; 0 = none
  /// done_seconds <= deadline_s; true when the request has no deadline.
  bool deadline_met = true;
};

struct ServeSummary {
  std::size_t requests = 0;   ///< non-blank input lines
  std::size_t succeeded = 0;  ///< records with ok:true
  std::size_t failed = 0;     ///< parse failures + runner errors
  /// Workers that actually executed (configured — or hardware — count
  /// capped by the jobs scheduled; 0 when the whole batch was answered
  /// from the memo).
  std::size_t threads = 0;
  dispatch::SchedulePolicy policy = dispatch::SchedulePolicy::kFifo;
  bool dedup = true;
  double wall_seconds = 0.0;      ///< end-to-end batch time (parse + run)
  double makespan_seconds = 0.0;  ///< execution window only
  std::size_t executed = 0;       ///< requests that actually ran
  std::size_t memo_hits = 0;      ///< requests answered from the memo
  std::size_t max_buffered = 0;   ///< ordered-writer high-water mark
  bool disk_cache_enabled = false;   ///< a disk_memo served this batch
  std::size_t disk_hits = 0;         ///< memo finds answered from disk
  std::size_t disk_records = 0;      ///< records on disk after the batch
  std::size_t disk_segments = 0;     ///< segment files after the batch
  std::uint64_t disk_bytes = 0;      ///< segment bytes after the batch
  /// SLO scoreboard: requests that carried a deadline_s, split by
  /// whether their record existed within it (deadline-free requests are
  /// counted in neither bucket).
  std::size_t deadline_requests = 0;
  std::size_t deadline_met = 0;
  std::size_t deadline_missed = 0;
  bool calibration_enabled = false;  ///< a calibrator served this batch
  /// The calibrator was ready() when placement ran — costs were fitted
  /// seconds, not the hand-tuned defaults.
  bool calibration_active = false;
  std::size_t calibration_samples = 0;  ///< after folding in this batch
  /// Scale-free median relative estimate error over this batch's
  /// executed ok requests (dispatch::median_relative_error): the fixed
  /// hand-tuned constants vs the calibrator's post-batch fit. Both 0
  /// when nothing executed or no calibrator was given.
  double fixed_error = 0.0;
  double calibrated_error = 0.0;
  std::vector<RequestTiming> request_timings;  ///< input order
  ScenarioRunner::Stats runner;  ///< model-cache hits/misses
};

/// Reads every line of `in`, processes the batch, writes the records to
/// `out` (one line each, input order, streamed as they complete). The
/// runner is borrowed so callers can serve several batches against one
/// warm model cache; pass options.memo to also share the result memo.
ServeSummary serve_stream(std::istream& in, std::ostream& out,
                          ScenarioRunner& runner,
                          const ServeOptions& options = {});

/// The `--summary-json` payload (schema "thermo.serve_summary.v1"):
/// batch counts, policy/dedup, makespan + tail latency, memo hit rate,
/// and the per-request timings. docs/SERVE.md documents every field.
JsonValue serve_summary_to_json(const ServeSummary& summary);

}  // namespace thermo::scenario
