// The batch front-end behind `thermosched serve`: stream JSONL scenario
// requests (one JSON object per line) through a ScenarioRunner, fanned
// across a sweep::ScenarioSweep thread pool, and write one JSONL result
// record per request *in input order*.
//
// Contract (docs/SERVE.md):
//   * line i of the output answers line i of the input (blank lines are
//     skipped and produce no record);
//   * a malformed or invalid request line yields an `ok:false` record in
//     its slot — one bad request never aborts the batch;
//   * requests without an "id" are assigned "line-<input line number>";
//   * the output bytes are identical for any thread count (results are
//     written slot-per-index; every record is a pure function of its
//     request line).
// Wall-clock timing lives in the returned summary, NOT in the records —
// that is what keeps them reproducible.
#pragma once

#include <cstddef>
#include <iosfwd>

#include "scenario/runner.hpp"
#include "thermal/backend.hpp"

namespace thermo::scenario {

struct ServeOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency.
  std::size_t threads = 0;
  /// Batch-level solver backend applied to every request whose JSON did
  /// not name `solver.backend` itself (a request's explicit choice
  /// always wins) — what `thermosched serve --solver-backend` sets.
  thermal::SolverBackend default_backend = thermal::SolverBackend::kAuto;
};

struct ServeSummary {
  std::size_t requests = 0;   ///< non-blank input lines
  std::size_t succeeded = 0;  ///< records with ok:true
  std::size_t failed = 0;     ///< parse failures + runner errors
  std::size_t threads = 0;    ///< workers actually used
  double wall_seconds = 0.0;  ///< end-to-end batch time
  ScenarioRunner::Stats runner;  ///< model-cache hits/misses
};

/// Reads every line of `in`, processes the batch, writes the records to
/// `out` (one line each, input order). The runner is borrowed so callers
/// can serve several batches against one warm model cache.
ServeSummary serve_stream(std::istream& in, std::ostream& out,
                          ScenarioRunner& runner,
                          const ServeOptions& options = {});

}  // namespace thermo::scenario
