// Scenario request format: a durable JSON description of one scheduling
// scenario — which SoC, at which power corner, over which STCL values,
// under which temperature limit and solver options. This is the unit of
// work `thermosched serve` streams (one request per JSONL line) and
// ScenarioRunner executes; docs/SERVE.md is the full schema reference
// with copy-pasteable examples.
//
// Parsing is *strict*: unknown fields, wrong types, and out-of-range
// values all throw InvalidArgument with the offending field path, e.g.
//   scenario request: soc.kind: unknown SoC kind 'alhpa' (expected
//   'alpha', 'fig1', 'synthetic', or 'flp')
// A typo'd scenario file fails loudly instead of silently running the
// default scenario.
//
// Serialization (to_json) emits the *canonical full form*: every field
// explicit, fixed member order, shortest round-trip numbers. Therefore
// parse -> serialize is a normalizing step and
// serialize(parse(serialize(parse(x)))) == serialize(parse(x)) — the
// golden-file round-trip property tests/scenario_request_test.cpp pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/thermal_scheduler.hpp"
#include "thermal/backend.hpp"
#include "util/json.hpp"

namespace thermo::scenario {

/// What kind of work a request describes. Every kind lowers onto the
/// same SoC/model machinery but produces a kind-specific result record
/// (docs/SERVE.md "Request kinds"):
///   * kStclSweep — Algorithm 1 once per STCL value (the original and
///     default request shape);
///   * kPtrace — power-trace replay: integrate a HotSpot .ptrace
///     (inline text or file) step by step through the transient RC
///     oracle, residual heat carrying between steps;
///   * kChained — generate a schedule at one STCL value, then
///     re-validate it with the chained oracle (sessions run back to
///     back with an optional cooling gap instead of restarting from
///     ambient — the paper's independent-session assumption, stressed);
///   * kGridSteady — fine-resolution steady-state grid solve: the SoC's
///     test powers are spread over a rows×cols cell grid
///     (thermal::GridThermalModel) and solved through the cached,
///     fill-ordered sparse factor — the 100k-node workload.
enum class RequestKind {
  kStclSweep,
  kPtrace,
  kChained,
  kGridSteady,
};

/// Canonical spelling used in JSON ("stcl_sweep", "ptrace", "chained",
/// "grid_steady").
const char* request_kind_name(RequestKind kind);

/// Where the system under test comes from.
enum class SocKind {
  kAlpha,      ///< the paper's 15-core Alpha-like SoC (soc::alpha_soc)
  kFig1,       ///< the 7-core motivating example (soc::fig1_soc)
  kSynthetic,  ///< random slicing floorplan (soc::make_synthetic_soc)
  kFlp         ///< HotSpot .flp file + uniform test power density
};

/// Canonical spelling used in JSON ("alpha", "fig1", "synthetic", "flp").
const char* soc_kind_name(SocKind kind);

/// Generator parameters for SocKind::kSynthetic — soc::SyntheticOptions
/// plus the RNG seed that makes the scenario reproducible.
struct SyntheticSpec {
  std::uint64_t seed = 1;
  std::size_t cores = 12;
  double chip_width = 0.016;       ///< metres
  double chip_height = 0.016;      ///< metres
  double power_density_min = 2e5;  ///< W/m^2
  double power_density_max = 2e6;  ///< W/m^2
  double test_length_min = 1.0;    ///< s
  double test_length_max = 1.0;    ///< s
};

/// SoC selection: a kind plus its kind-specific parameters and a
/// power-corner multiplier.
struct SocSelector {
  SocKind kind = SocKind::kAlpha;

  /// DVFS/corner scaling: every core's test power is multiplied by this
  /// after construction. Does not affect geometry, so requests that
  /// differ only in power_scale share one cached RCModel.
  double power_scale = 1.0;

  // kind == kFlp
  std::string flp_path;
  double flp_density = 1.0e6;  ///< uniform test power density [W/m^2]

  // kind == kSynthetic
  SyntheticSpec synthetic;

  /// Key identifying the *geometry* (floorplan + package) this selector
  /// produces — the unit of RCModel sharing in ScenarioRunner. Fields
  /// that only scale powers (power_scale, flp_density, the synthetic
  /// power/length ranges) are deliberately excluded: the RC network is
  /// identical across them.
  std::string geometry_key() const;
};

/// STCL values to schedule at: a single value (min == max) or an
/// inclusive range swept in `step` increments.
struct StclSpan {
  double min = 50.0;
  double max = 50.0;
  double step = 10.0;

  bool single() const { return min == max; }

  /// The expanded value list (via core::stcl_range; never empty).
  std::vector<double> values() const;
};

/// Oracle options forwarded to thermal::ThermalAnalyzer.
struct SolverSpec {
  double dt = 1e-3;       ///< backward-Euler step [s]
  bool transient = true;  ///< false = steady-state (faster, pessimistic)
  /// Factor representation: dense, sparse, or auto by node count
  /// (thermal/backend.hpp; docs/SOLVERS.md "Choosing a backend").
  thermal::SolverBackend backend = thermal::SolverBackend::kAuto;
  /// True when the request JSON named `solver.backend` explicitly.
  /// serve's `--solver-backend` batch default applies only to requests
  /// that left it out (mirrors the "id"/"line-<n>" assignment rule).
  bool backend_explicit = false;
};

/// Kind kPtrace: the power trace to replay and the wall-clock length of
/// one trace step. Exactly one of `path` (a .ptrace file on disk) or
/// `text` (the .ptrace content inline — what `thermosched gen` emits so
/// streams stay self-contained) must be set.
struct PtraceSpec {
  std::string path;           ///< .ptrace file (empty when text is used)
  std::string text;           ///< inline .ptrace content (empty when path)
  double step_duration = 0.001;  ///< seconds simulated per trace line [s]
};

/// Kind kChained: how the schedule's sessions are replayed back to back.
struct ChainedSpec {
  /// Idle tester seconds between consecutive sessions; the chip cools
  /// (zero power) for this long before the next session starts.
  double cooling_gap = 0.0;
};

/// Kind kGridSteady: die discretisation for the grid oracle. rows*cols
/// cells + 10 package nodes; 317x317 crosses 100k nodes. Capped at
/// kMaxGridSide per axis so one request stays a bounded work item.
struct GridSpec {
  std::size_t rows = 64;
  std::size_t cols = 64;
};

/// Largest grid rows/cols a single request may ask for (1024² cells
/// ≈ 1.05M nodes — already ~10× the 100k-node gate).
inline constexpr std::size_t kMaxGridSide = 1024;

struct ScenarioRequest {
  /// Caller-chosen identifier echoed into the result record. When empty,
  /// `thermosched serve` substitutes "line-<input line number>".
  std::string id;

  RequestKind kind = RequestKind::kStclSweep;

  /// Optional SLO deadline in seconds (from the start of the batch's
  /// execution window); 0 = unset. Valid for every kind — it describes
  /// the serving contract, not the scenario — and feeds the edf policy
  /// plus the per-request deadline_met flag in the serve summary. Never
  /// changes the result record.
  double deadline_s = 0.0;

  /// Relative scheduling weight (finite, > 0; default 1): higher values
  /// start earlier under the 'priority' policy. Like deadline_s, a
  /// serving knob only — never part of the result record.
  double priority = 1.0;

  SocSelector soc;

  /// kind == kPtrace only.
  PtraceSpec ptrace;

  /// kind == kChained only.
  ChainedSpec chained;

  /// kind == kGridSteady only.
  GridSpec grid;

  double tl = 155.0;  ///< temperature limit TL [deg C]
  StclSpan stcl;

  /// STC normalisation; 0 selects the per-SoC default (alpha_stc_scale()
  /// for the Alpha SoC, 2.8e-3 otherwise — same rule as the CLI).
  double stc_scale = 0.0;

  double weight_factor = 1.1;  ///< W multiplier on violation (paper: 1.1)

  /// Default raise-limit, matching the CLI: a served batch should report
  /// the effective TL rather than die on one hot solo core.
  core::SoloViolationPolicy solo_policy = core::SoloViolationPolicy::kRaiseLimit;
  core::CoreOrder core_order = core::CoreOrder::kDescendingSoloTc;

  SolverSpec solver;
};

/// Parses + validates one request from its JSON form. Throws
/// InvalidArgument ("scenario request: <field>: <problem>") on any
/// unknown field, type mismatch, or out-of-range value.
ScenarioRequest parse_request(const JsonValue& json);

/// Parses a request from JSON text (one JSONL line). Malformed JSON
/// throws ParseError; invalid content throws InvalidArgument as above.
ScenarioRequest parse_request_line(std::string_view text);

/// Canonical full-form serialization (see file comment).
JsonValue to_json(const ScenarioRequest& request);

/// to_json(request).dump() — one JSONL line, without the newline.
std::string to_json_line(const ScenarioRequest& request);

}  // namespace thermo::scenario
