// Deterministic demo batches for `thermosched serve`: a reproducible mix
// of scenario requests over every SoC kind, used by
// examples/make_requests (writes them as JSONL), bench/bench_serve (the
// BENCH_serve.json throughput record), and the serve smoke test. One
// generator, so "the demo batch" means the same bytes everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scenario/request.hpp"

namespace thermo::scenario {

/// `count` requests, fully determined by (count, seed): a rotating mix
/// of Alpha / Fig.1 / synthetic SoCs, single STCL values and small STCL
/// ranges, varied TL and power corners. Most requests use the
/// steady-state oracle so large batches stay cheap; every tenth runs the
/// transient oracle for coverage.
std::vector<ScenarioRequest> demo_batch(std::size_t count,
                                        std::uint64_t seed = 20);

}  // namespace thermo::scenario
