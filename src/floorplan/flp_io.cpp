#include "floorplan/flp_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace thermo::floorplan {

Floorplan parse_flp(std::istream& in, std::string name) {
  Floorplan fp(std::move(name));
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comment.
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const auto fields = split_whitespace(line);
    if (fields.empty()) continue;
    if (fields.size() != 5) {
      std::ostringstream os;
      os << "flp line " << line_number << ": expected 5 fields "
         << "(name width height left bottom), got " << fields.size();
      throw ParseError(os.str());
    }
    Block block;
    block.name = fields[0];
    const char* field_names[] = {"width", "height", "left-x", "bottom-y"};
    double* slots[] = {&block.width, &block.height, &block.x, &block.y};
    for (int i = 0; i < 4; ++i) {
      auto value = parse_double(fields[static_cast<std::size_t>(i) + 1]);
      if (!value) {
        std::ostringstream os;
        os << "flp line " << line_number << ": field '" << field_names[i]
           << "' is not a number: '" << fields[static_cast<std::size_t>(i) + 1]
           << "'";
        throw ParseError(os.str());
      }
      *slots[i] = *value;
    }
    fp.add_block(std::move(block));
  }
  return fp;
}

Floorplan parse_flp_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return parse_flp(in, std::move(name));
}

Floorplan load_flp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open floorplan file '" + path + "'");
  // Derive a name from the file stem.
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name.erase(0, slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name.erase(dot);
  }
  return parse_flp(in, std::move(name));
}

void write_flp(const Floorplan& fp, std::ostream& out) {
  out << "# floorplan: " << fp.name() << "\n";
  out << "# <unit-name> <width> <height> <left-x> <bottom-y>  (metres)\n";
  out.precision(9);
  for (const Block& b : fp.blocks()) {
    out << b.name << '\t' << b.width << '\t' << b.height << '\t' << b.x << '\t'
        << b.y << '\n';
  }
}

std::string to_flp_string(const Floorplan& fp) {
  std::ostringstream os;
  write_flp(fp, os);
  return os.str();
}

}  // namespace thermo::floorplan
