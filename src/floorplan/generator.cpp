#include "floorplan/generator.hpp"

#include <string>
#include <vector>

#include "util/error.hpp"

namespace thermo::floorplan {

Floorplan make_grid_floorplan(std::size_t rows, std::size_t cols,
                              double chip_width, double chip_height) {
  THERMO_REQUIRE(rows > 0 && cols > 0, "grid floorplan needs rows, cols > 0");
  THERMO_REQUIRE(chip_width > 0.0 && chip_height > 0.0,
                 "grid floorplan needs positive chip dimensions");
  Floorplan fp("grid" + std::to_string(rows) + "x" + std::to_string(cols));
  const double bw = chip_width / static_cast<double>(cols);
  const double bh = chip_height / static_cast<double>(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Block block;
      block.name = "b" + std::to_string(r) + "_" + std::to_string(c);
      block.width = bw;
      block.height = bh;
      block.x = static_cast<double>(c) * bw;
      block.y = static_cast<double>(r) * bh;
      fp.add_block(std::move(block));
    }
  }
  return fp;
}

namespace {

struct Region {
  double x, y, w, h;
};

}  // namespace

Floorplan make_slicing_floorplan(Rng& rng, const SlicingOptions& options) {
  THERMO_REQUIRE(options.block_count >= 1, "need at least one block");
  THERMO_REQUIRE(options.chip_width > 0.0 && options.chip_height > 0.0,
                 "chip dimensions must be positive");
  THERMO_REQUIRE(options.min_cut_fraction > 0.0 && options.min_cut_fraction < 0.5,
                 "min_cut_fraction must lie in (0, 0.5)");

  std::vector<Region> regions{{0.0, 0.0, options.chip_width, options.chip_height}};
  // Repeatedly split the largest region until we have enough leaves.
  while (regions.size() < options.block_count) {
    std::size_t largest = 0;
    for (std::size_t i = 1; i < regions.size(); ++i) {
      if (regions[i].w * regions[i].h > regions[largest].w * regions[largest].h) {
        largest = i;
      }
    }
    Region region = regions[largest];
    const bool can_cut_vertical = region.w >= 2.0 * options.min_block_dim;
    const bool can_cut_horizontal = region.h >= 2.0 * options.min_block_dim;
    if (!can_cut_vertical && !can_cut_horizontal) {
      // Degenerate chip (too many blocks for min_block_dim); give up on
      // this region and cut the next largest instead by shrinking its
      // priority. In practice chips are far larger than min_block_dim.
      throw InvalidArgument(
          "slicing floorplan: cannot reach block_count without violating "
          "min_block_dim");
    }
    bool cut_vertical;
    if (can_cut_vertical && can_cut_horizontal) {
      // Prefer cutting the longer span to keep aspect ratios sane.
      cut_vertical = region.w > region.h ? true
                    : region.h > region.w ? false
                                          : rng.chance(0.5);
    } else {
      cut_vertical = can_cut_vertical;
    }
    const double fraction =
        rng.uniform(options.min_cut_fraction, 1.0 - options.min_cut_fraction);
    Region first = region;
    Region second = region;
    if (cut_vertical) {
      first.w = region.w * fraction;
      second.x = region.x + first.w;
      second.w = region.w - first.w;
    } else {
      first.h = region.h * fraction;
      second.y = region.y + first.h;
      second.h = region.h - first.h;
    }
    regions[largest] = first;
    regions.push_back(second);
  }

  Floorplan fp("slicing" + std::to_string(options.block_count));
  for (std::size_t i = 0; i < regions.size(); ++i) {
    Block block;
    block.name = "c" + std::to_string(i);
    block.x = regions[i].x;
    block.y = regions[i].y;
    block.width = regions[i].w;
    block.height = regions[i].h;
    fp.add_block(std::move(block));
  }
  return fp;
}

}  // namespace thermo::floorplan
