// Synthetic floorplan generators: parameterised die geometries for
// property tests (random valid floorplans), solver-scaling studies
// (grids of arbitrary node count), and synthetic-SoC scenarios
// (soc::make_synthetic_soc builds on the slicing generator).
//
// Both generators guarantee what Floorplan::validate() checks — blocks
// with positive dimensions, pairwise non-overlapping, covering the die
// exactly — so downstream code (RCModel construction, the session
// model's adjacency walk) can rely on a well-formed adjacency graph
// without re-validating. Both are deterministic: the grid from its
// arguments alone, the slicing tree from the Rng state, which is how
// scenario requests reproduce "the same random SoC" from a seed
// (docs/SERVE.md, soc.kind = "synthetic").
#pragma once

#include <cstddef>

#include "floorplan/floorplan.hpp"
#include "util/rng.hpp"

namespace thermo::floorplan {

/// Uniform rows x cols grid covering chip_width x chip_height metres.
/// Block names are "b<r>_<c>" (row 0 at the bottom, matching the
/// HotSpot lower-left-origin convention). Every interior block has
/// exactly 4 neighbours — the regular lattice used to scale the RC node
/// count in bench_solver_perf and the grid-discretisation ablation.
/// Throws InvalidArgument unless rows, cols and both dimensions are
/// positive.
Floorplan make_grid_floorplan(std::size_t rows, std::size_t cols,
                              double chip_width, double chip_height);

struct SlicingOptions {
  std::size_t block_count = 12;   ///< number of leaf blocks (>= 1)
  double chip_width = 0.016;     ///< metres
  double chip_height = 0.016;    ///< metres
  /// Cut positions are drawn uniformly from [min, 1-min] of the sliced
  /// span: 0.5 always bisects (a regular floorplan), values near 0
  /// allow extreme aspect ratios and strongly varied block areas — the
  /// heterogeneity the thermal model cares about.
  double min_cut_fraction = 0.3;
  /// Regions thinner than 2x this (metres) are not cut in that
  /// direction, bounding how sliver-like a block can get; the generator
  /// falls back to the other direction, so block_count is always met.
  double min_block_dim = 1e-4;
};

/// Random slicing floorplan: repeatedly cuts the currently largest
/// region — preferring to cut across its longer span, coin-flipping on
/// ties — until `block_count` leaves exist. The result mimics real
/// hierarchical layouts: a mix of large and small rectangles with
/// irregular adjacency, unlike the grid's uniform lattice. Always valid
/// and fully covering; deterministic for a given RNG state. Blocks are
/// named "c<index>" in creation order. Throws InvalidArgument on
/// non-positive dimensions, min_cut_fraction outside (0, 0.5), or a
/// block_count unreachable without violating min_block_dim.
Floorplan make_slicing_floorplan(Rng& rng, const SlicingOptions& options = {});

}  // namespace thermo::floorplan
