// Synthetic floorplan generators, used by property tests (random valid
// floorplans) and the solver-scaling benchmark (grids of arbitrary size).
#pragma once

#include <cstddef>

#include "floorplan/floorplan.hpp"
#include "util/rng.hpp"

namespace thermo::floorplan {

/// Uniform rows x cols grid covering chip_width x chip_height metres.
/// Block names are "b<r>_<c>".
Floorplan make_grid_floorplan(std::size_t rows, std::size_t cols,
                              double chip_width, double chip_height);

struct SlicingOptions {
  std::size_t block_count = 12;   ///< number of leaf blocks (>= 1)
  double chip_width = 0.016;     ///< metres
  double chip_height = 0.016;    ///< metres
  double min_cut_fraction = 0.3; ///< cuts fall in [min, 1-min] of the span
  double min_block_dim = 1e-4;   ///< metres; regions thinner than 2x this
                                 ///< are not cut in that direction
};

/// Random slicing-tree floorplan: recursively slices the die with
/// alternating-preference horizontal/vertical cuts. Always produces a
/// valid (non-overlapping, fully covering) floorplan with exactly
/// `block_count` blocks. Deterministic for a given RNG state.
Floorplan make_slicing_floorplan(Rng& rng, const SlicingOptions& options = {});

}  // namespace thermo::floorplan
