#include "floorplan/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace thermo::floorplan {

namespace {

/// Overlap length of [a0, a1] and [b0, b1]; <= 0 when disjoint.
double interval_overlap(double a0, double a1, double b0, double b1) {
  return std::min(a1, b1) - std::max(a0, b0);
}

}  // namespace

std::size_t Floorplan::add_block(Block block) {
  THERMO_REQUIRE(!block.name.empty(), "block name must be non-empty");
  THERMO_REQUIRE(block.width > 0.0 && block.height > 0.0,
                 "block '" + block.name + "' must have positive dimensions");
  THERMO_REQUIRE(std::isfinite(block.x) && std::isfinite(block.y) &&
                     std::isfinite(block.width) && std::isfinite(block.height),
                 "block '" + block.name + "' has non-finite geometry");
  THERMO_REQUIRE(!index_of(block.name).has_value(),
                 "duplicate block name '" + block.name + "'");
  blocks_.push_back(std::move(block));
  invalidate_cache();
  return blocks_.size() - 1;
}

const Block& Floorplan::block(std::size_t i) const {
  THERMO_REQUIRE(i < blocks_.size(), "block index out of range");
  return blocks_[i];
}

std::optional<std::size_t> Floorplan::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].name == name) return i;
  }
  return std::nullopt;
}

void Floorplan::invalidate_cache() { cache_valid_ = false; }

void Floorplan::compute_cache() const {
  if (cache_valid_) return;
  const std::size_t n = blocks_.size();
  adjacencies_.clear();
  adj_.assign(n, {});
  boundary_.assign(n, {0.0, 0.0, 0.0, 0.0});

  if (n == 0) {
    min_x_ = min_y_ = max_x_ = max_y_ = 0.0;
    cache_valid_ = true;
    return;
  }

  min_x_ = blocks_[0].left();
  max_x_ = blocks_[0].right();
  min_y_ = blocks_[0].bottom();
  max_y_ = blocks_[0].top();
  for (const Block& b : blocks_) {
    min_x_ = std::min(min_x_, b.left());
    max_x_ = std::max(max_x_, b.right());
    min_y_ = std::min(min_y_, b.bottom());
    max_y_ = std::max(max_y_, b.top());
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Block& a = blocks_[i];
      const Block& b = blocks_[j];
      double length = 0.0;
      Side side = Side::kNorth;
      // Vertical abutment: a's top touches b's bottom or vice versa.
      if (std::fabs(a.top() - b.bottom()) < kGeomTol) {
        length = interval_overlap(a.left(), a.right(), b.left(), b.right());
        side = Side::kNorth;
      } else if (std::fabs(b.top() - a.bottom()) < kGeomTol) {
        length = interval_overlap(a.left(), a.right(), b.left(), b.right());
        side = Side::kSouth;
      } else if (std::fabs(a.right() - b.left()) < kGeomTol) {
        length = interval_overlap(a.bottom(), a.top(), b.bottom(), b.top());
        side = Side::kEast;
      } else if (std::fabs(b.right() - a.left()) < kGeomTol) {
        length = interval_overlap(a.bottom(), a.top(), b.bottom(), b.top());
        side = Side::kWest;
      }
      if (length > kGeomTol) {
        adjacencies_.push_back(Adjacency{i, j, length, side});
        // The (i, j) loop order visits each list's entries in strictly
        // increasing neighbour index, so the lists come out sorted.
        adj_[i].emplace_back(j, length);
        adj_[j].emplace_back(i, length);
      }
    }
  }

  // Boundary exposure: portion of each block side lying on the bbox edge.
  for (std::size_t i = 0; i < n; ++i) {
    const Block& b = blocks_[i];
    auto& exposure = boundary_[i];
    if (std::fabs(b.top() - max_y_) < kGeomTol) exposure[0] = b.width;
    if (std::fabs(b.bottom() - min_y_) < kGeomTol) exposure[1] = b.width;
    if (std::fabs(b.right() - max_x_) < kGeomTol) exposure[2] = b.height;
    if (std::fabs(b.left() - min_x_) < kGeomTol) exposure[3] = b.height;
  }

  cache_valid_ = true;
}

double Floorplan::chip_width() const {
  compute_cache();
  return max_x_ - min_x_;
}

double Floorplan::chip_height() const {
  compute_cache();
  return max_y_ - min_y_;
}

double Floorplan::min_x() const {
  compute_cache();
  return min_x_;
}

double Floorplan::min_y() const {
  compute_cache();
  return min_y_;
}

const std::vector<Adjacency>& Floorplan::adjacencies() const {
  compute_cache();
  return adjacencies_;
}

double Floorplan::shared_edge(std::size_t i, std::size_t j) const {
  THERMO_REQUIRE(i < blocks_.size() && j < blocks_.size(),
                 "shared_edge: index out of range");
  compute_cache();
  const auto& edges = adj_[i];
  const auto it = std::lower_bound(
      edges.begin(), edges.end(), j,
      [](const std::pair<std::size_t, double>& e, std::size_t key) {
        return e.first < key;
      });
  return it != edges.end() && it->first == j ? it->second : 0.0;
}

bool Floorplan::are_adjacent(std::size_t i, std::size_t j) const {
  return shared_edge(i, j) > kGeomTol;
}

std::vector<std::size_t> Floorplan::neighbours(std::size_t i) const {
  THERMO_REQUIRE(i < blocks_.size(), "neighbours: index out of range");
  compute_cache();
  std::vector<std::size_t> out;
  out.reserve(adj_[i].size());
  for (const auto& [j, length] : adj_[i]) out.push_back(j);
  return out;
}

const std::vector<std::pair<std::size_t, double>>& Floorplan::neighbour_edges(
    std::size_t i) const {
  THERMO_REQUIRE(i < blocks_.size(), "neighbour_edges: index out of range");
  compute_cache();
  return adj_[i];
}

double Floorplan::boundary_exposure(std::size_t i, Side side) const {
  THERMO_REQUIRE(i < blocks_.size(), "boundary_exposure: index out of range");
  compute_cache();
  switch (side) {
    case Side::kNorth: return boundary_[i][0];
    case Side::kSouth: return boundary_[i][1];
    case Side::kEast: return boundary_[i][2];
    case Side::kWest: return boundary_[i][3];
  }
  return 0.0;
}

double Floorplan::boundary_exposure(std::size_t i) const {
  double total = 0.0;
  for (Side side : kAllSides) total += boundary_exposure(i, side);
  return total;
}

ValidationReport Floorplan::validate() const {
  ValidationReport report;
  const std::size_t n = blocks_.size();
  if (n == 0) {
    report.ok = false;
    report.errors.push_back("floorplan has no blocks");
    return report;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (blocks_[i].overlaps(blocks_[j], kGeomTol)) {
        std::ostringstream os;
        os << "blocks '" << blocks_[i].name << "' and '" << blocks_[j].name
           << "' overlap";
        report.errors.push_back(os.str());
      }
    }
  }

  compute_cache();
  double block_area = 0.0;
  for (const Block& b : blocks_) block_area += b.area();
  const double bbox_area = chip_area();
  report.coverage = bbox_area > 0.0 ? block_area / bbox_area : 0.0;
  if (report.coverage < 0.95) {
    std::ostringstream os;
    os << "blocks cover only " << report.coverage * 100.0
       << "% of the chip bounding box";
    report.warnings.push_back(os.str());
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (neighbours(i).empty() && boundary_exposure(i) <= kGeomTol) {
      report.warnings.push_back("block '" + blocks_[i].name +
                                "' is thermally detached (no neighbours, no "
                                "boundary exposure)");
    }
  }

  report.ok = report.errors.empty();
  return report;
}

void Floorplan::require_valid() const {
  const ValidationReport report = validate();
  if (!report.ok) {
    std::string message = "invalid floorplan '" + name_ + "':";
    for (const auto& e : report.errors) message += "\n  - " + e;
    throw InvalidArgument(message);
  }
}

}  // namespace thermo::floorplan
