#include "floorplan/block.hpp"

#include <algorithm>

namespace thermo::floorplan {

const char* side_name(Side side) {
  switch (side) {
    case Side::kNorth: return "north";
    case Side::kSouth: return "south";
    case Side::kEast: return "east";
    case Side::kWest: return "west";
  }
  return "?";
}

double Block::centroid_to_side(Side side) const {
  switch (side) {
    case Side::kNorth:
    case Side::kSouth:
      return height / 2.0;
    case Side::kEast:
    case Side::kWest:
      return width / 2.0;
  }
  return 0.0;
}

double Block::side_length(Side side) const {
  switch (side) {
    case Side::kNorth:
    case Side::kSouth:
      return width;
    case Side::kEast:
    case Side::kWest:
      return height;
  }
  return 0.0;
}

bool Block::overlaps(const Block& other, double tol) const {
  const double overlap_x =
      std::min(right(), other.right()) - std::max(left(), other.left());
  const double overlap_y =
      std::min(top(), other.top()) - std::max(bottom(), other.bottom());
  return overlap_x > tol && overlap_y > tol;
}

bool Block::contains(double px, double py, double tol) const {
  return px >= left() - tol && px <= right() + tol && py >= bottom() - tol &&
         py <= top() + tol;
}

}  // namespace thermo::floorplan
