// HotSpot .flp format reader/writer.
//
// Format (one block per line):
//   <unit-name> <width> <height> <left-x> <bottom-y>
// '#' starts a comment; blank lines are ignored. Units are metres.
#pragma once

#include <iosfwd>
#include <string>

#include "floorplan/floorplan.hpp"

namespace thermo::floorplan {

/// Parses .flp text. Throws ParseError with a line number on malformed
/// input; throws InvalidArgument for duplicate names / bad dimensions.
Floorplan parse_flp(std::istream& in, std::string name = "flp");

/// Parses .flp from a string.
Floorplan parse_flp_string(const std::string& text, std::string name = "flp");

/// Loads a .flp file. Throws ParseError when the file cannot be opened.
Floorplan load_flp(const std::string& path);

/// Writes in HotSpot .flp format (round-trips through parse_flp).
void write_flp(const Floorplan& fp, std::ostream& out);

/// Serializes to a .flp string.
std::string to_flp_string(const Floorplan& fp);

}  // namespace thermo::floorplan
