// An axis-aligned rectangular floorplan block (a "core" at the
// granularity the paper schedules). Units are metres, HotSpot convention:
// (x, y) is the lower-left corner.
#pragma once

#include <string>

namespace thermo::floorplan {

enum class Side { kNorth, kSouth, kEast, kWest };

/// Human-readable side name ("north"...).
const char* side_name(Side side);

/// All four sides, in a fixed iteration order.
inline constexpr Side kAllSides[] = {Side::kNorth, Side::kSouth, Side::kEast,
                                     Side::kWest};

struct Block {
  std::string name;
  double width = 0.0;   ///< metres, extent along x
  double height = 0.0;  ///< metres, extent along y
  double x = 0.0;       ///< metres, lower-left corner
  double y = 0.0;       ///< metres, lower-left corner

  double area() const { return width * height; }
  double left() const { return x; }
  double right() const { return x + width; }
  double bottom() const { return y; }
  double top() const { return y + height; }
  double center_x() const { return x + width / 2.0; }
  double center_y() const { return y + height / 2.0; }

  /// Distance from the centroid to the given side's edge.
  double centroid_to_side(Side side) const;

  /// Length of the given side (width for N/S, height for E/W).
  double side_length(Side side) const;

  /// True when the interiors of the two blocks intersect (touching
  /// edges do not count as overlap).
  bool overlaps(const Block& other, double tol = 1e-12) const;

  /// True when `other` lies strictly inside this block's bounds.
  bool contains(double px, double py, double tol = 1e-12) const;
};

}  // namespace thermo::floorplan
