// Floorplan: a named collection of blocks with derived adjacency
// information (shared-edge lengths and chip-boundary exposure), the
// geometric substrate for both the RC thermal model and the paper's test
// session thermal model.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "floorplan/block.hpp"

namespace thermo::floorplan {

/// Lateral adjacency between two blocks: they abut along an axis and
/// share `shared_length` metres of edge.
struct Adjacency {
  std::size_t a = 0;
  std::size_t b = 0;
  double shared_length = 0.0;  ///< metres
  /// Side of block `a` on which `b` touches it.
  Side side_of_a = Side::kNorth;
};

/// Result of Floorplan::validate().
struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;    ///< overlaps, non-positive dims...
  std::vector<std::string> warnings;  ///< coverage gaps, detached blocks
  double coverage = 0.0;              ///< sum(block areas) / bbox area
};

class Floorplan {
 public:
  Floorplan() = default;
  explicit Floorplan(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a block (positive width/height, unique non-empty name required)
  /// and returns its index. Invalidates cached adjacency.
  std::size_t add_block(Block block);

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  const Block& block(std::size_t i) const;
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Index of the block with this name, std::nullopt when absent.
  std::optional<std::size_t> index_of(std::string_view name) const;

  // --- derived geometry (computed lazily, cached) ---

  /// Chip bounding box.
  double chip_width() const;
  double chip_height() const;
  double min_x() const;
  double min_y() const;
  double chip_area() const { return chip_width() * chip_height(); }

  /// All lateral adjacencies (each unordered pair listed once, a < b).
  const std::vector<Adjacency>& adjacencies() const;

  /// Shared edge length between blocks i and j (0 when not adjacent).
  double shared_edge(std::size_t i, std::size_t j) const;

  /// True when the blocks abut with positive shared edge length.
  bool are_adjacent(std::size_t i, std::size_t j) const;

  /// Indices of blocks adjacent to `i`, in increasing index order.
  std::vector<std::size_t> neighbours(std::size_t i) const;

  /// (neighbour index, shared edge length) pairs for block `i`, sorted
  /// by neighbour index — the O(degree) view model assembly iterates
  /// instead of scanning a dense row.
  const std::vector<std::pair<std::size_t, double>>& neighbour_edges(
      std::size_t i) const;

  /// Length of block i's perimeter lying on the chip bounding box,
  /// per side. (A block in the interior returns 0 everywhere.)
  double boundary_exposure(std::size_t i, Side side) const;

  /// Total boundary exposure over all four sides.
  double boundary_exposure(std::size_t i) const;

  /// Checks geometric consistency: positive dimensions, no pairwise
  /// overlap; warns about poor area coverage (< 95 % of bbox) and blocks
  /// with no neighbours and no boundary exposure.
  ValidationReport validate() const;

  /// Throws InvalidArgument when validate() reports errors.
  void require_valid() const;

 private:
  void invalidate_cache();
  void compute_cache() const;

  std::string name_;
  std::vector<Block> blocks_;

  // lazily computed
  mutable bool cache_valid_ = false;
  mutable std::vector<Adjacency> adjacencies_;
  /// Per-block (neighbour, shared length) lists, sorted by neighbour.
  /// O(nnz) storage where the old dense n×n shared-edge matrix was
  /// O(n²) — the memory wall that capped synthetic floorplan sizes.
  mutable std::vector<std::vector<std::pair<std::size_t, double>>> adj_;
  mutable double min_x_ = 0.0, min_y_ = 0.0, max_x_ = 0.0, max_y_ = 0.0;
  mutable std::vector<std::array<double, 4>> boundary_;  // N,S,E,W per block
};

/// Geometric tolerance (metres) used for abutment tests: edges closer
/// than this are considered touching. Floorplan dimensions are ~1e-3 m,
/// so 1e-9 m is far below any feature size but far above FP noise.
inline constexpr double kGeomTol = 1e-9;

}  // namespace thermo::floorplan
