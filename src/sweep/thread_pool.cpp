#include "sweep/thread_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace thermo::sweep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_workers_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_workers_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Metric lookups happen once per worker lifetime, not per task; the
  // per-worker busy counter makes load imbalance visible by name.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  obs::Counter& tasks = registry.counter("sweep.tasks");
  obs::Histogram& task_ns = registry.histogram("sweep.task_ns");
  obs::Counter& busy_ns = registry.counter(
      "sweep.worker." + std::to_string(worker_index) + ".busy_ns");
  std::unique_lock lock(mutex_);
  for (;;) {
    wake_workers_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    const bool timed = obs::enabled();
    const std::uint64_t task_start = timed ? obs::now_ns() : 0;
    {
      obs::TraceSpan span("sweep.task");
      try {
        task();
      } catch (...) {
        std::scoped_lock error_lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    if (timed) {
      const std::uint64_t elapsed = obs::now_ns() - task_start;
      tasks.add();
      task_ns.record(elapsed);
      busy_ns.add(elapsed);
    }
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_.notify_all();
  }
}

}  // namespace thermo::sweep
