// ScenarioSweep: fan a batch of scenarios across a thread pool, sharing
// one RCModel's cached factorizations.
//
// The paper explores schedules one knob setting at a time (TL, STCL,
// TAM width); every setting re-validates candidate sessions against the
// SAME floorplan. This layer batches those explorations: the
// conductance / backward-Euler factors are computed once (through
// thermal::ThermalSolverCache, keyed by RCModel::identity()) and every
// worker thread back-substitutes against them concurrently — the
// factor objects are const and thread-safe.
//
// Determinism: results are written into a slot per scenario index, and
// each scenario's computation is independent and itself deterministic,
// so the output is bit-identical for 1 and N threads (tested in
// tests/sweep_scenario_test.cpp). Only completion ORDER varies.
//
// Two entry points:
//  * run(model, scenarios) — thermal power scenarios (steady-state or
//    transient) against one shared model; per-scenario errors are
//    captured in the outcome instead of aborting the batch.
//  * map(n, fn) — generic deterministic fan-out for anything else, e.g.
//    one full Algorithm 1 run per STCL value (see
//    examples/explore_stcl.cpp and `thermosched sweep`). Exceptions
//    propagate: the first one thrown is rethrown on the caller.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "thermal/rc_model.hpp"
#include "thermal/steady_state.hpp"

namespace thermo::sweep {

struct SweepOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency.
  std::size_t threads = 0;
  /// Steady-state solver for duration == 0 scenarios. Only kCholesky and
  /// kLu benefit from the factor cache.
  thermal::SteadySolver solver = thermal::SteadySolver::kCholesky;
  /// Backward-Euler step for transient (duration > 0) scenarios.
  double dt = 1e-3;
};

/// One workload to evaluate against the shared model.
struct PowerScenario {
  std::string name;
  /// Per-block dissipation [W]; size must equal the model's block count.
  std::vector<double> block_power;
  /// Seconds to simulate transiently from ambient; 0 = steady state.
  double duration = 0.0;
};

struct ScenarioOutcome {
  std::string name;
  bool ok = false;
  std::string error;                ///< set when !ok
  std::vector<double> block_peak;   ///< per-block peak temperature [C]
  double max_temperature = 0.0;     ///< hottest block [C]
  std::size_t hottest_block = 0;
};

class ScenarioSweep {
 public:
  explicit ScenarioSweep(SweepOptions options = {});

  /// Threads a run will actually use.
  std::size_t thread_count() const { return threads_; }

  /// Evaluates every scenario against `model`; outcome i corresponds to
  /// scenarios[i]. Solver failures (and bad power vectors) land in the
  /// outcome's error field; the rest of the batch is unaffected.
  std::vector<ScenarioOutcome> run(
      const thermal::RCModel& model,
      const std::vector<PowerScenario>& scenarios) const;

  /// Generic deterministic fan-out: invokes fn(0..n-1) across the pool
  /// and returns results in index order. fn must be safe to call
  /// concurrently with itself. The first exception thrown by any call is
  /// rethrown here.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) const {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    // std::vector<bool> packs bits: concurrent writes to adjacent slots
    // would touch the same byte — a data race. Return int/char instead.
    static_assert(!std::is_same_v<R, bool>,
                  "ScenarioSweep::map callback must not return bool");
    std::vector<R> out(n);
    for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn) const;

  std::size_t threads_;
  SweepOptions options_;
};

}  // namespace thermo::sweep
