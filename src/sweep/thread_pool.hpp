// Minimal fixed-size thread pool for the sweep layer.
//
// Workers are spawned in the constructor and joined in the destructor;
// submit() enqueues a task, wait_idle() blocks until the queue is empty
// AND every worker has finished its current task. Exceptions escaping a
// task are captured — the first one is rethrown from wait_idle() on the
// submitting thread, so a sweep never dies silently inside a worker.
//
// This is deliberately a pool, not std::async: ScenarioSweep reuses the
// same workers for every scenario of a run, and the pool's size is the
// sweep's concurrency knob (SweepOptions::threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace thermo::sweep {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Pending tasks are still drained first; call
  /// wait_idle() before destruction when you need their exceptions.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed, then rethrows the
  /// first captured task exception, if any.
  void wait_idle();

 private:
  void worker_loop(std::size_t worker_index);

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace thermo::sweep
