#include "sweep/scenario_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "sweep/thread_pool.hpp"
#include "thermal/solver_cache.hpp"
#include "thermal/transient.hpp"
#include "util/error.hpp"

namespace thermo::sweep {

ScenarioSweep::ScenarioSweep(SweepOptions options) : options_(options) {
  threads_ = options.threads != 0
                 ? options.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  THERMO_REQUIRE(options_.dt > 0.0, "sweep dt must be positive");
}

void ScenarioSweep::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads_, n));
  // One task per worker pulling indices from a shared counter: cheap
  // dynamic load balancing (scenarios can differ wildly in cost — a
  // steady solve vs a long transient) without a task allocation per
  // index.
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < pool.size(); ++w) {
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

std::vector<ScenarioOutcome> ScenarioSweep::run(
    const thermal::RCModel& model,
    const std::vector<PowerScenario>& scenarios) const {
  // Factor eagerly on the calling thread so workers start with a warm
  // cache instead of serializing on the first lookup's factorization.
  bool any_steady = false, any_transient = false;
  for (const PowerScenario& s : scenarios) {
    if (s.duration > 0.0) {
      any_transient = true;
    } else {
      any_steady = true;
    }
  }
  auto& cache = thermal::ThermalSolverCache::instance();
  if (any_steady && options_.solver == thermal::SteadySolver::kCholesky) {
    cache.cholesky(model);
  } else if (any_steady && options_.solver == thermal::SteadySolver::kLu) {
    cache.lu(model);
  }
  if (any_transient) cache.stepper(model, options_.dt);

  std::vector<ScenarioOutcome> outcomes(scenarios.size());
  for_each_index(scenarios.size(), [&](std::size_t i) {
    const PowerScenario& scenario = scenarios[i];
    ScenarioOutcome& out = outcomes[i];
    out.name = scenario.name;
    try {
      if (scenario.duration > 0.0) {
        thermal::TransientOptions topt;
        topt.dt = options_.dt;
        const thermal::TransientResult result = thermal::simulate_transient(
            model, scenario.block_power, scenario.duration,
            thermal::ambient_state(model), topt);
        out.block_peak.assign(
            result.peak_temperature.begin(),
            result.peak_temperature.begin() +
                static_cast<std::ptrdiff_t>(model.block_count()));
      } else {
        const thermal::SteadyStateResult result = thermal::solve_steady_state(
            model, scenario.block_power, options_.solver);
        out.block_peak.assign(
            result.temperature.begin(),
            result.temperature.begin() +
                static_cast<std::ptrdiff_t>(model.block_count()));
      }
      const auto hottest =
          std::max_element(out.block_peak.begin(), out.block_peak.end());
      out.max_temperature = *hottest;
      out.hottest_block =
          static_cast<std::size_t>(hottest - out.block_peak.begin());
      out.ok = true;
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
    }
  });
  return outcomes;
}

}  // namespace thermo::sweep
