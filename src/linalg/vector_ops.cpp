#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace thermo::linalg {

void axpy(double alpha, const Vector& x, Vector& y) {
  THERMO_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(const Vector& a, const Vector& b) {
  THERMO_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(const Vector& v) {
  return std::sqrt(dot(v, v));
}

double norm_inf(const Vector& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::fabs(x));
  return best;
}

Vector subtract(const Vector& a, const Vector& b) {
  THERMO_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(const Vector& a, const Vector& b) {
  THERMO_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector scale(double alpha, const Vector& v) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = alpha * v[i];
  return out;
}

double max_element(const Vector& v) {
  THERMO_REQUIRE(!v.empty(), "max_element: empty vector");
  return *std::max_element(v.begin(), v.end());
}

bool all_finite(const Vector& v) {
  return std::all_of(v.begin(), v.end(),
                     [](double x) { return std::isfinite(x); });
}

}  // namespace thermo::linalg
