#include "linalg/dense_matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace thermo::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::from_rows(const std::vector<std::vector<double>>& rows) {
  THERMO_REQUIRE(!rows.empty(), "from_rows: need at least one row");
  const std::size_t cols = rows.front().size();
  DenseMatrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    THERMO_REQUIRE(rows[r].size() == cols, "from_rows: ragged rows");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& DenseMatrix::at(std::size_t r, std::size_t c) {
  THERMO_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double DenseMatrix::at(std::size_t r, std::size_t c) const {
  THERMO_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Vector DenseMatrix::multiply(const Vector& x) const {
  THERMO_REQUIRE(x.size() == cols_, "multiply: dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  THERMO_REQUIRE(cols_ == other.rows_, "multiply: dimension mismatch");
  DenseMatrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void DenseMatrix::add_scaled(double alpha, const DenseMatrix& other) {
  THERMO_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

bool DenseMatrix::approx_equal(const DenseMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

double DenseMatrix::norm_inf() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

}  // namespace thermo::linalg
