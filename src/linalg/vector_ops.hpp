// Free functions on std::vector<double> used throughout the numeric code.
#pragma once

#include <cstddef>
#include <vector>

namespace thermo::linalg {

using Vector = std::vector<double>;

/// y += alpha * x (sizes must match).
void axpy(double alpha, const Vector& x, Vector& y);

/// Dot product (sizes must match).
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// Max-magnitude norm; 0 for an empty vector.
double norm_inf(const Vector& v);

/// Element-wise a - b.
Vector subtract(const Vector& a, const Vector& b);

/// Element-wise a + b.
Vector add(const Vector& a, const Vector& b);

/// alpha * v.
Vector scale(double alpha, const Vector& v);

/// Largest element (requires non-empty).
double max_element(const Vector& v);

/// True when every element is finite.
bool all_finite(const Vector& v);

}  // namespace thermo::linalg
