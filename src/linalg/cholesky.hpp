// Cholesky factorization for symmetric positive-definite systems.
// Thermal conductance matrices (after grounding) are SPD, so this is the
// default steady-state solver: half the work of LU and a built-in
// sanity check (a non-SPD conductance matrix indicates a model bug).
#pragma once

#include "linalg/dense_matrix.hpp"

namespace thermo::linalg {

class CholeskyDecomposition {
 public:
  /// Factors A = L Lᵗ. Throws NumericalError when A is not (numerically)
  /// positive definite.
  explicit CholeskyDecomposition(const DenseMatrix& a);

  std::size_t size() const { return l_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Lower-triangular factor.
  const DenseMatrix& l() const { return l_; }

 private:
  DenseMatrix l_;
};

/// One-shot convenience: solve SPD system A x = b.
Vector cholesky_solve(const DenseMatrix& a, const Vector& b);

}  // namespace thermo::linalg
