// Cholesky factorization for symmetric positive-definite systems.
//
// Thermal conductance matrices (after grounding the ambient node) are
// SPD, so this is the default steady-state solver: half the flops of LU
// and a built-in sanity check (a non-SPD conductance matrix indicates a
// model bug, e.g. a negative stamped conductance).
//
// Preconditions and cost (see docs/SOLVERS.md for the selection guide):
//  * the input must be symmetric positive definite. Symmetry is NOT
//    verified (only the lower triangle is read); positive definiteness
//    is detected during factorization and reported as NumericalError.
//  * factorization is n^3/3 flops; each subsequent solve is two
//    triangular substitutions, 2 n^2 flops. When the matrix is reused
//    across many right-hand sides — the paper's Algorithm 1 evaluates
//    thousands of candidate sessions against one fixed G — keep the
//    CholeskyFactor (or let thermal::ThermalSolverCache do it) and call
//    solve() per rhs instead of the one-shot cholesky_solve().
#pragma once

#include "linalg/dense_matrix.hpp"

namespace thermo::linalg {

class CholeskyDecomposition {
 public:
  /// Factors A = L Lᵗ. Throws NumericalError when A is not (numerically)
  /// positive definite. Only the lower triangle of A is read.
  explicit CholeskyDecomposition(const DenseMatrix& a);

  std::size_t size() const { return l_.rows(); }

  /// Solves A x = b (two triangular substitutions; reusable, thread-safe).
  Vector solve(const Vector& b) const;

  /// Multi-RHS overload: solves A X = B column-by-column.
  DenseMatrix solve(const DenseMatrix& b) const;

  /// Lower-triangular factor.
  const DenseMatrix& l() const { return l_; }

 private:
  DenseMatrix l_;
};

/// "Factor once, solve many" is the intended usage; the alias names it.
using CholeskyFactor = CholeskyDecomposition;

/// One-shot convenience: solve SPD system A x = b (factors every call —
/// prefer a CholeskyFactor when the matrix is fixed across calls).
Vector cholesky_solve(const DenseMatrix& a, const Vector& b);

}  // namespace thermo::linalg
