#include "linalg/ode.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace thermo::linalg {

Vector rk4_step(const OdeRhs& f, double t, const Vector& y, double dt) {
  const Vector k1 = f(t, y);
  Vector tmp = y;
  axpy(0.5 * dt, k1, tmp);
  const Vector k2 = f(t + 0.5 * dt, tmp);
  tmp = y;
  axpy(0.5 * dt, k2, tmp);
  const Vector k3 = f(t + 0.5 * dt, tmp);
  tmp = y;
  axpy(dt, k3, tmp);
  const Vector k4 = f(t + dt, tmp);

  Vector out = y;
  const double w = dt / 6.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    out[i] += w * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
  return out;
}

Vector rk4_integrate(const OdeRhs& f, double t0, double t1, Vector y0, double dt,
                     const std::function<void(double, const Vector&)>& observer) {
  THERMO_REQUIRE(dt > 0.0, "rk4_integrate: dt must be positive");
  THERMO_REQUIRE(t1 >= t0, "rk4_integrate: t1 must be >= t0");
  double t = t0;
  while (t < t1) {
    const double step = std::min(dt, t1 - t);
    y0 = rk4_step(f, t, y0, step);
    t += step;
    if (observer) observer(t, y0);
  }
  return y0;
}

Vector rkf45_integrate(const OdeRhs& f, double t0, double t1, Vector y0,
                       const AdaptiveOptions& options,
                       const std::function<void(double, const Vector&)>& observer) {
  THERMO_REQUIRE(t1 >= t0, "rkf45_integrate: t1 must be >= t0");
  // Fehlberg coefficients.
  static constexpr double a2 = 1.0 / 4, a3 = 3.0 / 8, a4 = 12.0 / 13, a5 = 1.0,
                          a6 = 1.0 / 2;
  static constexpr double b21 = 1.0 / 4;
  static constexpr double b31 = 3.0 / 32, b32 = 9.0 / 32;
  static constexpr double b41 = 1932.0 / 2197, b42 = -7200.0 / 2197,
                          b43 = 7296.0 / 2197;
  static constexpr double b51 = 439.0 / 216, b52 = -8.0, b53 = 3680.0 / 513,
                          b54 = -845.0 / 4104;
  static constexpr double b61 = -8.0 / 27, b62 = 2.0, b63 = -3544.0 / 2565,
                          b64 = 1859.0 / 4104, b65 = -11.0 / 40;
  // 4th order solution weights.
  static constexpr double c1 = 25.0 / 216, c3 = 1408.0 / 2565,
                          c4 = 2197.0 / 4104, c5 = -1.0 / 5;
  // 5th order solution weights (for the error estimate).
  static constexpr double d1 = 16.0 / 135, d3 = 6656.0 / 12825,
                          d4 = 28561.0 / 56430, d5 = -9.0 / 50, d6 = 2.0 / 55;

  const std::size_t n = y0.size();
  double t = t0;
  double dt = std::clamp(options.dt_initial, options.dt_min, options.dt_max);

  for (std::size_t steps = 0; t < t1; ++steps) {
    if (steps >= options.max_steps) {
      throw NumericalError("rkf45: step budget exhausted");
    }
    dt = std::min(dt, t1 - t);

    auto stage = [&](const std::vector<std::pair<double, const Vector*>>& terms,
                     double frac) {
      Vector arg = y0;
      for (const auto& [coeff, k] : terms) axpy(dt * coeff, *k, arg);
      return f(t + frac * dt, arg);
    };

    const Vector k1 = f(t, y0);
    const Vector k2 = stage({{b21, &k1}}, a2);
    const Vector k3 = stage({{b31, &k1}, {b32, &k2}}, a3);
    const Vector k4 = stage({{b41, &k1}, {b42, &k2}, {b43, &k3}}, a4);
    const Vector k5 = stage({{b51, &k1}, {b52, &k2}, {b53, &k3}, {b54, &k4}}, a5);
    const Vector k6 =
        stage({{b61, &k1}, {b62, &k2}, {b63, &k3}, {b64, &k4}, {b65, &k5}}, a6);

    double error = 0.0;
    Vector y4(n), y5(n);
    for (std::size_t i = 0; i < n; ++i) {
      y4[i] = y0[i] + dt * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c5 * k5[i]);
      y5[i] = y0[i] + dt * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] + d5 * k5[i] +
                            d6 * k6[i]);
      const double scale =
          options.abs_tol + options.rel_tol * std::max(std::fabs(y0[i]), std::fabs(y4[i]));
      error = std::max(error, std::fabs(y5[i] - y4[i]) / scale);
    }

    if (error <= 1.0) {
      t += dt;
      y0 = std::move(y5);  // local extrapolation: accept the 5th-order value
      if (observer) observer(t, y0);
    }
    const double factor =
        error > 0.0 ? 0.9 * std::pow(error, -0.2) : 4.0;
    dt *= std::clamp(factor, 0.2, 4.0);
    dt = std::clamp(dt, options.dt_min, options.dt_max);
    if (dt <= options.dt_min && error > 1.0) {
      throw NumericalError("rkf45: step size collapsed below dt_min");
    }
  }
  return y0;
}

LinearImplicitStepper::LinearImplicitStepper(const DenseMatrix& g,
                                             const Vector& capacitance,
                                             double dt)
    : capacitance_(capacitance),
      dt_(dt),
      factor_([&] {
        THERMO_REQUIRE(g.rows() == g.cols(), "stepper: G must be square");
        THERMO_REQUIRE(capacitance.size() == g.rows(),
                       "stepper: capacitance size mismatch");
        THERMO_REQUIRE(dt > 0.0, "stepper: dt must be positive");
        DenseMatrix system = g;
        for (std::size_t i = 0; i < capacitance.size(); ++i) {
          THERMO_REQUIRE(capacitance[i] > 0.0,
                         "stepper: capacitances must be positive");
          system(i, i) += capacitance[i] / dt;
        }
        return LuDecomposition(system);
      }()) {}

Vector LinearImplicitStepper::step(const Vector& y, const Vector& b) const {
  THERMO_REQUIRE(y.size() == size(), "stepper: state size mismatch");
  THERMO_REQUIRE(b.size() == size(), "stepper: rhs size mismatch");
  // (C/dt + G) y_next = C/dt y + b
  Vector rhs(size());
  for (std::size_t i = 0; i < size(); ++i) {
    rhs[i] = capacitance_[i] / dt_ * y[i] + b[i];
  }
  return factor_.solve(rhs);
}

}  // namespace thermo::linalg
