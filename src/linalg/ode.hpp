// ODE integrators.
//
// Two families:
//  * generic explicit integrators (RK4, adaptive RK45) over an arbitrary
//    right-hand side f(t, y) — used for cross-checks in tests;
//  * a dedicated implicit (backward Euler) stepper for the *linear*
//    thermal system  C dT/dt = p - G (T - T_amb), which is stiff: die
//    nodes have millisecond time constants while the heat sink has
//    second-scale ones. The BE system matrix (C/dt + G) is factored once
//    per step size and reused; step() is const and thread-safe, so one
//    stepper can serve many concurrent transient simulations (that is
//    how thermal::ThermalSolverCache shares it — see docs/SOLVERS.md).
#pragma once

#include <functional>

#include "linalg/dense_matrix.hpp"
#include "linalg/lu.hpp"
#include "linalg/vector_ops.hpp"

namespace thermo::linalg {

using OdeRhs = std::function<Vector(double t, const Vector& y)>;

/// Classic fixed-step 4th-order Runge-Kutta step.
Vector rk4_step(const OdeRhs& f, double t, const Vector& y, double dt);

/// Integrates from t0 to t1 with fixed steps (the last step is shortened
/// to land exactly on t1). `observer`, when given, is called after every
/// step with (t, y).
Vector rk4_integrate(const OdeRhs& f, double t0, double t1, Vector y0,
                     double dt,
                     const std::function<void(double, const Vector&)>& observer = {});

struct AdaptiveOptions {
  double abs_tol = 1e-8;
  double rel_tol = 1e-6;
  double dt_initial = 1e-3;
  double dt_min = 1e-12;
  double dt_max = 1.0;
  std::size_t max_steps = 2000000;
};

/// Adaptive Runge-Kutta-Fehlberg 4(5). Throws NumericalError when the
/// step size collapses below dt_min or the step budget is exhausted.
Vector rkf45_integrate(const OdeRhs& f, double t0, double t1, Vector y0,
                       const AdaptiveOptions& options = {},
                       const std::function<void(double, const Vector&)>& observer = {});

/// Backward-Euler stepper for the linear constant-coefficient system
///     C dy/dt = b - G y
/// with diagonal capacitance C (as a vector) and dense G.
class LinearImplicitStepper {
 public:
  /// Factors (C/dt + G); dt must be > 0, capacitance entries > 0.
  LinearImplicitStepper(const DenseMatrix& g, const Vector& capacitance,
                        double dt);

  double dt() const { return dt_; }
  std::size_t size() const { return capacitance_.size(); }

  /// Advances one step: returns y(t + dt) given y(t) and constant rhs b.
  Vector step(const Vector& y, const Vector& b) const;

 private:
  Vector capacitance_;
  double dt_;
  LuDecomposition factor_;
};

}  // namespace thermo::linalg
