#include "linalg/ordering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace thermo::linalg {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}  // namespace

std::vector<std::size_t> min_degree_ordering(const SparseMatrix& a) {
  THERMO_REQUIRE(a.rows() == a.cols(), "min degree: matrix must be square");
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm;
  perm.reserve(n);
  if (n == 0) return perm;

  const std::vector<std::size_t>& ap = a.row_offsets();
  const std::vector<std::size_t>& ai = a.col_indices();

  // Off-diagonal adjacency; lists stay sorted throughout (CSR columns
  // are already sorted, and elimination updates merge in order).
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    adj[r].reserve(ap[r + 1] - ap[r]);
    for (std::size_t q = ap[r]; q < ap[r + 1]; ++q) {
      if (ai[q] != r) adj[r].push_back(ai[q]);
    }
  }

  // Withhold near-dense rows (package nodes coupled to every die
  // block): they go to the END of the ordering, sorted by (initial
  // degree, index), and are stripped from the active graph so every
  // elimination union stays proportional to local clique size.
  const std::size_t threshold = std::max<std::size_t>(
      16, 4 * static_cast<std::size_t>(
                  std::sqrt(static_cast<double>(n))));
  std::vector<char> withheld(n, 0);
  std::vector<std::pair<std::size_t, std::size_t>> dense_rows;
  for (std::size_t i = 0; i < n; ++i) {
    if (adj[i].size() > threshold) {
      withheld[i] = 1;
      dense_rows.emplace_back(adj[i].size(), i);
    }
  }
  if (!dense_rows.empty()) {
    std::sort(dense_rows.begin(), dense_rows.end());
    for (std::size_t i = 0; i < n; ++i) {
      if (withheld[i]) {
        adj[i].clear();
        continue;
      }
      std::vector<std::size_t>& list = adj[i];
      list.erase(std::remove_if(
                     list.begin(), list.end(),
                     [&](std::size_t w) { return withheld[w] != 0; }),
                 list.end());
    }
  }

  // Pending nodes keyed by (current degree, index): begin() is always
  // the unique minimum-degree, minimum-index node, so the ordering is
  // deterministic.
  std::vector<std::size_t> degree(n, 0);
  std::set<std::pair<std::size_t, std::size_t>> queue;
  for (std::size_t i = 0; i < n; ++i) {
    if (withheld[i]) continue;
    degree[i] = adj[i].size();
    queue.emplace(degree[i], i);
  }

  std::vector<std::size_t> clique;
  std::vector<std::size_t> merged;
  while (!queue.empty()) {
    const std::size_t v = queue.begin()->second;
    queue.erase(queue.begin());
    perm.push_back(v);

    clique = std::move(adj[v]);
    adj[v].clear();
    adj[v].shrink_to_fit();

    // Drop v from each neighbour, then union the elimination clique
    // into each neighbour's list (sorted merge).
    for (std::size_t w : clique) {
      std::vector<std::size_t>& list = adj[w];
      const auto it = std::lower_bound(list.begin(), list.end(), v);
      if (it != list.end() && *it == v) list.erase(it);
    }
    for (std::size_t w : clique) {
      std::vector<std::size_t>& list = adj[w];
      merged.clear();
      merged.reserve(list.size() + clique.size());
      std::size_t li = 0;
      for (std::size_t u : clique) {
        if (u == w) continue;
        while (li < list.size() && list[li] < u) merged.push_back(list[li++]);
        if (li < list.size() && list[li] == u) ++li;
        merged.push_back(u);
      }
      while (li < list.size()) merged.push_back(list[li++]);
      list.swap(merged);
      if (list.size() != degree[w]) {
        queue.erase({degree[w], w});
        degree[w] = list.size();
        queue.emplace(degree[w], w);
      }
    }
  }

  for (const std::pair<std::size_t, std::size_t>& entry : dense_rows) {
    perm.push_back(entry.second);
  }
  return perm;
}

std::size_t symbolic_factor_nonzeros(const SparseMatrix& a,
                                     const std::vector<std::size_t>& perm) {
  THERMO_REQUIRE(a.rows() == a.cols(),
                 "symbolic factor: matrix must be square");
  const std::size_t n = a.rows();
  if (n == 0) return 0;
  const std::vector<std::size_t>& ap = a.row_offsets();
  const std::vector<std::size_t>& ai = a.col_indices();

  std::vector<std::size_t> inv;
  if (!perm.empty()) {
    THERMO_REQUIRE(perm.size() == n,
                   "symbolic factor: permutation size mismatch");
    inv.assign(n, kNone);
    for (std::size_t k = 0; k < n; ++k) {
      THERMO_REQUIRE(perm[k] < n && inv[perm[k]] == kNone,
                     "symbolic factor: not a permutation");
      inv[perm[k]] = k;
    }
  }

  // Elimination-tree column counts — the same walk as the symbolic
  // pass in SparseCholeskyFactor, summed instead of stored. Reading
  // the whole row of A and keeping entries that land strictly below
  // the diagonal AFTER permutation needs pattern symmetry, which
  // stamped conductance matrices provide by construction.
  std::vector<std::size_t> parent(n, kNone);
  std::vector<std::size_t> flag(n, kNone);
  std::size_t nnz = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t row = perm.empty() ? k : perm[k];
    flag[k] = k;
    for (std::size_t q = ap[row]; q < ap[row + 1]; ++q) {
      std::size_t i = perm.empty() ? ai[q] : inv[ai[q]];
      if (i >= k) continue;
      for (; flag[i] != k; i = parent[i]) {
        if (parent[i] == kNone) parent[i] = k;
        ++nnz;
        flag[i] = k;
      }
    }
  }
  return nnz;
}

}  // namespace thermo::linalg
