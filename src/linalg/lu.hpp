// LU decomposition with partial pivoting. Used to factor the transient
// thermal system matrix once per step size and back-substitute per step.
#pragma once

#include "linalg/dense_matrix.hpp"

namespace thermo::linalg {

class LuDecomposition {
 public:
  /// Factors a square matrix; throws NumericalError when (numerically)
  /// singular.
  explicit LuDecomposition(const DenseMatrix& a);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  DenseMatrix solve(const DenseMatrix& b) const;

  /// Determinant of the original matrix.
  double determinant() const;

  /// Inverse (prefer solve() when possible).
  DenseMatrix inverse() const;

 private:
  DenseMatrix lu_;              // combined L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int permutation_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
Vector lu_solve(const DenseMatrix& a, const Vector& b);

}  // namespace thermo::linalg
