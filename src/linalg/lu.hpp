// LU decomposition with partial pivoting.
//
// The general-purpose dense factorization: used to factor the transient
// backward-Euler system matrix (C/dt + G) once per step size and
// back-substitute per step, and as a cross-check for the Cholesky path
// (docs/SOLVERS.md compares the three solvers).
//
// Preconditions and behaviour:
//  * any square, non-singular matrix is accepted — no symmetry or
//    definiteness requirement. Numerical singularity (pivot magnitude
//    below 1e-300 after row exchange) throws NumericalError.
//  * pivoting is partial (row exchanges only): each column's pivot is
//    the largest-magnitude entry on or below the diagonal. This bounds
//    the multipliers by 1 and is stable for the diagonally dominant
//    matrices the thermal stack produces; no column pivoting is done,
//    so pathological growth is theoretically possible on arbitrary
//    input.
//  * factorization is 2 n^3/3 flops (twice Cholesky); each solve() is
//    2 n^2. Reuse the factor across right-hand sides — that is what
//    LinearImplicitStepper and thermal::ThermalSolverCache do.
#pragma once

#include "linalg/dense_matrix.hpp"

namespace thermo::linalg {

class LuDecomposition {
 public:
  /// Factors a square matrix; throws NumericalError when (numerically)
  /// singular.
  explicit LuDecomposition(const DenseMatrix& a);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b (reusable, thread-safe).
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  DenseMatrix solve(const DenseMatrix& b) const;

  /// Determinant of the original matrix.
  double determinant() const;

  /// Inverse (prefer solve() when possible).
  DenseMatrix inverse() const;

 private:
  DenseMatrix lu_;              // combined L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int permutation_sign_ = 1;
};

/// "Factor once, solve many" is the intended usage; the alias names it.
using LuFactor = LuDecomposition;

/// One-shot convenience: solve A x = b (factors every call — prefer an
/// LuFactor when the matrix is fixed across calls).
Vector lu_solve(const DenseMatrix& a, const Vector& b);

}  // namespace thermo::linalg
