// Fill-reducing ordering for sparse symmetric factorization.
//
// min_degree_ordering() is a deterministic minimum-degree pass over the
// undirected adjacency graph of a symmetric CSR matrix: at every step
// it eliminates the active node with the smallest current degree
// (ties broken by smallest node index), turning the eliminated node's
// neighbourhood into a clique, exactly mirroring the fill a Cholesky
// factorization would create. Two deviations from textbook AMD keep it
// simple and fast enough for 100k-node thermal graphs:
//
//  * Dense rows are withheld up front. Thermal models have a handful of
//    package nodes (e.g. the spreader centre) coupled to EVERY die
//    block; feeding those to min-degree makes each elimination union
//    O(n) and degrades the whole pass to O(n²). Nodes whose initial
//    degree exceeds max(16, 4·sqrt(n)) are removed from the active
//    graph and appended at the END of the ordering sorted by (initial
//    degree, index) — eliminating near-dense rows last is also the
//    fill-optimal place for them.
//  * Plain minimum degree, no approximate-degree / supernode
//    amalgamation: elimination unions are sorted-vector merges, and
//    the pending queue is a std::set<(degree, node)> so the ordering
//    is a pure function of the sparsity pattern — identical on every
//    platform and run (the determinism contract in docs/SOLVERS.md).
//
// symbolic_factor_nonzeros() counts strictly-lower nnz(L) for a
// (optionally permuted) pattern via the elimination-tree column-count
// pass — the symbolic half of SparseCholeskyFactor without allocating
// or computing the numeric factor, so benches can report pre-ordering
// fill at sizes where actually factoring the unordered matrix would be
// too slow or too large.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"

namespace thermo::linalg {

/// Fill-reducing permutation for a structurally symmetric square CSR
/// pattern. Returns `perm` with perm[k] = the original index eliminated
/// k-th (i.e. new position -> old index). Deterministic; values are
/// ignored, only the pattern matters. Requires a square matrix.
std::vector<std::size_t> min_degree_ordering(const SparseMatrix& a);

/// Strictly-lower non-zero count of the Cholesky factor L of P·A·Pᵗ,
/// where perm[k] = original index eliminated k-th (empty = natural
/// order). Symbolic only — O(nnz(L) walk work, O(n) memory, no numeric
/// factor is formed. Requires a square, structurally symmetric matrix.
std::size_t symbolic_factor_nonzeros(const SparseMatrix& a,
                                     const std::vector<std::size_t>& perm = {});

}  // namespace thermo::linalg
