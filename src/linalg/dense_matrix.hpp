// Row-major dense matrix. Sized for thermal networks (tens to a few
// thousand nodes); no SIMD heroics, just cache-friendly loops.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace thermo::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Identity matrix of size n.
  static DenseMatrix identity(std::size_t n);

  /// Builds from a nested initializer-style container (rows of equal width).
  static DenseMatrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Unchecked access for hot loops.
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Matrix-vector product.
  Vector multiply(const Vector& x) const;

  /// Matrix-matrix product.
  DenseMatrix multiply(const DenseMatrix& other) const;

  DenseMatrix transposed() const;

  /// this += alpha * other (same shape).
  void add_scaled(double alpha, const DenseMatrix& other);

  /// True when |a-b| <= tol element-wise (same shape required).
  bool approx_equal(const DenseMatrix& other, double tol) const;

  /// True when the matrix equals its transpose within tol.
  bool is_symmetric(double tol = 1e-12) const;

  /// Max-magnitude entry.
  double norm_inf() const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace thermo::linalg
