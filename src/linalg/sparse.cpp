#include "linalg/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace thermo::linalg {

SparseMatrix::Builder::Builder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseMatrix::Builder::reserve(std::size_t entries) {
  coo_rows_.reserve(entries);
  coo_cols_.reserve(entries);
  coo_values_.reserve(entries);
}

void SparseMatrix::Builder::add(std::size_t row, std::size_t col, double value) {
  THERMO_REQUIRE(row < rows_ && col < cols_, "sparse add: index out of range");
  coo_rows_.push_back(row);
  coo_cols_.push_back(col);
  coo_values_.push_back(value);
}

SparseMatrix SparseMatrix::Builder::build() const {
  SparseMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;

  // Sort COO triplets by (row, col) via an index permutation. The
  // insertion-index tie-break makes the sort stable, so duplicate
  // stamps at one (row, col) are summed in the exact order add() saw
  // them — assembly through the builder is bit-identical to summing
  // the same stamps into a dense accumulator, which keeps golden
  // serve records byte-stable when models assemble sparse-first.
  std::vector<std::size_t> order(coo_rows_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (coo_rows_[a] != coo_rows_[b]) return coo_rows_[a] < coo_rows_[b];
    if (coo_cols_[a] != coo_cols_[b]) return coo_cols_[a] < coo_cols_[b];
    return a < b;
  });

  m.row_offsets_.assign(rows_ + 1, 0);
  for (std::size_t k : order) {
    const std::size_t r = coo_rows_[k];
    const std::size_t c = coo_cols_[k];
    const double v = coo_values_[k];
    // Merge duplicates: same (r, c) as the last emitted entry.
    if (!m.col_indices_.empty() && m.row_offsets_[r + 1] > m.row_offsets_[r] &&
        m.col_indices_.back() == c &&
        m.row_offsets_[r + 1] == m.col_indices_.size()) {
      m.values_.back() += v;
      continue;
    }
    m.col_indices_.push_back(c);
    m.values_.push_back(v);
    m.row_offsets_[r + 1] = m.col_indices_.size();
  }
  // Fill gaps for empty rows: offsets must be non-decreasing.
  for (std::size_t r = 1; r <= rows_; ++r) {
    m.row_offsets_[r] = std::max(m.row_offsets_[r], m.row_offsets_[r - 1]);
  }
  return m;
}

SparseMatrix SparseMatrix::from_dense(const DenseMatrix& dense, double drop_tol) {
  // Test/interop convenience only: scanning n² entries defeats the
  // sparse-first assembly path. Hot paths stamp through Builder; the
  // debug assertion catches any large-n caller that densifies.
  assert(dense.rows() * dense.cols() <= std::size_t{4096} * 4096 &&
         "from_dense on a large matrix: hot paths must assemble via Builder");
  Builder builder(dense.rows(), dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      const double v = dense(r, c);
      if (std::fabs(v) > drop_tol) builder.add(r, c, v);
    }
  }
  return builder.build();
}

Vector SparseMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply_into(x, y);
  return y;
}

void SparseMatrix::multiply_into(const Vector& x, Vector& y) const {
  THERMO_REQUIRE(x.size() == cols_, "sparse multiply: dimension mismatch");
  THERMO_REQUIRE(&x != &y, "sparse multiply: x and y must not alias");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      sum += values_[k] * x[col_indices_[k]];
    }
    y[r] = sum;
  }
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  THERMO_REQUIRE(row < rows_ && col < cols_, "sparse at: index out of range");
  const auto begin = col_indices_.begin() +
                     static_cast<std::ptrdiff_t>(row_offsets_[row]);
  const auto end = col_indices_.begin() +
                   static_cast<std::ptrdiff_t>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

Vector SparseMatrix::diagonal() const {
  THERMO_REQUIRE(rows_ == cols_, "diagonal: matrix must be square");
  Vector d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) d[r] = at(r, r);
  return d;
}

DenseMatrix SparseMatrix::to_dense() const {
  DenseMatrix dense(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      dense(r, col_indices_[k]) += values_[k];
    }
  }
  return dense;
}

bool SparseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      if (std::fabs(values_[k] - at(col_indices_[k], r)) > tol) return false;
    }
  }
  return true;
}

}  // namespace thermo::linalg
