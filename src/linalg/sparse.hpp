// Compressed-sparse-row matrix with a COO-style builder. Thermal
// conductance matrices are ~5 non-zeros per row, so large floorplans
// (hundreds of blocks) solve much faster through CSR + CG than dense.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace thermo::linalg {

class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() = default;

  /// Incremental COO builder; duplicate (row, col) entries are summed
  /// when the CSR matrix is built (natural for stamping conductances).
  /// Duplicates are merged in insertion order (the sort is stable), so
  /// a builder-assembled matrix is bit-identical to accumulating the
  /// same stamps into a dense matrix and converting.
  class Builder {
   public:
    Builder(std::size_t rows, std::size_t cols);
    /// Pre-allocates triplet storage for `entries` add() calls.
    void reserve(std::size_t entries);
    /// Adds `value` at (row, col).
    void add(std::size_t row, std::size_t col, double value);
    SparseMatrix build() const;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

   private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<std::size_t> coo_rows_;
    std::vector<std::size_t> coo_cols_;
    std::vector<double> coo_values_;
  };

  static SparseMatrix from_dense(const DenseMatrix& dense, double drop_tol = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// y = A x into a caller-owned buffer (resized to rows()). The
  /// allocation-free fast path the iterative solvers and the sparse
  /// simulation backend share: one SpMV per CG iteration / RK stage
  /// with no per-call vector churn.
  void multiply_into(const Vector& x, Vector& y) const;

  /// Entry lookup (binary search within the row); 0 if absent.
  double at(std::size_t row, std::size_t col) const;

  /// Diagonal entries (0 when absent). Requires square.
  Vector diagonal() const;

  DenseMatrix to_dense() const;

  bool is_symmetric(double tol = 1e-12) const;

  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // size rows_ + 1
  std::vector<std::size_t> col_indices_;  // sorted within each row
  std::vector<double> values_;
};

}  // namespace thermo::linalg
