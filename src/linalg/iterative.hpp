// Iterative solvers for sparse SPD / diagonally dominant systems.
#pragma once

#include <cstddef>

#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"

namespace thermo::linalg {

struct IterativeOptions {
  double tolerance = 1e-10;      ///< relative residual target ||r||/||b||
  std::size_t max_iterations = 10000;
};

struct IterativeResult {
  Vector solution;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

/// Conjugate gradients with Jacobi (diagonal) preconditioning.
/// Requires a symmetric positive-definite matrix.
IterativeResult conjugate_gradient(const SparseMatrix& a, const Vector& b,
                                   const IterativeOptions& options = {});

/// Gauss-Seidel sweeps; converges for diagonally dominant systems
/// (thermal conductance matrices qualify).
IterativeResult gauss_seidel(const SparseMatrix& a, const Vector& b,
                             const IterativeOptions& options = {});

/// Jacobi iteration; mostly a reference implementation for tests.
IterativeResult jacobi(const SparseMatrix& a, const Vector& b,
                       const IterativeOptions& options = {});

}  // namespace thermo::linalg
