// Iterative solvers for sparse SPD / diagonally dominant systems.
//
// These are the large-floorplan escape hatch: past a few thousand nodes
// the O(n^3) dense factorizations stop paying off and the O(nnz) per
// iteration of CG wins (docs/SOLVERS.md quantifies the crossover).
// Unlike the factor objects in cholesky.hpp/lu.hpp there is nothing to
// cache — every solve restarts from scratch — so the thermal layer's
// ThermalSolverCache does not apply to this path.
#pragma once

#include <cstddef>

#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"

namespace thermo::linalg {

struct IterativeOptions {
  /// Convergence is declared when the RELATIVE residual ||b - A x|| / ||b||
  /// (Euclidean norms) drops to `tolerance` or below; a zero rhs converges
  /// immediately to x = 0. This is a residual bound, not an error bound:
  /// the error in x can exceed it by the condition number of A.
  double tolerance = 1e-10;
  std::size_t max_iterations = 10000;
};

struct IterativeResult {
  Vector solution;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

/// Conjugate gradients with Jacobi (diagonal) preconditioning.
/// Requires a symmetric positive-definite matrix (not verified; CG on an
/// indefinite matrix typically stalls or diverges and reports
/// converged = false). Grounded thermal conductance matrices qualify.
IterativeResult conjugate_gradient(const SparseMatrix& a, const Vector& b,
                                   const IterativeOptions& options = {});

/// Gauss-Seidel sweeps; converges for diagonally dominant systems
/// (thermal conductance matrices qualify: each row's diagonal carries
/// the sum of its off-diagonals plus any conductance to ambient).
IterativeResult gauss_seidel(const SparseMatrix& a, const Vector& b,
                             const IterativeOptions& options = {});

/// Jacobi iteration; mostly a reference implementation for tests.
IterativeResult jacobi(const SparseMatrix& a, const Vector& b,
                       const IterativeOptions& options = {});

}  // namespace thermo::linalg
