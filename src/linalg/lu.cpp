#include "linalg/lu.hpp"

#include <cmath>

#include "util/error.hpp"

namespace thermo::linalg {

LuDecomposition::LuDecomposition(const DenseMatrix& a) : lu_(a) {
  THERMO_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    std::size_t pivot_row = col;
    double pivot_mag = std::fabs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) {
      throw NumericalError("LU: matrix is singular at column " +
                           std::to_string(col));
    }
    if (pivot_row != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(pivot_row, c), lu_(col, c));
      }
      std::swap(perm_[pivot_row], perm_[col]);
      permutation_sign_ = -permutation_sign_;
    }
    const double pivot = lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) / pivot;
      lu_(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  THERMO_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
  // Apply permutation, forward substitution with unit-lower L.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i) {
    double sum = y[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * y[j];
    y[i] = sum;
  }
  // Backward substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu_(ii, j) * y[j];
    y[ii] = sum / lu_(ii, ii);
  }
  return y;
}

DenseMatrix LuDecomposition::solve(const DenseMatrix& b) const {
  THERMO_REQUIRE(b.rows() == size(), "LU solve: rhs row mismatch");
  DenseMatrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    Vector solved = solve(column);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = solved[r];
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = permutation_sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

DenseMatrix LuDecomposition::inverse() const {
  return solve(DenseMatrix::identity(size()));
}

Vector lu_solve(const DenseMatrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace thermo::linalg
