#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/error.hpp"

namespace thermo::linalg {

CholeskyDecomposition::CholeskyDecomposition(const DenseMatrix& a)
    : l_(a.rows(), a.cols(), 0.0) {
  THERMO_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          throw NumericalError(
              "Cholesky: matrix is not positive definite at row " +
              std::to_string(i));
        }
        l_(i, i) = std::sqrt(sum);
      } else {
        l_(i, j) = sum / l_(j, j);
      }
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  THERMO_REQUIRE(b.size() == n, "Cholesky solve: rhs size mismatch");
  // Forward: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l_(i, j) * y[j];
    y[i] = sum / l_(i, i);
  }
  // Backward: Lᵗ x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= l_(j, ii) * y[j];
    y[ii] = sum / l_(ii, ii);
  }
  return y;
}

DenseMatrix CholeskyDecomposition::solve(const DenseMatrix& b) const {
  THERMO_REQUIRE(b.rows() == size(), "Cholesky solve: rhs row mismatch");
  DenseMatrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    const Vector solved = solve(column);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = solved[r];
  }
  return x;
}

Vector cholesky_solve(const DenseMatrix& a, const Vector& b) {
  return CholeskyDecomposition(a).solve(b);
}

}  // namespace thermo::linalg
