#include "linalg/sparse_cholesky.hpp"

#include <cmath>
#include <limits>

#include "linalg/ordering.hpp"
#include "util/error.hpp"

namespace thermo::linalg {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}  // namespace

SparseCholeskyFactor::SparseCholeskyFactor(const SparseMatrix& a,
                                           Ordering ordering)
    : ordering_(ordering) {
  THERMO_REQUIRE(a.rows() == a.cols(), "sparse cholesky: matrix must be square");
  n_ = a.rows();
  if (ordering_ == Ordering::kAuto) {
    ordering_ = n_ >= kOrderingAutoMinNodes ? Ordering::kMinDegree
                                            : Ordering::kNatural;
  }
  if (ordering_ == Ordering::kMinDegree && n_ > 1) {
    perm_ = min_degree_ordering(a);
    inv_perm_.assign(n_, 0);
    for (std::size_t k = 0; k < n_; ++k) inv_perm_[perm_[k]] = k;
    // Assemble P·A·Pᵗ through the builder (A carries both triangles,
    // so the permuted matrix does too; no duplicates arise).
    SparseMatrix::Builder builder(n_, n_);
    builder.reserve(a.nonzeros());
    const std::vector<std::size_t>& ap = a.row_offsets();
    const std::vector<std::size_t>& ai = a.col_indices();
    const std::vector<double>& ax = a.values();
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t q = ap[r]; q < ap[r + 1]; ++q) {
        builder.add(inv_perm_[r], inv_perm_[ai[q]], ax[q]);
      }
    }
    factorize(builder.build());
  } else {
    factorize(a);
  }
}

void SparseCholeskyFactor::factorize(const SparseMatrix& a) {
  const std::vector<std::size_t>& ap = a.row_offsets();
  const std::vector<std::size_t>& ai = a.col_indices();
  const std::vector<double>& ax = a.values();

  // Symbolic pass: elimination tree and per-column non-zero counts of L.
  // Row k of A's strictly-lower triangle reaches column k of L through
  // tree paths; walking each entry's column up to the root marked with
  // `flag == k` visits every L column that gains an entry in row k.
  std::vector<std::size_t> parent(n_, kNone);
  std::vector<std::size_t> flag(n_, kNone);
  std::vector<std::size_t> count(n_, 0);
  for (std::size_t k = 0; k < n_; ++k) {
    flag[k] = k;
    for (std::size_t p = ap[k]; p < ap[k + 1]; ++p) {
      std::size_t i = ai[p];
      if (i >= k) continue;
      for (; flag[i] != k; i = parent[i]) {
        if (parent[i] == kNone) parent[i] = k;
        ++count[i];
        flag[i] = k;
      }
    }
  }

  col_offsets_.assign(n_ + 1, 0);
  for (std::size_t j = 0; j < n_; ++j) {
    col_offsets_[j + 1] = col_offsets_[j] + count[j];
  }
  row_indices_.assign(col_offsets_[n_], 0);
  values_.assign(col_offsets_[n_], 0.0);
  diag_.assign(n_, 0.0);

  // Numeric pass (up-looking): for each row k, scatter the strictly-
  // lower entries of A's row k into the dense work vector y, recover
  // the non-zero pattern of L's row k in topological order via the
  // elimination tree, then eliminate column by column.
  std::vector<double> y(n_, 0.0);
  std::vector<std::size_t> pattern(n_, 0);
  std::vector<std::size_t> filled(n_, 0);  // entries of column j emitted so far
  std::fill(flag.begin(), flag.end(), kNone);
  for (std::size_t k = 0; k < n_; ++k) {
    std::size_t top = n_;
    double dk = 0.0;
    flag[k] = k;
    for (std::size_t p = ap[k]; p < ap[k + 1]; ++p) {
      const std::size_t col = ai[p];
      if (col > k) continue;  // only the lower triangle is read
      if (col == k) {
        dk += ax[p];
        continue;
      }
      y[col] += ax[p];
      std::size_t len = 0;
      for (std::size_t i = col; flag[i] != k; i = parent[i]) {
        pattern[len++] = i;
        flag[i] = k;
      }
      while (len > 0) pattern[--top] = pattern[--len];
    }
    for (std::size_t p = top; p < n_; ++p) {
      const std::size_t i = pattern[p];
      const double yi = y[i];
      y[i] = 0.0;
      const double lki = yi / diag_[i];
      for (std::size_t q = col_offsets_[i]; q < col_offsets_[i] + filled[i];
           ++q) {
        y[row_indices_[q]] -= values_[q] * yi;
      }
      dk -= lki * yi;
      row_indices_[col_offsets_[i] + filled[i]] = k;
      values_[col_offsets_[i] + filled[i]] = lki;
      ++filled[i];
    }
    if (!(dk > 0.0) || !std::isfinite(dk)) {
      throw NumericalError(
          "sparse cholesky: matrix is not positive definite (pivot " +
          std::to_string(dk) + " at row " + std::to_string(k) + ")");
    }
    diag_[k] = dk;
  }
}

Vector SparseCholeskyFactor::solve(const Vector& b) const {
  THERMO_REQUIRE(b.size() == n_, "sparse cholesky solve: size mismatch");
  if (perm_.empty()) {
    Vector x = b;
    solve_in_place(x);
    return x;
  }
  // Permute into factor order, substitute, permute back.
  Vector px(n_);
  for (std::size_t k = 0; k < n_; ++k) px[k] = b[perm_[k]];
  solve_in_place(px);
  Vector x(n_);
  for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = px[k];
  return x;
}

void SparseCholeskyFactor::solve_in_place(Vector& x) const {
  // L z = b (unit diagonal implicit).
  for (std::size_t j = 0; j < n_; ++j) {
    const double xj = x[j];
    for (std::size_t q = col_offsets_[j]; q < col_offsets_[j + 1]; ++q) {
      x[row_indices_[q]] -= values_[q] * xj;
    }
  }
  // D w = z.
  for (std::size_t j = 0; j < n_; ++j) x[j] /= diag_[j];
  // Lᵗ x = w.
  for (std::size_t j = n_; j-- > 0;) {
    double sum = x[j];
    for (std::size_t q = col_offsets_[j]; q < col_offsets_[j + 1]; ++q) {
      sum -= values_[q] * x[row_indices_[q]];
    }
    x[j] = sum;
  }
}

SparseImplicitStepper::SparseImplicitStepper(const SparseMatrix& g,
                                             const Vector& capacitance,
                                             double dt)
    : capacitance_(capacitance),
      dt_(dt),
      factor_([&] {
        THERMO_REQUIRE(g.rows() == g.cols(), "stepper: G must be square");
        THERMO_REQUIRE(capacitance.size() == g.rows(),
                       "stepper: capacitance size mismatch");
        THERMO_REQUIRE(dt > 0.0, "stepper: dt must be positive");
        // (C/dt + G) stays sparse: copy G's triplets and stamp C/dt on
        // the diagonal (the builder sums duplicates).
        SparseMatrix::Builder builder(g.rows(), g.cols());
        const std::vector<std::size_t>& offsets = g.row_offsets();
        const std::vector<std::size_t>& cols = g.col_indices();
        const std::vector<double>& values = g.values();
        for (std::size_t r = 0; r < g.rows(); ++r) {
          for (std::size_t q = offsets[r]; q < offsets[r + 1]; ++q) {
            builder.add(r, cols[q], values[q]);
          }
        }
        for (std::size_t i = 0; i < capacitance.size(); ++i) {
          THERMO_REQUIRE(capacitance[i] > 0.0,
                         "stepper: capacitances must be positive");
          builder.add(i, i, capacitance[i] / dt);
        }
        return SparseCholeskyFactor(builder.build());
      }()) {}

Vector SparseImplicitStepper::step(const Vector& y, const Vector& b) const {
  THERMO_REQUIRE(y.size() == size(), "stepper: state size mismatch");
  THERMO_REQUIRE(b.size() == size(), "stepper: rhs size mismatch");
  // (C/dt + G) y_next = C/dt y + b
  Vector rhs(size());
  for (std::size_t i = 0; i < size(); ++i) {
    rhs[i] = capacitance_[i] / dt_ * y[i] + b[i];
  }
  return factor_.solve(rhs);
}

}  // namespace thermo::linalg
