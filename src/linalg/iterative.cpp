#include "linalg/iterative.hpp"

#include <cmath>

#include "util/error.hpp"

namespace thermo::linalg {

namespace {
void check_system(const SparseMatrix& a, const Vector& b) {
  THERMO_REQUIRE(a.rows() == a.cols(), "iterative solver: matrix must be square");
  THERMO_REQUIRE(b.size() == a.rows(), "iterative solver: rhs size mismatch");
}
}  // namespace

IterativeResult conjugate_gradient(const SparseMatrix& a, const Vector& b,
                                   const IterativeOptions& options) {
  check_system(a, b);
  const std::size_t n = a.rows();
  IterativeResult result;
  result.solution.assign(n, 0.0);

  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  Vector diag = a.diagonal();
  for (double& d : diag) {
    if (d == 0.0) throw NumericalError("CG: zero diagonal entry");
  }

  Vector r = b;  // r = b - A*0
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
  Vector p = z;
  double rz = dot(r, z);

  Vector ap;  // SpMV buffer reused across iterations (multiply_into)
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    a.multiply_into(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) {
      throw NumericalError("CG: matrix is not positive definite");
    }
    const double alpha = rz / p_ap;
    axpy(alpha, p, result.solution);
    axpy(-alpha, ap, r);

    result.iterations = iter + 1;
    result.residual = norm2(r) / b_norm;
    if (result.residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;  // converged == false
}

IterativeResult gauss_seidel(const SparseMatrix& a, const Vector& b,
                             const IterativeOptions& options) {
  check_system(a, b);
  const std::size_t n = a.rows();
  IterativeResult result;
  result.solution.assign(n, 0.0);
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    for (std::size_t r = 0; r < n; ++r) {
      double sum = b[r];
      double diag = 0.0;
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        if (cols[k] == r) {
          diag = values[k];
        } else {
          sum -= values[k] * result.solution[cols[k]];
        }
      }
      if (diag == 0.0) throw NumericalError("Gauss-Seidel: zero diagonal entry");
      result.solution[r] = sum / diag;
    }
    result.iterations = iter + 1;
    const Vector residual = subtract(b, a.multiply(result.solution));
    result.residual = norm2(residual) / b_norm;
    if (result.residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

IterativeResult jacobi(const SparseMatrix& a, const Vector& b,
                       const IterativeOptions& options) {
  check_system(a, b);
  const std::size_t n = a.rows();
  IterativeResult result;
  result.solution.assign(n, 0.0);
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  const Vector diag = a.diagonal();
  for (double d : diag) {
    if (d == 0.0) throw NumericalError("Jacobi: zero diagonal entry");
  }

  Vector next(n);
  Vector ax;  // SpMV buffer reused across iterations (multiply_into)
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    a.multiply_into(result.solution, ax);
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = result.solution[i] + (b[i] - ax[i]) / diag[i];
    }
    result.solution.swap(next);
    result.iterations = iter + 1;
    const Vector residual = subtract(b, a.multiply(result.solution));
    result.residual = norm2(residual) / b_norm;
    if (result.residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace thermo::linalg
