// Sparse Cholesky factorization (LDLᵗ variant) for symmetric positive-
// definite systems in CSR form — the sparse-backend counterpart of
// cholesky.hpp.
//
// Thermal conductance matrices have ~5 off-diagonals per die row plus a
// handful of package rows that touch every die block. Because the
// package nodes are numbered LAST (see thermal/rc_model.hpp), natural
// ordering keeps their fill confined to the trailing rows of L: the die
// lattice factors with bandwidth-bounded fill and the ten package
// columns stay dense, so nnz(L) grows like n·(bandwidth + 10) instead
// of n²/2. No fill-reducing ordering is applied (an AMD pass is a
// ROADMAP item); the node numbering the thermal layer produces is
// already the good case.
//
// Preconditions and cost (docs/SOLVERS.md "Choosing a backend"):
//  * the input must be symmetric positive definite. Symmetry is NOT
//    verified (only the lower triangle, col <= row, is read); a
//    non-positive pivot is detected during factorization and reported
//    as NumericalError.
//  * factorization is O(Σ |col j of L|²) flops — for thermal networks
//    effectively linear in n — versus n³/3 dense; each solve() is
//    2·nnz(L) flops versus 2 n² dense.
//  * the algorithm is the classic up-looking LDLᵗ over the elimination
//    tree (symbolic pass computes the tree + column counts, numeric
//    pass fills L column by column). A = L·D·Lᵗ with unit-lower L and
//    diagonal D, so no square roots are taken; solve() is forward
//    substitution, a diagonal scale, and back substitution.
//  * solve() is const, deterministic, and thread-safe — the factor is
//    shareable across sweep workers exactly like the dense factors
//    (thermal::ThermalSolverCache caches both kinds under the same
//    model identity).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"

namespace thermo::linalg {

class SparseCholeskyFactor {
 public:
  /// Factors A = L D Lᵗ. Throws InvalidArgument when A is not square,
  /// NumericalError when A is not (numerically) positive definite.
  /// Only the lower triangle of A (col <= row) is read.
  explicit SparseCholeskyFactor(const SparseMatrix& a);

  std::size_t size() const { return n_; }

  /// Strictly-lower-triangular non-zeros of L (the unit diagonal is
  /// implicit). Exposed so benches/tests can report fill.
  std::size_t factor_nonzeros() const { return values_.size(); }

  /// Solves A x = b (forward + diagonal + backward substitution;
  /// reusable, thread-safe).
  Vector solve(const Vector& b) const;

 private:
  std::size_t n_ = 0;
  // L in compressed-sparse-column form, strictly lower triangle, row
  // indices increasing within each column (the natural order in which
  // the up-looking algorithm emits them).
  std::vector<std::size_t> col_offsets_;  // size n_ + 1
  std::vector<std::size_t> row_indices_;
  std::vector<double> values_;
  std::vector<double> diag_;  // D
};

/// Backward-Euler stepper for the linear constant-coefficient system
///     C dy/dt = b - G y
/// with diagonal capacitance C and SPARSE SPD G: factors (C/dt + G)
/// once with SparseCholeskyFactor and back-substitutes per step. The
/// sparse-backend counterpart of LinearImplicitStepper (linalg/ode.hpp)
/// with the same step() semantics; step() is const and thread-safe.
class SparseImplicitStepper {
 public:
  /// Factors (C/dt + G); dt must be > 0, capacitance entries > 0, and
  /// G square, SPD, with capacitance.size() == G rows.
  SparseImplicitStepper(const SparseMatrix& g, const Vector& capacitance,
                        double dt);

  double dt() const { return dt_; }
  std::size_t size() const { return capacitance_.size(); }
  const SparseCholeskyFactor& factor() const { return factor_; }

  /// Advances one step: returns y(t + dt) given y(t) and constant rhs b.
  Vector step(const Vector& y, const Vector& b) const;

 private:
  Vector capacitance_;
  double dt_;
  SparseCholeskyFactor factor_;
};

}  // namespace thermo::linalg
