// Sparse Cholesky factorization (LDLᵗ variant) for symmetric positive-
// definite systems in CSR form — the sparse-backend counterpart of
// cholesky.hpp.
//
// Thermal conductance matrices have ~5 off-diagonals per die row plus a
// handful of package rows that touch every die block. By default the
// factor applies a fill-reducing minimum-degree permutation
// (linalg/ordering.hpp) before the symbolic pass: the factorization
// runs on P·A·Pᵗ internally while solve() accepts and returns vectors
// in the ORIGINAL node order, so callers never see the permutation.
// factor_nonzeros() reports post-ordering fill. On a 64×64 grid model
// the ordering cuts nnz(L) from ~260k (natural, bandwidth-bound) to
// ~80k; on banded thermal numberings it never loses by much, and
// Ordering::kNatural remains available for baselines and tests.
//
// Preconditions and cost (docs/SOLVERS.md "Choosing a backend"):
//  * the input must be symmetric positive definite. Symmetry is NOT
//    verified (only the lower triangle, col <= row, is read); a
//    non-positive pivot is detected during factorization and reported
//    as NumericalError.
//  * factorization is O(Σ |col j of L|²) flops — for thermal networks
//    effectively linear in n — versus n³/3 dense; each solve() is
//    2·nnz(L) flops versus 2 n² dense.
//  * the algorithm is the classic up-looking LDLᵗ over the elimination
//    tree (symbolic pass computes the tree + column counts, numeric
//    pass fills L column by column). A = L·D·Lᵗ with unit-lower L and
//    diagonal D, so no square roots are taken; solve() is forward
//    substitution, a diagonal scale, and back substitution.
//  * solve() is const, deterministic, and thread-safe — the factor is
//    shareable across sweep workers exactly like the dense factors
//    (thermal::ThermalSolverCache caches both kinds under the same
//    model identity).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"

namespace thermo::linalg {

/// Fill-reducing ordering applied before the symbolic pass.
enum class Ordering {
  kNatural,    // factor A as given (baseline / debugging)
  kMinDegree,  // deterministic minimum-degree (linalg/ordering.hpp)
  kAuto,       // kMinDegree at/above kOrderingAutoMinNodes, else natural
};

/// Matrix size at and above which Ordering::kAuto applies min-degree.
/// Below it the fill win is negligible and natural order keeps small
/// models' historical bit-exact results (argmax tie-breaks included).
inline constexpr std::size_t kOrderingAutoMinNodes = 64;

class SparseCholeskyFactor {
 public:
  /// Factors A = L D Lᵗ, by default after a fill-reducing
  /// minimum-degree permutation (applied internally; solve() works in
  /// the original index order). Throws InvalidArgument when A is not
  /// square, NumericalError when A is not (numerically) positive
  /// definite. Only the lower triangle of the (permuted) matrix is
  /// read numerically, but with kMinDegree the PATTERN of both
  /// triangles must be symmetric — true by construction for stamped
  /// conductance matrices.
  explicit SparseCholeskyFactor(const SparseMatrix& a,
                                Ordering ordering = Ordering::kAuto);

  std::size_t size() const { return n_; }

  /// Strictly-lower-triangular non-zeros of L (the unit diagonal is
  /// implicit) — POST-ordering fill. Exposed so benches/tests can
  /// report fill.
  std::size_t factor_nonzeros() const { return values_.size(); }

  /// The ordering actually applied — kAuto is resolved at construction
  /// and never stored.
  Ordering ordering() const { return ordering_; }

  /// The fill-reducing permutation actually applied: perm()[k] is the
  /// original index eliminated k-th. Empty when factoring in natural
  /// order.
  const std::vector<std::size_t>& permutation() const { return perm_; }

  /// Solves A x = b (forward + diagonal + backward substitution;
  /// reusable, thread-safe). b and x are in the original index order.
  Vector solve(const Vector& b) const;

 private:
  void factorize(const SparseMatrix& a);
  void solve_in_place(Vector& x) const;

  std::size_t n_ = 0;
  Ordering ordering_ = Ordering::kNatural;
  std::vector<std::size_t> perm_;      // position -> original index
  std::vector<std::size_t> inv_perm_;  // original index -> position
  // L in compressed-sparse-column form, strictly lower triangle, row
  // indices increasing within each column (the natural order in which
  // the up-looking algorithm emits them).
  std::vector<std::size_t> col_offsets_;  // size n_ + 1
  std::vector<std::size_t> row_indices_;
  std::vector<double> values_;
  std::vector<double> diag_;  // D
};

/// Backward-Euler stepper for the linear constant-coefficient system
///     C dy/dt = b - G y
/// with diagonal capacitance C and SPARSE SPD G: factors (C/dt + G)
/// once with SparseCholeskyFactor and back-substitutes per step. The
/// sparse-backend counterpart of LinearImplicitStepper (linalg/ode.hpp)
/// with the same step() semantics; step() is const and thread-safe.
class SparseImplicitStepper {
 public:
  /// Factors (C/dt + G); dt must be > 0, capacitance entries > 0, and
  /// G square, SPD, with capacitance.size() == G rows.
  SparseImplicitStepper(const SparseMatrix& g, const Vector& capacitance,
                        double dt);

  double dt() const { return dt_; }
  std::size_t size() const { return capacitance_.size(); }
  const SparseCholeskyFactor& factor() const { return factor_; }

  /// Advances one step: returns y(t + dt) given y(t) and constant rhs b.
  Vector step(const Vector& y, const Vector& b) const;

 private:
  Vector capacitance_;
  double dt_;
  SparseCholeskyFactor factor_;
};

}  // namespace thermo::linalg
