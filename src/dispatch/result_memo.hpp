// ResultMemo: content-addressed cache of finished result records.
//
// Serve results are pure functions of the *canonical serialized
// request* (that is what makes the whole pipeline byte-deterministic),
// so that serialization doubles as a content address: two requests with
// identical canonical bytes must produce identical records, within one
// batch or across batches. The memo maps that address to the record so
// duplicates cost a lookup instead of a scheduler run.
//
// Addressing is FNV-1a 64 over the key bytes — but the full key is
// stored and compared too, so a hash collision degrades to a plain miss
// path rather than ever serving the wrong record (content-addressed,
// not hash-trusted).
//
// Like ThermalSolverCache and ScenarioRunner's model cache, capacity is
// LRU-capped: a long-lived server fed ever-fresh requests cannot grow
// memory monotonically; an evicted duplicate is simply recomputed.
// Recency is a splice-maintained list, so find/insert/evict are all
// O(1) — a full cache fed fresh keys must not degrade to scanning
// thousands of entries per insert while workers contend on the mutex.
// All operations are mutex-guarded; stats() reports hits/misses/
// insertions/evictions for the serve summary and bench.
//
// Concurrency contract (tests/dispatch_test.cpp hammers it): every
// operation, stats counters included, is serialized on one mutex, so
// hits + misses always equals the number of find() calls and
// insertions - evictions always equals entries, no matter how many
// workers race. What the memo can NOT check by locking is the
// single-writer-per-key *value* semantics it is built on: all writers
// of one key must derive the record from the key's content, so racing
// inserts carry identical bytes and first-insert-wins loses nothing.
// The engine's dedup planning upholds this (one leader executes per
// key); insert() enforces it with an identical-bytes invariant check —
// a divergent record for a present key throws LogicError instead of
// silently keeping either copy.
//
// find() and insert() are virtual so a batch engine holding a plain
// `ResultMemo*` can transparently be handed a DiskResultMemo (the
// disk-backed subclass layered on persist::SegmentStore).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace thermo::dispatch {

/// FNV-1a 64-bit over arbitrary bytes — the memo's content address,
/// exposed for tests and for callers that want to log compact request
/// digests. Delegates to thermo::fnv1a64 (util/hash.hpp): the disk
/// store addresses records with the SAME function, so memory and disk
/// tiers agree on every key.
std::uint64_t fnv1a64(std::string_view bytes);

class ResultMemo {
 public:
  /// Default bound: 4096 records ≈ a few MB of JSONL — roomy for a
  /// serving process, bounded for a long-lived one.
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit ResultMemo(std::size_t capacity = kDefaultCapacity);
  virtual ~ResultMemo() = default;

  ResultMemo(const ResultMemo&) = delete;
  ResultMemo& operator=(const ResultMemo&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// The record stored under `key`, or nullopt. Counts a hit or miss
  /// and refreshes the entry's LRU stamp.
  virtual std::optional<std::string> find(std::string_view key);

  /// Stores `record` under `key` (first insert wins on a racing
  /// duplicate). Evicts the least recently used entry at capacity.
  /// Invariant: a duplicate insert must carry bytes identical to the
  /// resident record — records are pure functions of their keys, which
  /// is the premise that makes first-insert-wins lossless. A divergent
  /// duplicate throws LogicError.
  virtual void insert(std::string_view key, std::string record);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;  ///< current resident records
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string record;
    /// Position in lru_ (most recent at the front); list iterators are
    /// stable, so a splice-to-front refresh never invalidates it.
    std::list<std::string>::iterator recency;
  };

  /// The FNV address IS the bucket hash. The map keys are string_views
  /// into lru_'s nodes (the one owned copy of each key — list nodes
  /// never move), which also gives allocation-free find().
  struct FnvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view key) const {
      return static_cast<std::size_t>(fnv1a64(key));
    }
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::string> lru_;  ///< keys, most recently used first
  std::unordered_map<std::string_view, Entry, FnvHash, std::equal_to<>>
      entries_;
  Stats stats_;
};

}  // namespace thermo::dispatch
