#include "dispatch/ordered_writer.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "util/error.hpp"

namespace thermo::dispatch {

OrderedWriter::OrderedWriter(std::ostream& out, std::size_t count,
                             Observer observer)
    : out_(out), count_(count), observer_(std::move(observer)) {}

void OrderedWriter::write_locked(std::size_t index, const std::string& record) {
  out_ << record << '\n';
  if (observer_) observer_(index, record);
}

void OrderedWriter::push(std::size_t index, std::string record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  THERMO_REQUIRE(index < count_, "OrderedWriter index out of range");
  THERMO_REQUIRE(index >= next_ && buffered_.find(index) == buffered_.end(),
                 "OrderedWriter index pushed twice");
  if (index != next_) {
    buffered_.emplace(index, std::move(record));
    max_buffered_ = std::max(max_buffered_, buffered_.size());
    return;
  }
  write_locked(index, record);
  ++next_;
  // Drain every buffered successor this push unblocked.
  for (auto it = buffered_.begin();
       it != buffered_.end() && it->first == next_;
       it = buffered_.erase(it)) {
    write_locked(it->first, it->second);
    ++next_;
  }
}

std::size_t OrderedWriter::written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_;
}

std::size_t OrderedWriter::max_buffered() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_buffered_;
}

void OrderedWriter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  THERMO_ENSURE(next_ == count_ && buffered_.empty(),
                "OrderedWriter finished with unwritten records");
}

}  // namespace thermo::dispatch
