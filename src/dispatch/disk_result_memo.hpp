// DiskResultMemo: a ResultMemo whose records also live in a crash-safe
// on-disk segment store, so a cold process inherits every result an
// earlier process computed (ROADMAP item: fleet-shared result cache).
//
// Tiering on find(): memory hit (the inherited LRU table) → disk hit
// (persist::SegmentStore::get, checksum-verified; the record is promoted
// into memory) → miss (the engine executes). insert() writes through:
// the record is appended durably (fsync before insert() returns, under
// the store's default SyncMode::kEveryRecord) and cached in memory.
// First-insert-wins holds across both tiers for the same reason as in
// the base class: records are pure functions of their content-address
// keys, so any duplicate — racing threads, racing *processes*, a
// restart replaying a batch — carries identical bytes.
//
// The disk store is stamped with kResultSchemaRevision. Bump it whenever
// the serve record format changes; an old cache directory is then wiped
// on open (SchemaPolicy::kWipeOnMismatch) instead of serving records the
// new code would misinterpret.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dispatch/result_memo.hpp"
#include "persist/segment_store.hpp"

namespace thermo::dispatch {

/// Payload schema revision of serve result records. Bump on any change
/// to the canonical request serialization (the keys) or the JSONL
/// result-line format (the values).
inline constexpr std::uint32_t kResultSchemaRevision = 1;

class DiskResultMemo final : public ResultMemo {
 public:
  struct Options {
    /// Capacity of the in-memory LRU tier.
    std::size_t memory_capacity = ResultMemo::kDefaultCapacity;
    /// Disk-store options. schema_revision is overridden with
    /// kResultSchemaRevision regardless of what is set here — the
    /// revision belongs to the record format, not to callers.
    persist::StoreOptions store;
  };

  /// Opens (or creates) the cache directory. Throws IoError when the
  /// directory cannot be created/read; damaged segment contents never
  /// prevent opening (they surface in store().stats()).
  DiskResultMemo(std::string dir, Options options);
  explicit DiskResultMemo(std::string dir)
      : DiskResultMemo(std::move(dir), Options{}) {}

  /// Memory, then disk (with promotion into memory), then miss.
  std::optional<std::string> find(std::string_view key) override;

  /// Durably appends to disk (unless the key is already stored), then
  /// caches in memory. Propagates IoError from the disk append — a
  /// record must never be acknowledged as cached when it is not durable.
  void insert(std::string_view key, std::string record) override;

  /// find()s answered by the disk tier (memory misses that promoted).
  std::size_t disk_hits() const {
    return disk_hits_.load(std::memory_order_relaxed);
  }

  persist::SegmentStore& store() { return store_; }
  const persist::SegmentStore& store() const { return store_; }

 private:
  persist::SegmentStore store_;
  std::atomic<std::size_t> disk_hits_{0};
};

}  // namespace thermo::dispatch
