#include "dispatch/calibrator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"
#include "util/json.hpp"

namespace thermo::dispatch {

namespace {

/// Regressor vector of one job: mirrors CostModel::estimate term by
/// term, with validations_per_core taken from the calibrator's fallback
/// constants (held fixed — see calibrator.hpp).
std::array<double, CostCalibrator::kDimensions> regressors(
    const CostFeatures& features, double validations_per_core) {
  const double n =
      static_cast<double>(std::max<std::size_t>(features.nodes, 1));
  const double solves_per_call =
      features.transient ? std::max(1.0, features.steps_per_call) : 1.0;
  const double calls =
      features.oracle_calls > 0.0
          ? features.oracle_calls
          : validations_per_core *
                static_cast<double>(std::max<std::size_t>(features.cores, 1));
  const double points =
      static_cast<double>(std::max<std::size_t>(features.stcl_points, 1));
  const double work = points * calls;
  // Same nnz rule as CostModel::estimate: supplied post-ordering fill,
  // else the predicted_factor_nnz(n) mesh model.
  const double nnz = features.solve_nnz > 0.0
                         ? features.solve_nnz
                         : predicted_factor_nnz(features.nodes);
  std::array<double, CostCalibrator::kDimensions> x{};
  x[0] = 1.0;                                               // per_request
  x[1] = features.sparse ? 0.0 : work * solves_per_call * n * n;  // dense
  x[2] = features.sparse ? work * solves_per_call * nnz : 0.0;    // sparse
  x[3] = work;                                              // per-call
  return x;
}

/// In-place 4×4 Cholesky solve of a·c = b; false when `a` (after the
/// caller's ridge) is not numerically SPD. Hand-rolled on fixed-size
/// arrays: the system is tiny and dispatch deliberately does not depend
/// on the linalg layer.
bool solve_spd(double a[CostCalibrator::kDimensions]
                       [CostCalibrator::kDimensions],
               const double b[CostCalibrator::kDimensions],
               double c[CostCalibrator::kDimensions]) {
  constexpr std::size_t kN = CostCalibrator::kDimensions;
  double l[kN][kN] = {};
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (std::size_t k = 0; k < j; ++k) sum -= l[i][k] * l[j][k];
      if (i == j) {
        if (!(sum > 0.0) || !std::isfinite(sum)) return false;
        l[i][i] = std::sqrt(sum);
      } else {
        l[i][j] = sum / l[j][j];
      }
    }
  }
  double z[kN];
  for (std::size_t i = 0; i < kN; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i][k] * z[k];
    z[i] = sum / l[i][i];
  }
  for (std::size_t i = kN; i-- > 0;) {
    double sum = z[i];
    for (std::size_t k = i + 1; k < kN; ++k) sum -= l[k][i] * c[k];
    c[i] = sum / l[i][i];
  }
  for (std::size_t i = 0; i < kN; ++i) {
    if (!std::isfinite(c[i])) return false;
  }
  return true;
}

/// Strict finite-number accessor for deserialize: nullopt on anything
/// that is not a finite JSON number.
std::optional<double> finite_number(const JsonValue* v) {
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double value = v->as_number();
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace

void CostCalibrator::observe(const CostFeatures& features,
                             double measured_seconds) {
  if (!std::isfinite(measured_seconds) || measured_seconds < 0.0) return;
  const auto x = regressors(features, fallback_.validations_per_core);
  for (std::size_t i = 0; i < kDimensions; ++i) {
    if (!std::isfinite(x[i])) return;  // absurd feature values: skip whole job
  }
  // Relative least squares: each observation is scaled by 1/measured,
  // so the fit minimizes Σ((x·c − y)/y)² — relative error, the metric
  // placement (and the bench gate) actually cares about — instead of
  // absolute seconds, which a single whale job would dominate. The
  // floor keeps timer-granularity noise on near-zero measurements from
  // dominating instead.
  const double weight = 1.0 / std::max(measured_seconds, kWeightFloorSeconds);
  for (std::size_t i = 0; i < kDimensions; ++i) {
    for (std::size_t j = 0; j < kDimensions; ++j) {
      xtx_[i][j] += weight * x[i] * weight * x[j];
    }
    xty_[i] += weight * x[i] * weight * measured_seconds;
  }
  ++samples_;
}

std::optional<CostConstants> CostCalibrator::fit() const {
  if (samples_ < kMinSamples) return std::nullopt;
  // Jacobi preconditioning: the relative weighting leaves the columns
  // at wildly different scales (the per-request column is Σ1/y² while
  // the work columns are ~Σ1), so the system is first normalized to
  // unit diagonal. The ridge then perturbs EVERY coefficient by ~1e-8
  // relative to its own scale — without this, a single max-diagonal
  // ridge crushes the small-scale columns to zero — and a column that
  // never varied (e.g. a batch with no sparse job) keeps scale 1 and is
  // pinned by the ridge alone.
  double scale[kDimensions];
  for (std::size_t i = 0; i < kDimensions; ++i) {
    const double diag = xtx_[i][i];
    scale[i] = diag > 0.0 && std::isfinite(diag)
                   ? 1.0 / std::sqrt(diag)
                   : 1.0;
  }
  double a[kDimensions][kDimensions];
  double b[kDimensions];
  for (std::size_t i = 0; i < kDimensions; ++i) {
    for (std::size_t j = 0; j < kDimensions; ++j) {
      a[i][j] = scale[i] * scale[j] * xtx_[i][j];
    }
    a[i][i] += 1e-8;
    b[i] = scale[i] * xty_[i];
  }
  double c[kDimensions];
  if (!solve_spd(a, b, c)) return std::nullopt;
  CostConstants fitted = fallback_;  // validations_per_core carries over
  fitted.per_request = std::max(scale[0] * c[0], kCoefficientFloor);
  fitted.dense_ops_per_node_sq = std::max(scale[1] * c[1], kCoefficientFloor);
  fitted.sparse_ops_per_nnz = std::max(scale[2] * c[2], kCoefficientFloor);
  fitted.per_call_overhead = std::max(scale[3] * c[3], kCoefficientFloor);
  return fitted;
}

bool CostCalibrator::ready() const { return fit().has_value(); }

CostConstants CostCalibrator::constants() const {
  const auto fitted = fit();
  return fitted ? *fitted : fallback_;
}

std::string CostCalibrator::serialize() const {
  JsonValue out = JsonValue::object();
  // v2: the sparse regressor changed from c·n to nnz(L) (post-ordering
  // fill) — v1 sufficient statistics would fit the wrong column, so old
  // blobs are discarded at deserialize and the server re-warms.
  out.set("schema", JsonValue::string("thermo.calibration.v2"));
  out.set("samples", JsonValue::number(static_cast<double>(samples_)));
  JsonValue xtx = JsonValue::array();
  for (std::size_t i = 0; i < kDimensions; ++i) {
    for (std::size_t j = 0; j < kDimensions; ++j) {
      xtx.append(JsonValue::number(xtx_[i][j]));
    }
  }
  out.set("xtx", std::move(xtx));
  JsonValue xty = JsonValue::array();
  for (std::size_t i = 0; i < kDimensions; ++i) {
    xty.append(JsonValue::number(xty_[i]));
  }
  out.set("xty", std::move(xty));
  return out.dump();
}

std::optional<CostCalibrator> CostCalibrator::deserialize(
    std::string_view text, const CostConstants& fallback) {
  JsonValue parsed;
  try {
    parsed = parse_json(text);
  } catch (const Error&) {
    return std::nullopt;
  }
  if (!parsed.is_object() || parsed.size() != 4) return std::nullopt;
  const JsonValue* schema = parsed.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "thermo.calibration.v2") {
    return std::nullopt;
  }
  const auto samples = finite_number(parsed.find("samples"));
  if (!samples || *samples < 0.0 || *samples != std::floor(*samples)) {
    return std::nullopt;
  }
  const JsonValue* xtx = parsed.find("xtx");
  const JsonValue* xty = parsed.find("xty");
  if (xtx == nullptr || !xtx->is_array() ||
      xtx->size() != kDimensions * kDimensions || xty == nullptr ||
      !xty->is_array() || xty->size() != kDimensions) {
    return std::nullopt;
  }
  CostCalibrator calibrator(fallback);
  calibrator.samples_ = static_cast<std::size_t>(*samples);
  for (std::size_t i = 0; i < kDimensions; ++i) {
    for (std::size_t j = 0; j < kDimensions; ++j) {
      const auto value = finite_number(&xtx->items()[i * kDimensions + j]);
      if (!value) return std::nullopt;
      calibrator.xtx_[i][j] = *value;
    }
    const auto value = finite_number(&xty->items()[i]);
    if (!value) return std::nullopt;
    calibrator.xty_[i] = *value;
  }
  return calibrator;
}

double median_relative_error(const std::vector<double>& estimates,
                             const std::vector<double>& measured) {
  const std::size_t n = std::min(estimates.size(), measured.size());
  std::vector<double> ratios;
  ratios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (estimates[i] > 0.0 && measured[i] > 0.0 &&
        std::isfinite(estimates[i]) && std::isfinite(measured[i])) {
      ratios.push_back(measured[i] / estimates[i]);
    }
  }
  if (ratios.empty()) return 0.0;
  const auto median_of = [](std::vector<double>& values) {
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };
  const double scale = median_of(ratios);
  std::vector<double> errors;
  errors.reserve(ratios.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (estimates[i] > 0.0 && measured[i] > 0.0 &&
        std::isfinite(estimates[i]) && std::isfinite(measured[i])) {
      errors.push_back(std::abs(scale * estimates[i] - measured[i]) /
                       measured[i]);
    }
  }
  return median_of(errors);
}

}  // namespace thermo::dispatch
