#include "dispatch/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace thermo::dispatch {

double predicted_factor_nnz(std::size_t nodes) {
  const double n = static_cast<double>(std::max<std::size_t>(nodes, 1));
  return n * (4.0 + std::log2(n));
}

double CostModel::estimate(const CostFeatures& features) const {
  const double n = static_cast<double>(std::max<std::size_t>(features.nodes, 1));
  const double nnz = features.solve_nnz > 0.0
                         ? features.solve_nnz
                         : predicted_factor_nnz(features.nodes);
  const double solve_ops =
      features.sparse ? constants_.sparse_ops_per_nnz * nnz
                      : constants_.dense_ops_per_node_sq * n * n;
  const double solves_per_call =
      features.transient ? std::max(1.0, features.steps_per_call) : 1.0;
  const double calls =
      features.oracle_calls > 0.0
          ? features.oracle_calls
          : constants_.validations_per_core *
                static_cast<double>(std::max<std::size_t>(features.cores, 1));
  const double points =
      static_cast<double>(std::max<std::size_t>(features.stcl_points, 1));
  return constants_.per_request +
         points * calls *
             (solves_per_call * solve_ops + constants_.per_call_overhead);
}

}  // namespace thermo::dispatch
