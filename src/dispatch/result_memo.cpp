#include "dispatch/result_memo.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace thermo::dispatch {

std::uint64_t fnv1a64(std::string_view bytes) {
  return ::thermo::fnv1a64(bytes);
}

ResultMemo::ResultMemo(std::size_t capacity) : capacity_(capacity) {
  THERMO_REQUIRE(capacity >= 1, "ResultMemo capacity must be >= 1");
}

std::optional<std::string> ResultMemo::find(std::string_view key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.recency);
  return it->second.record;
}

void ResultMemo::insert(std::string_view key, std::string record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Racing duplicate executions produce identical bytes (the record is
    // a pure function of the key's content); keep the first. A divergent
    // duplicate means some writer broke that purity — caching would then
    // silently serve one of two different answers, so fail loudly.
    THERMO_ENSURE(record == it->second.record,
                  "divergent record inserted for an existing memo key — "
                  "records must be pure functions of their keys");
    lru_.splice(lru_.begin(), lru_, it->second.recency);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(std::string_view(lru_.back()));
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key);
  entries_.emplace(std::string_view(lru_.front()),
                   Entry{std::move(record), lru_.begin()});
  ++stats_.insertions;
}

ResultMemo::Stats ResultMemo::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace thermo::dispatch
