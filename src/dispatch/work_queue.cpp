#include "dispatch/work_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace thermo::dispatch {

const char* schedule_policy_name(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo: return "fifo";
    case SchedulePolicy::kLjf: return "ljf";
  }
  return "?";
}

std::optional<SchedulePolicy> schedule_policy_from_name(std::string_view name) {
  if (name == "fifo") return SchedulePolicy::kFifo;
  if (name == "ljf") return SchedulePolicy::kLjf;
  return std::nullopt;
}

WorkQueue::WorkQueue(SchedulePolicy policy) : policy_(policy) {}

void WorkQueue::push(std::size_t index, double cost) {
  THERMO_REQUIRE(!sealed_, "WorkQueue::push after seal()");
  order_.push_back(Item{index, cost});
}

void WorkQueue::seal() {
  THERMO_REQUIRE(!sealed_, "WorkQueue::seal called twice");
  sealed_ = true;
  if (policy_ == SchedulePolicy::kLjf) {
    // stable_sort + the ascending-index tiebreak make the pop order a
    // pure function of (costs, indices) — no dependence on push timing.
    std::stable_sort(order_.begin(), order_.end(),
                     [](const Item& a, const Item& b) {
                       if (a.cost != b.cost) return a.cost > b.cost;
                       return a.index < b.index;
                     });
  }
}

std::optional<std::size_t> WorkQueue::pop() {
  THERMO_REQUIRE(sealed_, "WorkQueue::pop before seal()");
  const std::size_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= order_.size()) return std::nullopt;
  return order_[slot].index;
}

}  // namespace thermo::dispatch
