#include "dispatch/work_queue.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "util/error.hpp"

namespace thermo::dispatch {

namespace {

struct PolicyRegistry {
  std::mutex mutex;
  std::map<std::string, PolicyOrder, std::less<>> policies;
};

/// Process-wide registry, built-ins preregistered on first touch.
/// Comparators order by the primary key ONLY — seal()'s stable_sort
/// supplies the ascending-index tiebreak (see work_queue.hpp).
PolicyRegistry& registry() {
  static PolicyRegistry& instance = *[] {
    auto* r = new PolicyRegistry;  // leaked: outlives every static dtor
    r->policies.emplace("fifo", PolicyOrder{});  // keep insertion order
    r->policies.emplace("ljf", [](const WorkItem& a, const WorkItem& b) {
      return a.cost > b.cost;
    });
    r->policies.emplace("edf", [](const WorkItem& a, const WorkItem& b) {
      return a.deadline < b.deadline;
    });
    // WSPT: a.cost/a.priority < b.cost/b.priority, cross-multiplied so
    // the comparison is exact (priorities are guarded finite positive).
    r->policies.emplace("priority", [](const WorkItem& a, const WorkItem& b) {
      return a.cost * b.priority < b.cost * a.priority;
    });
    r->policies.emplace("srpt", [](const WorkItem& a, const WorkItem& b) {
      return a.cost < b.cost;
    });
    return r;
  }();
  return instance;
}

}  // namespace

const char* schedule_policy_name(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo: return "fifo";
    case SchedulePolicy::kLjf: return "ljf";
    case SchedulePolicy::kEdf: return "edf";
    case SchedulePolicy::kPriority: return "priority";
    case SchedulePolicy::kSrpt: return "srpt";
  }
  return "?";
}

std::optional<SchedulePolicy> schedule_policy_from_name(std::string_view name) {
  if (name == "fifo") return SchedulePolicy::kFifo;
  if (name == "ljf") return SchedulePolicy::kLjf;
  if (name == "edf") return SchedulePolicy::kEdf;
  if (name == "priority") return SchedulePolicy::kPriority;
  if (name == "srpt") return SchedulePolicy::kSrpt;
  return std::nullopt;
}

void register_schedule_policy(std::string_view name, PolicyOrder order) {
  THERMO_REQUIRE(!name.empty(), "schedule policy name must be non-empty");
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const bool inserted =
      reg.policies.emplace(std::string(name), std::move(order)).second;
  THERMO_REQUIRE(inserted, "schedule policy '" + std::string(name) +
                               "' is already registered");
}

bool schedule_policy_registered(std::string_view name) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.policies.find(name) != reg.policies.end();
}

std::vector<std::string> registered_schedule_policies() {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.policies.size());
  for (const auto& [name, order] : reg.policies) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

WorkQueue::WorkQueue(SchedulePolicy policy)
    : WorkQueue(std::string_view(schedule_policy_name(policy))) {}

WorkQueue::WorkQueue(std::string_view policy_name)
    : policy_name_(policy_name) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.policies.find(policy_name);
  THERMO_REQUIRE(it != reg.policies.end(),
                 "unknown schedule policy '" + policy_name_ + "'");
  order_fn_ = it->second;
}

void WorkQueue::push(std::size_t index, double cost) {
  WorkItem item;
  item.index = index;
  item.cost = cost;
  push(item);
}

void WorkQueue::push(const WorkItem& item) {
  THERMO_REQUIRE(!sealed_, "WorkQueue::push after seal()");
  THERMO_REQUIRE(std::isfinite(item.cost) && item.cost >= 0.0,
                 "WorkQueue::push: cost must be finite and >= 0");
  THERMO_REQUIRE(!std::isnan(item.deadline) && item.deadline > 0.0,
                 "WorkQueue::push: deadline must be > 0 (kNoDeadline if unset)");
  THERMO_REQUIRE(std::isfinite(item.priority) && item.priority > 0.0,
                 "WorkQueue::push: priority must be finite and > 0");
  order_.push_back(item);
}

void WorkQueue::seal() {
  THERMO_REQUIRE(!sealed_, "WorkQueue::seal called twice");
  sealed_ = true;
  if (order_fn_) {
    // stable_sort over insertion order: equal primary keys keep
    // ascending input index, making the pop order a pure function of
    // (items, policy) — no dependence on push timing.
    std::stable_sort(order_.begin(), order_.end(), order_fn_);
  }
}

std::optional<std::size_t> WorkQueue::pop() {
  THERMO_REQUIRE(sealed_, "WorkQueue::pop before seal()");
  const std::size_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= order_.size()) return std::nullopt;
  return order_[slot].index;
}

}  // namespace thermo::dispatch
