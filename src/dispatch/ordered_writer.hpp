// OrderedWriter: stream results out in input order as they complete.
//
// The old serve path buffered every record until the whole batch
// finished, then wrote them all — correct, but a 10k-request batch held
// 10k records in memory and the consumer saw nothing until the slowest
// request was done. The writer keeps the ordering contract ("output
// line i answers input line i") while streaming: a record whose index
// is the next unwritten one goes straight to the sink (plus any
// buffered successors it unblocks); out-of-order completions wait in a
// min-ordered buffer sized by the batch's *skew*, not its length.
//
// Under FIFO the buffer stays small (workers finish near input order);
// under LJF the whale is emitted first only if it is line 0 — otherwise
// early small results queue behind it, which is exactly the memory the
// policy trades for makespan. max_buffered() reports the high-water
// mark so the serve summary can show that trade.
//
// push() is thread-safe; the sink is only ever touched under the lock
// and records are written strictly sequentially, so the output bytes
// are identical for any thread count, policy, or completion order.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace thermo::dispatch {

class OrderedWriter {
 public:
  /// Called for each record as it is written (strictly in index order,
  /// under the writer's lock — must not call back into the writer).
  /// Lets front-ends tally per-record facts without re-buffering the
  /// batch.
  using Observer = std::function<void(std::size_t index, const std::string&)>;

  /// Writes `count` records to `out`, one line each ('\n'-terminated).
  /// The stream is borrowed and must outlive the writer.
  OrderedWriter(std::ostream& out, std::size_t count, Observer observer = {});

  OrderedWriter(const OrderedWriter&) = delete;
  OrderedWriter& operator=(const OrderedWriter&) = delete;

  /// Hands over record `index` (0-based, < count, each index exactly
  /// once). Writes immediately when `index` is the next unwritten slot
  /// — draining any buffered successors — and buffers otherwise.
  void push(std::size_t index, std::string record);

  /// Records written to the sink so far.
  std::size_t written() const;

  /// High-water mark of simultaneously buffered (completed but not yet
  /// writable) records.
  std::size_t max_buffered() const;

  /// Asserts every record was pushed and flushed through. Call once,
  /// after the batch; throws LogicError on a short batch (an index was
  /// never pushed).
  void finish();

 private:
  void write_locked(std::size_t index, const std::string& record);

  std::ostream& out_;
  std::size_t count_;
  Observer observer_;
  mutable std::mutex mutex_;
  std::size_t next_ = 0;  ///< lowest index not yet written
  std::map<std::size_t, std::string> buffered_;
  std::size_t max_buffered_ = 0;
};

}  // namespace thermo::dispatch
