// WorkQueue: the policy-pluggable work placement of the dispatch layer.
//
// serve-style batches are wildly skewed — ROADMAP measured one
// 1034-node sparse request at ~100× an Alpha request — so *which job a
// freed worker picks next* decides the batch makespan and who meets
// their deadline. The queue owns exactly that decision through a
// name-keyed registry of ordering policies (the same registration idiom
// as SPDK's pluggable accel modules). Built-ins:
//
//  * fifo     — input order, the historical serve behaviour:
//               predictable, but a whale request near the end of the
//               batch starts after all the small fry and sets the
//               makespan almost by accident.
//  * ljf      — longest-job-first by estimated cost: the classic LPT
//               heuristic for makespan on identical machines. Whales
//               start first, small jobs backfill the other workers.
//  * edf      — earliest-deadline-first: jobs with the nearest
//               deadline_s start first; deadline-free jobs (kNoDeadline
//               = +inf) sort after every deadlined one. The classic
//               miss-count heuristic when a batch carries SLOs.
//  * priority — weighted-shortest-processing-time by cost/priority
//               ratio (a.cost/a.priority ascending): high-priority
//               cheap jobs first, which minimises priority-weighted
//               total completion time.
//  * srpt     — shortest-job-first by estimated cost (the remaining
//               time of a never-preempted job is its full cost):
//               minimises mean completion time, the latency-friendly
//               counterpoint to ljf's makespan focus.
//
// A policy's comparator orders by its *primary key only* — no index
// tiebreak inside the comparator. seal() applies it with stable_sort
// over insertion order, so equal keys keep ascending input index and
// the pop order is a pure function of (items, policy), never of push
// timing. That also makes third-party policies (register_schedule_policy)
// deterministic for free.
//
// The policy reorders *execution start* only. Result placement is by
// input index (dispatch::OrderedWriter), so output bytes are identical
// across policies — the hard serve invariant. bench_dispatch gates the
// makespan and deadline-miss wins in CI.
//
// Usage: push() every job, seal() once, then pop() concurrently from
// worker threads. pop() after seal() is a lock-free atomic fetch over a
// frozen order (the same shared-counter idiom as sweep::ScenarioSweep).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace thermo::dispatch {

/// Built-in policies; third-party registrations are addressed by name
/// only (register_schedule_policy).
enum class SchedulePolicy {
  kFifo,      ///< input order (historical serve behaviour)
  kLjf,       ///< longest-job-first by estimated cost
  kEdf,       ///< earliest-deadline-first (deadline-free jobs last)
  kPriority,  ///< smallest cost/priority ratio first (WSPT)
  kSrpt       ///< shortest-job-first by estimated cost
};

/// Deadline value of a job without one: +inf, so edf's ascending sort
/// naturally places deadline-free work after every deadlined job.
constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// One schedulable job as a policy comparator sees it.
struct WorkItem {
  std::size_t index = 0;          ///< input position (result placement key)
  double cost = 0.0;              ///< CostModel estimate (relative or seconds)
  double deadline = kNoDeadline;  ///< seconds from batch start; kNoDeadline if unset
  double priority = 1.0;          ///< relative weight, higher = more urgent
};

/// Strict-weak-order over the policy's primary key ONLY (return false
/// on ties) — stable_sort supplies the ascending-index tiebreak. An
/// empty function means "keep insertion order" (fifo).
using PolicyOrder = std::function<bool(const WorkItem&, const WorkItem&)>;

/// Canonical spelling used in CLI/JSON ("fifo", "ljf", "edf",
/// "priority", "srpt").
const char* schedule_policy_name(SchedulePolicy policy);

/// Inverse of schedule_policy_name; nullopt for anything else. Callers
/// (the serve flag, bench) own their error reporting.
std::optional<SchedulePolicy> schedule_policy_from_name(std::string_view name);

/// Registers a named ordering policy; the built-ins above are
/// preregistered. Throws InvalidArgument on an empty name or a name
/// already taken (including the built-ins) — policies are process-wide
/// and first registration wins forever. Thread-safe.
void register_schedule_policy(std::string_view name, PolicyOrder order);

/// True when `name` resolves to a registered policy. Thread-safe.
bool schedule_policy_registered(std::string_view name);

/// All registered policy names, sorted. Thread-safe.
std::vector<std::string> registered_schedule_policies();

class WorkQueue {
 public:
  explicit WorkQueue(SchedulePolicy policy = SchedulePolicy::kFifo);
  /// Registry lookup by name — how third-party policies are reached.
  /// Throws InvalidArgument when `policy_name` is not registered.
  explicit WorkQueue(std::string_view policy_name);

  const std::string& policy_name() const { return policy_name_; }

  /// Enqueues job `index` with its estimated cost (deadline-free,
  /// priority 1). Only valid before seal().
  void push(std::size_t index, double cost);

  /// Enqueues one job. Guards: cost must be finite and >= 0, deadline
  /// must be > 0 (kNoDeadline allowed, NaN not), priority must be
  /// finite and > 0. Only valid before seal().
  void push(const WorkItem& item);

  /// Freezes the pop order: stable-sorts insertion order by the
  /// policy's comparator (fifo keeps insertion order as-is). Ties keep
  /// ascending input index, so the order — and therefore worker
  /// assignment under 1 thread — is fully deterministic. Only valid
  /// once.
  void seal();

  /// Next job index, or nullopt when drained. Thread-safe after seal();
  /// wait-free (one fetch_add per pop).
  std::optional<std::size_t> pop();

  std::size_t size() const { return order_.size(); }

 private:
  std::string policy_name_;
  PolicyOrder order_fn_;
  bool sealed_ = false;
  std::vector<WorkItem> order_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace thermo::dispatch
