// WorkQueue: the policy-pluggable work placement of the dispatch layer.
//
// serve-style batches are wildly skewed — ROADMAP measured one
// 1034-node sparse request at ~100× an Alpha request — so *which job a
// freed worker picks next* decides the batch makespan. The queue owns
// exactly that decision:
//
//  * kFifo — input order, today's historical behaviour: predictable,
//    but a whale request near the end of the batch starts after all
//    the small fry and sets the makespan almost by accident.
//  * kLjf  — longest-job-first by estimated cost (CostModel units):
//    the classic LPT heuristic for makespan on identical machines.
//    Whales start first, small jobs backfill the other workers.
//
// The policy reorders *execution start* only. Result placement is by
// input index (dispatch::OrderedWriter), so output bytes are identical
// across policies — the hard serve invariant. bench_dispatch gates the
// makespan win in CI.
//
// Usage: push() every job, seal() once, then pop() concurrently from
// worker threads. pop() after seal() is a lock-free atomic fetch over a
// frozen order (the same shared-counter idiom as sweep::ScenarioSweep).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

namespace thermo::dispatch {

enum class SchedulePolicy {
  kFifo,  ///< input order (historical serve behaviour)
  kLjf    ///< longest-job-first by estimated cost
};

/// Canonical spelling used in CLI/JSON ("fifo", "ljf").
const char* schedule_policy_name(SchedulePolicy policy);

/// Inverse of schedule_policy_name; nullopt for anything else. Callers
/// (the serve flag, bench) own their error reporting.
std::optional<SchedulePolicy> schedule_policy_from_name(std::string_view name);

class WorkQueue {
 public:
  explicit WorkQueue(SchedulePolicy policy = SchedulePolicy::kFifo);

  SchedulePolicy policy() const { return policy_; }

  /// Enqueues job `index` with its estimated cost. Only valid before
  /// seal().
  void push(std::size_t index, double cost);

  /// Freezes the pop order: kFifo keeps insertion order, kLjf stable-
  /// sorts by descending cost (ties broken by ascending index, so the
  /// order — and therefore worker assignment under 1 thread — is fully
  /// deterministic). Only valid once.
  void seal();

  /// Next job index, or nullopt when drained. Thread-safe after seal();
  /// wait-free (one fetch_add per pop).
  std::optional<std::size_t> pop();

  std::size_t size() const { return order_.size(); }

 private:
  struct Item {
    std::size_t index;
    double cost;
  };

  SchedulePolicy policy_;
  bool sealed_ = false;
  std::vector<Item> order_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace thermo::dispatch
