// CostCalibrator: close the estimate → measurement loop of the cost
// model. The engine already measures every executed job's wall time;
// the calibrator folds those (CostFeatures, measured seconds) pairs
// into a running least-squares regression and re-fits CostConstants —
// so a long-lived serve process stops guessing with hand-tuned relative
// units and starts predicting *seconds on this machine*.
//
// The model is linear in the constants once validations_per_core is
// held fixed (it is collinear with the per-call terms — both scale the
// same call count — so fitting it too would make the normal equations
// rank-deficient by construction):
//
//   seconds ≈ per_request · 1
//           + dense_ops_per_node_sq · [points·calls·solves/call·n²  ]  (dense)
//           + sparse_ops_per_nnz    · [points·calls·solves/call·nnz ]  (sparse)
//           + per_call_overhead     · [points·calls]
//
// where nnz is the post-ordering factor fill (solve_nnz, else
// predicted_factor_nnz(n)) — the same rule CostModel::estimate applies.
//
// Only the O(1) sufficient statistics XᵀX (4×4) and Xᵀy (4) are kept —
// a million observed jobs cost the same 21 doubles as ten — and the fit
// solves the ridge-stabilized normal equations with a 4×4 Cholesky.
// Fitted constants are clamped to a positive floor, so estimates stay
// positive and monotone even on degenerate batches (e.g. no sparse job
// ever observed leaves that column to the ridge, not to a negative
// coefficient).
//
// Determinism: the calibrator is a pure function of its observation
// sequence — same jobs in, same constants and same serialized state
// out. Placement built on those constants can therefore never break the
// serve byte-determinism invariant: costs order *when* work runs, not
// what is written (tests/dispatch_calibrator_test.cpp pins both).
//
// State round-trips through serialize()/deserialize() as a
// "thermo.calibration.v2" JSON payload (shortest round-trip numbers, so
// the trip is exact); `thermosched serve --cache-dir` persists it next
// to the disk cache via persist::write_blob_file so a restarted process
// starts warm. deserialize returns nullopt — never throws — on any
// structural damage: a torn calibration record falls back to defaults
// instead of aborting serve or skewing estimates with garbage.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dispatch/cost_model.hpp"

namespace thermo::dispatch {

class CostCalibrator {
 public:
  /// Fitted coefficients: per_request, dense_ops_per_node_sq,
  /// sparse_ops_per_nnz, per_call_overhead.
  static constexpr std::size_t kDimensions = 4;
  /// Observations required before ready() can become true: below this a
  /// 4-parameter fit would chase noise, so constants() stays at the
  /// fallback.
  static constexpr std::size_t kMinSamples = 32;
  /// Floor every fitted coefficient is clamped to, keeping estimates
  /// positive and monotone in every feature.
  static constexpr double kCoefficientFloor = 1e-12;
  /// Observations are weighted by 1/max(measured, this) so the fit
  /// minimizes RELATIVE error (what placement ranks by) without letting
  /// timer-granularity noise on near-zero measurements dominate.
  static constexpr double kWeightFloorSeconds = 1e-5;

  CostCalibrator() = default;
  /// `fallback` is returned by constants() until the fit is ready; its
  /// validations_per_core is also the (fixed) call-count rule used to
  /// build the regressors, matching CostModel::estimate exactly.
  explicit CostCalibrator(const CostConstants& fallback)
      : fallback_(fallback) {}

  /// Folds one executed job into the sufficient statistics.
  /// `measured_seconds` is the job's wall time; non-finite or negative
  /// measurements are ignored (a clock that misbehaves must not poison
  /// the fit).
  void observe(const CostFeatures& features, double measured_seconds);

  std::size_t samples() const { return samples_; }

  /// True once kMinSamples observations are in AND the normal equations
  /// solve; constants() then returns the fitted values (in seconds).
  bool ready() const;

  /// Fitted constants when ready(), the fallback otherwise. Fitted
  /// validations_per_core always equals the fallback's (held fixed, see
  /// file comment).
  CostConstants constants() const;

  /// A CostModel over constants() — what serve scores jobs with.
  CostModel model() const { return CostModel(constants()); }

  /// Exact-round-trip JSON state ("thermo.calibration.v2").
  std::string serialize() const;

  /// Inverse of serialize(). Returns nullopt — never throws — on
  /// malformed JSON, a wrong schema, missing/extra members, wrong array
  /// sizes, or non-finite numbers. `fallback` seeds the restored
  /// calibrator exactly as the constructor would.
  static std::optional<CostCalibrator> deserialize(
      std::string_view text, const CostConstants& fallback = {});

 private:
  std::optional<CostConstants> fit() const;

  CostConstants fallback_;
  std::size_t samples_ = 0;
  double xtx_[kDimensions][kDimensions] = {};  ///< XᵀX (symmetric)
  double xty_[kDimensions] = {};               ///< Xᵀy
};

/// Scale-free accuracy metric for comparing cost models whose outputs
/// live in different units (fixed constants are relative units, fitted
/// ones are seconds): estimates are first normalized by the median
/// measured/estimate ratio, then the median of |scaled − measured| /
/// measured is returned. Pairs with a non-positive estimate or
/// measurement are skipped; returns 0 when no valid pair remains.
/// Invariant under scaling all estimates by any positive factor — the
/// number only rewards correct *proportions*, which is exactly what
/// placement consumes. bench_dispatch gates calibrated < fixed on it.
double median_relative_error(const std::vector<double>& estimates,
                             const std::vector<double>& measured);

}  // namespace thermo::dispatch
