#include "dispatch/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sweep/thread_pool.hpp"
#include "util/error.hpp"

namespace thermo::dispatch {

namespace {

/// CPU seconds consumed by the calling thread; 0.0 where no per-thread
/// clock exists. Process-wide clocks would charge one job for its
/// neighbours' work, so they are not used as a fallback.
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

/// Engine metrics, resolved once per process (the registry hands out
/// stable references; docs/OBSERVABILITY.md catalogues the names).
struct EngineMetrics {
  obs::Counter& batches;
  obs::Counter& jobs;
  obs::Counter& executed;
  obs::Counter& memo_hits;
  obs::Histogram& queue_wait_ns;
  obs::Histogram& exec_ns;
  obs::Histogram& policy_sort_ns;
};

EngineMetrics& engine_metrics() {
  auto& registry = obs::MetricsRegistry::instance();
  static EngineMetrics metrics{registry.counter("dispatch.batches"),
                               registry.counter("dispatch.jobs"),
                               registry.counter("dispatch.executed"),
                               registry.counter("dispatch.memo_hits"),
                               registry.histogram("dispatch.queue_wait_ns"),
                               registry.histogram("dispatch.exec_ns"),
                               registry.histogram("dispatch.policy_sort_ns")};
  return metrics;
}

std::uint64_t to_ns(std::chrono::steady_clock::duration d) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  return ns.count() > 0 ? static_cast<std::uint64_t>(ns.count()) : 0;
}

}  // namespace

EngineStats run_batch(const std::vector<Job>& jobs,
                      const std::function<std::string(std::size_t)>& execute,
                      OrderedWriter& writer, const EngineOptions& options) {
  const std::size_t n = jobs.size();
  EngineStats stats;
  stats.jobs = n;
  stats.timings.resize(n);
  EngineMetrics& metrics = engine_metrics();
  obs::TraceSpan batch_span("dispatch.batch");

  // Dedup planning runs on the calling thread, before any worker
  // starts: which jobs execute, which are answered from the memo, and
  // which duplicate a leader is a pure function of the batch content —
  // never of worker timing — so hit counts are deterministic.
  ResultMemo local_memo;
  ResultMemo* memo = options.memo != nullptr ? options.memo : &local_memo;
  std::vector<std::vector<std::size_t>> duplicates(n);
  std::vector<std::size_t> scheduled;
  scheduled.reserve(n);
  if (options.dedup) {
    std::unordered_map<std::string_view, std::size_t> leader_by_key;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& key = jobs[i].memo_key;
      if (key.empty()) {
        scheduled.push_back(i);
        continue;
      }
      if (auto cached = memo->find(key)) {
        // Known from a previous batch: stream it out right away.
        stats.timings[i].memo_hit = true;
        ++stats.memo_hits;
        writer.push(i, std::move(*cached));
        continue;
      }
      const auto [it, inserted] = leader_by_key.emplace(key, i);
      if (inserted) {
        scheduled.push_back(i);
      } else {
        // Within-batch duplicate: ride on the leader's execution.
        duplicates[it->second].push_back(i);
        stats.timings[i].memo_hit = true;
        ++stats.memo_hits;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) scheduled.push_back(i);
  }

  WorkQueue queue(options.policy);
  {
    obs::TraceSpan sort_span("dispatch.policy_sort");
    obs::ScopedTimer sort_timer(metrics.policy_sort_ns);
    for (const std::size_t i : scheduled) {
      WorkItem item;
      item.index = i;
      item.cost = jobs[i].cost;
      item.deadline = jobs[i].deadline;
      item.priority = jobs[i].priority;
      queue.push(item);
    }
    queue.seal();
  }

  // Execution-window origin: done_seconds and the makespan share this
  // timepoint, so "done before deadline" means "within deadline seconds
  // of the first possible execution start". Declared before run_one so
  // the lambda can capture it; assigned right before workers start.
  std::chrono::steady_clock::time_point exec_start;
  const auto run_one = [&](std::size_t i) {
    const auto wall_start = std::chrono::steady_clock::now();
    const double cpu_start = thread_cpu_seconds();
    std::string record;
    {
      obs::TraceSpan exec_span("dispatch.exec");
      record = execute(i);
    }
    const auto done = std::chrono::steady_clock::now();
    stats.timings[i].cpu_seconds = thread_cpu_seconds() - cpu_start;
    stats.timings[i].wall_seconds =
        std::chrono::duration<double>(done - wall_start).count();
    // Queue wait shares done_seconds' clock origin: how long placement
    // (plus worker contention) held this job back.
    stats.timings[i].wait_seconds =
        std::chrono::duration<double>(wall_start - exec_start).count();
    metrics.queue_wait_ns.record(to_ns(wall_start - exec_start));
    metrics.exec_ns.record(to_ns(done - wall_start));
    const double done_seconds =
        std::chrono::duration<double>(done - exec_start).count();
    stats.timings[i].done_seconds = done_seconds;
    if (options.dedup && !jobs[i].memo_key.empty()) {
      memo->insert(jobs[i].memo_key, record);
    }
    for (const std::size_t dup : duplicates[i]) {
      // A duplicate's record exists exactly when its leader's does.
      stats.timings[dup].done_seconds = done_seconds;
      writer.push(dup, record);
    }
    writer.push(i, std::move(record));
  };

  const std::size_t threads = std::min(
      scheduled.size(),
      options.threads != 0
          ? options.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  stats.threads = threads;
  exec_start = std::chrono::steady_clock::now();
  if (threads <= 1) {
    while (const auto i = queue.pop()) run_one(*i);
  } else {
    // One task per worker pulling from the policy-ordered queue (same
    // shared-counter shape as sweep::ScenarioSweep, but the pop ORDER
    // is the policy's — under ljf a freed worker always takes the most
    // expensive remaining job).
    sweep::ThreadPool pool(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      pool.submit([&] {
        while (const auto i = queue.pop()) run_one(*i);
      });
    }
    pool.wait_idle();  // rethrows the first execute exception, if any
  }
  stats.makespan_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    exec_start)
          .count();
  stats.executed = scheduled.size();
  stats.max_buffered = writer.max_buffered();
  writer.finish();
  metrics.batches.add();
  metrics.jobs.add(n);
  metrics.executed.add(stats.executed);
  metrics.memo_hits.add(stats.memo_hits);
  return stats;
}

}  // namespace thermo::dispatch
