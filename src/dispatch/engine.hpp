// The dispatch engine: cost-aware batch execution with result
// memoization and streaming ordered output.
//
// This is the layer between a batch front-end (scenario::serve_stream)
// and the raw worker pool (sweep::ThreadPool): the front-end describes
// each job as {content address, estimated cost} plus a pure execute
// function, and the engine owns *how* the batch runs —
//
//   placement   WorkQueue orders execution starts (fifo / ljf / edf /
//               priority / srpt, or a registered third-party policy);
//   dedup       jobs sharing a content address execute once: a prior
//               batch's record is served from the ResultMemo, and
//               within-batch duplicates are grouped behind one leader
//               (deterministically, on the calling thread, so hit
//               counts do not depend on worker timing);
//   streaming   every record goes to the OrderedWriter the moment it
//               exists, emitted in input order as soon as its index is
//               next;
//   timing      per-job wall + thread-CPU seconds and the batch
//               makespan, for the serve summary and bench_dispatch.
//
// Hard invariant (pinned by tests + smoke + bench): because execute is
// pure per job and records are placed by input index, the output bytes
// are identical across thread counts, policies, and dedup on/off —
// policies and memoization may only change *when* work runs, never what
// is written.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "dispatch/ordered_writer.hpp"
#include "dispatch/result_memo.hpp"
#include "dispatch/work_queue.hpp"

namespace thermo::dispatch {

/// One unit of batch work, as the front-end describes it. The engine
/// never inspects record contents; everything it needs is here.
struct Job {
  /// Content address: the canonical serialization of whatever the job
  /// computes from — identical bytes MUST imply an identical record.
  /// Empty = not memoizable (always executes, never enters the memo);
  /// front-ends use that for records that depend on batch position,
  /// e.g. parse failures carrying a line number.
  std::string memo_key;
  /// Estimated execution cost (CostModel units); only its ordering
  /// matters, and only under cost-driven policies (ljf/priority/srpt).
  double cost = 0.0;
  /// SLO deadline in seconds from the start of the execution window;
  /// kNoDeadline when the job has none. Orders execution under edf and
  /// is scored against JobTiming::done_seconds — never changes output.
  double deadline = kNoDeadline;
  /// Relative weight (finite, > 0); orders execution under the
  /// 'priority' (WSPT) policy.
  double priority = 1.0;
};

struct JobTiming {
  double wall_seconds = 0.0;  ///< 0 for memoized jobs
  double cpu_seconds = 0.0;   ///< executing thread's CPU time (0 where
                              ///< the platform offers no thread clock)
  /// Queue wait: execution-window start to this job's execution start,
  /// in the same steady clock as done_seconds (0 for memo hits — they
  /// never queue). What the scheduling policy actually controls.
  double wait_seconds = 0.0;
  /// Completion offset from the start of the execution window: when
  /// this job's record existed, in the same clock deadlines are
  /// expressed in. 0 for planning-time memo hits (their record exists
  /// before any worker starts); within-batch duplicates inherit their
  /// leader's completion.
  double done_seconds = 0.0;
  bool memo_hit = false;      ///< record served without executing
};

struct EngineStats {
  std::size_t jobs = 0;       ///< batch size
  std::size_t executed = 0;   ///< jobs that actually ran
  std::size_t memo_hits = 0;  ///< cross-batch memo hits + grouped dups
  /// Workers that actually executed: the configured (or hardware)
  /// count capped by the number of scheduled jobs — 0 when everything
  /// was answered from the memo.
  std::size_t threads = 0;
  double makespan_seconds = 0.0;  ///< execution window (pops to last completion)
  std::size_t max_buffered = 0;   ///< writer high-water mark (skew cost)
  std::vector<JobTiming> timings; ///< index-aligned with the jobs
};

struct EngineOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency.
  std::size_t threads = 0;
  SchedulePolicy policy = SchedulePolicy::kFifo;
  /// false disables ALL memoization (every job executes) — the output
  /// bytes must not change, only the work done.
  bool dedup = true;
  /// Memo to consult/populate (borrowed), enabling dedup across
  /// batches; nullptr uses a throwaway per-call memo (within-batch
  /// dedup only).
  ResultMemo* memo = nullptr;
};

/// Runs the batch: `execute(i)` must return job i's record and be safe
/// to call concurrently with itself for distinct i (it is called at
/// most once per job). Records stream to `writer` in index order;
/// `writer` must be constructed for exactly jobs.size() records and is
/// finish()ed before returning. Exceptions escaping execute propagate
/// (first one wins) — front-ends that want per-job error records must
/// catch inside execute.
EngineStats run_batch(const std::vector<Job>& jobs,
                      const std::function<std::string(std::size_t)>& execute,
                      OrderedWriter& writer, const EngineOptions& options = {});

}  // namespace thermo::dispatch
