#include "dispatch/disk_result_memo.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace thermo::dispatch {

namespace {

persist::StoreOptions with_result_schema(persist::StoreOptions options) {
  options.schema_revision = kResultSchemaRevision;
  return options;
}

}  // namespace

DiskResultMemo::DiskResultMemo(std::string dir, Options options)
    : ResultMemo(options.memory_capacity),
      store_(std::move(dir), with_result_schema(options.store)) {}

std::optional<std::string> DiskResultMemo::find(std::string_view key) {
  if (std::optional<std::string> record = ResultMemo::find(key)) {
    return record;
  }
  std::optional<std::string> record;
  try {
    record = store_.get(key);
  } catch (const persist::CrashError&) {
    throw;  // an injected crash must never be absorbed into a miss
  } catch (const persist::IoError&) {
    // Transient read failure: the record stays on disk and stays
    // indexed; for a CACHE the right degradation is a miss — the
    // engine simply recomputes.
    record = std::nullopt;
  }
  if (!record) return std::nullopt;
  disk_hits_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& disk_hit_metric =
      obs::MetricsRegistry::instance().counter("dispatch.disk_memo.hits");
  disk_hit_metric.add();
  // Promote: repeat lookups of a hot key should not re-read and
  // re-checksum the segment file every time.
  ResultMemo::insert(key, *record);
  return record;
}

void DiskResultMemo::insert(std::string_view key, std::string record) {
  // Disk first: if the append fails, the memo must not hold a record in
  // memory that a restarted process would silently be missing.
  store_.put(key, record);
  ResultMemo::insert(key, std::move(record));
}

}  // namespace thermo::dispatch
