// CostModel: estimate how expensive a scenario request is *before*
// running it, so the WorkQueue's longest-job-first policy can place the
// whales first.
//
// Every request in this system lowers to the same shape of work: per
// STCL point, Algorithm 1 alternates cheap model-guided construction
// with oracle validations; each validation is either one steady-state
// back-substitution or `steps` backward-Euler back-substitutions; each
// back-substitution touches n² matrix entries on the dense backend and
// nnz(L) factor entries on the sparse one — the *post-ordering* fill,
// supplied directly (solve_nnz) or predicted from n
// (predicted_factor_nnz; docs/SOLVERS.md "Ordering"). The model simply
// multiplies those factors out:
//
//   cost ≈ stcl_points · validations(cores) · solves_per_validation
//          · solve_ops(nodes, backend)   (+ fixed per-request overhead)
//
// The output is a RELATIVE unit, not seconds: LJF only needs correct
// *ordering*, so constants are calibrated to rank (a 1034-node sparse
// request must score far above an Alpha request, which measures ~100×
// slower — ROADMAP "Backend-aware serve placement"). bench_dispatch
// validates the ranking against measured per-request wall time on every
// CI run; the constants are a struct so callers can re-calibrate
// without recompiling the layer.
#pragma once

#include <cstddef>

namespace thermo::dispatch {

/// What the estimator needs to know about one request. Deliberately
/// backend-agnostic plain numbers: the scenario layer maps a parsed
/// request onto this (scenario/cost.hpp); dispatch never sees JSON.
struct CostFeatures {
  std::size_t nodes = 0;       ///< thermal nodes of the (estimated) model
  std::size_t cores = 0;       ///< cores to schedule (drives validations)
  bool sparse = false;         ///< resolved solver backend is sparse
  bool transient = true;       ///< transient oracle (false = steady)
  double steps_per_call = 0.0; ///< BE steps per oracle call (transient)
  std::size_t stcl_points = 1; ///< Algorithm 1 runs in the request
  /// Exact oracle-call count per point when the request shape makes it
  /// known up front (a power-trace replay performs exactly one call per
  /// trace step). 0 (default) keeps the Algorithm 1 estimate of
  /// validations_per_core * cores.
  double oracle_calls = 0.0;
  /// Non-zeros of the post-ordering sparse factor L, when known (e.g.
  /// from an already-factored model). 0 (default) falls back to
  /// predicted_factor_nnz(nodes). Ignored on the dense backend.
  double solve_nnz = 0.0;
};

/// Predicted nnz(L) of a fill-ordered sparse factor of an n-node
/// thermal model: ≈ n·(4 + log2 n). RC lattices keep ~4 off-diagonal
/// couplings per node, and min-degree ordering holds fill growth to
/// roughly a log factor on 2-D meshes (measured: a 64×64 grid factors
/// at ~15·n, a 317×317 at ~20·n — see BENCH_backend.json fill columns).
/// Replaces the old flat c·n guess, which under-ranked 100k-node grid
/// requests against small transient sweeps.
double predicted_factor_nnz(std::size_t nodes);

/// Calibrated constants (relative units). Defaults were fitted against
/// BENCH_dispatch.json measurements on the skewed demo batch; override
/// to re-calibrate for different hardware.
struct CostConstants {
  /// Ops per back-substitution: dense touches all n² factor entries...
  double dense_ops_per_node_sq = 1.0;
  /// ...sparse touches every factor non-zero; the nnz itself comes from
  /// solve_nnz or predicted_factor_nnz, so this constant is per-entry.
  /// (Replaces the pre-ordering sparse_ops_per_node = 24·n guess.)
  double sparse_ops_per_nnz = 1.0;
  /// Oracle validations per scheduled core (committed sessions plus the
  /// discard/re-try churn of Algorithm 1's weighting loop).
  double validations_per_core = 2.0;
  /// Session-model + bookkeeping cost per oracle call, in node units
  /// (keeps tiny steady requests from rounding to zero).
  double per_call_overhead = 50.0;
  /// Fixed per-request floor (parse, SoC build, serialization).
  double per_request = 1000.0;
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(const CostConstants& constants)
      : constants_(constants) {}

  const CostConstants& constants() const { return constants_; }

  /// Estimated relative cost; > 0, monotone in every feature.
  double estimate(const CostFeatures& features) const;

 private:
  CostConstants constants_;
};

}  // namespace thermo::dispatch
