// Common result type returned by all schedulers, carrying the paper's
// two quality metrics side by side: *schedule length* (sum of session
// lengths — test application time) and *simulation effort* (total
// simulated seconds spent in the RC oracle, including discarded
// sessions — the cost Algorithm 1 is designed to minimise).
// docs/SCHEDULING.md ("Reading the result") interprets every field.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/schedule.hpp"

namespace thermo::core {

/// Outcome of one committed session as observed by the oracle simulator.
struct SessionOutcome {
  TestSession session;
  double length = 0.0;           ///< [s]
  double max_temperature = 0.0;  ///< hottest core peak during session [deg C]
  std::size_t hottest_core = 0;
};

struct ScheduleResult {
  TestSchedule schedule;

  /// Per-committed-session simulation outcomes (same order as schedule).
  std::vector<SessionOutcome> outcomes;

  /// Total test application time [s].
  double schedule_length = 0.0;

  /// The paper's "simulation effort": cumulative simulated test-session
  /// time until the thermal-safe schedule was found, *including*
  /// discarded attempts [s]. The sequential pre-pass is reported
  /// separately (precheck_effort), matching the paper's accounting.
  double simulation_effort = 0.0;

  /// Simulated time spent in the per-core pre-pass [s].
  double precheck_effort = 0.0;

  /// Hottest core temperature across all committed sessions [deg C].
  double max_temperature = 0.0;

  /// Number of sessions that were simulated and discarded for violating
  /// the temperature limit.
  std::size_t discarded_sessions = 0;

  /// Total simulate() calls (committed + discarded).
  std::size_t simulation_count = 0;

  /// Best-case module temperatures: per-core solo peak temperature from
  /// the pre-pass [deg C] (empty for schedulers that skip the pre-pass).
  std::vector<double> bcmt;

  /// Human-readable notes (e.g. solo-violating cores and how they were
  /// handled).
  std::vector<std::string> notes;
};

}  // namespace thermo::core
