#include "core/session_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace thermo::core {

namespace fp = thermo::floorplan;

SessionThermalModel::SessionThermalModel(const fp::Floorplan& floorplan,
                                         const thermal::PackageParams& package,
                                         SessionModelOptions options)
    : options_(options) {
  package.validate();
  floorplan.require_valid();
  THERMO_REQUIRE(options_.stc_scale > 0.0, "stc_scale must be positive");

  const std::size_t n = floorplan.size();
  lateral_.assign(n, {});
  boundary_conductance_.assign(n, 0.0);
  vertical_conductance_.assign(n, 0.0);

  // Lateral die resistances: identical formula to the RC simulator so
  // the guide model and the oracle agree on the die-level physics.
  for (const fp::Adjacency& adj : floorplan.adjacencies()) {
    const fp::Block& a = floorplan.block(adj.a);
    const fp::Block& b = floorplan.block(adj.b);
    const double da = a.centroid_to_side(adj.side_of_a);
    const double db = b.centroid_to_side(adj.side_of_a);
    const double resistance =
        (da + db) / (package.k_die * package.t_die * adj.shared_length);
    const double conductance = 1.0 / resistance;
    lateral_[adj.a].push_back({adj.b, conductance});
    lateral_[adj.b].push_back({adj.a, conductance});
  }

  // Boundary paths: a silicon slab from the centroid to each exposed
  // chip edge, summed over the four sides. The chip boundary plays the
  // role of thermal ground in the session model (paper, Figure 3:
  // R_{2,N}, R_{4,W}, R_{4,S}, ...).
  for (std::size_t i = 0; i < n; ++i) {
    const fp::Block& block = floorplan.block(i);
    double conductance = 0.0;
    for (fp::Side side : fp::kAllSides) {
      const double exposure = floorplan.boundary_exposure(i, side);
      if (exposure <= 0.0) continue;
      const double distance = block.centroid_to_side(side);
      conductance += package.k_die * package.t_die * exposure / distance;
    }
    boundary_conductance_[i] = conductance;
  }

  // Vertical path (extension): half-die + TIM + spreading, as in the RC
  // simulator's block -> spreader-centre resistance.
  for (std::size_t i = 0; i < n; ++i) {
    const double area = floorplan.block(i).area();
    const double r_die = package.t_die / (2.0 * package.k_die * area);
    const double r_tim = package.t_tim / (package.k_tim * area);
    const double r_spread = 0.475 / (package.k_spreader * std::sqrt(area));
    vertical_conductance_[i] = 1.0 / (r_die + r_tim + r_spread);
  }
}

double SessionThermalModel::equivalent_resistance(
    const std::vector<bool>& active, std::size_t core) const {
  THERMO_REQUIRE(active.size() == core_count(),
                 "active mask size must equal the core count");
  THERMO_REQUIRE(core < core_count(), "core index out of range");

  double conductance = boundary_conductance_[core];
  for (const LateralPath& path : lateral_[core]) {
    // Modification 2: paths to concurrently active cores are removed;
    // modification 3: passive neighbours are thermal ground.
    if (!active[path.other]) conductance += path.conductance;
  }
  if (options_.include_vertical_path) {
    conductance += vertical_conductance_[core];
  }
  if (conductance <= 0.0) return kInfiniteResistance;
  return 1.0 / conductance;
}

double SessionThermalModel::thermal_characteristic(
    const std::vector<bool>& active, std::size_t core, double power) const {
  THERMO_REQUIRE(std::isfinite(power) && power >= 0.0,
                 "power must be finite and non-negative");
  const double rth = equivalent_resistance(active, core);
  if (std::isinf(rth)) return power > 0.0 ? kInfiniteResistance : 0.0;
  return power * rth;
}

double SessionThermalModel::session_characteristic(
    const std::vector<bool>& active, const std::vector<double>& power,
    const std::vector<double>& weight) const {
  THERMO_REQUIRE(active.size() == core_count(),
                 "active mask size must equal the core count");
  THERMO_REQUIRE(power.size() == core_count(),
                 "power vector size must equal the core count");
  THERMO_REQUIRE(weight.size() == core_count(),
                 "weight vector size must equal the core count");

  double stc = 0.0;
  for (std::size_t i = 0; i < core_count(); ++i) {
    if (!active[i]) continue;
    const double tc = thermal_characteristic(active, i, power[i]);
    if (std::isinf(tc)) return kInfiniteResistance;
    stc = std::max(stc, tc * power[i] * weight[i]);
  }
  return stc * options_.stc_scale;
}

double SessionThermalModel::lateral_resistance(std::size_t i,
                                               std::size_t j) const {
  THERMO_REQUIRE(i < core_count() && j < core_count(),
                 "core index out of range");
  for (const LateralPath& path : lateral_[i]) {
    if (path.other == j) return 1.0 / path.conductance;
  }
  return kInfiniteResistance;
}

double SessionThermalModel::boundary_resistance(std::size_t i) const {
  THERMO_REQUIRE(i < core_count(), "core index out of range");
  if (boundary_conductance_[i] <= 0.0) return kInfiniteResistance;
  return 1.0 / boundary_conductance_[i];
}

double SessionThermalModel::vertical_resistance(std::size_t i) const {
  THERMO_REQUIRE(i < core_count(), "core index out of range");
  return 1.0 / vertical_conductance_[i];
}

}  // namespace thermo::core
