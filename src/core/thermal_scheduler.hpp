// Algorithm 1 of the paper: thermal-safe test schedule generation guided
// by the test session thermal model.
//
// Flow:
//   1. *Pre-pass* (paper lines 1-7): simulate every core alone, record
//      BCMT(i). Cores violating TL are handled per SoloViolationPolicy
//      (the paper offers "fix the core's test infrastructure or raise
//      TL"; we additionally support excluding the core).
//   2. *Session construction* (lines 9-15): scan the unscheduled cores
//      in a deterministic order and greedily add each core whose
//      addition keeps STC(TS) <= STCL.
//   3. *Validation* (lines 16-23): simulate the session with the full RC
//      model. Every core whose peak temperature reaches TL gets its
//      weight multiplied by weight_factor (1.1 in the paper), making it
//      less likely to join a busy session; the session is discarded and
//      construction restarts. Simulation effort accumulates either way.
//   4. Repeat until every core is scheduled (lines 24-28).
//
// Robustness beyond the pseudocode:
//   * if no core fits an empty session under STCL, the first candidate
//     is force-added alone (a single-core session passed the pre-pass,
//     so it must be thermally safe) — otherwise tight STCL values would
//     loop forever;
//   * an attempt cap turns pathological non-termination into an error.
//
// docs/SCHEDULING.md walks through the whole algorithm class by class
// (STCL semantics, solo-violation policies, result metrics).
#pragma once

#include "core/scheduler_result.hpp"
#include "core/session_model.hpp"
#include "core/soc_spec.hpp"
#include "thermal/analyzer.hpp"

namespace thermo::core {

/// What to do with a core whose *solo* test already violates TL.
enum class SoloViolationPolicy {
  kThrow,       ///< refuse to schedule (default; mirrors "fix the core")
  kRaiseLimit,  ///< raise TL to the hottest solo temperature + margin
  kExclude      ///< drop the core from the schedule and note it
};

/// Order in which candidate cores are scanned during session
/// construction (the paper's FOR EACH over A, line 10, leaves this
/// open; the choice is deterministic here).
enum class CoreOrder {
  kInputOrder,        ///< floorplan/block order
  kDescendingPower,   ///< hottest testers first
  kDescendingSoloTc,  ///< descending solo thermal characteristic (default)
  kAscendingSoloTc    ///< coolest configuration first
};

struct ThermalSchedulerOptions {
  double temperature_limit = 145.0;  ///< TL [deg C]
  double stc_limit = 50.0;           ///< STCL (units of the session model)
  double weight_factor = 1.1;        ///< W multiplier on violation (paper: 1.1)
  SoloViolationPolicy solo_policy = SoloViolationPolicy::kThrow;
  double raise_limit_margin = 1.0;   ///< [K], for kRaiseLimit
  CoreOrder core_order = CoreOrder::kDescendingSoloTc;
  std::size_t max_attempts = 100000;  ///< simulate() call cap
  SessionModelOptions model;
};

class ThermalAwareScheduler {
 public:
  explicit ThermalAwareScheduler(ThermalSchedulerOptions options = {});

  const ThermalSchedulerOptions& options() const { return options_; }

  /// Generates a thermal-safe schedule. The analyzer provides the
  /// simulate() oracle; its effort counter is reset at the start of the
  /// run. Throws InvalidArgument on inconsistent inputs, LogicError when
  /// the attempt cap is exhausted.
  ScheduleResult generate(const SocSpec& soc,
                          thermal::ThermalAnalyzer& analyzer) const;

  /// Effective TL used in the last generate() call (differs from
  /// options().temperature_limit only under kRaiseLimit).
  double effective_temperature_limit() const { return effective_tl_; }

 private:
  ThermalSchedulerOptions options_;
  mutable double effective_tl_ = 0.0;
};

}  // namespace thermo::core
