// Post-hoc verification: simulate every session of a schedule with the
// full RC model and report thermal violations against a temperature
// limit. Used by tests (scheduler output must verify clean) and by the
// power-vs-thermal comparison benches. docs/SCHEDULING.md ("The safety
// net") places it in the overall flow.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/soc_spec.hpp"
#include "thermal/analyzer.hpp"

namespace thermo::core {

struct SafetyViolation {
  std::size_t session_index = 0;
  std::size_t core = 0;
  double peak_temperature = 0.0;  ///< [deg C]
};

struct SafetyReport {
  bool safe = true;
  double max_temperature = 0.0;  ///< hottest core across all sessions [deg C]
  /// Per-session hottest-core temperature [deg C].
  std::vector<double> session_max_temperature;
  std::vector<SafetyViolation> violations;

  std::string to_string(const SocSpec& soc) const;
};

class SafetyChecker {
 public:
  struct Options {
    /// When true, sessions run back to back: each starts from the
    /// previous session's final thermal state (after cooling_gap seconds
    /// of idle time) instead of from ambient. This stress-tests the
    /// paper's independent-session assumption.
    bool chained = false;
    double cooling_gap = 0.0;  ///< idle seconds between sessions [s]
  };

  explicit SafetyChecker(double temperature_limit);
  SafetyChecker(double temperature_limit, Options options);

  double temperature_limit() const { return temperature_limit_; }
  const Options& options() const { return options_; }

  /// Simulates each session (from ambient, or chained per Options) and
  /// flags every *active* core whose peak reaches the limit.
  SafetyReport check(const SocSpec& soc, const TestSchedule& schedule,
                     thermal::ThermalAnalyzer& analyzer) const;

 private:
  double temperature_limit_;
  Options options_;
};

}  // namespace thermo::core
