// Baseline: classic power-constrained test scheduling (Chou et al. style
// greedy session packing under a chip-level maximum power budget). This
// is the approach the paper argues against: it bounds total power but is
// blind to power *density*, so it can admit sessions with severe local
// hot spots (paper, Figure 1).
#pragma once

#include "core/scheduler_result.hpp"
#include "core/soc_spec.hpp"
#include "thermal/analyzer.hpp"

namespace thermo::core {

struct PowerSchedulerOptions {
  double power_limit = 45.0;  ///< chip-level power budget per session [W]
  /// Scan order: descending power (first-fit-decreasing) when true,
  /// input order otherwise.
  bool sort_by_power = true;
};

class PowerConstrainedScheduler {
 public:
  explicit PowerConstrainedScheduler(PowerSchedulerOptions options = {});

  const PowerSchedulerOptions& options() const { return options_; }

  /// Packs sessions greedily under the power budget. A core whose test
  /// power alone exceeds the budget gets a dedicated session (with a
  /// note). When an analyzer is supplied, each committed session is
  /// simulated for reporting (outcomes, max_temperature); the power
  /// baseline never *discards* a session on thermal grounds.
  ScheduleResult generate(const SocSpec& soc,
                          thermal::ThermalAnalyzer* analyzer = nullptr) const;

 private:
  PowerSchedulerOptions options_;
};

}  // namespace thermo::core
