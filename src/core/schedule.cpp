#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace thermo::core {

bool TestSession::contains(std::size_t core) const {
  return std::find(cores.begin(), cores.end(), core) != cores.end();
}

double TestSession::length(const SocSpec& soc) const {
  double longest = 0.0;
  for (std::size_t core : cores) {
    THERMO_REQUIRE(core < soc.core_count(), "session core index out of range");
    longest = std::max(longest, soc.tests[core].length);
  }
  return longest;
}

std::vector<double> TestSession::power_map(const SocSpec& soc) const {
  std::vector<double> power(soc.core_count(), 0.0);
  for (std::size_t core : cores) {
    THERMO_REQUIRE(core < soc.core_count(), "session core index out of range");
    power[core] = soc.tests[core].power;
  }
  return power;
}

std::vector<bool> TestSession::active_mask(const SocSpec& soc) const {
  std::vector<bool> mask(soc.core_count(), false);
  for (std::size_t core : cores) {
    THERMO_REQUIRE(core < soc.core_count(), "session core index out of range");
    mask[core] = true;
  }
  return mask;
}

std::string TestSession::to_string(const SocSpec& soc) const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (i != 0) os << ", ";
    os << soc.flp.block(cores[i]).name;
  }
  os << '}';
  return os.str();
}

double TestSchedule::total_length(const SocSpec& soc) const {
  double total = 0.0;
  for (const TestSession& session : sessions) total += session.length(soc);
  return total;
}

std::size_t TestSchedule::scheduled_core_count() const {
  std::size_t count = 0;
  for (const TestSession& session : sessions) count += session.size();
  return count;
}

bool TestSchedule::is_complete(const SocSpec& soc) const {
  std::vector<bool> seen(soc.core_count(), false);
  for (const TestSession& session : sessions) {
    for (std::size_t core : session.cores) {
      if (core >= soc.core_count() || seen[core]) return false;
      seen[core] = true;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

void TestSchedule::require_well_formed(const SocSpec& soc) const {
  std::vector<bool> seen(soc.core_count(), false);
  for (const TestSession& session : sessions) {
    THERMO_ENSURE(!session.empty(), "schedule contains an empty session");
    for (std::size_t core : session.cores) {
      THERMO_ENSURE(core < soc.core_count(), "scheduled core out of range");
      THERMO_ENSURE(!seen[core], "core '" + soc.flp.block(core).name +
                                     "' scheduled more than once");
      seen[core] = true;
    }
  }
}

std::string TestSchedule::to_string(const SocSpec& soc) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    os << "TS" << i + 1 << " = " << sessions[i].to_string(soc);
    if (i + 1 != sessions.size()) os << '\n';
  }
  return os.str();
}

}  // namespace thermo::core
