#include "core/safety_checker.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace thermo::core {

SafetyChecker::SafetyChecker(double temperature_limit)
    : SafetyChecker(temperature_limit, Options{}) {}

SafetyChecker::SafetyChecker(double temperature_limit, Options options)
    : temperature_limit_(temperature_limit), options_(options) {
  THERMO_REQUIRE(std::isfinite(temperature_limit),
                 "temperature limit must be finite");
  THERMO_REQUIRE(options_.cooling_gap >= 0.0,
                 "cooling gap must be non-negative");
}

SafetyReport SafetyChecker::check(const SocSpec& soc,
                                  const TestSchedule& schedule,
                                  thermal::ThermalAnalyzer& analyzer) const {
  soc.validate();
  schedule.require_well_formed(soc);

  SafetyReport report;
  std::vector<double> state = analyzer.ambient_node_state();
  for (std::size_t s = 0; s < schedule.sessions.size(); ++s) {
    const TestSession& session = schedule.sessions[s];
    thermal::SessionSimulation sim;
    if (options_.chained) {
      auto chained = analyzer.simulate_session_from(
          session.power_map(soc), session.length(soc), state);
      sim = std::move(chained.session);
      state = analyzer.cool_down(chained.final_state, options_.cooling_gap);
    } else {
      sim = analyzer.simulate_session(session.power_map(soc),
                                      session.length(soc));
    }

    double session_max = 0.0;
    for (std::size_t core : session.cores) {
      session_max = std::max(session_max, sim.peak_temperature[core]);
      if (sim.peak_temperature[core] >= temperature_limit_) {
        report.violations.push_back(
            SafetyViolation{s, core, sim.peak_temperature[core]});
      }
    }
    report.session_max_temperature.push_back(session_max);
    report.max_temperature = std::max(report.max_temperature, session_max);
  }
  report.safe = report.violations.empty();
  return report;
}

std::string SafetyReport::to_string(const SocSpec& soc) const {
  std::ostringstream os;
  os << (safe ? "SAFE" : "UNSAFE") << ", max " << max_temperature << " C";
  for (const SafetyViolation& v : violations) {
    os << "\n  session " << v.session_index + 1 << ": core '"
       << soc.flp.block(v.core).name << "' peaks at " << v.peak_temperature
       << " C";
  }
  return os.str();
}

}  // namespace thermo::core
