// Parallel STCL exploration: run Algorithm 1 once per STCL value,
// fanned across a sweep::ScenarioSweep thread pool.
//
// The paper exposes STCL as the user knob trading schedule efficiency
// against simulation effort (Section 5); picking it means scanning a
// range. Every point in the scan schedules the SAME SoC, so all points
// share one RCModel — its factorizations are computed once through the
// solver cache and back-substituted by every worker. Each point gets a
// private ThermalAnalyzer (the effort accounting is not thread-safe).
//
// Shared by `thermosched sweep` and examples/explore_stcl.cpp; results
// are index-ordered and identical for any thread count.
#pragma once

#include <memory>
#include <vector>

#include "core/thermal_scheduler.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/rc_model.hpp"

namespace thermo::core {

struct StclSweepConfig {
  /// Scheduler knobs for every point; `scheduler.stc_limit` is
  /// overwritten by each swept value.
  ThermalSchedulerOptions scheduler;
  /// Oracle options for the per-point analyzers (dt, transient vs
  /// steady-state).
  thermal::ThermalAnalyzer::Options analyzer;
  /// Worker threads; 0 picks hardware concurrency, 1 runs inline —
  /// what scenario::ScenarioRunner uses from inside a serve worker.
  std::size_t threads = 0;
};

struct StclSweepPoint {
  double stcl = 0.0;
  double schedule_length = 0.0;
  double simulation_effort = 0.0;
  std::size_t sessions = 0;
  double max_temperature = 0.0;
  std::size_t discarded_sessions = 0;
  /// TL the run actually enforced — differs from the configured
  /// temperature_limit only under SoloViolationPolicy::kRaiseLimit.
  double effective_temperature_limit = 0.0;
};

/// Runs Algorithm 1 on `soc` once per value in `stcl_values` (result i
/// corresponds to stcl_values[i]). `model` must match the SoC's
/// floorplan; pass one instance so the whole sweep shares its cached
/// factors. Throws what the scheduler throws (first failure wins).
std::vector<StclSweepPoint> sweep_stcl(
    const SocSpec& soc, std::shared_ptr<const thermal::RCModel> model,
    const std::vector<double>& stcl_values, const StclSweepConfig& config);

/// The values min, min+step, … up to and including max (absolute 1e-9
/// endpoint tolerance; computed by index so the spacing never drifts).
/// Throws InvalidArgument unless step > 0, max >= min, and the range
/// holds fewer than a million points.
std::vector<double> stcl_range(double min, double max, double step);

}  // namespace thermo::core
