// Test sessions and schedules. A session is a set of cores tested
// concurrently; a schedule is an ordered list of sessions that together
// test every core exactly once (session-based scheduling, no preemption,
// as in the paper and its power-constrained predecessors).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/soc_spec.hpp"

namespace thermo::core {

struct TestSession {
  /// Core (block) indices tested concurrently, in insertion order.
  std::vector<std::size_t> cores;

  bool contains(std::size_t core) const;
  bool empty() const { return cores.empty(); }
  std::size_t size() const { return cores.size(); }

  /// Session length = longest member test [s] (cores finishing early sit
  /// idle until the session ends, the classic session-based model).
  double length(const SocSpec& soc) const;

  /// Per-block power vector: test power for members, 0 elsewhere.
  std::vector<double> power_map(const SocSpec& soc) const;

  /// Active-mask form (size = core count).
  std::vector<bool> active_mask(const SocSpec& soc) const;

  /// "{C2, C3, C4}" using block names.
  std::string to_string(const SocSpec& soc) const;
};

struct TestSchedule {
  std::vector<TestSession> sessions;

  std::size_t session_count() const { return sessions.size(); }

  /// Total test application time = sum of session lengths [s].
  double total_length(const SocSpec& soc) const;

  /// Number of scheduled core tests across all sessions.
  std::size_t scheduled_core_count() const;

  /// True when every core of the SoC appears in exactly one session.
  bool is_complete(const SocSpec& soc) const;

  /// Throws LogicError when a core is repeated or out of range.
  void require_well_formed(const SocSpec& soc) const;

  std::string to_string(const SocSpec& soc) const;
};

}  // namespace thermo::core
