#include "core/thermal_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace thermo::core {

ThermalAwareScheduler::ThermalAwareScheduler(ThermalSchedulerOptions options)
    : options_(options) {
  THERMO_REQUIRE(std::isfinite(options_.temperature_limit),
                 "temperature limit must be finite");
  THERMO_REQUIRE(options_.stc_limit > 0.0, "STC limit must be positive");
  THERMO_REQUIRE(options_.weight_factor >= 1.0,
                 "weight factor must be >= 1 (weights only grow)");
  THERMO_REQUIRE(options_.max_attempts > 0, "attempt cap must be positive");
}

namespace {

/// Candidate scan order for session construction.
std::vector<std::size_t> make_order(const SocSpec& soc,
                                    const SessionThermalModel& model,
                                    CoreOrder order) {
  const std::size_t n = soc.core_count();
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  if (order == CoreOrder::kInputOrder) return indices;

  // Solo TC: thermal characteristic with an otherwise-empty session.
  std::vector<double> key(n, 0.0);
  const std::vector<bool> none(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    switch (order) {
      case CoreOrder::kDescendingPower:
        key[i] = soc.tests[i].power;
        break;
      case CoreOrder::kDescendingSoloTc:
      case CoreOrder::kAscendingSoloTc:
        key[i] = model.thermal_characteristic(none, i, soc.tests[i].power);
        break;
      case CoreOrder::kInputOrder:
        break;
    }
  }
  const bool ascending = order == CoreOrder::kAscendingSoloTc;
  std::stable_sort(indices.begin(), indices.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ascending ? key[a] < key[b] : key[a] > key[b];
                   });
  return indices;
}

}  // namespace

ScheduleResult ThermalAwareScheduler::generate(
    const SocSpec& soc, thermal::ThermalAnalyzer& analyzer) const {
  soc.validate();
  THERMO_REQUIRE(analyzer.model().block_count() == soc.core_count(),
                 "analyzer was built for a different floorplan");

  const std::size_t n = soc.core_count();
  const SessionThermalModel model(soc.flp, soc.package, options_.model);
  const std::vector<double> power = soc.test_powers();

  ScheduleResult result;
  analyzer.reset_effort();
  effective_tl_ = options_.temperature_limit;

  // ---- Pre-pass: per-core solo simulation (paper lines 1-7) ----
  result.bcmt.assign(n, 0.0);
  std::vector<bool> excluded(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    TestSession solo;
    solo.cores.push_back(i);
    const thermal::SessionSimulation sim =
        analyzer.simulate_session(solo.power_map(soc), solo.length(soc));
    result.bcmt[i] = sim.peak_temperature[i];
  }
  result.precheck_effort = analyzer.simulation_effort();
  analyzer.reset_effort();

  for (std::size_t i = 0; i < n; ++i) {
    if (result.bcmt[i] < effective_tl_) continue;
    std::ostringstream note;
    note << "core '" << soc.flp.block(i).name << "' violates TL alone ("
         << result.bcmt[i] << " >= " << effective_tl_ << " C)";
    switch (options_.solo_policy) {
      case SoloViolationPolicy::kThrow:
        throw InvalidArgument(
            note.str() +
            "; fix the core's test infrastructure, raise TL, or use "
            "SoloViolationPolicy::kExclude/kRaiseLimit");
      case SoloViolationPolicy::kRaiseLimit: {
        effective_tl_ = result.bcmt[i] + options_.raise_limit_margin;
        note << "; raised TL to " << effective_tl_ << " C";
        result.notes.push_back(note.str());
        break;
      }
      case SoloViolationPolicy::kExclude:
        excluded[i] = true;
        note << "; excluded from the schedule";
        result.notes.push_back(note.str());
        break;
    }
  }

  // ---- Main loop (paper lines 8-28) ----
  std::vector<double> weight(n, 1.0);
  std::vector<bool> scheduled = excluded;  // excluded cores are never visited
  const std::vector<std::size_t> order =
      make_order(soc, model, options_.core_order);
  auto remaining = [&] {
    return std::count(scheduled.begin(), scheduled.end(), false);
  };

  std::size_t attempts = 0;
  while (remaining() > 0) {
    // Session construction (lines 9-15).
    TestSession session;
    std::vector<bool> active(n, false);
    for (std::size_t candidate : order) {
      if (scheduled[candidate]) continue;
      active[candidate] = true;
      const double stc = model.session_characteristic(active, power, weight);
      if (stc <= options_.stc_limit) {
        session.cores.push_back(candidate);
      } else {
        active[candidate] = false;
      }
    }
    if (session.empty()) {
      // No core fits under STCL even alone (weights may have grown, or
      // STCL is tighter than any single core). Degrade gracefully to a
      // sequential session: it passed the pre-pass, so it is safe.
      for (std::size_t candidate : order) {
        if (scheduled[candidate]) continue;
        session.cores.push_back(candidate);
        active[candidate] = true;
        THERMO_DEBUG() << "STCL " << options_.stc_limit
                       << " admits no core; forcing '"
                       << soc.flp.block(candidate).name << "' alone";
        break;
      }
    }
    THERMO_ENSURE(!session.empty(), "session construction made no progress");

    // Validation (lines 16-23).
    if (++attempts > options_.max_attempts) {
      throw LogicError("thermal scheduler: attempt cap exhausted (" +
                       std::to_string(options_.max_attempts) + ")");
    }
    const double length = session.length(soc);
    const thermal::SessionSimulation sim =
        analyzer.simulate_session(session.power_map(soc), length);

    bool valid = true;
    for (std::size_t core : session.cores) {
      if (sim.peak_temperature[core] >= effective_tl_) {
        weight[core] *= options_.weight_factor;
        valid = false;
      }
    }

    if (!valid) {
      ++result.discarded_sessions;
      if (session.size() == 1) {
        // A solo session cannot run cooler than the pre-pass; if it still
        // violates, the configuration is unschedulable (can only happen
        // with kRaiseLimit margins smaller than the simulation noise).
        throw LogicError("single-core session violates TL after pre-pass: '" +
                         soc.flp.block(session.cores[0]).name + "'");
      }
      continue;  // regenerate with the increased weights (line 9)
    }

    // Commit (lines 24-27).
    SessionOutcome outcome;
    outcome.session = session;
    outcome.length = length;
    outcome.max_temperature = sim.max_temperature;
    outcome.hottest_core = sim.hottest_block;
    result.outcomes.push_back(outcome);
    result.schedule.sessions.push_back(std::move(session));
    for (std::size_t core : result.schedule.sessions.back().cores) {
      scheduled[core] = true;
    }
  }

  result.schedule.require_well_formed(soc);
  result.schedule_length = result.schedule.total_length(soc);
  result.simulation_effort = analyzer.simulation_effort();
  result.simulation_count = analyzer.simulation_count();
  result.max_temperature = 0.0;
  for (const SessionOutcome& outcome : result.outcomes) {
    result.max_temperature =
        std::max(result.max_temperature, outcome.max_temperature);
  }
  return result;
}

}  // namespace thermo::core
