// Exact minimum-session scheduler for small SoCs (exhaustive dynamic
// programming over core subsets).
//
// Finds a schedule with the *provably minimal number of sessions* such
// that every session, simulated with the full RC oracle, stays below the
// temperature limit. Complexity is O(3^n) subset-DP plus one simulation
// per subset (memoised), so it is practical for n <= ~12 cores - enough
// to measure how far Algorithm 1's greedy heuristic is from optimal
// (bench_ablation_exact) and to cross-check the heuristic in tests.
#pragma once

#include <cstddef>

#include "core/scheduler_result.hpp"
#include "core/soc_spec.hpp"
#include "thermal/analyzer.hpp"

namespace thermo::core {

struct ExactSchedulerOptions {
  double temperature_limit = 145.0;  ///< TL [deg C]
  std::size_t max_cores = 14;        ///< refuse larger instances (2^n blow-up)
};

class ExactScheduler {
 public:
  explicit ExactScheduler(ExactSchedulerOptions options = {});

  const ExactSchedulerOptions& options() const { return options_; }

  /// Returns a minimum-session thermally-safe schedule. Throws
  /// InvalidArgument when the SoC has more than max_cores cores or when
  /// some core violates TL even alone (no safe schedule exists).
  /// simulation_effort accounts for every oracle call (one per distinct
  /// subset evaluated).
  ScheduleResult generate(const SocSpec& soc,
                          thermal::ThermalAnalyzer& analyzer) const;

 private:
  ExactSchedulerOptions options_;
};

}  // namespace thermo::core
