// Trivial baseline: one core per session (zero concurrency). Its
// schedule length is the upper bound every other scheduler improves on,
// and its per-session temperatures are the BCMT values of the paper's
// pre-pass.
#pragma once

#include "core/scheduler_result.hpp"
#include "core/soc_spec.hpp"
#include "thermal/analyzer.hpp"

namespace thermo::core {

class SequentialScheduler {
 public:
  /// One session per core, in block order. When an analyzer is given,
  /// sessions are simulated for the report.
  ScheduleResult generate(const SocSpec& soc,
                          thermal::ThermalAnalyzer* analyzer = nullptr) const;
};

}  // namespace thermo::core
