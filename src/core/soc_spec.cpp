#include "core/soc_spec.hpp"

#include <cmath>

#include "util/error.hpp"

namespace thermo::core {

std::vector<double> SocSpec::test_powers() const {
  std::vector<double> out(tests.size());
  for (std::size_t i = 0; i < tests.size(); ++i) out[i] = tests[i].power;
  return out;
}

double SocSpec::power_density(std::size_t i) const {
  THERMO_REQUIRE(i < tests.size(), "core index out of range");
  return tests[i].power / flp.block(i).area();
}

void SocSpec::validate() const {
  flp.require_valid();
  package.validate();
  THERMO_REQUIRE(tests.size() == flp.size(),
                 "SocSpec '" + name + "': tests.size() (" +
                     std::to_string(tests.size()) +
                     ") must equal the block count (" +
                     std::to_string(flp.size()) + ")");
  for (std::size_t i = 0; i < tests.size(); ++i) {
    THERMO_REQUIRE(std::isfinite(tests[i].power) && tests[i].power >= 0.0,
                   "core '" + flp.block(i).name +
                       "': test power must be finite and non-negative");
    THERMO_REQUIRE(std::isfinite(tests[i].length) && tests[i].length > 0.0,
                   "core '" + flp.block(i).name +
                       "': test length must be finite and positive");
  }
}

}  // namespace thermo::core
