#include "core/power_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace thermo::core {

PowerConstrainedScheduler::PowerConstrainedScheduler(
    PowerSchedulerOptions options)
    : options_(options) {
  THERMO_REQUIRE(options_.power_limit > 0.0, "power limit must be positive");
}

ScheduleResult PowerConstrainedScheduler::generate(
    const SocSpec& soc, thermal::ThermalAnalyzer* analyzer) const {
  soc.validate();
  const std::size_t n = soc.core_count();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options_.sort_by_power) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return soc.tests[a].power > soc.tests[b].power;
                     });
  }

  ScheduleResult result;
  if (analyzer != nullptr) analyzer->reset_effort();

  std::vector<bool> scheduled(n, false);
  std::size_t remaining = n;
  while (remaining > 0) {
    TestSession session;
    double session_power = 0.0;
    for (std::size_t candidate : order) {
      if (scheduled[candidate]) continue;
      const double p = soc.tests[candidate].power;
      if (session.empty() && p > options_.power_limit) {
        // Over-budget core: test it alone, flag the budget breach.
        std::ostringstream note;
        note << "core '" << soc.flp.block(candidate).name << "' (" << p
             << " W) exceeds the session power budget ("
             << options_.power_limit << " W); scheduled alone";
        result.notes.push_back(note.str());
        session.cores.push_back(candidate);
        session_power = p;
        break;
      }
      if (session_power + p <= options_.power_limit) {
        session.cores.push_back(candidate);
        session_power += p;
      }
    }
    THERMO_ENSURE(!session.empty(), "power scheduler made no progress");

    for (std::size_t core : session.cores) scheduled[core] = true;
    remaining -= session.size();

    SessionOutcome outcome;
    outcome.session = session;
    outcome.length = session.length(soc);
    if (analyzer != nullptr) {
      const thermal::SessionSimulation sim =
          analyzer->simulate_session(session.power_map(soc), outcome.length);
      outcome.max_temperature = sim.max_temperature;
      outcome.hottest_core = sim.hottest_block;
    }
    result.outcomes.push_back(outcome);
    result.schedule.sessions.push_back(std::move(session));
  }

  result.schedule.require_well_formed(soc);
  result.schedule_length = result.schedule.total_length(soc);
  if (analyzer != nullptr) {
    result.simulation_effort = analyzer->simulation_effort();
    result.simulation_count = analyzer->simulation_count();
    for (const SessionOutcome& outcome : result.outcomes) {
      result.max_temperature =
          std::max(result.max_temperature, outcome.max_temperature);
    }
  }
  return result;
}

}  // namespace thermo::core
