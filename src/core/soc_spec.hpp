// System-under-test description: a floorplan whose blocks are testable
// cores, each with a test power and a test length, plus the thermal
// package. This is the input to every scheduler — the paper's "SoC with
// N cores" plus exactly the data its thermal model needs (core
// geometry/adjacency for Rth, per-core test power for TC and STC).
// Test power is the *average* power during test, typically several
// times functional power — the reason test scheduling needs thermal
// awareness at all.
#pragma once

#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "thermal/package.hpp"

namespace thermo::core {

/// Test properties of one core (indexed like the floorplan blocks).
struct CoreTest {
  double power = 0.0;   ///< average power dissipation during test [W]
  double length = 1.0;  ///< test application time [s]
};

struct SocSpec {
  std::string name;
  floorplan::Floorplan flp;
  thermal::PackageParams package;
  /// One entry per floorplan block.
  std::vector<CoreTest> tests;

  std::size_t core_count() const { return flp.size(); }

  /// Per-core test power as a vector [W].
  std::vector<double> test_powers() const;

  /// Power density of core i [W/m^2].
  double power_density(std::size_t i) const;

  /// Throws InvalidArgument unless the floorplan is valid, tests.size()
  /// matches the block count, and every power/length is finite and
  /// positive (length) / non-negative (power).
  void validate() const;
};

}  // namespace thermo::core
