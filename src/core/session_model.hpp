// The paper's test session thermal model (Section 2).
//
// Start from the RC-equivalent network of the die and apply the three
// modifications of the paper:
//   1. steady state only -> keep thermal resistances, drop capacitances;
//   2. drop resistances between two *active* (concurrently tested)
//      cores — their temperature difference is small, so little heat
//      flows between them;
//   3. *passive* cores are thermally grounded at ambient.
//
// Each active core i is then connected to thermal ground through the
// parallel combination of
//   * its lateral resistances to adjacent passive cores, and
//   * its lateral resistances to the chip boundary (the white arrows of
//     the paper's Figure 2; the boundary acts as ground in this model),
// giving the equivalent thermal resistance Rth(i | TS).
//
// Definitions (paper, Section 2):
//   TC_TS(i)  = P(i) * Rth(i | TS)                 (core thermal characteristic)
//   STC(TS)   = max_{Ci in TS} TC_TS(i) * P(i) * W(i)
//             = max_i P(i)^2 * Rth(i | TS) * W(i)  (session thermal characteristic)
//
// A core whose neighbours are all active and which touches no chip
// boundary has no path to ground: Rth = +infinity, so it can never be
// added to that session — exactly the hot-spot the model is built to
// avoid. `include_vertical_path` optionally adds the die->package
// vertical resistance in parallel (an extension; off by default to match
// the paper, exercised by the model-fidelity ablation).
//
// docs/SCHEDULING.md explains how the scheduler uses STC/STCL and how
// stc_scale places a SoC on the paper's STCL axis.
#pragma once

#include <limits>
#include <vector>

#include "core/soc_spec.hpp"
#include "floorplan/floorplan.hpp"
#include "thermal/package.hpp"

namespace thermo::core {

struct SessionModelOptions {
  /// Adds the vertical (die -> spreader -> ambient) resistance of each
  /// core in parallel with its lateral paths. Paper semantics: false.
  bool include_vertical_path = false;

  /// Multiplier applied to STC values. The paper sweeps STCL over
  /// 20..100 in unnamed units; the SoC definitions in src/soc pick a
  /// scale placing their STC range onto that axis.
  double stc_scale = 1.0;
};

class SessionThermalModel {
 public:
  SessionThermalModel(const floorplan::Floorplan& fp,
                      const thermal::PackageParams& package,
                      SessionModelOptions options = {});

  std::size_t core_count() const { return lateral_.size(); }
  const SessionModelOptions& options() const { return options_; }

  /// Equivalent thermal resistance of active core `core` given the
  /// session's active mask [K/W]. Returns +infinity when the core has no
  /// path to thermal ground. `active[core]` itself is ignored (the core
  /// is treated as active).
  double equivalent_resistance(const std::vector<bool>& active,
                               std::size_t core) const;

  /// TC_TS(core) = P * Rth(core | TS).
  double thermal_characteristic(const std::vector<bool>& active,
                                std::size_t core, double power) const;

  /// STC(TS) = max over active cores of TC * P * W, times stc_scale.
  /// Returns 0 for an empty session and +infinity when any member is
  /// fully enclosed by active cores.
  double session_characteristic(const std::vector<bool>& active,
                                const std::vector<double>& power,
                                const std::vector<double>& weight) const;

  /// Lateral resistance between adjacent cores i and j [K/W]
  /// (+infinity when not adjacent). Mirrors the RC simulator's formula.
  double lateral_resistance(std::size_t i, std::size_t j) const;

  /// Combined resistance from core i to the chip boundary [K/W]
  /// (+infinity for interior blocks).
  double boundary_resistance(std::size_t i) const;

  /// Vertical resistance of core i through the package [K/W].
  double vertical_resistance(std::size_t i) const;

  static constexpr double kInfiniteResistance =
      std::numeric_limits<double>::infinity();

 private:
  struct LateralPath {
    std::size_t other;       ///< neighbouring core index
    double conductance;      ///< 1/R of the shared-edge silicon slab [W/K]
  };

  SessionModelOptions options_;
  /// Per-core lateral paths to neighbours.
  std::vector<std::vector<LateralPath>> lateral_;
  /// Per-core conductance to the chip boundary [W/K] (0 for interior).
  std::vector<double> boundary_conductance_;
  /// Per-core vertical conductance through the package [W/K].
  std::vector<double> vertical_conductance_;
};

}  // namespace thermo::core
