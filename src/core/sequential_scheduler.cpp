#include "core/sequential_scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace thermo::core {

ScheduleResult SequentialScheduler::generate(
    const SocSpec& soc, thermal::ThermalAnalyzer* analyzer) const {
  soc.validate();
  ScheduleResult result;
  if (analyzer != nullptr) analyzer->reset_effort();

  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    TestSession session;
    session.cores.push_back(i);

    SessionOutcome outcome;
    outcome.session = session;
    outcome.length = session.length(soc);
    if (analyzer != nullptr) {
      const thermal::SessionSimulation sim =
          analyzer->simulate_session(session.power_map(soc), outcome.length);
      outcome.max_temperature = sim.max_temperature;
      outcome.hottest_core = sim.hottest_block;
      result.bcmt.push_back(sim.peak_temperature[i]);
    }
    result.outcomes.push_back(outcome);
    result.schedule.sessions.push_back(std::move(session));
  }

  result.schedule.require_well_formed(soc);
  result.schedule_length = result.schedule.total_length(soc);
  if (analyzer != nullptr) {
    result.simulation_effort = analyzer->simulation_effort();
    result.simulation_count = analyzer->simulation_count();
    for (const SessionOutcome& outcome : result.outcomes) {
      result.max_temperature =
          std::max(result.max_temperature, outcome.max_temperature);
    }
  }
  return result;
}

}  // namespace thermo::core
