#include "core/stcl_sweep.hpp"

#include "sweep/scenario_sweep.hpp"
#include "thermal/analyzer.hpp"
#include "util/error.hpp"

namespace thermo::core {

std::vector<StclSweepPoint> sweep_stcl(
    const SocSpec& soc, std::shared_ptr<const thermal::RCModel> model,
    const std::vector<double>& stcl_values, const StclSweepConfig& config) {
  THERMO_REQUIRE(model != nullptr, "stcl sweep requires a model");

  sweep::SweepOptions sweep_options;
  sweep_options.threads = config.threads;
  const sweep::ScenarioSweep sweeper(sweep_options);

  return sweeper.map(stcl_values.size(), [&](std::size_t i) {
    thermal::ThermalAnalyzer analyzer(model, config.analyzer);
    ThermalSchedulerOptions options = config.scheduler;
    options.stc_limit = stcl_values[i];
    const ThermalAwareScheduler scheduler(options);
    const ScheduleResult result = scheduler.generate(soc, analyzer);
    return StclSweepPoint{stcl_values[i],
                          result.schedule_length,
                          result.simulation_effort,
                          result.schedule.session_count(),
                          result.max_temperature,
                          result.discarded_sessions,
                          scheduler.effective_temperature_limit()};
  });
}

std::vector<double> stcl_range(double min, double max, double step) {
  THERMO_REQUIRE(step > 0.0 && max >= min,
                 "STCL range requires step > 0 and max >= min");
  // Computed by index, not by accumulation: `v += step` can round to a
  // no-op when step is below min's ULP (an infinite loop), and repeated
  // addition drifts. The count is bounded up front.
  const double span = (max - min) / step;
  THERMO_REQUIRE(span < 1e6, "STCL range would exceed a million points");
  const auto count = static_cast<std::size_t>(span + 1e-9) + 1;
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(min + static_cast<double>(i) * step);
  }
  return values;
}

}  // namespace thermo::core
