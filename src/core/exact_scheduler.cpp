#include "core/exact_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace thermo::core {

ExactScheduler::ExactScheduler(ExactSchedulerOptions options)
    : options_(options) {
  THERMO_REQUIRE(std::isfinite(options_.temperature_limit),
                 "temperature limit must be finite");
  THERMO_REQUIRE(options_.max_cores >= 1 && options_.max_cores <= 20,
                 "max_cores must lie in [1, 20]");
}

namespace {

TestSession session_of_mask(unsigned mask, std::size_t n) {
  TestSession session;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask & (1u << i)) session.cores.push_back(i);
  }
  return session;
}

}  // namespace

ScheduleResult ExactScheduler::generate(
    const SocSpec& soc, thermal::ThermalAnalyzer& analyzer) const {
  soc.validate();
  const std::size_t n = soc.core_count();
  THERMO_REQUIRE(n <= options_.max_cores,
                 "exact scheduler: " + std::to_string(n) +
                     " cores exceeds max_cores (" +
                     std::to_string(options_.max_cores) + ")");
  THERMO_REQUIRE(analyzer.model().block_count() == n,
                 "analyzer was built for a different floorplan");

  analyzer.reset_effort();
  const unsigned full = (1u << n) - 1u;

  // Memoised safety oracle: -1 unknown, 0 unsafe, 1 safe. A superset of
  // an unsafe set is unsafe, but we only exploit the cheap direction
  // (simulate on demand) - subsets are only queried when reachable in
  // the DP, which prunes most of the lattice for tight limits.
  std::vector<signed char> safe(full + 1u, -1);
  std::vector<double> subset_peak(full + 1u, 0.0);
  auto is_safe = [&](unsigned mask) {
    if (safe[mask] != -1) return safe[mask] == 1;
    const TestSession session = session_of_mask(mask, n);
    const thermal::SessionSimulation sim = analyzer.simulate_session(
        session.power_map(soc), session.length(soc));
    bool ok = true;
    for (std::size_t core : session.cores) {
      if (sim.peak_temperature[core] >= options_.temperature_limit) {
        ok = false;
        break;
      }
    }
    subset_peak[mask] = sim.max_temperature;
    safe[mask] = ok ? 1 : 0;
    return ok;
  };

  // Every core must be safe alone, or no schedule exists.
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_safe(1u << i)) {
      throw InvalidArgument("exact scheduler: core '" + soc.flp.block(i).name +
                            "' violates TL even alone; no safe schedule");
    }
  }

  // DP over subsets: sessions(mask) = minimal safe partition size.
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> best(full + 1u, kInf);
  std::vector<unsigned> choice(full + 1u, 0);
  best[0] = 0;
  for (unsigned mask = 1; mask <= full; ++mask) {
    // Fix the lowest set bit into the chosen session: this canonical
    // form enumerates each partition once.
    const unsigned lowest = mask & (0u - mask);
    const unsigned rest = mask ^ lowest;
    // Enumerate submasks of `rest`; session = lowest | sub.
    unsigned sub = rest;
    while (true) {
      const unsigned session_mask = lowest | sub;
      if (best[mask ^ session_mask] + 1 < best[mask] &&
          is_safe(session_mask)) {
        best[mask] = best[mask ^ session_mask] + 1;
        choice[mask] = session_mask;
      }
      if (sub == 0) break;
      sub = (sub - 1) & rest;
    }
  }
  THERMO_ENSURE(best[full] < kInf, "exact scheduler: DP found no partition");

  ScheduleResult result;
  unsigned mask = full;
  while (mask != 0) {
    const unsigned session_mask = choice[mask];
    TestSession session = session_of_mask(session_mask, n);
    SessionOutcome outcome;
    outcome.session = session;
    outcome.length = session.length(soc);
    outcome.max_temperature = subset_peak[session_mask];
    result.outcomes.push_back(outcome);
    result.schedule.sessions.push_back(std::move(session));
    mask ^= session_mask;
  }

  result.schedule.require_well_formed(soc);
  THERMO_ENSURE(result.schedule.is_complete(soc),
                "exact scheduler: incomplete partition");
  result.schedule_length = result.schedule.total_length(soc);
  result.simulation_effort = analyzer.simulation_effort();
  result.simulation_count = analyzer.simulation_count();
  for (const SessionOutcome& outcome : result.outcomes) {
    result.max_temperature =
        std::max(result.max_temperature, outcome.max_temperature);
  }
  return result;
}

}  // namespace thermo::core
