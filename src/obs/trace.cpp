#include "obs/trace.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace thermo::obs {

std::atomic<bool> TraceRecorder::active_flag_{false};
thread_local TraceRecorder::ThreadRing* TraceRecorder::tl_ring_ = nullptr;

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::start(std::size_t events_per_thread) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, events_per_thread);
  for (const auto& ring : rings_) {
    ring->total = 0;
    ring->events.assign(capacity_, TraceEvent{});
  }
  stop_ns_ = 0;
  start_ns_ = now_ns();
  // Release pairs with the acquire in active(): a thread that sees the
  // flag set also sees start_ns_ and the cleared rings.
  active_flag_.store(true, std::memory_order_release);
}

void TraceRecorder::stop() {
  active_flag_.store(false, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(mutex_);
  stop_ns_ = now_ns();
}

TraceRecorder::ThreadRing& TraceRecorder::ring_for_current_thread() {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto ring = std::make_unique<ThreadRing>();
  ring->tid = static_cast<std::uint32_t>(rings_.size() + 1);
  ring->events.assign(capacity_, TraceEvent{});
  tl_ring_ = ring.get();
  rings_.push_back(std::move(ring));
  return *tl_ring_;
}

void TraceRecorder::record(const char* name, char phase) {
  TraceRecorder& recorder = instance();
  ThreadRing* ring = tl_ring_;
  if (ring == nullptr) ring = &recorder.ring_for_current_thread();
  if (ring->events.empty()) return;
  TraceEvent& event = ring->events[ring->total % ring->events.size()];
  event.name = name;
  event.ts_ns = now_ns() - recorder.start_ns_;
  event.phase = phase;
  ++ring->total;
}

std::uint64_t TraceRecorder::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t capacity = ring->events.size();
    if (ring->total > capacity) dropped += ring->total - capacity;
  }
  return dropped;
}

JsonValue TraceRecorder::snapshot_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t end_offset =
      stop_ns_ > start_ns_ ? stop_ns_ - start_ns_ : now_ns() - start_ns_;

  JsonValue events = JsonValue::array();
  std::uint64_t dropped = 0;
  const auto emit = [&events](const char* name, char phase, std::uint64_t ts,
                              std::uint32_t tid) {
    JsonValue out = JsonValue::object();
    out.set("name", JsonValue::string(name));
    out.set("cat", JsonValue::string("thermo"));
    out.set("ph", JsonValue::string(std::string(1, phase)));
    // µs with ns precision; division by a power of 10^3 is monotone, so
    // per-tid ordering survives the unit change.
    out.set("ts", JsonValue::number(static_cast<double>(ts) / 1000.0));
    out.set("pid", JsonValue::number(1.0));
    out.set("tid", JsonValue::number(static_cast<double>(tid)));
    if (phase == 'i') out.set("s", JsonValue::string("t"));
    events.append(std::move(out));
  };

  for (const auto& ring : rings_) {
    const std::uint64_t capacity = ring->events.size();
    if (capacity == 0 || ring->total == 0) continue;
    if (ring->total > capacity) dropped += ring->total - capacity;
    const std::uint64_t kept = std::min(ring->total, capacity);
    // The kept window is the *suffix* of a stream that was balanced as
    // recorded, so an 'E' with no open 'B' can only mean its 'B' was
    // overwritten — skip it; everything still open at the end gets a
    // synthetic 'E' so viewers never see a dangling span.
    std::vector<const char*> open;
    std::uint64_t last_ts = 0;
    for (std::uint64_t k = ring->total - kept; k < ring->total; ++k) {
      const TraceEvent& event = ring->events[k % capacity];
      last_ts = event.ts_ns;
      if (event.phase == 'B') {
        open.push_back(event.name);
        emit(event.name, 'B', event.ts_ns, ring->tid);
      } else if (event.phase == 'E') {
        if (open.empty()) continue;  // begin was dropped by wraparound
        open.pop_back();
        emit(event.name, 'E', event.ts_ns, ring->tid);
      } else {
        emit(event.name, event.phase, event.ts_ns, ring->tid);
      }
    }
    const std::uint64_t close_ts = std::max(last_ts, end_offset);
    while (!open.empty()) {
      emit(open.back(), 'E', close_ts, ring->tid);
      open.pop_back();
    }
  }

  JsonValue out = JsonValue::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", JsonValue::string("ms"));
  JsonValue other = JsonValue::object();
  other.set("dropped_events",
            JsonValue::number(static_cast<double>(dropped)));
  out.set("otherData", std::move(other));
  return out;
}

}  // namespace thermo::obs
