// Process-wide metrics: name-keyed counters, gauges, and log-bucketed
// latency histograms (docs/OBSERVABILITY.md).
//
// The registry answers "where did the p95 go" for the serve pipeline
// without printf archaeology: every hot layer (dispatch, scenario,
// thermal, persist, sweep) records into named metrics, and one snapshot
// — `thermosched serve --metrics-json` or the summary's `metrics`
// section — exposes exact counts and latency quantiles for the whole
// process.
//
// Design constraints, in order:
//   * Observability must never change output bytes. Metrics record
//     counts and timestamps, never decisions — nothing in the serve
//     pipeline reads a metric back.
//   * The disabled path is a branch on ONE atomic flag: every record
//     call starts with `if (!enabled()) return;` on a relaxed load.
//   * The enabled hot path is lock-free: counters and histogram buckets
//     are relaxed atomics; the registry mutex is only taken on metric
//     *creation* (instrumentation sites cache the returned reference).
//   * Snapshots are byte-stable: iteration is in sorted-name order and
//     all JSON numbers are exact integers, so two snapshots of the same
//     counts dump identical bytes.
//
// Histogram shape (the HdrHistogram / SPDK idiom): values bucket by
// magnitude — shift = max(0, bit_width(v) - kSubBucketBits) — into 64
// sub-buckets per power of two, bounding relative error at ~1.6% while
// keeping record() to two shifts and one fetch_add. quantile() returns
// the *lower bound* of the bucket holding the rank, so planted values
// that are bucket floors round-trip exactly (tests/obs_test.cpp), and
// quantiles are a pure function of the recorded multiset — identical
// across thread interleavings.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace thermo::obs {

/// Master recording switch, default ON. A relaxed load of one atomic —
/// the whole cost of disabled observability. Toggling does not reset
/// anything; bench_obs flips it to measure instrumentation overhead.
bool enabled();
void set_enabled(bool on);

/// Monotonic nanoseconds (steady_clock). Shared by ScopedTimer and the
/// trace recorder so span and histogram timestamps agree.
std::uint64_t now_ns();

/// Monotonically increasing event count. Never reads back into any
/// decision — counters are write-only for the pipeline.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, cache sizes).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed latency histogram over non-negative integer values
/// (nanoseconds by convention — metric names end in `_ns`). Lock-free:
/// record() is two shifts plus relaxed fetch_adds; there is no mutex
/// anywhere in this class.
class Histogram {
 public:
  /// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per power of
  /// two, i.e. worst-case relative bucket width 1/64 ≈ 1.6%.
  static constexpr unsigned kSubBucketBits = 6;
  static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
  /// shift ranges over 0..64-kSubBucketBits for 64-bit values.
  static constexpr unsigned kShifts = 64 - kSubBucketBits + 1;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kShifts) * kSubBuckets;

  /// Bucket index for a value (exposed for the exactness tests).
  static std::size_t bucket_index(std::uint64_t value);
  /// Smallest value mapping to bucket `index` — what quantile() returns.
  static std::uint64_t bucket_floor(std::size_t index);

  void record(std::uint64_t value);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;  ///< 0 when empty
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Lower bound of the bucket holding rank ceil(q * count), q clamped
  /// to [0, 1]; 0 when empty. A pure function of the recorded multiset.
  std::uint64_t quantile(double q) const;

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII histogram timer: records elapsed nanoseconds on destruction.
/// When observability is disabled at construction it never reads the
/// clock at all.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) {
    if (enabled()) {
      histogram_ = &histogram;
      start_ns_ = now_ns();
    }
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->record(now_ns() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

/// The process-wide registry. counter()/gauge()/histogram() create on
/// first use and always return the same object for a name afterwards
/// (references stay valid for the process lifetime — sites cache them
/// in function-local statics). A name identifies exactly one kind;
/// asking for "x" as both a counter and a histogram throws
/// InvalidArgument, which keeps the snapshot unambiguous.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Byte-stable snapshot:
  ///   {"counters":{name:value,...},
  ///    "gauges":{name:value,...},
  ///    "histograms":{name:{"count","sum","min","max",
  ///                        "p50","p90","p95","p99"},...}}
  /// Names iterate in sorted order; all numbers are exact integers.
  JsonValue to_json() const;

  /// Zeroes every metric (objects and references survive). Benches and
  /// tests use this to scope counters to one run.
  void reset();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mutex_;
  // std::map: pointer-stable nodes AND sorted iteration for free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace thermo::obs
