#include "obs/metrics.hpp"

#include <bit>
#include <chrono>
#include <cmath>

#include "util/error.hpp"

namespace thermo::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// JSON numbers are doubles; past 2^53 an exact-integer snapshot is no
/// longer possible, so clamp there (a 104-day nanosecond sum — far past
/// anything a serve process accumulates, but the snapshot must never
/// silently round).
constexpr std::uint64_t kJsonExactMax = 1ull << 53;

JsonValue exact_number(std::uint64_t value) {
  return JsonValue::number(
      static_cast<double>(value < kJsonExactMax ? value : kJsonExactMax));
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t Histogram::bucket_index(std::uint64_t value) {
  const unsigned width = static_cast<unsigned>(std::bit_width(value));
  const unsigned shift = width <= kSubBucketBits ? 0 : width - kSubBucketBits;
  // shift == 0: value itself is the sub-bucket (linear range [0, 64)).
  // Otherwise the top kSubBucketBits bits select a sub-bucket in
  // [kSubBuckets/2, kSubBuckets).
  return static_cast<std::size_t>(shift) * kSubBuckets + (value >> shift);
}

std::uint64_t Histogram::bucket_floor(std::size_t index) {
  const std::size_t shift = index / kSubBuckets;
  const std::uint64_t slot = index % kSubBuckets;
  return slot << shift;
}

void Histogram::record(std::uint64_t value) {
  if (!enabled()) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max via CAS loops: contention here is one compare per record in
  // the common (no new extreme) case.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX ? 0 : value;
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (!(q > 0.0)) q = 0.0;  // also maps NaN to the first rank
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_floor(i);
  }
  // count() raced ahead of the bucket stores; the highest non-empty
  // bucket is the best consistent answer.
  for (std::size_t i = kBuckets; i-- > 0;) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) {
      return bucket_floor(i);
    }
  }
  return 0;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  THERMO_REQUIRE(gauges_.find(name) == gauges_.end() &&
                     histograms_.find(name) == histograms_.end(),
                 "metric name registered with a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  THERMO_REQUIRE(counters_.find(name) == counters_.end() &&
                     histograms_.find(name) == histograms_.end(),
                 "metric name registered with a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  THERMO_REQUIRE(counters_.find(name) == counters_.end() &&
                     gauges_.find(name) == gauges_.end(),
                 "metric name registered with a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

JsonValue MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, counter] : counters_) {
    counters.set(name, exact_number(counter->value()));
  }
  out.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.set(name, JsonValue::number(static_cast<double>(gauge->value())));
  }
  out.set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, histogram] : histograms_) {
    JsonValue h = JsonValue::object();
    h.set("count", exact_number(histogram->count()));
    h.set("sum", exact_number(histogram->sum()));
    h.set("min", exact_number(histogram->min()));
    h.set("max", exact_number(histogram->max()));
    h.set("p50", exact_number(histogram->quantile(0.50)));
    h.set("p90", exact_number(histogram->quantile(0.90)));
    h.set("p95", exact_number(histogram->quantile(0.95)));
    h.set("p99", exact_number(histogram->quantile(0.99)));
    histograms.set(name, std::move(h));
  }
  out.set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace thermo::obs
