// Per-thread span tracing, exported as Chrome/Perfetto `traceEvents`
// JSON (docs/OBSERVABILITY.md "Trace format").
//
// Each thread records into its own fixed-capacity ring buffer — the hot
// path is one thread_local pointer load, one clock read, and three
// plain stores into a preallocated slot: no allocation, no atomics, no
// locks (the ring is single-writer; rings are only read after stop(),
// when thread joins have already published every store). When a ring
// wraps, the oldest events are overwritten (drop-oldest) and the loss
// is accounted exactly in dropped_events().
//
// Event names must be string literals (or otherwise outlive the
// recorder): the ring stores the pointer, never a copy — that is what
// keeps record() allocation-free.
//
// Export balances each thread's stream so every viewer accepts it:
// 'E' events whose 'B' was overwritten are skipped, and spans still
// open at snapshot time get a synthetic 'E' at the snapshot timestamp
// (tools/check_trace.py verifies both properties).
//
// Off by default; `thermosched serve --trace` starts it. The disabled
// path is a branch on one atomic flag, and tracing records timestamps
// only — output bytes never depend on it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.hpp"

namespace thermo::obs {

/// One ring slot. `name` is a borrowed static string (see file comment).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;  ///< monotonic, relative to start()
  char phase = 0;           ///< 'B' begin, 'E' end, 'i' instant
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// True while a trace is being recorded (acquire load of one atomic —
  /// the whole cost when tracing is off).
  static bool active() {
    return active_flag_.load(std::memory_order_acquire);
  }

  /// Begins recording: clears previously captured rings, fixes each
  /// thread's ring capacity, zeroes the clock. Call while no other
  /// thread is recording (serve starts the trace before the batch).
  void start(std::size_t events_per_thread = kDefaultCapacity);

  /// Stops recording; captured events stay available for snapshot_json.
  void stop();

  /// Events overwritten by ring wraparound, summed over threads.
  std::uint64_t dropped_events() const;

  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":
  /// "ms","otherData":{"dropped_events":N}}. Each event carries
  /// name/cat/ph/ts (µs, relative)/pid/tid; tids are assigned in thread
  /// registration order starting at 1. Call after stop().
  JsonValue snapshot_json() const;

  /// Hot path, called via TraceSpan/trace_instant when active().
  static void record(const char* name, char phase);

  static constexpr std::size_t kDefaultCapacity = 1u << 15;

 private:
  struct ThreadRing {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;  ///< capacity fixed at start()
    std::uint64_t total = 0;         ///< events ever recorded
  };

  TraceRecorder() = default;
  ThreadRing& ring_for_current_thread();

  static std::atomic<bool> active_flag_;
  static thread_local ThreadRing* tl_ring_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t stop_ns_ = 0;
  std::size_t capacity_ = kDefaultCapacity;
  mutable std::mutex mutex_;  ///< guards ring registration + snapshot
  // unique_ptr nodes: thread_local pointers into rings_ stay valid for
  // the process lifetime (rings are reset, never removed).
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

/// RAII begin/end span. Free when tracing is inactive: the constructor
/// branches on the active flag and the destructor on a cached pointer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceRecorder::active()) {
      name_ = name;
      TraceRecorder::record(name, 'B');
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) TraceRecorder::record(name_, 'E');
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
};

/// Zero-duration marker ('i' phase).
inline void trace_instant(const char* name) {
  if (TraceRecorder::active()) TraceRecorder::record(name, 'i');
}

}  // namespace thermo::obs
