#include "util/table.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace thermo {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  THERMO_REQUIRE(!header_.empty(), "table must have at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  THERMO_REQUIRE(row.size() <= header_.size(),
                 "row has more cells than the header");
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  THERMO_REQUIRE(i < rows_.size(), "row index out of range");
  return rows_[i];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace thermo
