// ASCII table and CSV report writers. Bench binaries use these to print
// the paper's tables/series in both human- and machine-readable form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace thermo {

/// A rectangular table of strings with a header row. Rows are padded to
/// the header width with empty cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must not be wider than the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each double with the given precision.
  void add_numeric_row(const std::vector<double>& values, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const;

  /// Pretty-prints with aligned columns and a separator rule.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields containing comma/quote are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field.
std::string csv_escape(const std::string& field);

}  // namespace thermo
