#include "util/error.hpp"

#include <sstream>
#include <string_view>

namespace thermo::detail {

[[noreturn]] void throw_require_failure(const char* kind, const char* expr,
                                        const std::string& message,
                                        std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": " << kind << " failed ["
     << expr << "]: " << message;
  if (std::string_view(kind) == "invariant") {
    throw LogicError(os.str());
  }
  throw InvalidArgument(os.str());
}

}  // namespace thermo::detail
