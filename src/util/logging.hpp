// Minimal leveled logger. Output goes to stderr by default so that bench
// binaries can keep stdout clean for machine-readable results.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace thermo {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns a human-readable name ("info", "warn"...) for a level.
const char* log_level_name(LogLevel level);

/// Global logger. Configure (set_level/set_sink) once at startup, from
/// one thread; write() — and therefore the THERMO_* macros — may then
/// be called concurrently: a mutex serializes sink writes, so messages
/// from serve/sweep worker threads come out whole, never interleaved
/// (tests/util_logging_test.cpp hammers this).
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Redirects output (tests use this to capture messages). The stream
  /// must outlive the logger's use of it; pass nullptr to restore stderr.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = nullptr;
  std::mutex write_mutex_;  ///< one message = one uninterleaved line
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace thermo

#define THERMO_LOG(level)                                  \
  if (::thermo::Logger::instance().enabled(level))         \
  ::thermo::detail::LogLine(level)

#define THERMO_TRACE() THERMO_LOG(::thermo::LogLevel::kTrace)
#define THERMO_DEBUG() THERMO_LOG(::thermo::LogLevel::kDebug)
#define THERMO_INFO() THERMO_LOG(::thermo::LogLevel::kInfo)
#define THERMO_WARN() THERMO_LOG(::thermo::LogLevel::kWarn)
#define THERMO_ERROR() THERMO_LOG(::thermo::LogLevel::kError)
