// Tiny declarative command-line option parser for examples and benches.
//
//   CliParser cli("quickstart", "Generate a thermal-safe schedule");
//   double tl = 145.0;
//   cli.add_double("tl", "Maximum allowable temperature [C]", &tl);
//   cli.parse(argc, argv);   // throws ParseError on bad input
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace thermo {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void add_flag(const std::string& name, const std::string& help, bool* target);
  void add_double(const std::string& name, const std::string& help, double* target);
  void add_int(const std::string& name, const std::string& help, long long* target);
  void add_string(const std::string& name, const std::string& help, std::string* target);

  /// Parses `--name value` / `--name=value` / `--flag` arguments.
  /// Returns false (after printing usage) when --help was requested.
  /// Throws ParseError on unknown options or malformed values.
  bool parse(int argc, const char* const* argv);

  /// Positional arguments left over after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Option {
    std::string help;
    bool takes_value;
    std::function<void(const std::string&)> apply;
  };
  void add_option(const std::string& name, const std::string& help,
                  bool takes_value, std::function<void(const std::string&)> apply);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace thermo
