// Minimal JSON value type with a hand-rolled parser and serializer —
// just enough for the scenario request/response format (docs/SERVE.md)
// without pulling in an external dependency.
//
// Design choices, all in service of deterministic round-trips:
//   * Objects preserve *insertion order* (a vector of key/value pairs,
//     not a map), so parse -> dump -> parse is the identity on the
//     serialized text. Duplicate keys are a parse error rather than a
//     silent last-wins.
//   * Numbers are IEEE doubles serialized with std::to_chars shortest
//     round-trip formatting: dump(parse(x)) prints the same bits it
//     read, and equal doubles always print identically — this is what
//     makes `thermosched serve` output byte-comparable across runs and
//     thread counts. Non-finite numbers cannot be represented in JSON
//     and make dump() throw.
//   * dump() is compact (no whitespace); JSONL wants one record per
//     line, so pretty-printing is deliberately absent.
//
// The parser is a recursive-descent scanner over the full JSON grammar
// (RFC 8259): null/true/false, numbers, strings with every escape
// including \uXXXX surrogate pairs, arrays, objects. Errors throw
// ParseError with 1-based line and column, e.g.
//   json: line 3, column 17: expected ':' after object key
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace thermo {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructed value is null.
  JsonValue() = default;

  // Named constructors (plain constructors would make `JsonValue(0)`
  // ambiguous between bool/double/pointer overloads).
  static JsonValue null();
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Human-readable type name ("null", "bool", "number", ...), used in
  /// validation error messages.
  const char* type_name() const;

  // Typed accessors; each throws InvalidArgument naming the actual type
  // when the value is of a different kind.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Element count of an array or object (0 for everything else).
  std::size_t size() const;

  /// Array elements, in order. Throws InvalidArgument for non-arrays.
  const std::vector<JsonValue>& items() const;

  /// Appends to an array. Throws InvalidArgument for non-arrays.
  void append(JsonValue value);

  /// Object members in insertion order. Throws for non-objects.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Pointer to the member's value, nullptr when absent (or when this
  /// is not an object) — the lookup never throws so callers can express
  /// optional fields.
  const JsonValue* find(std::string_view key) const;

  /// Sets a member: replaces the value in place when the key exists,
  /// appends otherwise. Throws InvalidArgument for non-objects.
  void set(std::string key, JsonValue value);

  /// Compact deterministic serialization (see file comment). Throws
  /// InvalidArgument when a non-finite number is reached.
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document; trailing non-whitespace is an
/// error. Throws ParseError with 1-based line/column on malformed input.
JsonValue parse_json(std::string_view text);

/// Shortest round-trip decimal form of a double (the number format
/// dump() uses), e.g. 15 -> "15", 0.1 -> "0.1", 2e5 -> "2e+05".
/// Throws InvalidArgument on non-finite values.
std::string format_json_number(double value);

}  // namespace thermo
