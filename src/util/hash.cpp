#include "util/hash.hpp"

namespace thermo {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  return fnv1a64(bytes, 0xcbf29ce484222325ULL);
}

}  // namespace thermo
