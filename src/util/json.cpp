#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace thermo {

namespace {

[[noreturn]] void type_mismatch(const char* wanted, const char* got) {
  throw InvalidArgument(std::string("JSON value is not ") + wanted +
                        " (it is " + got + ")");
}

}  // namespace

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const char* JsonValue::type_name() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_mismatch("a bool", type_name());
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_mismatch("a number", type_name());
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_mismatch("a string", type_name());
  return string_;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_mismatch("an array", type_name());
  return items_;
}

void JsonValue::append(JsonValue value) {
  if (type_ != Type::kArray) type_mismatch("an array", type_name());
  items_.push_back(std::move(value));
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_mismatch("an object", type_name());
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (type_ != Type::kObject) type_mismatch("an object", type_name());
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

// --- serialization ---

std::string format_json_number(double value) {
  THERMO_REQUIRE(std::isfinite(value),
                 "JSON cannot represent a non-finite number");
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  THERMO_ENSURE(ec == std::errc{}, "to_chars failed on a finite double");
  return std::string(buf, end);
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonValue::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += format_json_number(number_);
      break;
    case Type::kString:
      dump_string(string_, out);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) out += ',';
        first = false;
        item.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        value.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// --- parsing ---

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  /// Nesting cap: malicious/degenerate inputs like "[[[[..." would
  /// otherwise overflow the parser's own call stack.
  static constexpr std::size_t kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("json: line " + std::to_string(line_) + ", column " +
                     std::to_string(column_) + ": " + message);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  void expect(char c, const char* context) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "' " + context);
    }
    advance();
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    for (std::size_t i = 0; i < word.size(); ++i) advance();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting depth exceeds 128");
    if (at_end()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("invalid literal (expected 'null')");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_object(std::size_t depth) {
    advance();  // '{'
    JsonValue obj = JsonValue::object();
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      advance();
      return obj;
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected '\"' to start object key");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) {
        fail("duplicate object key '" + key + "'");
      }
      skip_whitespace();
      expect(':', "after object key");
      skip_whitespace();
      obj.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated object (expected ',' or '}')");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "to close object");
      return obj;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    advance();  // '['
    JsonValue arr = JsonValue::array();
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      advance();
      return arr;
    }
    while (true) {
      skip_whitespace();
      arr.append(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated array (expected ',' or ']')");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "to close array");
      return arr;
    }
  }

  std::string parse_string() {
    advance();  // '"'
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (use \\u escapes)");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape sequence");
      const char esc = advance();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default:
          fail(std::string("invalid escape character '") + esc + "'");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("unterminated \\u escape");
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow for a code point
      // outside the basic multilingual plane.
      if (at_end() || peek() != '\\') fail("unpaired surrogate in \\u escape");
      advance();
      if (at_end() || peek() != 'u') fail("unpaired surrogate in \\u escape");
      advance();
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) {
        fail("unpaired surrogate in \\u escape");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    // Validate the strict JSON grammar by hand before handing the span
    // to from_chars (which is more permissive, e.g. about "inf").
    if (!at_end() && peek() == '-') advance();
    if (at_end() || peek() < '0' || peek() > '9') {
      fail("invalid number (expected a digit)");
    }
    if (peek() == '0') {
      advance();  // no leading zeros: "0" may not be followed by digits
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!at_end() && peek() == '.') {
      advance();
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("invalid number (expected a digit after '.')");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("invalid number (expected a digit in exponent)");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string_view span = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(span.data(), span.data() + span.size(), value);
    if (ec != std::errc{} || end != span.data() + span.size() ||
        !std::isfinite(value)) {
      fail("number out of range");
    }
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace thermo
