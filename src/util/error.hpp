// Error-handling primitives shared by every ThermoSched module.
//
// The library signals failure to perform a required task with exceptions
// (Core Guidelines I.10). Precondition violations throw `InvalidArgument`;
// internal invariant breaks throw `LogicError`; numeric breakdowns
// (singular systems, non-convergence) throw `NumericalError`; malformed
// external inputs throw `ParseError`.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace thermo {

/// Base class of every exception thrown by ThermoSched.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// An internal invariant was broken (a bug in the library, not the caller).
class LogicError : public Error {
 public:
  using Error::Error;
};

/// A numeric algorithm could not complete (singular matrix, divergence...).
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// An external input (file, string) could not be parsed.
class ParseError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_require_failure(const char* kind, const char* expr,
                                        const std::string& message,
                                        std::source_location loc);
}  // namespace detail

}  // namespace thermo

/// Precondition check: throws thermo::InvalidArgument when `cond` is false.
#define THERMO_REQUIRE(cond, message)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::thermo::detail::throw_require_failure(                            \
          "precondition", #cond, (message), std::source_location::current()); \
    }                                                                     \
  } while (false)

/// Internal invariant check: throws thermo::LogicError when `cond` is false.
#define THERMO_ENSURE(cond, message)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::thermo::detail::throw_require_failure(                            \
          "invariant", #cond, (message), std::source_location::current()); \
    }                                                                     \
  } while (false)
