// Content-address hashing shared by the in-memory result memo
// (src/dispatch) and the on-disk segment store (src/persist): both key
// records by the FNV-1a 64-bit digest of the same canonical
// serialization, so a memory entry and a disk record for one request
// always agree on their address. Living in util keeps persist free of
// any dispatch dependency (persist sits on util only).
#pragma once

#include <cstdint>
#include <string_view>

namespace thermo {

/// FNV-1a 64-bit over arbitrary bytes (offset basis 0xcbf29ce484222325,
/// prime 0x100000001b3 — the published reference parameters). Also the
/// per-record checksum of the persist segment format (docs/PERSIST.md):
/// not cryptographic, but a single bit flip anywhere in a frame changes
/// the digest, which is exactly the torn-write/corruption detection the
/// store needs.
std::uint64_t fnv1a64(std::string_view bytes);

/// fnv1a64 continued from a previous digest (`seed`), so a checksum can
/// be computed over several buffers without concatenating them.
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed);

}  // namespace thermo
