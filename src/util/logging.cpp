#include "util/logging.hpp"

#include <iostream>

namespace thermo {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  // Serialize the whole line: worker threads log concurrently (serve,
  // sweep), and a shared ostream offers no atomicity of its own.
  const std::lock_guard<std::mutex> lock(write_mutex_);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::cerr;
  out << "[thermo:" << log_level_name(level) << "] " << message << '\n';
}

}  // namespace thermo
