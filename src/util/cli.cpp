#include "util/cli.hpp"

#include <iostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace thermo {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name, const std::string& help,
                           bool takes_value,
                           std::function<void(const std::string&)> apply) {
  THERMO_REQUIRE(!name.empty(), "option name must be non-empty");
  THERMO_REQUIRE(options_.find(name) == options_.end(),
                 "duplicate option --" + name);
  options_[name] = Option{help, takes_value, std::move(apply)};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         bool* target) {
  add_option(name, help, /*takes_value=*/false,
             [target](const std::string&) { *target = true; });
}

void CliParser::add_double(const std::string& name, const std::string& help,
                           double* target) {
  add_option(name, help, /*takes_value=*/true, [name, target](const std::string& v) {
    auto parsed = parse_double(v);
    if (!parsed) throw ParseError("--" + name + ": expected a number, got '" + v + "'");
    *target = *parsed;
  });
}

void CliParser::add_int(const std::string& name, const std::string& help,
                        long long* target) {
  add_option(name, help, /*takes_value=*/true, [name, target](const std::string& v) {
    auto parsed = parse_int(v);
    if (!parsed) throw ParseError("--" + name + ": expected an integer, got '" + v + "'");
    *target = *parsed;
  });
}

void CliParser::add_string(const std::string& name, const std::string& help,
                           std::string* target) {
  add_option(name, help, /*takes_value=*/true,
             [target](const std::string& v) { *target = v; });
}

bool CliParser::parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_inline_value = true;
    }
    auto it = options_.find(body);
    if (it == options_.end()) throw ParseError("unknown option --" + body);
    const Option& opt = it->second;
    if (opt.takes_value) {
      if (!has_inline_value) {
        if (i + 1 >= argc) throw ParseError("--" + body + " requires a value");
        value = argv[++i];
      }
      opt.apply(value);
    } else {
      if (has_inline_value) throw ParseError("--" + body + " does not take a value");
      opt.apply("");
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name << (opt.takes_value ? " <value>" : "") << "\n      "
       << opt.help << '\n';
  }
  os << "  --help\n      Show this message\n";
  return os.str();
}

}  // namespace thermo
