#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace thermo {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && is_space(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace thermo
