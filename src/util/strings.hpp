// Small string helpers used by parsers and report writers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace thermo {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; no empty fields are produced.
std::vector<std::string> split_whitespace(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

/// Parses a floating point number; std::nullopt if the whole string is not
/// a valid number.
std::optional<double> parse_double(std::string_view s);

/// Parses a non-negative integer; std::nullopt on failure.
std::optional<long long> parse_int(std::string_view s);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style %.*f formatting with fixed precision.
std::string format_double(double value, int precision);

}  // namespace thermo
