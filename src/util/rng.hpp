// Deterministic pseudo-random generation (xoshiro256**). ThermoSched uses
// its own generator rather than <random> engines so that synthetic SoCs
// and property-test sweeps are reproducible across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace thermo {

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  long long uniform_int(long long lo, long long hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Bernoulli(p).
  bool chance(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace thermo
