#include "thermal/grid_model.hpp"

#include <algorithm>
#include <cmath>

#include "thermal/model_identity.hpp"
#include "thermal/solver_cache.hpp"
#include "util/error.hpp"

namespace thermo::thermal {

namespace {
double overlap_1d(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}
}  // namespace

GridThermalModel::GridThermalModel(const floorplan::Floorplan& fp,
                                   const PackageParams& package,
                                   GridOptions options)
    : floorplan_(fp),
      package_(package),
      options_(options),
      identity_(next_model_identity()) {
  package_.validate();
  floorplan_.require_valid();
  THERMO_REQUIRE(options_.rows >= 2 && options_.cols >= 2,
                 "grid needs at least 2x2 cells");

  const double chip_w = floorplan_.chip_width();
  const double chip_h = floorplan_.chip_height();
  cell_w_ = chip_w / static_cast<double>(options_.cols);
  cell_h_ = chip_h / static_cast<double>(options_.rows);
  const double x0 = floorplan_.min_x();
  const double y0 = floorplan_.min_y();

  const std::size_t cells = cell_count();
  const std::size_t sp_c = cells, sp_n = cells + 1, sp_s = cells + 2,
                    sp_e = cells + 3, sp_w = cells + 4;
  const std::size_t sk_c = cells + 5, sk_n = cells + 6, sk_s = cells + 7,
                    sk_e = cells + 8, sk_w = cells + 9;

  linalg::SparseMatrix::Builder builder(node_count(), node_count());
  auto stamp = [&](std::size_t a, std::size_t b, double g) {
    builder.add(a, a, g);
    builder.add(b, b, g);
    builder.add(a, b, -g);
    builder.add(b, a, -g);
  };
  auto stamp_ambient = [&](std::size_t node, double g) {
    builder.add(node, node, g);
  };

  // Lateral cell-to-cell conduction through shared faces.
  const double g_horizontal =
      package_.k_die * package_.t_die * cell_h_ / cell_w_;
  const double g_vertical =
      package_.k_die * package_.t_die * cell_w_ / cell_h_;
  for (std::size_t r = 0; r < options_.rows; ++r) {
    for (std::size_t c = 0; c < options_.cols; ++c) {
      if (c + 1 < options_.cols) {
        stamp(cell_index(r, c), cell_index(r, c + 1), g_horizontal);
      }
      if (r + 1 < options_.rows) {
        stamp(cell_index(r, c), cell_index(r + 1, c), g_vertical);
      }
    }
  }

  // Vertical path per cell: half-die + TIM. The constriction into the
  // spreader is a chip-level effect; at grid granularity the lateral
  // spreading is explicit, so only a chip-area spreading term is applied
  // (folded into the spreader -> sink resistances below).
  const double a_cell = cell_w_ * cell_h_;
  const double r_cell_vertical =
      package_.t_die / (2.0 * package_.k_die * a_cell) +
      package_.t_tim / (package_.k_tim * a_cell);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    stamp(cell, sp_c, 1.0 / r_cell_vertical);
  }

  // Package: identical topology and formulas to RCModel.
  {
    const double side = package_.spreader_side;
    const double r_lat =
        (side / 2.0) / (package_.k_spreader * package_.t_spreader * side);
    for (std::size_t node : {sp_n, sp_s, sp_e, sp_w}) {
      stamp(sp_c, node, 1.0 / r_lat);
    }
    const double a_spr = side * side;
    const double r_center =
        package_.t_spreader / (2.0 * package_.k_spreader * a_spr) +
        package_.t_sink / (2.0 * package_.k_sink * a_spr);
    stamp(sp_c, sk_c, 1.0 / r_center);
    const double a_quadrant = a_spr / 4.0;
    const double r_side =
        package_.t_spreader / (2.0 * package_.k_spreader * a_quadrant) +
        package_.t_sink / (2.0 * package_.k_sink * a_quadrant);
    stamp(sp_n, sk_n, 1.0 / r_side);
    stamp(sp_s, sk_s, 1.0 / r_side);
    stamp(sp_e, sk_e, 1.0 / r_side);
    stamp(sp_w, sk_w, 1.0 / r_side);

    const double sink_side = package_.sink_side;
    const double r_sink_lat =
        (sink_side / 2.0) / (package_.k_sink * package_.t_sink * sink_side);
    for (std::size_t node : {sk_n, sk_s, sk_e, sk_w}) {
      stamp(sk_c, node, 1.0 / r_sink_lat);
    }
    const double a_sink = sink_side * sink_side;
    const double a_side_conv = (a_sink - a_spr) / 4.0;
    stamp_ambient(sk_c, a_spr / (package_.r_convec * a_sink));
    for (std::size_t node : {sk_n, sk_s, sk_e, sk_w}) {
      stamp_ambient(node,
                    std::max(a_side_conv, 1e-12) / (package_.r_convec * a_sink));
    }
  }

  conductance_ = builder.build();
  THERMO_ENSURE(conductance_.is_symmetric(1e-9),
                "grid conductance matrix must be symmetric");

  // Block -> cell coverage by rectangle overlap.
  coverage_.assign(floorplan_.size(), {});
  for (std::size_t b = 0; b < floorplan_.size(); ++b) {
    const floorplan::Block& block = floorplan_.block(b);
    const auto row_lo = static_cast<std::size_t>(std::max(
        0.0, std::floor((block.bottom() - y0) / cell_h_)));
    const auto row_hi = std::min(
        options_.rows,
        static_cast<std::size_t>(std::ceil((block.top() - y0) / cell_h_)));
    const auto col_lo = static_cast<std::size_t>(std::max(
        0.0, std::floor((block.left() - x0) / cell_w_)));
    const auto col_hi = std::min(
        options_.cols,
        static_cast<std::size_t>(std::ceil((block.right() - x0) / cell_w_)));
    for (std::size_t r = row_lo; r < row_hi; ++r) {
      for (std::size_t c = col_lo; c < col_hi; ++c) {
        const double cx0 = x0 + static_cast<double>(c) * cell_w_;
        const double cy0 = y0 + static_cast<double>(r) * cell_h_;
        const double area =
            overlap_1d(block.left(), block.right(), cx0, cx0 + cell_w_) *
            overlap_1d(block.bottom(), block.top(), cy0, cy0 + cell_h_);
        if (area > 0.0) {
          coverage_[b].emplace_back(cell_index(r, c), area / a_cell);
        }
      }
    }
    THERMO_ENSURE(!coverage_[b].empty(),
                  "block '" + block.name + "' covers no grid cell");
  }
}

double GridThermalModel::coverage(std::size_t block, std::size_t row,
                                  std::size_t col) const {
  THERMO_REQUIRE(block < floorplan_.size(), "block index out of range");
  THERMO_REQUIRE(row < options_.rows && col < options_.cols,
                 "cell index out of range");
  const std::size_t cell = cell_index(row, col);
  for (const auto& [covered_cell, fraction] : coverage_[block]) {
    if (covered_cell == cell) return fraction;
  }
  return 0.0;
}

GridSteadyResult GridThermalModel::solve(const std::vector<double>& block_power,
                                         SolverBackend backend) const {
  THERMO_REQUIRE(block_power.size() == floorplan_.size(),
                 "power vector size must equal the block count");
  const double a_cell = cell_w_ * cell_h_;

  std::vector<double> power(node_count(), 0.0);
  for (std::size_t b = 0; b < floorplan_.size(); ++b) {
    THERMO_REQUIRE(std::isfinite(block_power[b]) && block_power[b] >= 0.0,
                   "block power must be finite and non-negative");
    const double density = block_power[b] / floorplan_.block(b).area();
    for (const auto& [cell, fraction] : coverage_[b]) {
      power[cell] += density * fraction * a_cell;
    }
  }

  // Unified solve path: the resolved backend picks a cached factor
  // from the process-wide ThermalSolverCache, exactly like RCModel's
  // steady path — a repeated solve on the same grid is one
  // back-substitution.
  ThermalSolverCache& cache = ThermalSolverCache::instance();
  std::vector<double> rise;
  if (resolve_backend(backend, node_count()) == SolverBackend::kSparse) {
    rise = cache.sparse_cholesky(*this)->solve(power);
  } else {
    THERMO_REQUIRE(node_count() <= RCModel::kDenseMirrorMaxNodes,
                   "grid model: dense backend disabled above " +
                       std::to_string(RCModel::kDenseMirrorMaxNodes) +
                       " nodes; use the sparse backend");
    rise = cache.cholesky(*this)->solve(power);
  }

  GridSteadyResult result;
  result.iterations = 0;
  result.cell_temperature.resize(cell_count());
  for (std::size_t cell = 0; cell < cell_count(); ++cell) {
    result.cell_temperature[cell] = package_.ambient + rise[cell];
  }
  result.block_max_temperature.assign(floorplan_.size(), package_.ambient);
  result.block_mean_temperature.assign(floorplan_.size(), 0.0);
  for (std::size_t b = 0; b < floorplan_.size(); ++b) {
    double weighted = 0.0;
    double total_fraction = 0.0;
    for (const auto& [cell, fraction] : coverage_[b]) {
      result.block_max_temperature[b] = std::max(
          result.block_max_temperature[b], result.cell_temperature[cell]);
      weighted += result.cell_temperature[cell] * fraction;
      total_fraction += fraction;
    }
    result.block_mean_temperature[b] = weighted / total_fraction;
  }
  return result;
}

}  // namespace thermo::thermal
