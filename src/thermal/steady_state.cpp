#include "thermal/steady_state.hpp"

#include <algorithm>

#include "linalg/iterative.hpp"
#include "thermal/solver_cache.hpp"
#include "util/error.hpp"

namespace thermo::thermal {

SteadyStateResult solve_steady_state(const RCModel& model,
                                     const std::vector<double>& block_power,
                                     SteadySolver solver) {
  SteadyStateOptions options;
  options.solver = solver;
  return solve_steady_state(model, block_power, options);
}

SteadyStateResult solve_steady_state(const RCModel& model,
                                     const std::vector<double>& block_power,
                                     const SteadyStateOptions& options) {
  const std::vector<double> power = model.expand_power(block_power);

  SteadyStateResult result;
  switch (options.solver) {
    case SteadySolver::kCholesky:
      // Factor-cached: G is fixed per model, only the power vector
      // changes across calls (see solver_cache.hpp). The backend picks
      // the factor representation; both are cached under the model's
      // identity.
      if (resolve_backend(options.backend, model.node_count()) ==
          SolverBackend::kSparse) {
        result.rise =
            ThermalSolverCache::instance().sparse_cholesky(model)->solve(power);
      } else {
        result.rise =
            ThermalSolverCache::instance().cholesky(model)->solve(power);
      }
      break;
    case SteadySolver::kLu:
      result.rise = ThermalSolverCache::instance().lu(model)->solve(power);
      break;
    case SteadySolver::kConjugateGradient: {
      linalg::IterativeOptions options;
      options.tolerance = 1e-12;
      options.max_iterations = 20ul * model.node_count() + 100ul;
      linalg::IterativeResult cg =
          linalg::conjugate_gradient(model.conductance_sparse(), power, options);
      if (!cg.converged) {
        throw NumericalError("steady state: CG failed to converge (residual " +
                             std::to_string(cg.residual) + ")");
      }
      result.rise = std::move(cg.solution);
      break;
    }
  }

  result.temperature.resize(result.rise.size());
  const double ambient = model.package().ambient;
  for (std::size_t i = 0; i < result.rise.size(); ++i) {
    result.temperature[i] = ambient + result.rise[i];
  }
  return result;
}

double max_block_temperature(const RCModel& model,
                             const SteadyStateResult& result) {
  THERMO_REQUIRE(result.temperature.size() == model.node_count(),
                 "result does not match the model");
  THERMO_REQUIRE(model.block_count() > 0, "model has no blocks");
  return *std::max_element(
      result.temperature.begin(),
      result.temperature.begin() + static_cast<std::ptrdiff_t>(model.block_count()));
}

}  // namespace thermo::thermal
