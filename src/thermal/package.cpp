#include "thermal/package.hpp"

#include <cmath>

#include "util/error.hpp"

namespace thermo::thermal {

void PackageParams::validate() const {
  auto positive = [](double v, const char* what) {
    THERMO_REQUIRE(std::isfinite(v) && v > 0.0,
                   std::string(what) + " must be positive and finite");
  };
  positive(t_die, "t_die");
  positive(k_die, "k_die");
  positive(c_die, "c_die");
  positive(t_tim, "t_tim");
  positive(k_tim, "k_tim");
  positive(spreader_side, "spreader_side");
  positive(t_spreader, "t_spreader");
  positive(k_spreader, "k_spreader");
  positive(c_spreader, "c_spreader");
  positive(sink_side, "sink_side");
  positive(t_sink, "t_sink");
  positive(k_sink, "k_sink");
  positive(c_sink, "c_sink");
  positive(r_convec, "r_convec");
  positive(c_convec, "c_convec");
  positive(capacity_factor, "capacity_factor");
  THERMO_REQUIRE(std::isfinite(ambient), "ambient must be finite");
  THERMO_REQUIRE(sink_side >= spreader_side,
                 "heat sink must be at least as large as the spreader");
}

}  // namespace thermo::thermal
