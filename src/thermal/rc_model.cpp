#include "thermal/rc_model.hpp"

#include <cmath>

#include "thermal/model_identity.hpp"
#include "util/error.hpp"

namespace thermo::thermal {

namespace fp = thermo::floorplan;

RCModel::RCModel(const fp::Floorplan& floorplan, const PackageParams& package)
    : floorplan_(floorplan),
      package_(package),
      identity_(next_model_identity()) {
  package_.validate();
  floorplan_.require_valid();
  block_count_ = floorplan_.size();
  build();
}

RCModel::RCModel(const RCModel& other)
    : floorplan_(other.floorplan_),
      package_(other.package_),
      identity_(other.identity_),
      block_count_(other.block_count_),
      sparse_(other.sparse_),
      capacitance_(other.capacitance_),
      ambient_conductance_(other.ambient_conductance_),
      node_names_(other.node_names_) {}

RCModel& RCModel::operator=(const RCModel& other) {
  if (this == &other) return *this;
  floorplan_ = other.floorplan_;
  package_ = other.package_;
  identity_ = other.identity_;
  block_count_ = other.block_count_;
  sparse_ = other.sparse_;
  capacitance_ = other.capacitance_;
  ambient_conductance_ = other.ambient_conductance_;
  node_names_ = other.node_names_;
  std::lock_guard<std::mutex> lock(dense_mutex_);
  dense_.reset();
  return *this;
}

void RCModel::stamp(linalg::SparseMatrix::Builder& builder, std::size_t a,
                    std::size_t b, double g) {
  THERMO_ENSURE(std::isfinite(g) && g > 0.0, "stamped conductance must be positive");
  builder.add(a, a, g);
  builder.add(b, b, g);
  builder.add(a, b, -g);
  builder.add(b, a, -g);
}

void RCModel::stamp_to_ambient(linalg::SparseMatrix::Builder& builder,
                               std::size_t node, double g) {
  THERMO_ENSURE(std::isfinite(g) && g > 0.0, "ambient conductance must be positive");
  builder.add(node, node, g);
  ambient_conductance_[node] += g;
}

void RCModel::build() {
  const std::size_t n = block_count_;
  const std::size_t total = node_count();
  // Sparse-first assembly: every stamp goes straight into the COO
  // builder (duplicates merge in insertion order, so the CSR values
  // are bit-identical to accumulating into a dense matrix). ~4 stamps
  // of 4 entries per node bounds the triplet count.
  linalg::SparseMatrix::Builder builder(total, total);
  builder.reserve(16 * total);
  capacitance_.assign(total, 0.0);
  ambient_conductance_.assign(total, 0.0);
  node_names_.clear();
  node_names_.reserve(total);
  for (std::size_t i = 0; i < n; ++i) {
    node_names_.push_back("block:" + floorplan_.block(i).name);
  }
  for (const char* name : {"spreader_c", "spreader_n", "spreader_s",
                           "spreader_e", "spreader_w", "sink_c", "sink_n",
                           "sink_s", "sink_e", "sink_w"}) {
    node_names_.emplace_back(name);
  }

  const std::size_t sp_c = spreader_center_index();
  const std::size_t sp_n = sp_c + 1, sp_s = sp_c + 2, sp_e = sp_c + 3,
                    sp_w = sp_c + 4;
  const std::size_t sk_c = sink_center_index();
  const std::size_t sk_n = sk_c + 1, sk_s = sk_c + 2, sk_e = sk_c + 3,
                    sk_w = sk_c + 4;

  // --- die lateral conductances ---
  for (const fp::Adjacency& adj : floorplan_.adjacencies()) {
    const fp::Block& a = floorplan_.block(adj.a);
    const fp::Block& b = floorplan_.block(adj.b);
    const double da = a.centroid_to_side(adj.side_of_a);
    // The side of b facing a is the opposite one; centroid distance is
    // symmetric per axis, so reuse the same axis extent.
    const double db = b.centroid_to_side(adj.side_of_a);
    const double resistance =
        (da + db) / (package_.k_die * package_.t_die * adj.shared_length);
    stamp(builder, adj.a, adj.b, 1.0 / resistance);
  }

  // --- die vertical path: block -> spreader centre ---
  for (std::size_t i = 0; i < n; ++i) {
    const double area = floorplan_.block(i).area();
    const double r_die = package_.t_die / (2.0 * package_.k_die * area);
    const double r_tim = package_.t_tim / (package_.k_tim * area);
    // Constriction (spreading) resistance of a square heat source of
    // side sqrt(area) into the copper spreader; 0.475/(k*L) is the
    // classic square-source half-space approximation.
    const double r_spread = 0.475 / (package_.k_spreader * std::sqrt(area));
    stamp(builder, i, sp_c, 1.0 / (r_die + r_tim + r_spread));
  }

  // --- spreader lateral: centre <-> periphery (half-side copper slab) ---
  {
    const double side = package_.spreader_side;
    const double r_lat = (side / 2.0) /
                         (package_.k_spreader * package_.t_spreader * side);
    for (std::size_t node : {sp_n, sp_s, sp_e, sp_w}) {
      stamp(builder, sp_c, node, 1.0 / r_lat);
    }
  }

  // --- spreader -> sink vertical ---
  {
    const double a_spr = package_.spreader_side * package_.spreader_side;
    // Centre column: spreader half-thickness + sink half-thickness over
    // the spreader footprint.
    const double r_center =
        package_.t_spreader / (2.0 * package_.k_spreader * a_spr) +
        package_.t_sink / (2.0 * package_.k_sink * a_spr);
    stamp(builder, sp_c, sk_c, 1.0 / r_center);
    // Periphery quadrants drain into the matching sink periphery node.
    const double a_quadrant = a_spr / 4.0;
    const double r_side =
        package_.t_spreader / (2.0 * package_.k_spreader * a_quadrant) +
        package_.t_sink / (2.0 * package_.k_sink * a_quadrant);
    stamp(builder, sp_n, sk_n, 1.0 / r_side);
    stamp(builder, sp_s, sk_s, 1.0 / r_side);
    stamp(builder, sp_e, sk_e, 1.0 / r_side);
    stamp(builder, sp_w, sk_w, 1.0 / r_side);
  }

  // --- sink lateral: centre <-> periphery ---
  {
    const double side = package_.sink_side;
    const double r_lat =
        (side / 2.0) / (package_.k_sink * package_.t_sink * side);
    for (std::size_t node : {sk_n, sk_s, sk_e, sk_w}) {
      stamp(builder, sk_c, node, 1.0 / r_lat);
    }
  }

  // --- convection to ambient, split by footprint area ---
  {
    const double a_sink = package_.sink_side * package_.sink_side;
    const double a_spr = package_.spreader_side * package_.spreader_side;
    const double a_center = a_spr;  // centre node sits under the spreader
    const double a_side = (a_sink - a_spr) / 4.0;
    // R_node = r_convec * (A_sink / A_node): nodes in parallel recombine
    // to exactly r_convec.
    stamp_to_ambient(builder, sk_c, a_center / (package_.r_convec * a_sink));
    if (a_side > 0.0) {
      for (std::size_t node : {sk_n, sk_s, sk_e, sk_w}) {
        stamp_to_ambient(builder, node, a_side / (package_.r_convec * a_sink));
      }
    } else {
      // Degenerate package (sink == spreader): keep periphery grounded
      // through a tiny leak so G stays non-singular.
      for (std::size_t node : {sk_n, sk_s, sk_e, sk_w}) {
        stamp_to_ambient(builder, node, 1e-9);
      }
    }
  }

  // --- capacitances ---
  for (std::size_t i = 0; i < n; ++i) {
    const double volume = floorplan_.block(i).area() * package_.t_die;
    capacitance_[i] = package_.capacity_factor * package_.c_die * volume;
  }
  {
    const double a_spr = package_.spreader_side * package_.spreader_side;
    const double v_center = a_spr * package_.t_spreader;
    capacitance_[sp_c] = package_.capacity_factor * package_.c_spreader * v_center;
    // Periphery nodes share the remaining spreader volume; for the simple
    // five-node split the centre already covers the full footprint, so
    // give the periphery a quarter of the centre volume each (keeps the
    // transient well-posed without double counting much mass).
    for (std::size_t node : {sp_n, sp_s, sp_e, sp_w}) {
      capacitance_[node] =
          package_.capacity_factor * package_.c_spreader * v_center / 4.0;
    }
    const double a_sink = package_.sink_side * package_.sink_side;
    const double v_sink_center = a_spr * package_.t_sink;
    const double v_sink_side = (a_sink - a_spr) / 4.0 * package_.t_sink;
    capacitance_[sk_c] =
        package_.capacity_factor * package_.c_sink * v_sink_center +
        package_.c_convec * a_spr / a_sink;
    for (std::size_t node : {sk_n, sk_s, sk_e, sk_w}) {
      capacitance_[node] =
          package_.capacity_factor * package_.c_sink *
              std::max(v_sink_side, 1e-12) +
          package_.c_convec * std::max(a_sink - a_spr, 1e-12) / (4.0 * a_sink);
    }
  }

  sparse_ = builder.build();
  // Symmetry validation runs on the CSR matrix directly — no dense
  // mirror is materialised for it (O(nnz·log) instead of O(n²)).
  THERMO_ENSURE(sparse_.is_symmetric(1e-9),
                "conductance matrix must be symmetric");
}

const linalg::DenseMatrix& RCModel::conductance() const {
  std::lock_guard<std::mutex> lock(dense_mutex_);
  if (!dense_) {
    THERMO_REQUIRE(node_count() <= kDenseMirrorMaxNodes,
                   "dense conductance mirror disabled above " +
                       std::to_string(kDenseMirrorMaxNodes) +
                       " nodes; use conductance_sparse()");
    dense_ = std::make_unique<linalg::DenseMatrix>(sparse_.to_dense());
  }
  return *dense_;
}

const std::string& RCModel::node_name(std::size_t node) const {
  THERMO_REQUIRE(node < node_names_.size(), "node index out of range");
  return node_names_[node];
}

std::vector<double> RCModel::expand_power(
    const std::vector<double>& block_power) const {
  THERMO_REQUIRE(block_power.size() == block_count_,
                 "power vector size must equal the block count");
  for (double p : block_power) {
    THERMO_REQUIRE(std::isfinite(p) && p >= 0.0,
                   "block power must be finite and non-negative");
  }
  std::vector<double> power(node_count(), 0.0);
  for (std::size_t i = 0; i < block_count_; ++i) power[i] = block_power[i];
  return power;
}

double RCModel::conductance_between(std::size_t a, std::size_t b) const {
  THERMO_REQUIRE(a < node_count() && b < node_count(),
                 "node index out of range");
  THERMO_REQUIRE(a != b, "conductance_between requires two distinct nodes");
  return -sparse_.at(a, b);
}

double RCModel::conductance_to_ambient(std::size_t node) const {
  THERMO_REQUIRE(node < node_count(), "node index out of range");
  return ambient_conductance_[node];
}

}  // namespace thermo::thermal
