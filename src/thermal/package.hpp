// Thermal package description: die + TIM + heat spreader + heat sink +
// convection, following the HotSpot block-model stack (Skadron et al.,
// "Temperature-aware microarchitecture", ISCAS 2003). All parameters are
// SI; temperatures are degrees Celsius.
#pragma once

namespace thermo::thermal {

struct PackageParams {
  // --- silicon die ---
  double t_die = 0.5e-3;   ///< die thickness [m]
  double k_die = 100.0;    ///< silicon thermal conductivity [W/(m K)]
  double c_die = 1.75e6;   ///< silicon volumetric heat capacity [J/(m^3 K)]

  // --- thermal interface material between die and spreader ---
  double t_tim = 7.5e-5;   ///< TIM thickness [m] (HotSpot default 75 um)
  double k_tim = 4.0;      ///< TIM conductivity [W/(m K)]

  // --- copper heat spreader ---
  double spreader_side = 0.03;   ///< [m]
  double t_spreader = 1.0e-3;    ///< [m]
  double k_spreader = 400.0;     ///< [W/(m K)]
  double c_spreader = 3.55e6;    ///< [J/(m^3 K)]

  // --- heat sink base ---
  double sink_side = 0.06;   ///< [m]
  double t_sink = 6.9e-3;    ///< [m]
  double k_sink = 400.0;     ///< [W/(m K)]
  double c_sink = 3.55e6;    ///< [J/(m^3 K)]

  // --- convection from sink to ambient ---
  double r_convec = 0.3;     ///< total convection resistance [K/W]
  double c_convec = 140.4;   ///< lumped convection capacitance [J/K]

  double ambient = 45.0;     ///< ambient temperature [deg C]

  /// HotSpot-style lumped-capacity fitting factor applied to block
  /// capacitances (compensates for the lumping error of the block model).
  double capacity_factor = 0.5;

  /// Throws InvalidArgument when any parameter is non-physical
  /// (non-positive thickness/conductivity/capacity, spreader smaller
  /// than the die would require, ...).
  void validate() const;
};

}  // namespace thermo::thermal
