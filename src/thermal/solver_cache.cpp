#include "thermal/solver_cache.hpp"

#include <cstring>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace thermo::thermal {

namespace {

std::uint64_t bits_of(double dt) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(dt));
  std::memcpy(&bits, &dt, sizeof(bits));
  return bits;
}

/// Cache observability (docs/OBSERVABILITY.md): hit/miss/eviction
/// counts plus the wall time of the factorizations the cache exists to
/// amortize.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Histogram& factor_ns;
};

CacheMetrics& cache_metrics() {
  auto& registry = obs::MetricsRegistry::instance();
  static CacheMetrics metrics{
      registry.counter("thermal.solver_cache.hits"),
      registry.counter("thermal.solver_cache.misses"),
      registry.counter("thermal.solver_cache.evictions"),
      registry.histogram("thermal.factor_ns")};
  return metrics;
}

}  // namespace

bool ThermalSolverCache::Key::operator<(const Key& other) const {
  return std::tie(model, dt_bits, kind) <
         std::tie(other.model, other.dt_bits, other.kind);
}

ThermalSolverCache& ThermalSolverCache::instance() {
  static ThermalSolverCache cache;
  return cache;
}

ThermalSolverCache::ThermalSolverCache(std::size_t capacity)
    : capacity_(capacity) {
  THERMO_REQUIRE(capacity > 0, "solver cache capacity must be positive");
}

std::shared_ptr<const void> ThermalSolverCache::lookup(
    const Key& key, const std::function<std::shared_ptr<const void>()>& make) {
  CacheMetrics& metrics = cache_metrics();
  {
    std::scoped_lock lock(mutex_);
    ++tick_;
    if (auto it = entries_.find(key); it != entries_.end()) {
      ++hits_;
      metrics.hits.add();
      it->second.last_used = tick_;
      return it->second.value;
    }
    ++misses_;
    metrics.misses.add();
  }
  // Factor OUTSIDE the lock: an O(n^3) factorization must not stall
  // every other worker's cache lookup. Two threads racing the same key
  // may both factor; the first insert wins and both share its result
  // (the loser's work is discarded — rare, and merely wasted cycles).
  std::shared_ptr<const void> value;
  {
    obs::TraceSpan factor_span("thermal.factor");
    obs::ScopedTimer factor_timer(metrics.factor_ns);
    value = make();
  }
  std::scoped_lock lock(mutex_);
  const auto [it, inserted] = entries_.try_emplace(key, Entry{value, tick_});
  if (!inserted) {
    it->second.last_used = ++tick_;
    return it->second.value;
  }
  while (entries_.size() > capacity_) {
    auto oldest = entries_.begin();
    for (auto candidate = entries_.begin(); candidate != entries_.end();
         ++candidate) {
      if (candidate->second.last_used < oldest->second.last_used) {
        oldest = candidate;
      }
    }
    entries_.erase(oldest);
    metrics.evictions.add();
  }
  return value;
}

std::shared_ptr<const linalg::CholeskyFactor> ThermalSolverCache::cholesky(
    const RCModel& model) {
  auto value = lookup(Key{model.identity(), 0, 0}, [&] {
    return std::shared_ptr<const void>(
        std::make_shared<const linalg::CholeskyFactor>(model.conductance()));
  });
  return std::static_pointer_cast<const linalg::CholeskyFactor>(value);
}

std::shared_ptr<const linalg::LuFactor> ThermalSolverCache::lu(
    const RCModel& model) {
  auto value = lookup(Key{model.identity(), 0, 1}, [&] {
    return std::shared_ptr<const void>(
        std::make_shared<const linalg::LuFactor>(model.conductance()));
  });
  return std::static_pointer_cast<const linalg::LuFactor>(value);
}

std::shared_ptr<const linalg::LinearImplicitStepper> ThermalSolverCache::stepper(
    const RCModel& model, double dt) {
  THERMO_REQUIRE(dt > 0.0, "solver cache: dt must be positive");
  auto value = lookup(Key{model.identity(), bits_of(dt), 2}, [&] {
    return std::shared_ptr<const void>(
        std::make_shared<const linalg::LinearImplicitStepper>(
            model.conductance(), model.capacitance(), dt));
  });
  return std::static_pointer_cast<const linalg::LinearImplicitStepper>(value);
}

std::shared_ptr<const linalg::SparseCholeskyFactor>
ThermalSolverCache::sparse_cholesky(const RCModel& model) {
  auto value = lookup(Key{model.identity(), 0, 3}, [&] {
    return std::shared_ptr<const void>(
        std::make_shared<const linalg::SparseCholeskyFactor>(
            model.conductance_sparse()));
  });
  return std::static_pointer_cast<const linalg::SparseCholeskyFactor>(value);
}

std::shared_ptr<const linalg::SparseImplicitStepper>
ThermalSolverCache::sparse_stepper(const RCModel& model, double dt) {
  THERMO_REQUIRE(dt > 0.0, "solver cache: dt must be positive");
  auto value = lookup(Key{model.identity(), bits_of(dt), 4}, [&] {
    return std::shared_ptr<const void>(
        std::make_shared<const linalg::SparseImplicitStepper>(
            model.conductance_sparse(), model.capacitance(), dt));
  });
  return std::static_pointer_cast<const linalg::SparseImplicitStepper>(value);
}

std::shared_ptr<const linalg::CholeskyFactor> ThermalSolverCache::cholesky(
    const GridThermalModel& model) {
  auto value = lookup(Key{model.identity(), 0, 0}, [&] {
    return std::shared_ptr<const void>(
        std::make_shared<const linalg::CholeskyFactor>(
            model.conductance().to_dense()));
  });
  return std::static_pointer_cast<const linalg::CholeskyFactor>(value);
}

std::shared_ptr<const linalg::SparseCholeskyFactor>
ThermalSolverCache::sparse_cholesky(const GridThermalModel& model) {
  auto value = lookup(Key{model.identity(), 0, 3}, [&] {
    return std::shared_ptr<const void>(
        std::make_shared<const linalg::SparseCholeskyFactor>(
            model.conductance()));
  });
  return std::static_pointer_cast<const linalg::SparseCholeskyFactor>(value);
}

void ThermalSolverCache::invalidate(const RCModel& model) {
  std::scoped_lock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.model == model.identity()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void ThermalSolverCache::invalidate(const GridThermalModel& model) {
  std::scoped_lock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.model == model.identity()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void ThermalSolverCache::clear() {
  std::scoped_lock lock(mutex_);
  entries_.clear();
}

ThermalSolverCache::Stats ThermalSolverCache::stats() const {
  std::scoped_lock lock(mutex_);
  return Stats{hits_, misses_, entries_.size()};
}

void ThermalSolverCache::reset_stats() {
  std::scoped_lock lock(mutex_);
  hits_ = 0;
  misses_ = 0;
}

}  // namespace thermo::thermal
