// Transient thermal simulation:  C dT/dt = P - G (T - T_amb).
//
// This is the expensive full-RC simulation of Algorithm 1's validation
// step — what the paper drove HotSpot for, and what the cheap session
// thermal model exists to avoid calling more often than necessary.
// Every simulated second here is charged to "simulation effort".
//
// The system is stiff (die time constants are milliseconds, the heat
// sink's are tens of seconds), so the default integrator is backward
// Euler with a factored system matrix; RK4 is available for
// cross-validation on short horizons.
//
// The backward-Euler system matrix (C/dt + G) is factor-cached per
// (model, dt) through ThermalSolverCache (solver_cache.hpp): the first
// simulated session pays the factorization, every later session on the
// same model and step size pays only back-substitution per step. The
// factor representation follows TransientOptions::backend (backend.hpp):
// dense LU below the kAuto crossover, sparse LDLᵗ above it — the sparse
// path is what keeps per-step cost linear in the node count on
// thousand-node SoCs. docs/SOLVERS.md covers the cost model and solver
// trade-offs.
#pragma once

#include <functional>
#include <vector>

#include "thermal/backend.hpp"
#include "thermal/rc_model.hpp"

namespace thermo::thermal {

enum class TransientIntegrator {
  kBackwardEuler,  ///< implicit, unconditionally stable (default)
  kRk4             ///< explicit, accurate but needs tiny steps when stiff
};

struct TransientOptions {
  double dt = 1e-3;  ///< step size [s]
  TransientIntegrator integrator = TransientIntegrator::kBackwardEuler;
  /// Matrix representation: for kBackwardEuler it picks the factor of
  /// (C/dt + G); for kRk4 it picks the G product per stage — dense n²
  /// below the kAuto crossover, the CSR SpMV fast path
  /// (SparseMatrix::multiply_into) at and above it.
  SolverBackend backend = SolverBackend::kAuto;
  /// Optional per-step observer (t, absolute node temperatures).
  std::function<void(double, const std::vector<double>&)> observer;
};

struct TransientResult {
  /// Absolute node temperatures at the end of the horizon [deg C].
  std::vector<double> final_temperature;
  /// Per-node maximum absolute temperature over the horizon [deg C]
  /// (includes the initial state).
  std::vector<double> peak_temperature;
  std::size_t steps = 0;
};

/// Simulates `duration` seconds with constant per-block power, starting
/// from `initial` absolute node temperatures (pass ambient_state() to
/// start cold).
TransientResult simulate_transient(const RCModel& model,
                                   const std::vector<double>& block_power,
                                   double duration,
                                   const std::vector<double>& initial,
                                   const TransientOptions& options = {});

/// All-nodes-at-ambient initial state for a model.
std::vector<double> ambient_state(const RCModel& model);

/// Maximum die-block entry of a per-node peak-temperature vector.
double max_block_peak(const RCModel& model, const TransientResult& result);

}  // namespace thermo::thermal
