// ThermalAnalyzer: the façade the scheduler talks to. Wraps an RCModel
// and exposes "simulate this test session, give me per-core maximum
// temperatures" — the simulate() oracle of Algorithm 1 — together with
// the cumulative simulated-time accounting the paper calls
// "simulation effort".
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "thermal/rc_model.hpp"
#include "thermal/steady_state.hpp"
#include "thermal/transient.hpp"

namespace thermo::thermal {

/// Outcome of simulating one test session.
struct SessionSimulation {
  /// Per-block maximum temperature reached during the session [deg C].
  std::vector<double> peak_temperature;
  /// Maximum over all blocks [deg C].
  double max_temperature = 0.0;
  /// Index of the hottest block.
  std::size_t hottest_block = 0;
  /// Duration that was simulated [s].
  double simulated_time = 0.0;
};

class ThermalAnalyzer {
 public:
  struct Options {
    double dt = 1e-3;  ///< transient step [s]
    /// When true (default), sessions are simulated transiently for their
    /// actual duration; when false, steady-state temperatures are used
    /// as a (faster, more pessimistic) oracle.
    bool transient = true;
    /// Factor representation for every solve this analyzer performs
    /// (backend.hpp): dense, sparse, or — the default — picked by the
    /// model's node count.
    SolverBackend backend = SolverBackend::kAuto;
  };

  ThermalAnalyzer(const floorplan::Floorplan& fp, const PackageParams& package);
  ThermalAnalyzer(const floorplan::Floorplan& fp, const PackageParams& package,
                  Options options);

  /// Shares an existing model instead of building a private one. Because
  /// cached factorizations are keyed by RCModel::identity(), analyzers
  /// sharing one model also share its factors — this is how a
  /// sweep::ScenarioSweep gives every worker thread its own effort
  /// accounting (analyzers are not thread-safe) while the expensive
  /// factorizations are computed once. Throws InvalidArgument on null.
  explicit ThermalAnalyzer(std::shared_ptr<const RCModel> model);
  ThermalAnalyzer(std::shared_ptr<const RCModel> model, Options options);

  const RCModel& model() const { return *model_; }
  const std::shared_ptr<const RCModel>& shared_model() const { return model_; }
  const Options& options() const { return options_; }

  /// Simulates a session: `block_power[i]` watts in every block for
  /// `duration` seconds starting from ambient. Adds `duration` to the
  /// cumulative simulation effort.
  SessionSimulation simulate_session(const std::vector<double>& block_power,
                                     double duration);

  /// Steady-state block temperatures for a power map (no effort charge;
  /// used for reporting and the motivational example).
  std::vector<double> steady_block_temperatures(
      const std::vector<double>& block_power) const;

  /// A session simulation that starts from an arbitrary node state and
  /// also returns the final state, enabling *chained* schedules where
  /// one session's residual heat carries into the next (relaxing the
  /// paper's independent-session assumption). Charges effort like
  /// simulate_session. Requires transient mode.
  struct Chained {
    SessionSimulation session;
    std::vector<double> final_state;  ///< absolute node temperatures
  };
  Chained simulate_session_from(const std::vector<double>& block_power,
                                double duration,
                                const std::vector<double>& initial_state);

  /// All-nodes-at-ambient initial state (node-sized).
  std::vector<double> ambient_node_state() const;

  /// Zero-power cool-down for `gap` seconds from a given state (no
  /// effort charge - the tester is idle, nothing is being simulated for
  /// schedule admission). Returns the state after the gap.
  std::vector<double> cool_down(const std::vector<double>& state,
                                double gap) const;

  /// Cumulative simulated test-session time [s] — the paper's
  /// "simulation effort".
  double simulation_effort() const { return simulation_effort_; }

  /// Number of simulate_session calls so far.
  std::size_t simulation_count() const { return simulation_count_; }

  /// Resets the effort accounting (a scheduler run starts from zero).
  void reset_effort();

 private:
  std::shared_ptr<const RCModel> model_;
  Options options_;
  double simulation_effort_ = 0.0;
  std::size_t simulation_count_ = 0;
};

}  // namespace thermo::thermal
