// Grid-granularity thermal model (the HotSpot "grid model" counterpart
// to RCModel's "block model").
//
// The die is discretised into rows x cols uniform cells; block powers
// are spread over the cells they cover by area overlap. Cells couple
// laterally to their 4-neighbours and vertically into the same
// 10-node spreader/sink/convection package used by RCModel, so the two
// models share package physics and differ only in die granularity.
//
// Purpose: a higher-fidelity steady-state oracle to quantify the
// discretisation error of the block model (bench_ablation_grid) and to
// expose intra-block temperature gradients that block granularity hides.
// Steady state only. Solves route through SolverBackend +
// ThermalSolverCache exactly like RCModel: the resolved backend picks a
// cached dense Cholesky (small grids) or a cached fill-ordered sparse
// LDLᵗ factor (everything else), so repeated solves on one grid pay a
// single factorization — 100k-node grids (317×317+) factor once and
// back-substitute per power map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "linalg/sparse.hpp"
#include "thermal/backend.hpp"
#include "thermal/package.hpp"

namespace thermo::thermal {

struct GridOptions {
  std::size_t rows = 32;
  std::size_t cols = 32;
};

struct GridSteadyResult {
  /// Absolute cell temperatures [deg C], row-major (rows x cols).
  std::vector<double> cell_temperature;
  /// Per-block maximum covered-cell temperature [deg C].
  std::vector<double> block_max_temperature;
  /// Per-block area-weighted mean temperature [deg C].
  std::vector<double> block_mean_temperature;
  /// Iterative-solver iterations; 0 for the direct factor backends
  /// (kept so telemetry consumers need no schema change).
  std::size_t iterations = 0;
};

class GridThermalModel {
 public:
  GridThermalModel(const floorplan::Floorplan& fp,
                   const PackageParams& package, GridOptions options = {});

  std::size_t rows() const { return options_.rows; }
  std::size_t cols() const { return options_.cols; }
  std::size_t cell_count() const { return options_.rows * options_.cols; }
  /// Total node count: cells + 10 package nodes.
  std::size_t node_count() const { return cell_count() + 10; }

  const floorplan::Floorplan& floorplan() const { return floorplan_; }
  const PackageParams& package() const { return package_; }

  /// Process-unique identity (thermal/model_identity.hpp), drawn from
  /// the same counter as RCModel::identity() so ThermalSolverCache can
  /// key grid factors alongside block-model factors without aliasing.
  /// Copies share the identity; the model is immutable after build.
  std::uint64_t identity() const { return identity_; }

  /// Fraction of cell (r, c) covered by block b (0..1).
  double coverage(std::size_t block, std::size_t row, std::size_t col) const;

  /// Steady-state solve for per-block power [W] through the resolved
  /// backend's cached factor (ThermalSolverCache).
  GridSteadyResult solve(const std::vector<double>& block_power,
                         SolverBackend backend = SolverBackend::kAuto) const;

  /// The sparse conductance matrix (ambient eliminated onto diagonal).
  const linalg::SparseMatrix& conductance() const { return conductance_; }

 private:
  std::size_t cell_index(std::size_t row, std::size_t col) const {
    return row * options_.cols + col;
  }

  floorplan::Floorplan floorplan_;
  PackageParams package_;
  GridOptions options_;
  std::uint64_t identity_ = 0;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  linalg::SparseMatrix conductance_;
  /// coverage_[b] lists (cell, fraction-of-cell-area) pairs.
  std::vector<std::vector<std::pair<std::size_t, double>>> coverage_;
};

}  // namespace thermo::thermal
