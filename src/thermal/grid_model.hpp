// Grid-granularity thermal model (the HotSpot "grid model" counterpart
// to RCModel's "block model").
//
// The die is discretised into rows x cols uniform cells; block powers
// are spread over the cells they cover by area overlap. Cells couple
// laterally to their 4-neighbours and vertically into the same
// 10-node spreader/sink/convection package used by RCModel, so the two
// models share package physics and differ only in die granularity.
//
// Purpose: a higher-fidelity steady-state oracle to quantify the
// discretisation error of the block model (bench_ablation_grid) and to
// expose intra-block temperature gradients that block granularity hides.
// Steady state only; the conductance matrix is kept sparse and solved
// with preconditioned CG, so fine grids (100x100+) stay tractable.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "linalg/sparse.hpp"
#include "thermal/package.hpp"

namespace thermo::thermal {

struct GridOptions {
  std::size_t rows = 32;
  std::size_t cols = 32;
};

struct GridSteadyResult {
  /// Absolute cell temperatures [deg C], row-major (rows x cols).
  std::vector<double> cell_temperature;
  /// Per-block maximum covered-cell temperature [deg C].
  std::vector<double> block_max_temperature;
  /// Per-block area-weighted mean temperature [deg C].
  std::vector<double> block_mean_temperature;
  /// CG iterations used.
  std::size_t iterations = 0;
};

class GridThermalModel {
 public:
  GridThermalModel(const floorplan::Floorplan& fp,
                   const PackageParams& package, GridOptions options = {});

  std::size_t rows() const { return options_.rows; }
  std::size_t cols() const { return options_.cols; }
  std::size_t cell_count() const { return options_.rows * options_.cols; }
  /// Total node count: cells + 10 package nodes.
  std::size_t node_count() const { return cell_count() + 10; }

  const floorplan::Floorplan& floorplan() const { return floorplan_; }
  const PackageParams& package() const { return package_; }

  /// Fraction of cell (r, c) covered by block b (0..1).
  double coverage(std::size_t block, std::size_t row, std::size_t col) const;

  /// Steady-state solve for per-block power [W].
  GridSteadyResult solve(const std::vector<double>& block_power) const;

  /// The sparse conductance matrix (ambient eliminated onto diagonal).
  const linalg::SparseMatrix& conductance() const { return conductance_; }

 private:
  std::size_t cell_index(std::size_t row, std::size_t col) const {
    return row * options_.cols + col;
  }

  floorplan::Floorplan floorplan_;
  PackageParams package_;
  GridOptions options_;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  linalg::SparseMatrix conductance_;
  /// coverage_[b] lists (cell, fraction-of-cell-area) pairs.
  std::vector<std::vector<std::pair<std::size_t, double>>> coverage_;
};

}  // namespace thermo::thermal
