// HotSpot .ptrace power-trace format: a header line of unit names
// followed by one line of power values [W] per time step. Interop with
// the tool the paper's authors used: lets externally produced traces
// drive our RC model (and vice versa) for cross-validation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"

namespace thermo::thermal {

struct PowerTrace {
  std::vector<std::string> unit_names;
  /// steps[t][u] = power of unit u at step t [W].
  std::vector<std::vector<double>> steps;

  std::size_t unit_count() const { return unit_names.size(); }
  std::size_t step_count() const { return steps.size(); }

  /// Reorders columns to match the floorplan's block order. Throws
  /// ParseError when a block has no column or the trace has extras.
  PowerTrace aligned_to(const floorplan::Floorplan& fp) const;
};

/// Parses a .ptrace stream; throws ParseError with line numbers.
PowerTrace parse_ptrace(std::istream& in);
PowerTrace parse_ptrace_string(const std::string& text);

/// Loads a .ptrace file; throws ParseError when unreadable.
PowerTrace load_ptrace(const std::string& path);

/// Writes .ptrace text (round-trips through parse_ptrace).
void write_ptrace(const PowerTrace& trace, std::ostream& out);
std::string to_ptrace_string(const PowerTrace& trace);

}  // namespace thermo::thermal
