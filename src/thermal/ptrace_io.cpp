#include "thermal/ptrace_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace thermo::thermal {

PowerTrace PowerTrace::aligned_to(const floorplan::Floorplan& fp) const {
  PowerTrace out;
  std::vector<std::size_t> column(fp.size());
  for (std::size_t b = 0; b < fp.size(); ++b) {
    const std::string& name = fp.block(b).name;
    bool found = false;
    for (std::size_t u = 0; u < unit_names.size(); ++u) {
      if (unit_names[u] == name) {
        column[b] = u;
        found = true;
        break;
      }
    }
    if (!found) {
      throw ParseError("ptrace has no column for block '" + name + "'");
    }
    out.unit_names.push_back(name);
  }
  if (unit_names.size() != fp.size()) {
    throw ParseError("ptrace has " + std::to_string(unit_names.size()) +
                     " columns but the floorplan has " +
                     std::to_string(fp.size()) + " blocks");
  }
  for (const auto& step : steps) {
    std::vector<double> row(fp.size());
    for (std::size_t b = 0; b < fp.size(); ++b) row[b] = step[column[b]];
    out.steps.push_back(std::move(row));
  }
  return out;
}

PowerTrace parse_ptrace(std::istream& in) {
  PowerTrace trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const auto fields = split_whitespace(line);
    if (fields.empty()) continue;
    if (trace.unit_names.empty()) {
      trace.unit_names = fields;
      continue;
    }
    if (fields.size() != trace.unit_names.size()) {
      std::ostringstream os;
      os << "ptrace line " << line_number << ": expected "
         << trace.unit_names.size() << " values, got " << fields.size();
      throw ParseError(os.str());
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& field : fields) {
      const auto value = parse_double(field);
      if (!value || *value < 0.0) {
        std::ostringstream os;
        os << "ptrace line " << line_number
           << ": invalid power value '" << field << "'";
        throw ParseError(os.str());
      }
      row.push_back(*value);
    }
    trace.steps.push_back(std::move(row));
  }
  if (trace.unit_names.empty()) {
    throw ParseError("ptrace: missing header line of unit names");
  }
  return trace;
}

PowerTrace parse_ptrace_string(const std::string& text) {
  std::istringstream in(text);
  return parse_ptrace(in);
}

PowerTrace load_ptrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open ptrace file '" + path + "'");
  return parse_ptrace(in);
}

void write_ptrace(const PowerTrace& trace, std::ostream& out) {
  for (std::size_t u = 0; u < trace.unit_names.size(); ++u) {
    out << (u == 0 ? "" : "\t") << trace.unit_names[u];
  }
  out << '\n';
  out.precision(9);
  for (const auto& step : trace.steps) {
    THERMO_REQUIRE(step.size() == trace.unit_names.size(),
                   "ptrace row width mismatch");
    for (std::size_t u = 0; u < step.size(); ++u) {
      out << (u == 0 ? "" : "\t") << step[u];
    }
    out << '\n';
  }
}

std::string to_ptrace_string(const PowerTrace& trace) {
  std::ostringstream os;
  write_ptrace(trace, os);
  return os.str();
}

}  // namespace thermo::thermal
