#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/ode.hpp"
#include "thermal/solver_cache.hpp"
#include "util/error.hpp"

namespace thermo::thermal {

std::vector<double> ambient_state(const RCModel& model) {
  return std::vector<double>(model.node_count(), model.package().ambient);
}

TransientResult simulate_transient(const RCModel& model,
                                   const std::vector<double>& block_power,
                                   double duration,
                                   const std::vector<double>& initial,
                                   const TransientOptions& options) {
  THERMO_REQUIRE(duration >= 0.0 && std::isfinite(duration),
                 "duration must be non-negative and finite");
  THERMO_REQUIRE(options.dt > 0.0, "dt must be positive");
  THERMO_REQUIRE(initial.size() == model.node_count(),
                 "initial state size must equal the node count");

  const std::vector<double> power = model.expand_power(block_power);
  const double ambient = model.package().ambient;
  const std::size_t n = model.node_count();

  // Work in temperature rise over ambient: C x' = p - G x.
  std::vector<double> state(n);
  for (std::size_t i = 0; i < n; ++i) state[i] = initial[i] - ambient;

  TransientResult result;
  result.final_temperature = initial;
  result.peak_temperature = initial;

  auto record = [&](const std::vector<double>& rise) {
    for (std::size_t i = 0; i < n; ++i) {
      const double temp = ambient + rise[i];
      result.peak_temperature[i] = std::max(result.peak_temperature[i], temp);
    }
    if (options.observer) {
      std::vector<double> absolute(n);
      for (std::size_t i = 0; i < n; ++i) absolute[i] = ambient + rise[i];
      options.observer(static_cast<double>(result.steps) * options.dt, absolute);
    }
  };

  if (duration == 0.0) return result;

  const std::vector<double>& capacitance = model.capacitance();

  if (options.integrator == TransientIntegrator::kBackwardEuler) {
    // The (C/dt + G) factor is shared through the solver cache: repeated
    // sessions on the same model at the same dt — Algorithm 1 validates
    // thousands — pay the factorization once. The backend picks dense LU
    // or sparse LDLᵗ; both stepper kinds share the same loop below.
    ThermalSolverCache& cache = ThermalSolverCache::instance();
    const auto run_backward_euler = [&](const auto& stepper_for) {
      const auto stepper = stepper_for(options.dt);
      double t = 0.0;
      while (t < duration - 1e-15) {
        const double step = std::min(options.dt, duration - t);
        if (step < options.dt * (1.0 - 1e-12)) {
          // Final fractional remainder: also cached, keyed by its own
          // (model, step). Real workloads re-simulate the same durations
          // (Algorithm 1 re-validates fixed-length sessions), so the
          // remainder factor is reused; a burst of one-off durations at
          // worst churns the LRU, it cannot grow the cache unboundedly.
          state = stepper_for(step)->step(state, power);
        } else {
          state = stepper->step(state, power);
        }
        t += step;
        ++result.steps;
        record(state);
      }
    };
    if (resolve_backend(options.backend, n) == SolverBackend::kSparse) {
      run_backward_euler(
          [&](double dt) { return cache.sparse_stepper(model, dt); });
    } else {
      run_backward_euler([&](double dt) { return cache.stepper(model, dt); });
    }
  } else {
    const auto integrate = [&](const linalg::OdeRhs& rhs) {
      state = linalg::rk4_integrate(
          rhs, 0.0, duration, state, options.dt,
          [&](double, const linalg::Vector& x) {
            ++result.steps;
            record(x);
          });
    };
    if (resolve_backend(options.backend, n) == SolverBackend::kSparse) {
      // Matrix-free path: the stage derivative is one SpMV through the
      // CSR fast path — O(nnz) per stage instead of the dense n²
      // product. Column order within a CSR row matches the dense scan
      // order and adding explicit zeros is the identity, so the two
      // paths agree to roundoff (pinned in thermal_backend_test).
      const auto& g = model.conductance_sparse();
      linalg::Vector product;
      const auto rhs = [&](double, const linalg::Vector& x) {
        g.multiply_into(x, product);
        linalg::Vector dx(n);
        for (std::size_t i = 0; i < n; ++i) {
          dx[i] = (power[i] - product[i]) / capacitance[i];
        }
        return dx;
      };
      integrate(rhs);
    } else {
      const auto& g = model.conductance();
      const auto rhs = [&](double, const linalg::Vector& x) {
        linalg::Vector dx = g.multiply(x);
        for (std::size_t i = 0; i < n; ++i) {
          dx[i] = (power[i] - dx[i]) / capacitance[i];
        }
        return dx;
      };
      integrate(rhs);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    result.final_temperature[i] = ambient + state[i];
  }
  return result;
}

double max_block_peak(const RCModel& model, const TransientResult& result) {
  THERMO_REQUIRE(result.peak_temperature.size() == model.node_count(),
                 "result does not match the model");
  THERMO_REQUIRE(model.block_count() > 0, "model has no blocks");
  return *std::max_element(
      result.peak_temperature.begin(),
      result.peak_temperature.begin() +
          static_cast<std::ptrdiff_t>(model.block_count()));
}

}  // namespace thermo::thermal
