#include "thermal/analyzer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace thermo::thermal {

ThermalAnalyzer::ThermalAnalyzer(const floorplan::Floorplan& fp,
                                 const PackageParams& package)
    : ThermalAnalyzer(fp, package, Options{}) {}

ThermalAnalyzer::ThermalAnalyzer(const floorplan::Floorplan& fp,
                                 const PackageParams& package, Options options)
    : ThermalAnalyzer(std::make_shared<const RCModel>(fp, package), options) {}

ThermalAnalyzer::ThermalAnalyzer(std::shared_ptr<const RCModel> model)
    : ThermalAnalyzer(std::move(model), Options{}) {}

ThermalAnalyzer::ThermalAnalyzer(std::shared_ptr<const RCModel> model,
                                 Options options)
    : model_(std::move(model)), options_(options) {
  THERMO_REQUIRE(model_ != nullptr, "analyzer requires a model");
  THERMO_REQUIRE(options_.dt > 0.0, "analyzer dt must be positive");
}

SessionSimulation ThermalAnalyzer::simulate_session(
    const std::vector<double>& block_power, double duration) {
  THERMO_REQUIRE(duration > 0.0, "session duration must be positive");

  SessionSimulation out;
  out.simulated_time = duration;

  if (options_.transient) {
    TransientOptions topt;
    topt.dt = options_.dt;
    topt.backend = options_.backend;
    const TransientResult result = simulate_transient(
        *model_, block_power, duration, ambient_state(*model_), topt);
    out.peak_temperature.assign(
        result.peak_temperature.begin(),
        result.peak_temperature.begin() +
            static_cast<std::ptrdiff_t>(model_->block_count()));
  } else {
    out.peak_temperature = steady_block_temperatures(block_power);
  }

  const auto hottest =
      std::max_element(out.peak_temperature.begin(), out.peak_temperature.end());
  out.max_temperature = *hottest;
  out.hottest_block =
      static_cast<std::size_t>(hottest - out.peak_temperature.begin());

  simulation_effort_ += duration;
  ++simulation_count_;
  return out;
}

std::vector<double> ThermalAnalyzer::steady_block_temperatures(
    const std::vector<double>& block_power) const {
  SteadyStateOptions sopt;
  sopt.backend = options_.backend;
  const SteadyStateResult result = solve_steady_state(*model_, block_power, sopt);
  return std::vector<double>(
      result.temperature.begin(),
      result.temperature.begin() +
          static_cast<std::ptrdiff_t>(model_->block_count()));
}

ThermalAnalyzer::Chained ThermalAnalyzer::simulate_session_from(
    const std::vector<double>& block_power, double duration,
    const std::vector<double>& initial_state) {
  THERMO_REQUIRE(duration > 0.0, "session duration must be positive");
  THERMO_REQUIRE(options_.transient,
                 "chained simulation requires the transient oracle");

  TransientOptions topt;
  topt.dt = options_.dt;
  topt.backend = options_.backend;
  const TransientResult result =
      simulate_transient(*model_, block_power, duration, initial_state, topt);

  Chained out;
  out.final_state = result.final_temperature;
  out.session.simulated_time = duration;
  out.session.peak_temperature.assign(
      result.peak_temperature.begin(),
      result.peak_temperature.begin() +
          static_cast<std::ptrdiff_t>(model_->block_count()));
  const auto hottest = std::max_element(out.session.peak_temperature.begin(),
                                        out.session.peak_temperature.end());
  out.session.max_temperature = *hottest;
  out.session.hottest_block =
      static_cast<std::size_t>(hottest - out.session.peak_temperature.begin());

  simulation_effort_ += duration;
  ++simulation_count_;
  return out;
}

std::vector<double> ThermalAnalyzer::ambient_node_state() const {
  return ambient_state(*model_);
}

std::vector<double> ThermalAnalyzer::cool_down(
    const std::vector<double>& state, double gap) const {
  THERMO_REQUIRE(gap >= 0.0, "cooling gap must be non-negative");
  if (gap == 0.0) return state;
  TransientOptions topt;
  topt.dt = options_.dt;
  topt.backend = options_.backend;
  const TransientResult result = simulate_transient(
      *model_, std::vector<double>(model_->block_count(), 0.0), gap, state,
      topt);
  return result.final_temperature;
}

void ThermalAnalyzer::reset_effort() {
  simulation_effort_ = 0.0;
  simulation_count_ = 0;
}

}  // namespace thermo::thermal
