// Process-unique identity counter shared by every immutable thermal
// model type (RCModel, GridThermalModel). ThermalSolverCache keys
// factor entries by (identity, dt, kind) only, so all model types that
// feed the cache MUST draw from one counter — per-class counters would
// collide and alias unrelated factors.
#pragma once

#include <cstdint>

namespace thermo::thermal {

/// Returns the next process-unique model identity (thread-safe,
/// monotonically increasing, never 0).
std::uint64_t next_model_identity();

}  // namespace thermo::thermal
