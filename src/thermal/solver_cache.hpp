// ThermalSolverCache: process-wide cache of matrix factorizations keyed
// by model identity (RCModel and GridThermalModel share one identity
// counter — thermal/model_identity.hpp).
//
// The paper's Algorithm 1 validates thousands of candidate sessions
// against ONE fixed conductance matrix G — only the power vector (the
// right-hand side) changes per candidate. The same holds for every
// scenario sweep: the floorplan is fixed, the workloads vary. Factoring
// G once (n^3/3 flops) and back-substituting per solve (2 n^2) turns
// the steady-state hot path from cubic to quadratic; the transient
// backward-Euler system matrix (C/dt + G) gets the same treatment per
// (model, dt) pair. Each factor exists in a dense and a sparse flavour
// (SolverBackend, backend.hpp) cached as separate entries; the sparse
// LDLᵗ flavour drops both costs to ~linear in n on RC networks.
// docs/SOLVERS.md has the full cost model.
//
// Keying: RCModel::identity() is process-unique per *construction*, so
// a rebuilt model (changed floorplan or package) can never alias a
// stale factor; copies of a model share its identity and therefore its
// factors (an RCModel is immutable after construction, so this is
// always sound).
//
// Concurrency: lookups take one mutex, but factorization itself runs
// OUTSIDE it — an O(n^3) factor never stalls other workers' lookups.
// Two threads racing the same cold key may both factor; the first
// insert wins and both share its result. The returned factor objects
// are const and thread-safe, so a sweep::ScenarioSweep fanning one
// model across N threads factors (effectively) once and solves N-wide;
// ScenarioSweep::run additionally pre-warms the needed keys before the
// fan-out so workers start on cache hits. Entries are evicted
// least-recently-used beyond `capacity()` to bound memory (a dense
// factor is n^2 doubles; a sparse one nnz(L) + n).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/ode.hpp"
#include "linalg/sparse_cholesky.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/rc_model.hpp"

namespace thermo::thermal {

class ThermalSolverCache {
 public:
  /// The process-wide instance used by solve_steady_state /
  /// simulate_transient / ThermalAnalyzer. Separate instances are only
  /// useful in tests.
  static ThermalSolverCache& instance();

  explicit ThermalSolverCache(std::size_t capacity = 32);

  /// Cholesky factor of the model's conductance matrix G (steady state).
  std::shared_ptr<const linalg::CholeskyFactor> cholesky(const RCModel& model);

  /// LU factor of G (reference / cross-check steady-state path).
  std::shared_ptr<const linalg::LuFactor> lu(const RCModel& model);

  /// Backward-Euler stepper for (C/dt + G), keyed by (model, dt). The
  /// dt key is the exact bit pattern — two dts compare equal iff their
  /// doubles are identical.
  std::shared_ptr<const linalg::LinearImplicitStepper> stepper(
      const RCModel& model, double dt);

  /// Sparse LDLᵗ factor of G (the SolverBackend::kSparse steady path).
  /// Cached under the same RCModel::identity() keying as the dense
  /// factors — invalidate(model) drops both kinds together.
  std::shared_ptr<const linalg::SparseCholeskyFactor> sparse_cholesky(
      const RCModel& model);

  /// Sparse backward-Euler stepper for (C/dt + G), keyed by (model, dt)
  /// exactly like stepper() — the SolverBackend::kSparse transient path.
  std::shared_ptr<const linalg::SparseImplicitStepper> sparse_stepper(
      const RCModel& model, double dt);

  /// Grid-model factors, keyed by GridThermalModel::identity() — the
  /// identity space is shared with RCModel (thermal/model_identity.hpp),
  /// so grid and block factors coexist in one cache without aliasing.
  /// Steady-state only (the grid model has no transient path).
  std::shared_ptr<const linalg::CholeskyFactor> cholesky(
      const GridThermalModel& model);
  std::shared_ptr<const linalg::SparseCholeskyFactor> sparse_cholesky(
      const GridThermalModel& model);

  /// Drops every entry belonging to `model` (all kinds, all dts).
  /// Factors already handed out stay valid — shared_ptr keeps them
  /// alive for their holders.
  void invalidate(const RCModel& model);

  /// Same, for a grid model's factors.
  void invalidate(const GridThermalModel& model);

  /// Drops everything.
  void clear();

  /// Maximum number of cached factors before LRU eviction.
  std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::size_t hits = 0;    ///< lookups served from the cache
    std::size_t misses = 0;  ///< lookups that had to factor
    std::size_t entries = 0; ///< currently cached factors
  };
  Stats stats() const;

  /// Zeroes the hit/miss counters (entries stay cached).
  void reset_stats();

 private:
  struct Key {
    std::uint64_t model = 0;
    std::uint64_t dt_bits = 0;  // 0 for the steady-state factors
    int kind = 0;  // 0 = cholesky, 1 = lu, 2 = stepper,
                   // 3 = sparse cholesky, 4 = sparse stepper
    bool operator<(const Key& other) const;
  };
  struct Entry {
    std::shared_ptr<const void> value;
    std::uint64_t last_used = 0;
  };

  /// Returns the cached entry for `key`, building it via `make` on miss;
  /// bumps LRU age and evicts beyond capacity. Caller provides the
  /// concrete type via the cast at the call site.
  std::shared_ptr<const void> lookup(
      const Key& key, const std::function<std::shared_ptr<const void>()>& make);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::map<Key, Entry> entries_;
};

}  // namespace thermo::thermal
