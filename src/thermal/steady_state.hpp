// Steady-state thermal analysis: solve G * dT = P for the temperature
// rise over ambient.
//
// Steady state is the worst case for a test session that runs long
// enough (temperatures only rise towards it), and it is the regime the
// paper's session thermal model assumes (Section 2, modification 1:
// drop the capacitances). The scheduler's validation step uses these
// solvers through ThermalAnalyzer; transient.hpp covers the
// time-resolved counterpart.
//
// The Cholesky and LU paths are factor-cached: G is fixed per RCModel,
// so repeated solves on the same model reuse its factorization through
// ThermalSolverCache (solver_cache.hpp) and cost only two triangular
// substitutions. docs/SOLVERS.md explains how to choose between the
// three solvers and when the cache applies (it never does for CG).
#pragma once

#include <vector>

#include "thermal/rc_model.hpp"

namespace thermo::thermal {

enum class SteadySolver {
  kCholesky,      ///< dense Cholesky (default; exact, fine up to ~2k nodes)
  kLu,            ///< dense LU (reference / cross-check)
  kConjugateGradient  ///< sparse Jacobi-preconditioned CG (large floorplans)
};

struct SteadyStateResult {
  /// Absolute temperature per node [deg C], ambient included.
  std::vector<double> temperature;
  /// Temperature rise over ambient per node [K].
  std::vector<double> rise;
};

/// Solves the steady state for per-block power [W] (size = block count).
/// Throws NumericalError when the system cannot be solved.
SteadyStateResult solve_steady_state(const RCModel& model,
                                     const std::vector<double>& block_power,
                                     SteadySolver solver = SteadySolver::kCholesky);

/// Maximum block temperature (die nodes only) of a steady-state result.
double max_block_temperature(const RCModel& model,
                             const SteadyStateResult& result);

}  // namespace thermo::thermal
