// Steady-state thermal analysis: solve G * dT = P for the temperature
// rise over ambient.
//
// Steady state is the worst case for a test session that runs long
// enough (temperatures only rise towards it), and it is the regime the
// paper's session thermal model assumes (Section 2, modification 1:
// drop the capacitances). The scheduler's validation step uses these
// solvers through ThermalAnalyzer; transient.hpp covers the
// time-resolved counterpart.
//
// The Cholesky and LU paths are factor-cached: G is fixed per RCModel,
// so repeated solves on the same model reuse its factorization through
// ThermalSolverCache (solver_cache.hpp) and cost only two triangular
// substitutions. The Cholesky path additionally honours a SolverBackend
// (backend.hpp): kDense keeps the dense factor, kSparse factors the
// model's CSR matrix instead (linalg/sparse_cholesky.hpp), and kAuto —
// the default — picks by node count. docs/SOLVERS.md explains how to
// choose between the solvers/backends and when the cache applies (it
// never does for CG).
#pragma once

#include <vector>

#include "thermal/backend.hpp"
#include "thermal/rc_model.hpp"

namespace thermo::thermal {

enum class SteadySolver {
  kCholesky,      ///< Cholesky, dense or sparse per SolverBackend (default)
  kLu,            ///< dense LU (reference / cross-check; ignores the backend)
  kConjugateGradient  ///< Jacobi-preconditioned CG (iterative reference)
};

struct SteadyStateOptions {
  SteadySolver solver = SteadySolver::kCholesky;
  /// Factor representation for the kCholesky path; kLu is deliberately
  /// dense-only (it exists as the cross-check of the default path) and
  /// kConjugateGradient is inherently sparse.
  SolverBackend backend = SolverBackend::kAuto;
};

struct SteadyStateResult {
  /// Absolute temperature per node [deg C], ambient included.
  std::vector<double> temperature;
  /// Temperature rise over ambient per node [K].
  std::vector<double> rise;
};

/// Solves the steady state for per-block power [W] (size = block count).
/// Throws NumericalError when the system cannot be solved.
SteadyStateResult solve_steady_state(const RCModel& model,
                                     const std::vector<double>& block_power,
                                     const SteadyStateOptions& options = {});

/// Solver-only convenience overload (backend stays kAuto).
SteadyStateResult solve_steady_state(const RCModel& model,
                                     const std::vector<double>& block_power,
                                     SteadySolver solver);

/// Maximum block temperature (die nodes only) of a steady-state result.
double max_block_temperature(const RCModel& model,
                             const SteadyStateResult& result);

}  // namespace thermo::thermal
