// RC-equivalent thermal network of a packaged die (the "accurate"
// simulator in the paper's flow; our substitute for the HotSpot tool).
//
// Node layout (index order):
//   [0, n)                    one node per floorplan block (die layer)
//   n + 0                     heat-spreader centre
//   n + 1 .. n + 4            spreader periphery (N, S, E, W)
//   n + 5                     heat-sink centre
//   n + 6 .. n + 9            sink periphery (N, S, E, W)
// Ambient is the ground node (not represented explicitly); conductances
// to ambient appear only on the diagonal of G. Temperatures are solved
// as rises over ambient.
//
// Conductance stamping:
//  * die block <-> die block: lateral silicon slab through the shared
//    edge, R = (d_i + d_j) / (k_die * t_die * w_shared) with d_* the
//    centroid-to-edge distances;
//  * die block -> spreader centre: half-die vertical conduction + TIM
//    + constriction/spreading resistance into the spreader,
//    R = t_die/(2 k_die A) + t_tim/(k_tim A) + 0.475/(k_sp sqrt(A));
//  * spreader centre <-> periphery: half-side copper slab;
//  * spreader -> sink, sink centre <-> periphery: same slab forms;
//  * sink -> ambient: total r_convec split across the five sink nodes
//    proportionally to their footprint area.
//
// Chip side walls are adiabatic (HotSpot convention): no lateral path
// from a die block to ambient. The *session model* (src/core) makes the
// opposite modelling choice on purpose — see the paper, Section 2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/sparse.hpp"
#include "thermal/package.hpp"

namespace thermo::thermal {

class RCModel {
 public:
  /// Builds the network. The floorplan must be valid (no overlaps) and is
  /// copied into the model. Throws InvalidArgument otherwise.
  /// Assembly is sparse-first: conductances stamp straight into a CSR
  /// builder, so construction is O(nnz) time and memory — the dense n×n
  /// mirror is only materialised if conductance() is called.
  RCModel(const floorplan::Floorplan& fp, const PackageParams& package);

  // The lazy dense mirror lives behind a mutex; copies share matrices
  // and identity but rebuild the mirror on demand.
  RCModel(const RCModel& other);
  RCModel& operator=(const RCModel& other);

  std::size_t block_count() const { return block_count_; }
  std::size_t node_count() const { return block_count_ + kPackageNodes; }

  /// Number of package (non-die) nodes appended after the block nodes.
  static constexpr std::size_t kPackageNodes = 10;

  std::size_t spreader_center_index() const { return block_count_; }
  std::size_t sink_center_index() const { return block_count_ + 5; }

  const floorplan::Floorplan& floorplan() const { return floorplan_; }
  const PackageParams& package() const { return package_; }

  /// Process-unique identity of the network, assigned at construction.
  /// An RCModel is immutable after construction, so the identity keys
  /// the cached matrix factorizations (ThermalSolverCache): same
  /// identity ⇒ same G and C, always. Copies share the identity (they
  /// hold identical matrices); every freshly *constructed* model gets a
  /// new one, which is what invalidates stale cache entries.
  std::uint64_t identity() const { return identity_; }

  /// Largest node count for which the dense mirror may be materialised
  /// (3.2 GB at the cap); above it conductance() throws and callers
  /// must stay on the sparse path.
  static constexpr std::size_t kDenseMirrorMaxNodes = 20000;

  /// Symmetric positive-definite conductance matrix G [W/K] over all
  /// nodes, ambient eliminated (to-ambient conductance on the diagonal).
  /// DENSE MIRROR, built lazily on first call (thread-safe) — only the
  /// dense backend, the kLu cross-check path, and tests want it. Throws
  /// InvalidArgument above kDenseMirrorMaxNodes.
  const linalg::DenseMatrix& conductance() const;

  /// The CSR matrix G — the primary representation; assembly stamps
  /// directly into it and the sparse backend factors it as-is.
  const linalg::SparseMatrix& conductance_sparse() const { return sparse_; }

  /// Per-node heat capacity [J/K] (all positive).
  const std::vector<double>& capacitance() const { return capacitance_; }

  /// Node name ("block:<name>", "spreader_c", "sink_n", ...).
  const std::string& node_name(std::size_t node) const;

  /// Expands per-block power [W] into a full node power vector (package
  /// nodes dissipate nothing).
  std::vector<double> expand_power(const std::vector<double>& block_power) const;

  /// Direct conductance between two nodes [W/K] (0 when not connected).
  double conductance_between(std::size_t a, std::size_t b) const;

  /// Sum over row `node` of conductance to ambient [W/K].
  double conductance_to_ambient(std::size_t node) const;

 private:
  void build();
  void stamp(linalg::SparseMatrix::Builder& builder, std::size_t a,
             std::size_t b, double conductance);
  void stamp_to_ambient(linalg::SparseMatrix::Builder& builder,
                        std::size_t node, double conductance);

  floorplan::Floorplan floorplan_;
  PackageParams package_;
  std::uint64_t identity_ = 0;
  std::size_t block_count_ = 0;
  linalg::SparseMatrix sparse_;
  std::vector<double> capacitance_;
  std::vector<double> ambient_conductance_;
  std::vector<std::string> node_names_;
  // Lazy dense mirror (nullptr until conductance() is first called).
  mutable std::mutex dense_mutex_;
  mutable std::unique_ptr<linalg::DenseMatrix> dense_;
};

}  // namespace thermo::thermal
