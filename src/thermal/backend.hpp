// SolverBackend: which matrix representation the thermal oracle solves
// through.
//
// Every thermal solve in this repo is "factor a fixed SPD matrix once,
// back-substitute per right-hand side" (docs/SOLVERS.md). The *backend*
// picks the representation of that factorization:
//
//  * kDense  — dense Cholesky/LU factors (linalg/cholesky.hpp, lu.hpp).
//    Best constants at block-level sizes (tens to a few hundred nodes).
//  * kSparse — sparse LDLᵗ factors over the model's CSR conductance
//    matrix (linalg/sparse_cholesky.hpp). Factor cost drops from n³/3
//    to effectively linear in n, per-solve from 2 n² to 2·nnz(L); the
//    only choice that scales to thousands of thermal nodes.
//  * kAuto   — resolves per model by node count against
//    kSparseBackendCrossover. The default everywhere: small SoCs keep
//    the dense path (and its bit-exact historical results), large ones
//    get the sparse path transparently.
//
// Determinism: resolution depends only on the requested backend and the
// node count, and both backends factor and solve with serial,
// fixed-order arithmetic — results are bit-identical across thread
// counts for a given backend. Dense and sparse results agree to a
// documented RELATIVE tolerance of 1e-9 on the well-conditioned systems
// the thermal layer produces (pinned by tests/thermal_backend_test.cpp),
// not bitwise: the two factorizations order the arithmetic differently.
//
// bench/bench_backend.cpp measures both backends across growing grids,
// writes BENCH_backend.json, and locates the empirical crossover that
// kSparseBackendCrossover encodes.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace thermo::thermal {

enum class SolverBackend {
  kDense,   ///< dense factors (default below the crossover)
  kSparse,  ///< sparse LDLᵗ factors (default at and above the crossover)
  kAuto     ///< pick by node count (kSparseBackendCrossover)
};

/// Canonical spelling used in JSON/CLI ("dense", "sparse", "auto").
const char* solver_backend_name(SolverBackend backend);

/// Inverse of solver_backend_name; nullopt for anything else. Callers
/// (CLI flag, scenario request parser) own their error reporting, so
/// the name list lives in exactly one place.
std::optional<SolverBackend> solver_backend_from_name(std::string_view name);

/// Node count at and above which kAuto resolves to kSparse. Chosen from
/// bench_backend measurements: below a few hundred nodes the dense
/// factors' contiguous back-substitution wins on constants; above it
/// the sparse factor wins on both factor and per-step cost.
inline constexpr std::size_t kSparseBackendCrossover = 256;

/// Resolves kAuto against the model size; kDense/kSparse pass through.
/// Never returns kAuto.
SolverBackend resolve_backend(SolverBackend requested, std::size_t node_count);

}  // namespace thermo::thermal
