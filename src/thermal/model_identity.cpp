#include "thermal/model_identity.hpp"

#include <atomic>

namespace thermo::thermal {

std::uint64_t next_model_identity() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

}  // namespace thermo::thermal
