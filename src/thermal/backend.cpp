#include "thermal/backend.hpp"

namespace thermo::thermal {

const char* solver_backend_name(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::kDense: return "dense";
    case SolverBackend::kSparse: return "sparse";
    case SolverBackend::kAuto: return "auto";
  }
  return "?";
}

std::optional<SolverBackend> solver_backend_from_name(std::string_view name) {
  if (name == "dense") return SolverBackend::kDense;
  if (name == "sparse") return SolverBackend::kSparse;
  if (name == "auto") return SolverBackend::kAuto;
  return std::nullopt;
}

SolverBackend resolve_backend(SolverBackend requested, std::size_t node_count) {
  if (requested != SolverBackend::kAuto) return requested;
  return node_count >= kSparseBackendCrossover ? SolverBackend::kSparse
                                               : SolverBackend::kDense;
}

}  // namespace thermo::thermal
