// Text and SVG renderers for floorplans and thermal fields: quick
// eyeballing of hot spots without external tooling.
#pragma once

#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"

namespace thermo::viz {

/// Renders a row-major cell-temperature field (rows x cols, row 0 at the
/// bottom, printed top-down) as an ASCII heat map using the ramp
/// " .:-=+*#%@" between min and max.
std::string ascii_heatmap(const std::vector<double>& cells, std::size_t rows,
                          std::size_t cols);

/// Renders per-block values on a floorplan as an ASCII map sampled onto
/// a character raster of the given width (height follows aspect ratio).
std::string ascii_block_map(const floorplan::Floorplan& fp,
                            const std::vector<double>& block_values,
                            std::size_t width = 48);

struct SvgOptions {
  double scale = 40000.0;  ///< pixels per metre (16 mm die -> 640 px)
  bool show_names = true;
  bool show_values = true;
  /// Colour range; when lo == hi the range is taken from the data.
  double range_lo = 0.0;
  double range_hi = 0.0;
};

/// Renders the floorplan as an SVG document, colouring each block by its
/// value (blue = cool, red = hot). Block values may be temperatures,
/// power densities, weights...
std::string svg_floorplan(const floorplan::Floorplan& fp,
                          const std::vector<double>& block_values,
                          const SvgOptions& options = {});

}  // namespace thermo::viz
