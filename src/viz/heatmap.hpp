// Text and SVG renderers for floorplans and thermal fields: quick
// eyeballing of hot spots without external tooling. Consumes only
// floorplan geometry plus a per-block (or per-cell) value vector, so it
// renders anything block-shaped — temperatures, power densities,
// scheduler weights — and sits at the bottom of the layer DAG next to
// floorplan.
//
// All three renderers are pure functions of their inputs (no global
// state, nothing written to disk), returning the finished document as a
// string; callers decide where it goes (`thermosched simulate` prints
// the ASCII map, examples/thermal_map.cpp writes the SVG).
#pragma once

#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"

namespace thermo::viz {

/// Renders a row-major cell-temperature field (rows x cols, row 0 at the
/// bottom, printed top-down — matching the floorplan's lower-left-origin
/// convention) as an ASCII heat map using the 10-step ramp " .:-=+*#%@"
/// linearly scaled between the field's min and max. A constant field
/// renders as all-minimum. Throws InvalidArgument unless cells.size()
/// == rows * cols.
std::string ascii_heatmap(const std::vector<double>& cells, std::size_t rows,
                          std::size_t cols);

/// Renders per-block values on a floorplan as an ASCII map: the die
/// bounding box is sampled onto a character raster of the given width
/// (height follows the die aspect ratio, halved to compensate for
/// terminal cells being ~2x taller than wide), each sample taking the
/// ramp character of the block containing it. Gaps between blocks
/// render as spaces. Throws InvalidArgument unless block_values.size()
/// matches the floorplan.
std::string ascii_block_map(const floorplan::Floorplan& fp,
                            const std::vector<double>& block_values,
                            std::size_t width = 48);

struct SvgOptions {
  double scale = 40000.0;  ///< pixels per metre (16 mm die -> 640 px)
  bool show_names = true;  ///< block name label per block
  bool show_values = true; ///< numeric value appended to the label
  /// Colour range; when lo == hi the range is taken from the data.
  /// Fixing it makes colours comparable across frames (e.g. the same
  /// schedule at two TL values).
  double range_lo = 0.0;
  double range_hi = 0.0;
};

/// Renders the floorplan as a standalone SVG document, colouring each
/// block by its value on a blue -> cyan -> yellow -> red ramp (cool to
/// hot). Block values may be temperatures, power densities, weights...
/// Throws InvalidArgument unless block_values.size() matches the
/// floorplan.
std::string svg_floorplan(const floorplan::Floorplan& fp,
                          const std::vector<double>& block_values,
                          const SvgOptions& options = {});

}  // namespace thermo::viz
