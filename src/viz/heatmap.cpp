#include "viz/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace thermo::viz {

namespace {

constexpr const char kRamp[] = " .:-=+*#%@";
constexpr std::size_t kRampLevels = sizeof(kRamp) - 2;  // last index

char ramp_char(double value, double lo, double hi) {
  if (hi <= lo) return kRamp[0];
  const double t = std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
  return kRamp[static_cast<std::size_t>(std::lround(t * kRampLevels))];
}

struct Rgb {
  int r, g, b;
};

/// Blue -> cyan -> yellow -> red colour ramp.
Rgb colour_of(double t) {
  t = std::clamp(t, 0.0, 1.0);
  if (t < 1.0 / 3) {
    const double u = t * 3.0;
    return {0, static_cast<int>(255 * u), 255};
  }
  if (t < 2.0 / 3) {
    const double u = (t - 1.0 / 3) * 3.0;
    return {static_cast<int>(255 * u), 255, static_cast<int>(255 * (1 - u))};
  }
  const double u = (t - 2.0 / 3) * 3.0;
  return {255, static_cast<int>(255 * (1 - u)), 0};
}

}  // namespace

std::string ascii_heatmap(const std::vector<double>& cells, std::size_t rows,
                          std::size_t cols) {
  THERMO_REQUIRE(rows > 0 && cols > 0, "heatmap needs positive dimensions");
  THERMO_REQUIRE(cells.size() == rows * cols,
                 "cell count must equal rows*cols");
  const auto [lo_it, hi_it] = std::minmax_element(cells.begin(), cells.end());
  std::string out;
  out.reserve((cols + 1) * rows);
  for (std::size_t r = rows; r-- > 0;) {  // row 0 at the bottom
    for (std::size_t c = 0; c < cols; ++c) {
      out += ramp_char(cells[r * cols + c], *lo_it, *hi_it);
    }
    out += '\n';
  }
  return out;
}

std::string ascii_block_map(const floorplan::Floorplan& fp,
                            const std::vector<double>& block_values,
                            std::size_t width) {
  fp.require_valid();
  THERMO_REQUIRE(block_values.size() == fp.size(),
                 "one value per block required");
  THERMO_REQUIRE(width >= 4, "width must be at least 4");
  const double aspect = fp.chip_height() / fp.chip_width();
  // Terminal cells are ~2x taller than wide.
  const std::size_t height = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(
             static_cast<double>(width) * aspect * 0.5)));

  const auto [lo_it, hi_it] =
      std::minmax_element(block_values.begin(), block_values.end());

  std::string out;
  for (std::size_t row = height; row-- > 0;) {
    for (std::size_t col = 0; col < width; ++col) {
      const double x = fp.min_x() + (static_cast<double>(col) + 0.5) /
                                        static_cast<double>(width) *
                                        fp.chip_width();
      const double y = fp.min_y() + (static_cast<double>(row) + 0.5) /
                                        static_cast<double>(height) *
                                        fp.chip_height();
      char ch = ' ';
      for (std::size_t b = 0; b < fp.size(); ++b) {
        if (fp.block(b).contains(x, y)) {
          ch = ramp_char(block_values[b], *lo_it, *hi_it);
          break;
        }
      }
      out += ch;
    }
    out += '\n';
  }
  return out;
}

std::string svg_floorplan(const floorplan::Floorplan& fp,
                          const std::vector<double>& block_values,
                          const SvgOptions& options) {
  fp.require_valid();
  THERMO_REQUIRE(block_values.size() == fp.size(),
                 "one value per block required");
  THERMO_REQUIRE(options.scale > 0.0, "scale must be positive");

  double lo = options.range_lo, hi = options.range_hi;
  if (lo >= hi) {
    const auto [lo_it, hi_it] =
        std::minmax_element(block_values.begin(), block_values.end());
    lo = *lo_it;
    hi = *hi_it;
  }

  const double w = fp.chip_width() * options.scale;
  const double h = fp.chip_height() * options.scale;
  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
      << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << ' ' << h
      << "\">\n";
  for (std::size_t b = 0; b < fp.size(); ++b) {
    const floorplan::Block& block = fp.block(b);
    const double t = hi > lo ? (block_values[b] - lo) / (hi - lo) : 0.0;
    const Rgb rgb = colour_of(t);
    const double x = (block.left() - fp.min_x()) * options.scale;
    // SVG y grows downward; floorplan y grows upward.
    const double y = h - (block.top() - fp.min_y()) * options.scale;
    const double bw = block.width * options.scale;
    const double bh = block.height * options.scale;
    svg << "  <rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << bw
        << "\" height=\"" << bh << "\" fill=\"rgb(" << rgb.r << ',' << rgb.g
        << ',' << rgb.b << ")\" stroke=\"black\" stroke-width=\"1\"/>\n";
    if (options.show_names || options.show_values) {
      std::string label;
      if (options.show_names) label = block.name;
      if (options.show_values) {
        if (!label.empty()) label += ' ';
        label += format_double(block_values[b], 1);
      }
      svg << "  <text x=\"" << x + bw / 2 << "\" y=\"" << y + bh / 2
          << "\" text-anchor=\"middle\" dominant-baseline=\"middle\" "
             "font-size=\""
          << std::max(8.0, std::min(bw, bh) / 6.0) << "\">" << label
          << "</text>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace thermo::viz
