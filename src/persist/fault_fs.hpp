// The persist layer's file-operation seam: every byte SegmentStore puts
// on (or reads off) disk flows through the `Fs` interface, so tests can
// substitute `FaultFs` — a deterministic fault injector — for the real
// filesystem and prove crash consistency instead of assuming it.
//
// Why a seam instead of mocking at the store level: the crash bugs that
// matter in an append-only store live *between* file operations (a
// record appended but not yet fsync'd, a rotation half done, a
// compaction renamed but the old segments not yet removed) and *inside*
// them (a torn write persisting only a prefix of a frame, possibly
// followed by garbage). FaultFs can stop the world at any such point —
// op N of a deterministic workload — and the crash sweep in
// tests/persist_crash_test.cpp then reopens the directory with the real
// filesystem and checks the recovery contract (docs/PERSIST.md):
// acknowledged records survive byte-identically, at most the in-flight
// tail record is lost, the store never refuses to open.
//
// Determinism: FaultFs's torn-write prefix lengths and garbage bytes are
// drawn from a util::Rng seeded by the fault plan, so a failing crash
// point replays exactly from {workload, plan.after_ops, plan.kind,
// plan.seed}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace thermo::persist {

/// A real I/O failure (unwritable path, disk full, unreadable file).
/// Production code may catch and report this like any other Error.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Thrown by FaultFs when its configured crash point fires, and by every
/// operation after it: the process "died" at that instant. Production
/// code must never catch this specifically — only the crash-test driver
/// does, before reopening the directory to check recovery. Deriving from
/// IoError keeps honest generic error paths working (a store that treats
/// it as a plain I/O failure is fine; it is about to be torn down).
class CrashError : public IoError {
 public:
  using IoError::IoError;
};

/// An open append-only file handle. Destruction closes without syncing —
/// exactly what happens to OS buffers when a process dies, which is why
/// durability claims in SegmentStore are tied to sync() returning, never
/// to append().
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  WritableFile() = default;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Appends all of `bytes` (or throws; no silent short writes).
  virtual void append(std::string_view bytes) = 0;
  /// Flushes application and OS buffers to durable storage (fsync).
  virtual void sync() = 0;
  /// Closes the handle; idempotent. Does NOT imply sync().
  virtual void close() = 0;
};

/// Minimal filesystem surface for an append-only segment store. Paths
/// are plain strings (UTF-8, '/'-separated) so fakes need no
/// std::filesystem. All methods throw IoError on failure.
class Fs {
 public:
  virtual ~Fs() = default;

  virtual std::unique_ptr<WritableFile> open_append(const std::string& path) = 0;
  /// Whole-file read (segment scan at open/verify time).
  virtual std::string read_file(const std::string& path) = 0;
  /// Byte range [offset, offset+length) of a file; throws IoError when
  /// the range overruns the file (a record the index points at must
  /// exist in full).
  virtual std::string read_range(const std::string& path,
                                 std::uint64_t offset, std::size_t length) = 0;
  /// Regular-file names directly inside `dir`, sorted (deterministic
  /// scan order); empty when the directory does not exist.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;
  virtual void create_directories(const std::string& dir) = 0;
  virtual bool exists(const std::string& path) = 0;
  virtual std::uint64_t file_size(const std::string& path) = 0;
  /// Atomic replace (POSIX rename semantics) — the commit point of
  /// crash-safe compaction.
  virtual void rename_file(const std::string& from, const std::string& to) = 0;
  virtual void remove_file(const std::string& path) = 0;
};

/// The process-wide real filesystem (cstdio + fsync + std::filesystem).
Fs& real_fs();

/// What FaultFs does when the faulted operation is reached.
enum class FaultKind {
  /// Throw before the underlying operation runs: a clean crash on the
  /// op boundary (nothing of op N hits disk).
  kCrashBefore,
  /// Perform the underlying operation, then throw: the other side of
  /// every op boundary (op N fully hit disk, nothing after it).
  kCrashAfter,
  /// On an append: persist a seeded prefix of the bytes, then throw — a
  /// short write cut clean at an arbitrary byte. On any other op,
  /// behaves like kCrashBefore.
  kShortWrite,
  /// On an append: persist a seeded prefix plus a few seeded garbage
  /// bytes, then throw — a torn sector write. On any other op, behaves
  /// like kCrashBefore.
  kTornWrite,
  /// Throw IoError (not CrashError) before the op, once; later ops
  /// succeed. Models a transient I/O failure the caller must surface
  /// without corrupting its in-memory state.
  kFailOp,
};

struct FaultPlan {
  /// 0-based index (over ALL Fs/WritableFile operations, reads
  /// included) of the operation at which the fault fires. The default
  /// never fires, which makes a plain FaultFs an operation counter —
  /// crash sweeps first run fault-free to learn the op count.
  std::size_t after_ops = static_cast<std::size_t>(-1);
  FaultKind kind = FaultKind::kCrashBefore;
  /// Seeds the torn/short-write prefix length and garbage bytes.
  std::uint64_t seed = 1;
};

/// Fault-injecting decorator over another Fs (normally real_fs()).
/// Counts every operation; when the count reaches plan.after_ops the
/// plan's fault fires. After a crash fault, every subsequent operation
/// throws CrashError — the "process" is dead, and the store object in
/// front of it is unusable by construction.
class FaultFs : public Fs {
 public:
  explicit FaultFs(Fs& base, FaultPlan plan = {});

  std::unique_ptr<WritableFile> open_append(const std::string& path) override;
  std::string read_file(const std::string& path) override;
  std::string read_range(const std::string& path, std::uint64_t offset,
                         std::size_t length) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  void create_directories(const std::string& dir) override;
  bool exists(const std::string& path) override;
  std::uint64_t file_size(const std::string& path) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;

  /// Operations observed so far (the fault-free run's final value is the
  /// sweep's crash-point count).
  std::size_t ops_seen() const { return ops_; }
  /// Whether the crash fault has fired (all further ops throw).
  bool crashed() const { return crashed_; }

  // Internal surface for the wrapped file handles (they live in the
  // implementation file, so these cannot be private friends).

  /// Charges one operation; throws per the plan when the fault op is
  /// reached. Returns true when the caller (an append) should apply the
  /// short/torn-write treatment. For kCrashAfter it only sets crashed()
  /// — the operation wrapper performs the base op, then throws.
  bool charge(bool is_append);
  const FaultPlan& plan() const { return plan_; }
  Rng& torn_rng() { return rng_; }

 private:
  Fs& base_;
  FaultPlan plan_;
  Rng rng_;
  std::size_t ops_ = 0;
  bool crashed_ = false;
};

}  // namespace thermo::persist
