#include "persist/blob_file.hpp"

#include <cctype>
#include <cstdint>
#include <string>

#include "util/hash.hpp"

namespace thermo::persist {

namespace {

constexpr std::string_view kMagic = "thermoblob v1 ";

/// Parses a non-negative decimal at `pos` in `text`, advancing `pos`
/// past the digits. False when no digit is present or the value
/// overflows 64 bits.
bool parse_decimal(std::string_view text, std::size_t& pos,
                   std::uint64_t& value) {
  if (pos >= text.size() ||
      !std::isdigit(static_cast<unsigned char>(text[pos]))) {
    return false;
  }
  value = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    const std::uint64_t digit =
        static_cast<std::uint64_t>(text[pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
    ++pos;
  }
  return true;
}

}  // namespace

void write_blob_file(Fs& fs, const std::string& dir, const std::string& name,
                     std::string_view payload) {
  fs.create_directories(dir);
  const std::string path = dir + "/" + name;
  const std::string tmp = path + ".tmp";
  if (fs.exists(tmp)) fs.remove_file(tmp);
  std::string frame;
  frame.reserve(kMagic.size() + 48 + payload.size());
  frame += kMagic;
  frame += std::to_string(payload.size());
  frame += ' ';
  frame += std::to_string(fnv1a64(payload));
  frame += '\n';
  frame += payload;
  auto file = fs.open_append(tmp);
  file->append(frame);
  file->sync();
  file->close();
  fs.rename_file(tmp, path);
}

std::optional<std::string> read_blob_file(Fs& fs, const std::string& path) {
  if (!fs.exists(path)) return std::nullopt;
  const std::string raw = fs.read_file(path);
  if (raw.compare(0, kMagic.size(), kMagic) != 0) return std::nullopt;
  std::size_t pos = kMagic.size();
  std::uint64_t size = 0;
  if (!parse_decimal(raw, pos, size)) return std::nullopt;
  if (pos >= raw.size() || raw[pos] != ' ') return std::nullopt;
  ++pos;
  std::uint64_t checksum = 0;
  if (!parse_decimal(raw, pos, checksum)) return std::nullopt;
  if (pos >= raw.size() || raw[pos] != '\n') return std::nullopt;
  ++pos;
  if (raw.size() - pos != size) return std::nullopt;
  const std::string_view payload(raw.data() + pos, raw.size() - pos);
  if (fnv1a64(payload) != checksum) return std::nullopt;
  return std::string(payload);
}

}  // namespace thermo::persist
