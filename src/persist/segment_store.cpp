#include "persist/segment_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace thermo::persist {

namespace {

// On-disk layout (docs/PERSIST.md "Format"):
//
//   segment header (20 bytes)
//     0..3   magic "TSG1"
//     4..7   u32 LE  segment format version (kSegmentFormatVersion)
//     8..11  u32 LE  payload schema revision (StoreOptions)
//     12..15 u32 LE  segment sequence number
//     16..19 u32 LE  header checksum: fnv1a64(bytes 0..15) folded to 32
//
//   record frame (16 + key + value bytes)
//     0..3   u32 LE  key length   (1 .. kMaxLength)
//     4..7   u32 LE  value length (0 .. kMaxLength)
//     8..            key bytes, then value bytes
//     last 8 u64 LE  frame checksum: fnv1a64(length bytes ++ key ++ value)
//
// Everything is explicit little-endian byte packing — a segment written
// on one machine scans identically on any other.

constexpr char kMagic[4] = {'T', 'S', 'G', '1'};
constexpr std::size_t kHeaderSize = 20;
constexpr std::size_t kFrameOverhead = 16;
/// Plausibility bound on either length field: a frame header whose
/// lengths exceed this is torn-write garbage, not a 64 MiB record.
constexpr std::uint32_t kMaxLength = 1u << 26;

void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint32_t read_u32(const char* p) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

std::uint64_t read_u64(const char* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

std::uint32_t fold32(std::uint64_t hash) {
  return static_cast<std::uint32_t>(hash ^ (hash >> 32));
}

std::string encode_header(std::uint32_t schema, std::uint32_t seq) {
  std::string out;
  out.reserve(kHeaderSize);
  out.append(kMagic, sizeof kMagic);
  append_u32(out, kSegmentFormatVersion);
  append_u32(out, schema);
  append_u32(out, seq);
  append_u32(out, fold32(fnv1a64(out)));
  return out;
}

struct HeaderInfo {
  bool ok = false;
  std::uint32_t schema = 0;
  std::uint32_t seq = 0;
};

HeaderInfo decode_header(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) return {};
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) return {};
  if (fold32(fnv1a64(bytes.substr(0, 16))) != read_u32(bytes.data() + 16)) {
    return {};
  }
  if (read_u32(bytes.data() + 4) != kSegmentFormatVersion) return {};
  return {true, read_u32(bytes.data() + 8), read_u32(bytes.data() + 12)};
}

std::uint64_t frame_checksum(std::string_view length_bytes,
                             std::string_view key, std::string_view value) {
  std::uint64_t hash = fnv1a64(length_bytes);
  hash = fnv1a64(key, hash);
  return fnv1a64(value, hash);
}

std::string encode_frame(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(kFrameOverhead + key.size() + value.size());
  append_u32(out, static_cast<std::uint32_t>(key.size()));
  append_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(key);
  out.append(value);
  append_u64(out, frame_checksum(std::string_view(out.data(), 8), key, value));
  return out;
}

struct FrameView {
  bool ok = false;
  std::string_view key;
  std::string_view value;
};

/// Validates one complete frame (exact length, checksum) and exposes
/// views into it. Never trusts lengths beyond the plausibility bound.
FrameView decode_frame(std::string_view frame) {
  if (frame.size() < kFrameOverhead) return {};
  const std::uint32_t key_length = read_u32(frame.data());
  const std::uint32_t value_length = read_u32(frame.data() + 4);
  if (key_length == 0 || key_length > kMaxLength || value_length > kMaxLength) {
    return {};
  }
  if (frame.size() != kFrameOverhead + std::size_t{key_length} + value_length) {
    return {};
  }
  const std::string_view key = frame.substr(8, key_length);
  const std::string_view value = frame.substr(8 + std::size_t{key_length},
                                              value_length);
  if (frame_checksum(frame.substr(0, 8), key, value) !=
      read_u64(frame.data() + frame.size() - 8)) {
    return {};
  }
  return {true, key, value};
}

struct ScanRecord {
  std::uint64_t offset = 0;
  std::size_t frame_length = 0;
  std::string key;
};

struct ScanDamage {
  std::uint64_t offset = 0;
  std::string reason;
};

struct SegmentScan {
  bool header_ok = false;
  std::uint32_t schema = 0;
  std::uint32_t seq = 0;
  std::vector<ScanRecord> records;
  std::vector<ScanDamage> damage;
};

/// The recovery scan. Policy (docs/PERSIST.md "Open and recovery"):
///   * an empty file is crash residue from segment creation — no
///     records, no damage;
///   * a bad or short header condemns the segment (its frames cannot be
///     trusted) but never the store;
///   * a frame whose lengths are implausible or overrun the file is a
///     truncated/torn tail: flag it, stop — nothing after a tear has a
///     trustworthy frame boundary;
///   * a complete frame with a bad checksum is in-place corruption:
///     flag it, skip it, keep scanning — the boundaries are intact.
SegmentScan scan_segment(std::string_view bytes) {
  SegmentScan scan;
  if (bytes.empty()) return scan;
  const HeaderInfo header = decode_header(bytes);
  if (!header.ok) {
    scan.damage.push_back({0, bytes.size() < kHeaderSize ? "truncated header"
                                                         : "bad header"});
    return scan;
  }
  scan.header_ok = true;
  scan.schema = header.schema;
  scan.seq = header.seq;
  std::size_t pos = kHeaderSize;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < 8) {
      scan.damage.push_back({pos, "truncated frame"});
      break;
    }
    const std::uint32_t key_length = read_u32(bytes.data() + pos);
    const std::uint32_t value_length = read_u32(bytes.data() + pos + 4);
    if (key_length == 0 || key_length > kMaxLength ||
        value_length > kMaxLength ||
        kFrameOverhead + std::size_t{key_length} + value_length > remaining) {
      scan.damage.push_back({pos, "truncated frame"});
      break;
    }
    const std::size_t frame_length =
        kFrameOverhead + std::size_t{key_length} + value_length;
    const FrameView view = decode_frame(bytes.substr(pos, frame_length));
    if (!view.ok) {
      scan.damage.push_back({pos, "checksum mismatch"});
    } else {
      scan.records.push_back({pos, frame_length, std::string(view.key)});
    }
    pos += frame_length;
  }
  return scan;
}

/// "seg-<digits>.log" -> sequence number; nullopt for anything else
/// (foreign files in the directory are left alone).
std::optional<std::uint32_t> parse_segment_name(std::string_view name) {
  if (!name.starts_with("seg-") || !name.ends_with(".log")) return std::nullopt;
  const std::string_view digits = name.substr(4, name.size() - 8);
  if (digits.empty() || digits.size() > 9) return std::nullopt;
  std::uint32_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (seq == 0) return std::nullopt;
  return seq;
}

/// Store observability (docs/OBSERVABILITY.md): what each disk-facing
/// operation costs, fsync separated out because it dominates
/// SyncMode::kEveryRecord appends — the numbers `thermosched cache
/// stats` reports for tuning.
struct StoreMetrics {
  obs::Counter& appends;
  obs::Counter& get_hits;
  obs::Counter& get_misses;
  obs::Histogram& append_ns;
  obs::Histogram& fsync_ns;
  obs::Histogram& open_scan_ns;
  obs::Histogram& compact_ns;
};

StoreMetrics& store_metrics() {
  auto& registry = obs::MetricsRegistry::instance();
  static StoreMetrics metrics{registry.counter("persist.appends"),
                              registry.counter("persist.get_hits"),
                              registry.counter("persist.get_misses"),
                              registry.histogram("persist.append_ns"),
                              registry.histogram("persist.fsync_ns"),
                              registry.histogram("persist.open_scan_ns"),
                              registry.histogram("persist.compact_ns")};
  return metrics;
}

}  // namespace

std::string SegmentStore::segment_name(std::uint32_t seq) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "seg-%06u.log", seq);
  return buffer;
}

std::string SegmentStore::segment_path(std::uint32_t seq) const {
  return dir_ + "/" + segment_name(seq);
}

SegmentStore::SegmentStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      fs_(options.fs != nullptr ? *options.fs : real_fs()) {
  THERMO_REQUIRE(!dir_.empty(), "SegmentStore directory must be non-empty");
  THERMO_REQUIRE(options_.segment_size_cap > kHeaderSize,
                 "segment_size_cap must exceed the header size");
  open_scan();
}

SegmentStore::~SegmentStore() {
  try {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (active_) {
      active_->sync();
      active_->close();
    }
  } catch (const Error&) {
    // Destruction must not throw; anything unsynced here was already
    // unacknowledged under kOnRotate, and kEveryRecord synced per put.
  }
}

void SegmentStore::open_scan() {
  obs::TraceSpan scan_span("persist.scan");
  obs::ScopedTimer scan_timer(store_metrics().open_scan_ns);
  if (!fs_.exists(dir_)) {
    if (!options_.create_if_missing) {
      throw IoError("no cache directory at '" + dir_ + "'");
    }
    fs_.create_directories(dir_);
  }

  struct Seg {
    std::uint32_t seq;
    std::string name;
  };
  std::vector<Seg> segs;
  for (const std::string& name : fs_.list_dir(dir_)) {
    if (name.ends_with(".tmp")) {
      // A compaction that crashed before its atomic rename: the
      // temporary never became visible, so it is plain garbage.
      fs_.remove_file(dir_ + "/" + name);
      continue;
    }
    if (const auto seq = parse_segment_name(name)) {
      segs.push_back({*seq, name});
    }
  }
  std::sort(segs.begin(), segs.end(),
            [](const Seg& a, const Seg& b) { return a.seq < b.seq; });

  std::vector<SegmentScan> scans;
  scans.reserve(segs.size());
  std::optional<std::uint32_t> foreign_schema;
  for (const Seg& seg : segs) {
    const std::string bytes = fs_.read_file(dir_ + "/" + seg.name);
    SegmentScan scan = scan_segment(bytes);
    if (scan.header_ok && scan.schema != options_.schema_revision &&
        !foreign_schema) {
      foreign_schema = scan.schema;
    }
    segment_bytes_[seg.seq] = bytes.size();
    next_seq_ = std::max(next_seq_, seg.seq + 1);
    scans.push_back(std::move(scan));
  }

  if (foreign_schema) {
    if (options_.schema_policy == SchemaPolicy::kFailOnMismatch) {
      throw Error("cache at '" + dir_ + "' has schema revision " +
                  std::to_string(*foreign_schema) + ", expected " +
                  std::to_string(options_.schema_revision) +
                  " — refusing to touch it");
    }
    // Payload schema bump: the old records can no longer be interpreted,
    // so the whole store is invalidated in one step.
    for (const Seg& seg : segs) fs_.remove_file(dir_ + "/" + seg.name);
    segment_bytes_.clear();
    next_seq_ = 1;
    stats_.wiped_on_open = true;
    return;
  }

  for (std::size_t i = 0; i < segs.size(); ++i) {
    stats_.damaged_at_open += scans[i].damage.size();
    for (ScanRecord& record : scans[i].records) {
      // emplace keeps the first occurrence: segments are scanned in
      // ascending sequence, so this reproduces first-insert-wins across
      // restarts (duplicates only exist as identical-byte compaction or
      // crash leftovers anyway).
      index_.emplace(std::move(record.key),
                     Location{segs[i].seq, record.offset, record.frame_length});
    }
  }
}

void SegmentStore::ensure_active() {
  if (active_) return;
  // The sequence number is consumed up front: if creating or writing the
  // header fails, that number is burned and the next attempt uses a
  // fresh file — this store never appends to a file whose tail state it
  // is not certain of.
  const std::uint32_t seq = next_seq_++;
  std::unique_ptr<WritableFile> file = fs_.open_append(segment_path(seq));
  const std::string header = encode_header(options_.schema_revision, seq);
  file->append(header);
  active_ = std::move(file);
  active_seq_ = seq;
  active_offset_ = header.size();
  segment_bytes_[seq] = active_offset_;
}

void SegmentStore::rotate() {
  active_->sync();
  active_->close();
  active_.reset();
}

void SegmentStore::abandon_active() noexcept {
  try {
    if (active_) active_->close();
  } catch (const Error&) {
    // Already abandoning; the segment's tail is damage either way and
    // the next compact() scrubs it.
  }
  active_.reset();
}

bool SegmentStore::put(std::string_view key, std::string_view value) {
  THERMO_REQUIRE(!key.empty(), "SegmentStore keys must be non-empty");
  THERMO_REQUIRE(key.size() <= kMaxLength && value.size() <= kMaxLength,
                 "SegmentStore record exceeds the 64 MiB field bound");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(std::string(key)) != index_.end()) {
    ++stats_.deduped_puts;
    return false;
  }
  const std::string frame = encode_frame(key, value);
  try {
    obs::TraceSpan append_span("persist.append");
    obs::ScopedTimer append_timer(store_metrics().append_ns);
    ensure_active();
    active_->append(frame);
    if (options_.sync_mode == SyncMode::kEveryRecord) {
      obs::ScopedTimer fsync_timer(store_metrics().fsync_ns);
      active_->sync();
    }
  } catch (...) {
    // The segment now (possibly) ends in a partial frame. Never append
    // after a tail we are not certain of: abandon the segment — its torn
    // tail is detected by checksum on the next scan and scrubbed by the
    // next compact() — and surface the failure unacknowledged.
    abandon_active();
    throw;
  }
  index_.emplace(std::string(key),
                 Location{active_seq_, active_offset_, frame.size()});
  active_offset_ += frame.size();
  segment_bytes_[active_seq_] = active_offset_;
  ++stats_.appends;
  store_metrics().appends.add();
  if (active_offset_ >= options_.segment_size_cap) {
    try {
      rotate();
    } catch (...) {
      abandon_active();
      throw;  // the record itself is already durable and indexed
    }
  }
  return true;
}

std::optional<std::string> SegmentStore::get(std::string_view key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    ++stats_.get_misses;
    store_metrics().get_misses.add();
    return std::nullopt;
  }
  const Location loc = it->second;
  // Under kOnRotate a record in the active segment may still sit in
  // application buffers; flush so the range read below can see it.
  if (active_ && loc.seq == active_seq_ &&
      options_.sync_mode == SyncMode::kOnRotate) {
    active_->sync();
  }
  // A failed read is TRANSIENT (it says nothing about the bytes on
  // disk) and propagates as IoError — the caller may retry and the
  // record stays indexed. Only a successful read whose bytes fail
  // verification is evidence of corruption and may drop the entry.
  const std::string frame =
      fs_.read_range(segment_path(loc.seq), loc.offset, loc.frame_length);
  const FrameView view = decode_frame(frame);
  if (!view.ok || view.key != key) {
    // The bytes under this index entry are no longer what was written
    // (external truncation/corruption since open). Serving them would
    // violate the never-wrong-bytes contract; degrade to a miss.
    ++stats_.read_corruptions;
    ++stats_.get_misses;
    store_metrics().get_misses.add();
    index_.erase(it);
    return std::nullopt;
  }
  ++stats_.get_hits;
  store_metrics().get_hits.add();
  return std::string(view.value);
}

bool SegmentStore::contains(std::string_view key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.find(std::string(key)) != index_.end();
}

void SegmentStore::sync() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (active_) active_->sync();
}

SegmentStore::VerifyReport SegmentStore::verify() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (active_) active_->sync();
  VerifyReport report;
  for (const std::string& name : fs_.list_dir(dir_)) {
    if (!parse_segment_name(name)) continue;
    ++report.segments;
    const SegmentScan scan = scan_segment(fs_.read_file(dir_ + "/" + name));
    report.valid_records += scan.records.size();
    for (const ScanDamage& damage : scan.damage) {
      report.damage.push_back({name, damage.offset, damage.reason});
    }
  }
  return report;
}

std::size_t SegmentStore::compact() {
  obs::TraceSpan compact_span("persist.compact");
  obs::ScopedTimer compact_timer(store_metrics().compact_ns);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (active_) {
    active_->sync();
    active_->close();
    active_.reset();
  }

  // Live records in append order (sequence, then offset) — compaction
  // preserves the store's history order, so a compacted store scans to
  // the same index as the original.
  std::vector<std::pair<Location, const std::string*>> live;
  live.reserve(index_.size());
  for (const auto& [key, loc] : index_) live.push_back({loc, &key});
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.first.seq != b.first.seq ? a.first.seq < b.first.seq
                                      : a.first.offset < b.first.offset;
  });

  const std::uint32_t new_seq = next_seq_++;
  const std::string tmp_path = dir_ + "/compact.tmp";
  if (fs_.exists(tmp_path)) fs_.remove_file(tmp_path);
  std::unique_ptr<WritableFile> out = fs_.open_append(tmp_path);
  const std::string header = encode_header(options_.schema_revision, new_seq);
  out->append(header);
  std::uint64_t offset = header.size();

  std::vector<std::pair<std::string, Location>> relocated;
  relocated.reserve(live.size());
  for (const auto& [loc, key] : live) {
    const std::string frame =
        fs_.read_range(segment_path(loc.seq), loc.offset, loc.frame_length);
    const FrameView view = decode_frame(frame);
    if (!view.ok || view.key != *key) {
      ++stats_.read_corruptions;  // damaged since open: scrubbed, not copied
      continue;
    }
    out->append(frame);
    relocated.emplace_back(*key, Location{new_seq, offset, frame.size()});
    offset += frame.size();
  }
  out->sync();
  out->close();
  // The commit point: until this rename the new segment is invisible
  // (open_scan removes *.tmp), after it the store is complete in one
  // file and every older segment is redundant.
  fs_.rename_file(tmp_path, segment_path(new_seq));

  index_.clear();
  for (auto& [key, loc] : relocated) index_.emplace(std::move(key), loc);
  segment_bytes_.clear();
  segment_bytes_[new_seq] = offset;

  // Deleting inputs AFTER the commit: a crash between these removes
  // leaves duplicate records, and duplicates of immutable records are
  // harmless (the scan's first-wins dedups them).
  for (const std::string& name : fs_.list_dir(dir_)) {
    const auto seq = parse_segment_name(name);
    if (seq && *seq != new_seq) fs_.remove_file(dir_ + "/" + name);
  }
  return relocated.size();
}

SegmentStore::Stats SegmentStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.records = index_.size();
  out.segments = segment_bytes_.size();
  out.disk_bytes = 0;
  for (const auto& [seq, bytes] : segment_bytes_) out.disk_bytes += bytes;
  out.schema_revision = options_.schema_revision;
  return out;
}

}  // namespace thermo::persist
