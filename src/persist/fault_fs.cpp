#include "persist/fault_fs.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <algorithm>
#include <utility>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace thermo::persist {

namespace {

namespace fs = std::filesystem;

/// cstdio append handle. Durability contract: append() lands bytes in
/// the stdio buffer, sync() pushes them through fflush + fsync; close()
/// flushes (so a same-process reader sees the bytes) but deliberately
/// does NOT fsync — SegmentStore ties acknowledgement to sync() alone.
class RealWritableFile final : public WritableFile {
 public:
  RealWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~RealWritableFile() override {
    try {
      close();
    } catch (const Error&) {
      // Destruction models process exit: a flush failure here has no one
      // left to report to.
    }
  }

  void append(std::string_view bytes) override {
    THERMO_REQUIRE(file_ != nullptr, "append on a closed file");
    if (bytes.empty()) return;
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), file_);
    if (written != bytes.size()) {
      throw IoError("short write to '" + path_ + "' (" +
                    std::to_string(written) + " of " +
                    std::to_string(bytes.size()) + " bytes)");
    }
  }

  void sync() override {
    THERMO_REQUIRE(file_ != nullptr, "sync on a closed file");
    if (std::fflush(file_) != 0) {
      throw IoError("flush failed for '" + path_ + "'");
    }
#if !defined(_WIN32)
    if (::fsync(::fileno(file_)) != 0) {
      throw IoError("fsync failed for '" + path_ + "'");
    }
#endif
  }

  void close() override {
    if (file_ == nullptr) return;
    std::FILE* file = file_;
    file_ = nullptr;
    if (std::fclose(file) != 0) {
      throw IoError("close failed for '" + path_ + "'");
    }
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class RealFs final : public Fs {
 public:
  std::unique_ptr<WritableFile> open_append(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    if (file == nullptr) {
      throw IoError("cannot open '" + path + "' for append");
    }
    return std::make_unique<RealWritableFile>(file, path);
  }

  std::string read_file(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot read '" + path + "'");
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) throw IoError("read failed for '" + path + "'");
    return bytes;
  }

  std::string read_range(const std::string& path, std::uint64_t offset,
                         std::size_t length) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot read '" + path + "'");
    in.seekg(static_cast<std::streamoff>(offset));
    std::string bytes(length, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(length));
    if (static_cast<std::size_t>(in.gcount()) != length) {
      throw IoError("range [" + std::to_string(offset) + ", +" +
                    std::to_string(length) + ") overruns '" + path + "'");
    }
    return bytes;
  }

  std::vector<std::string> list_dir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_regular_file()) {
        names.push_back(entry.path().filename().string());
      }
    }
    // A missing directory is an empty listing, not an error: opening a
    // store that does not exist yet must be expressible.
    std::sort(names.begin(), names.end());
    return names;
  }

  void create_directories(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      throw IoError("cannot create directory '" + dir + "': " + ec.message());
    }
  }

  bool exists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  std::uint64_t file_size(const std::string& path) override {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec) throw IoError("cannot stat '" + path + "': " + ec.message());
    return static_cast<std::uint64_t>(size);
  }

  void rename_file(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      throw IoError("cannot rename '" + from + "' to '" + to +
                    "': " + ec.message());
    }
  }

  void remove_file(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      throw IoError("cannot remove '" + path + "'" +
                    (ec ? ": " + ec.message() : std::string()));
    }
  }
};

/// What FaultFs::charge tells the operation wrapper to do.
enum class FaultAction { kNone, kCrashAfterOp, kShortWrite, kTornWrite };

}  // namespace

Fs& real_fs() {
  static RealFs instance;
  return instance;
}

namespace {

/// Decorates a WritableFile so appends/syncs on an open handle are
/// charged (and faulted) like any other operation. close() is exempt:
/// it is called from destructors during crash unwinding, where a throw
/// would terminate the process for real.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultFs& fs, std::unique_ptr<WritableFile> base)
      : fs_(fs), base_(std::move(base)) {}

  ~FaultWritableFile() override { close(); }

  void append(std::string_view bytes) override;
  void sync() override {
    const bool before = fs_.crashed();
    fs_.charge(false);
    base_->sync();
    if (!before && fs_.crashed()) {
      throw CrashError("injected crash after sync");
    }
  }
  void close() override { base_->close(); }

 private:
  FaultFs& fs_;
  std::unique_ptr<WritableFile> base_;
};

void FaultWritableFile::append(std::string_view bytes) {
  const bool before = fs_.crashed();
  const bool treat = fs_.charge(true);
  if (!treat) {
    base_->append(bytes);
    if (!before && fs_.crashed()) {
      throw CrashError("injected crash after append");
    }
    return;
  }
  // Short/torn write: a seeded prefix of the frame reaches "disk"; a
  // torn write additionally smears 1..16 seeded garbage bytes after it
  // (a sector that was mid-rewrite when the power went). Then the crash.
  Rng& rng = fs_.torn_rng();
  std::string partial{bytes.substr(
      0, static_cast<std::size_t>(rng.uniform_index(bytes.size() + 1)))};
  if (fs_.plan().kind == FaultKind::kTornWrite) {
    const std::size_t garbage = 1 + static_cast<std::size_t>(rng.uniform_index(16));
    for (std::size_t i = 0; i < garbage; ++i) {
      partial.push_back(static_cast<char>(rng.next_u64() & 0xff));
    }
  }
  if (!partial.empty()) base_->append(partial);
  throw CrashError(fs_.plan().kind == FaultKind::kTornWrite
                       ? "injected crash: torn write"
                       : "injected crash: short write");
}

}  // namespace

FaultFs::FaultFs(Fs& base, FaultPlan plan)
    : base_(base), plan_(plan), rng_(plan.seed) {}

bool FaultFs::charge(bool is_append) {
  if (crashed_) throw CrashError("filesystem crashed (op after crash point)");
  const std::size_t op = ops_++;
  if (op != plan_.after_ops) return false;
  switch (plan_.kind) {
    case FaultKind::kFailOp:
      // Transient failure: this op fails, the filesystem lives on.
      throw IoError("injected I/O failure at op " + std::to_string(op));
    case FaultKind::kCrashBefore:
      crashed_ = true;
      throw CrashError("injected crash before op " + std::to_string(op));
    case FaultKind::kCrashAfter:
      crashed_ = true;
      return false;  // the wrapper performs the op, compares crashed()
                     // before/after, and throws
    case FaultKind::kShortWrite:
    case FaultKind::kTornWrite:
      crashed_ = true;
      if (is_append) return true;  // the append applies the treatment
      throw CrashError("injected crash before op " + std::to_string(op));
  }
  return false;
}

// kCrashAfter needs "do the op, then die". charge() above cannot run the
// op, so each wrapper checks crashed_ after its base call: charge only
// sets the flag without throwing in the kCrashAfter case.
namespace {
void crash_if_pending(const FaultFs& fs, bool armed) {
  if (armed && fs.crashed()) {
    throw CrashError("injected crash after op");
  }
}
}  // namespace

std::unique_ptr<WritableFile> FaultFs::open_append(const std::string& path) {
  const bool before = crashed_;
  charge(false);
  auto file = std::make_unique<FaultWritableFile>(*this, base_.open_append(path));
  crash_if_pending(*this, !before && crashed_);
  return file;
}

std::string FaultFs::read_file(const std::string& path) {
  const bool before = crashed_;
  charge(false);
  std::string bytes = base_.read_file(path);
  crash_if_pending(*this, !before && crashed_);
  return bytes;
}

std::string FaultFs::read_range(const std::string& path, std::uint64_t offset,
                                std::size_t length) {
  const bool before = crashed_;
  charge(false);
  std::string bytes = base_.read_range(path, offset, length);
  crash_if_pending(*this, !before && crashed_);
  return bytes;
}

std::vector<std::string> FaultFs::list_dir(const std::string& dir) {
  const bool before = crashed_;
  charge(false);
  std::vector<std::string> names = base_.list_dir(dir);
  crash_if_pending(*this, !before && crashed_);
  return names;
}

void FaultFs::create_directories(const std::string& dir) {
  const bool before = crashed_;
  charge(false);
  base_.create_directories(dir);
  crash_if_pending(*this, !before && crashed_);
}

bool FaultFs::exists(const std::string& path) {
  const bool before = crashed_;
  charge(false);
  const bool result = base_.exists(path);
  crash_if_pending(*this, !before && crashed_);
  return result;
}

std::uint64_t FaultFs::file_size(const std::string& path) {
  const bool before = crashed_;
  charge(false);
  const std::uint64_t size = base_.file_size(path);
  crash_if_pending(*this, !before && crashed_);
  return size;
}

void FaultFs::rename_file(const std::string& from, const std::string& to) {
  const bool before = crashed_;
  charge(false);
  base_.rename_file(from, to);
  crash_if_pending(*this, !before && crashed_);
}

void FaultFs::remove_file(const std::string& path) {
  const bool before = crashed_;
  charge(false);
  base_.remove_file(path);
  crash_if_pending(*this, !before && crashed_);
}

}  // namespace thermo::persist
