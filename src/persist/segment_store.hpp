// SegmentStore: a crash-safe, append-only, content-addressed record
// store — the disk half of the fleet-shareable result cache
// (docs/PERSIST.md is the format spec and crash-consistency contract).
//
// Layout (the SPDK blobstore/bdev idiom of separating dumb durable
// segments from a rebuildable index):
//
//   <dir>/seg-000001.log, seg-000002.log, ...   append-only segments
//   (in-memory)  key -> {segment, offset, frame length}
//
// Each segment starts with a checksummed 20-byte header (magic, format,
// schema revision, sequence number); each record is a length-prefixed,
// FNV-1a-64-checksummed frame of (key, value) bytes. The index is
// rebuilt by scanning the segments at open — there is no index file to
// keep consistent, so there is no index/segment mismatch to recover
// from. Records are immutable and first-insert-wins (the value is a
// pure function of the key, as in dispatch::ResultMemo), which makes
// every duplicate — racing writers, compaction leftovers — harmless.
//
// Crash-consistency contract (proved by tests/persist_crash_test.cpp
// over every injected crash point, including short and torn writes):
//   * put() returning under SyncMode::kEveryRecord means the record is
//     durable: it survives any later crash, byte-identical;
//   * a crash at ANY point leaves the directory openable; at most the
//     one in-flight (unacknowledged) record is missing;
//   * a checksum-invalid frame is never served — corruption degrades to
//     a miss, never to wrong bytes.
// Mechanisms: frames are checksummed so a torn tail is detected, not
// trusted; the active segment is never appended to across opens (a
// fresh segment per writer session, so garbage after a crash tail can
// never swallow later records); compaction writes a complete new
// segment, syncs it, then atomically renames it into place before
// deleting inputs; a schema-revision mismatch invalidates the whole
// store in one step (format bumps cannot half-apply).
//
// All operations are mutex-guarded; one store instance may be shared by
// the dispatch engine's worker threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "persist/fault_fs.hpp"

namespace thermo::persist {

/// Bumped when the segment header or frame layout changes. Distinct
/// from StoreOptions::schema_revision, which versions the *payload*
/// (what the caller serializes into records).
inline constexpr std::uint32_t kSegmentFormatVersion = 1;

/// When appended bytes become durable.
enum class SyncMode {
  /// fsync after every appended record: put() returning == durable.
  /// The crash contract above assumes this mode (the default).
  kEveryRecord,
  /// fsync only on rotation, compaction, and close: faster bulk loads,
  /// but a crash may lose every record since the last sync.
  kOnRotate,
};

/// What to do when the directory holds segments of a different payload
/// schema revision.
enum class SchemaPolicy {
  /// Delete the stale segments and start empty — a format bump
  /// invalidates the cache cleanly (DiskResultMemo uses this).
  kWipeOnMismatch,
  /// Throw Error — inspection tools (`thermosched cache`) must never
  /// destroy data they were pointed at.
  kFailOnMismatch,
};

struct StoreOptions {
  /// Payload schema revision stamped into every segment header.
  std::uint32_t schema_revision = 1;
  /// Rotate to a new segment once the active one reaches this size.
  std::uint64_t segment_size_cap = 8ull << 20;
  SyncMode sync_mode = SyncMode::kEveryRecord;
  SchemaPolicy schema_policy = SchemaPolicy::kWipeOnMismatch;
  /// false: opening a nonexistent directory throws IoError instead of
  /// creating it (inspection tools).
  bool create_if_missing = true;
  /// Filesystem to operate through (borrowed; must outlive the store).
  /// nullptr = the real filesystem. Tests substitute a FaultFs.
  Fs* fs = nullptr;
};

class SegmentStore {
 public:
  /// Opens (or creates) the store at `dir`: removes crashed-compaction
  /// temporaries, scans every segment, rebuilds the index, applies the
  /// schema policy. Throws IoError/Error per StoreOptions; never throws
  /// because of damaged or truncated segment contents — those become
  /// damage entries in stats()/verify().
  explicit SegmentStore(std::string dir, StoreOptions options = {});
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// The record stored under `key`, checksum-verified at read time, or
  /// nullopt. A frame that fails re-verification (post-open corruption)
  /// is dropped from the index and reported as a miss — never served.
  std::optional<std::string> get(std::string_view key);

  bool contains(std::string_view key) const;

  /// Appends {key, value} unless the key is already present (first
  /// insert wins; returns false without touching disk). Under
  /// kEveryRecord the record is durable when this returns true. A
  /// failed append abandons the active segment (its partial tail frame
  /// is scrubbed by the next compact) so a transient I/O error cannot
  /// corrupt records appended after it.
  bool put(std::string_view key, std::string_view value);

  /// fsyncs the active segment (no-op without one). Under kOnRotate
  /// this is the caller's durability barrier.
  void sync();

  /// One damaged region found by a scan.
  struct Damage {
    std::string segment;   ///< file name, e.g. "seg-000002.log"
    std::uint64_t offset;  ///< byte offset of the damaged frame/header
    std::string reason;    ///< "checksum mismatch", "truncated frame", ...
  };

  struct VerifyReport {
    std::size_t segments = 0;       ///< segment files scanned
    std::size_t valid_records = 0;  ///< frames with valid checksums
    std::vector<Damage> damage;     ///< every damaged frame/header
    bool clean() const { return damage.empty(); }
  };

  /// Re-reads every segment from disk and checksums every frame —
  /// flags exactly the damaged records (tests/persist_corruption_test
  /// pins this). Read-only: the index and segments are not modified.
  VerifyReport verify();

  /// Rewrites all live records into one fresh segment (complete → fsync
  /// → atomic rename → delete inputs), dropping damaged frames and
  /// rotation/crash debris. Crash-safe at every step: the temporary is
  /// invisible to open() until the rename, and leftover inputs after a
  /// crash merely duplicate records the scan dedups. Returns the number
  /// of records carried over.
  std::size_t compact();

  struct Stats {
    std::size_t records = 0;        ///< live (indexed) records
    std::size_t segments = 0;       ///< segment files on disk
    std::uint64_t disk_bytes = 0;   ///< total segment bytes
    std::size_t appends = 0;        ///< put()s that wrote a frame
    std::size_t deduped_puts = 0;   ///< put()s refused (key present)
    std::size_t get_hits = 0;
    std::size_t get_misses = 0;
    std::size_t read_corruptions = 0;  ///< frames dropped at get() time
    std::size_t damaged_at_open = 0;   ///< damage entries in the open scan
    std::uint32_t schema_revision = 0;
    bool wiped_on_open = false;  ///< schema bump cleared a previous store
  };
  Stats stats() const;

  std::uint32_t schema_revision() const { return options_.schema_revision; }
  const std::string& directory() const { return dir_; }

  /// "seg-NNNNNN.log" for a sequence number (exposed for tests that
  /// need to damage a specific file).
  static std::string segment_name(std::uint32_t seq);

 private:
  struct Location {
    std::uint32_t seq = 0;
    std::uint64_t offset = 0;
    std::size_t frame_length = 0;
  };

  std::string segment_path(std::uint32_t seq) const;
  void open_scan();
  /// Opens the next segment lazily (read-only opens create no files).
  void ensure_active();
  void rotate();
  void abandon_active() noexcept;

  std::string dir_;
  StoreOptions options_;
  Fs& fs_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Location> index_;
  std::unique_ptr<WritableFile> active_;
  std::uint32_t active_seq_ = 0;
  std::uint64_t active_offset_ = 0;
  std::uint32_t next_seq_ = 1;
  /// Sizes of every segment file as last written/scanned, keyed by seq
  /// (ordered: compaction and stats walk it in sequence order).
  std::map<std::uint32_t, std::uint64_t> segment_bytes_;
  Stats stats_;
};

}  // namespace thermo::persist
