// Crash-safe single-blob file: the persist layer's primitive for small
// *mutable* state that lives next to an append-only store. SegmentStore
// records are immutable by contract (first insert wins), so state that
// is rewritten on every update — like the dispatch layer's calibration
// sufficient statistics — cannot ride in a segment; it gets its own
// atomically-replaced file instead.
//
// Write protocol (all through the `Fs` seam, so FaultFs can stop the
// world at every operation boundary — tests/persist_calibration_test.cpp
// sweeps them all):
//
//   1. remove a leftover <path>.tmp, if any (a previous crash);
//   2. append header + payload to <path>.tmp, fsync, close;
//   3. rename <path>.tmp → <path>  (the atomic commit point).
//
// A crash anywhere before step 3 leaves the previous blob (or nothing)
// fully intact; after step 3 the new blob is durable in full. There is
// no in-between: the reader can only ever observe an old-complete or
// new-complete file — or a structurally damaged one (torn sector,
// truncation, editor accident), which read_blob_file reports as
// "absent" rather than returning garbage, because the header pins the
// payload length and an fnv1a64 checksum:
//
//   thermoblob v1 <payload bytes> <fnv1a64 decimal>\n<payload>
//
// Single-writer contract (same as SegmentStore): concurrent writers of
// one path are not coordinated here.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "persist/fault_fs.hpp"

namespace thermo::persist {

/// Atomically replaces the blob `dir/name` with `payload` (see file
/// comment for the crash-safety protocol). Creates `dir` if missing.
/// Throws IoError on filesystem failure — the previous blob, if any,
/// is still intact and readable in full when it does.
void write_blob_file(Fs& fs, const std::string& dir, const std::string& name,
                     std::string_view payload);

/// The payload of the blob at `path`, or nullopt when the file does not
/// exist or is structurally damaged (bad magic/version, length
/// mismatch, checksum mismatch). Damage is deliberately indistinguish-
/// able from absence: callers fall back to defaults either way, never
/// consume garbage. Throws IoError only on filesystem failure.
std::optional<std::string> read_blob_file(Fs& fs, const std::string& path);

}  // namespace thermo::persist
