// Renders the thermal landscape of a test session: ASCII heat maps on
// stdout and an SVG floorplan written next to the binary. Uses the grid
// model for the cell-level map and the block model for per-core values.
//
//   ./thermal_map [--session Icache,Dcache,IntReg] [--svg out.svg]
#include <fstream>
#include <iostream>

#include "core/schedule.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/grid_model.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "viz/heatmap.hpp"

using namespace thermo;

int main(int argc, char** argv) {
  std::string session_spec = "Icache,Dcache,IntReg";
  std::string svg_path = "thermal_map.svg";
  CliParser cli("thermal_map", "Visualise a test session's thermal field");
  cli.add_string("session", "Comma-separated core names to activate",
                 &session_spec);
  cli.add_string("svg", "Output SVG path (empty to skip)", &svg_path);
  try {
    if (!cli.parse(argc, argv)) return 0;

    const core::SocSpec soc = soc::alpha_soc();
    core::TestSession session;
    for (const std::string& raw : split(session_spec, ',')) {
      const std::string name{trim(raw)};
      const auto index = soc.flp.index_of(name);
      if (!index) throw InvalidArgument("no core named '" + name + "'");
      session.cores.push_back(*index);
    }

    // Block-level peaks during a 1 s session.
    thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
    const thermal::SessionSimulation sim =
        analyzer.simulate_session(session.power_map(soc), 1.0);
    std::cout << "session " << session.to_string(soc) << ": max "
              << format_double(sim.max_temperature, 1) << " C in '"
              << soc.flp.block(sim.hottest_block).name << "'\n\n";

    std::cout << "per-core peak temperatures (block model):\n"
              << viz::ascii_block_map(soc.flp, sim.peak_temperature, 64)
              << '\n';

    // Cell-level steady state (upper bound) from the grid model.
    const thermal::GridThermalModel grid(soc.flp, soc.package,
                                         thermal::GridOptions{48, 48});
    const thermal::GridSteadyResult steady =
        grid.solve(session.power_map(soc));
    std::cout << "steady-state cell temperatures (48x48 grid model):\n"
              << viz::ascii_heatmap(steady.cell_temperature, 48, 48) << '\n';

    if (!svg_path.empty()) {
      std::ofstream out(svg_path);
      if (!out) throw InvalidArgument("cannot write '" + svg_path + "'");
      out << viz::svg_floorplan(soc.flp, sim.peak_temperature);
      std::cout << "wrote " << svg_path << '\n';
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
