// Test-access-mechanism exploration: derive per-core test lengths and
// powers from scan structures (patterns x scan flops) at a given TAM
// width, then schedule thermally. Wider TAMs shorten every test but
// raise test power - so the thermally-safe schedule length is NOT
// monotone in TAM width. This example sweeps the width and prints the
// full trade-off, connecting the paper's scheduler to the classic
// test-access literature it builds on (Iyengar & Chakrabarty).
//
//   ./tam_exploration [--tl 150] [--stcl 300] [--max-width 64]
#include <iostream>

#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "testaccess/test_structure.hpp"
#include "thermal/analyzer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main(int argc, char** argv) {
  double tl = 150.0;
  double stcl = 300.0;
  long long max_width = 64;
  CliParser cli("tam_exploration",
                "Sweep TAM width; schedule the derived test sets thermally");
  cli.add_double("tl", "Temperature limit [deg C]", &tl);
  cli.add_double("stcl", "Session thermal characteristic limit", &stcl);
  cli.add_int("max-width", "Largest TAM width to try (power-of-two sweep)",
              &max_width);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage();
    return 1;
  }

  // Reuse the Alpha floorplan; scan structures sized roughly with the
  // unit areas (bigger units carry more scan flops and patterns).
  const core::SocSpec base = soc::alpha_soc();
  std::vector<testaccess::CoreTestStructure> structures;
  for (std::size_t i = 0; i < base.core_count(); ++i) {
    const double area_mm2 = base.flp.block(i).area() * 1e6;
    testaccess::CoreTestStructure s;
    s.scan_flops = static_cast<std::size_t>(200.0 * area_mm2);
    s.patterns = 150 + static_cast<std::size_t>(10.0 * area_mm2);
    // Watts per bit of scan bandwidth, scaled so totals land in the
    // regime the thermal model was calibrated for.
    s.power_per_bit = 0.35 + 0.05 * static_cast<double>(i % 3);
    structures.push_back(s);
  }
  const double clock_hz = 5e4;  // slow scan clock -> second-scale tests

  Table table({"TAM width", "longest test [s]", "total test time [s]",
               "hottest core power [W]", "sessions", "schedule length [s]",
               "max temp [C]"});
  for (long long width = 4; width <= max_width; width *= 2) {
    const core::SocSpec soc = testaccess::make_soc_from_structures(
        base.flp, structures, static_cast<std::size_t>(width), clock_hz,
        base.package);

    double longest = 0.0, total = 0.0, max_power = 0.0;
    for (const auto& test : soc.tests) {
      longest = std::max(longest, test.length);
      total += test.length;
      max_power = std::max(max_power, test.power);
    }

    thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
    core::ThermalSchedulerOptions options;
    options.temperature_limit = tl;
    options.stc_limit = stcl;
    options.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
    const core::ScheduleResult result =
        core::ThermalAwareScheduler(options).generate(soc, analyzer);

    table.add_row({std::to_string(width), format_double(longest, 2),
                   format_double(total, 2), format_double(max_power, 1),
                   std::to_string(result.schedule.session_count()),
                   format_double(result.schedule_length, 2),
                   format_double(result.max_temperature, 1)});
  }
  std::cout << "TL = " << tl << " C, STCL = " << stcl << "\n";
  table.print(std::cout);
  std::cout << "\nnote: beyond the thermal knee, widening the TAM stops "
               "helping - tests get\nshorter but hotter, and the scheduler "
               "must serialise them again.\n";
  return 0;
}
