// Test-access-mechanism exploration: derive per-core test lengths and
// powers from scan structures (patterns x scan flops) at a given TAM
// width, then schedule thermally. Wider TAMs shorten every test but
// raise test power - so the thermally-safe schedule length is NOT
// monotone in TAM width. This example sweeps the width and prints the
// full trade-off, connecting the paper's scheduler to the classic
// test-access literature it builds on (Iyengar & Chakrabarty).
//
// Every TAM width shares the same floorplan and package, i.e. the same
// RC network — so the widths are fanned across a sweep::ScenarioSweep
// thread pool with one shared RCModel, and the expensive factorizations
// are computed once for the whole exploration (solver cache).
//
//   ./tam_exploration [--tl 150] [--stcl 300] [--max-width 64] [--threads 0]
#include <iostream>
#include <memory>

#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "sweep/scenario_sweep.hpp"
#include "testaccess/test_structure.hpp"
#include "thermal/analyzer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main(int argc, char** argv) {
  double tl = 150.0;
  double stcl = 300.0;
  long long max_width = 64;
  long long threads = 0;
  CliParser cli("tam_exploration",
                "Sweep TAM width; schedule the derived test sets thermally");
  cli.add_double("tl", "Temperature limit [deg C]", &tl);
  cli.add_double("stcl", "Session thermal characteristic limit", &stcl);
  cli.add_int("max-width", "Largest TAM width to try (power-of-two sweep)",
              &max_width);
  cli.add_int("threads", "Worker threads, 0 = all cores", &threads);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage();
    return 1;
  }

  // Reuse the Alpha floorplan; scan structures sized roughly with the
  // unit areas (bigger units carry more scan flops and patterns).
  const core::SocSpec base = soc::alpha_soc();
  std::vector<testaccess::CoreTestStructure> structures;
  for (std::size_t i = 0; i < base.core_count(); ++i) {
    const double area_mm2 = base.flp.block(i).area() * 1e6;
    testaccess::CoreTestStructure s;
    s.scan_flops = static_cast<std::size_t>(200.0 * area_mm2);
    s.patterns = 150 + static_cast<std::size_t>(10.0 * area_mm2);
    // Watts per bit of scan bandwidth, scaled so totals land in the
    // regime the thermal model was calibrated for.
    s.power_per_bit = 0.35 + 0.05 * static_cast<double>(i % 3);
    structures.push_back(s);
  }
  const double clock_hz = 5e4;  // slow scan clock -> second-scale tests

  std::vector<long long> widths;
  for (long long width = 4; width <= max_width; width *= 2) {
    widths.push_back(width);
  }

  // All widths share the floorplan and package, hence the RC network.
  const auto model =
      std::make_shared<const thermal::RCModel>(base.flp, base.package);

  sweep::SweepOptions sweep_options;
  sweep_options.threads = threads > 0 ? static_cast<std::size_t>(threads) : 0;
  const sweep::ScenarioSweep sweeper(sweep_options);

  struct Row {
    long long width = 0;
    double longest = 0.0;
    double total = 0.0;
    double max_power = 0.0;
    std::size_t sessions = 0;
    double length = 0.0;
    double max_temperature = 0.0;
  };
  const std::vector<Row> rows = sweeper.map(widths.size(), [&](std::size_t i) {
    const core::SocSpec soc = testaccess::make_soc_from_structures(
        base.flp, structures, static_cast<std::size_t>(widths[i]), clock_hz,
        base.package);

    Row row;
    row.width = widths[i];
    for (const auto& test : soc.tests) {
      row.longest = std::max(row.longest, test.length);
      row.total += test.length;
      row.max_power = std::max(row.max_power, test.power);
    }

    thermal::ThermalAnalyzer analyzer(model);
    core::ThermalSchedulerOptions options;
    options.temperature_limit = tl;
    options.stc_limit = stcl;
    options.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
    const core::ScheduleResult result =
        core::ThermalAwareScheduler(options).generate(soc, analyzer);
    row.sessions = result.schedule.session_count();
    row.length = result.schedule_length;
    row.max_temperature = result.max_temperature;
    return row;
  });

  Table table({"TAM width", "longest test [s]", "total test time [s]",
               "hottest core power [W]", "sessions", "schedule length [s]",
               "max temp [C]"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.width), format_double(row.longest, 2),
                   format_double(row.total, 2), format_double(row.max_power, 1),
                   std::to_string(row.sessions), format_double(row.length, 2),
                   format_double(row.max_temperature, 1)});
  }
  std::cout << "TL = " << tl << " C, STCL = " << stcl << " ("
            << sweeper.thread_count() << " threads)\n";
  table.print(std::cout);
  std::cout << "\nnote: beyond the thermal knee, widening the TAM stops "
               "helping - tests get\nshorter but hotter, and the scheduler "
               "must serialise them again.\n";
  return 0;
}
